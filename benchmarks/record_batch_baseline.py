#!/usr/bin/env python
"""Record the batch-throughput baseline (BENCH_batch.json).

Measures graphs/sec over a batch of R-MAT graphs with the ``process``
engine two ways:

* ``extract_many`` — one persistent :class:`repro.core.procpool
  .ProcessPool` (worker team + shared-memory arena spawned once, rebound
  per graph);
* the naive loop — one :func:`repro.core.extract
  .extract_maximal_chordal_subgraph` call per graph, each spawning and
  tearing down its own pool.

The ratio is the amortisation win of the batch pipeline; both paths are
verified to produce identical edge sets before timing.  Re-record (on a
quiet machine) after intentional changes to the pool or kernels:

    PYTHONPATH=src python benchmarks/record_batch_baseline.py
    # or: repro bench --record-batch
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from pathlib import Path

BATCH_PATH = Path(__file__).resolve().parent / "BENCH_batch.json"

#: Batch composition: the paper's three R-MAT families, round-robin.
NUM_GRAPHS = 24
SCALE = 8
NUM_WORKERS = 2
REPEATS = 3


def build_graphs() -> list:
    from repro.graph.generators.rmat import rmat_b, rmat_er, rmat_g

    families = (rmat_er, rmat_g, rmat_b)
    return [families[i % 3](SCALE, seed=i) for i in range(NUM_GRAPHS)]


def record(path: Path = BATCH_PATH, repeats: int = REPEATS) -> dict:
    import numpy as np

    from repro.core.extract import extract_many, extract_maximal_chordal_subgraph
    from repro.util.timing import median_of

    graphs = build_graphs()

    def run_batch():
        return extract_many(graphs, engine="process", num_workers=NUM_WORKERS)

    def run_percall():
        return [
            extract_maximal_chordal_subgraph(
                g, engine="process", schedule="synchronous", num_workers=NUM_WORKERS
            )
            for g in graphs
        ]

    batch_results = run_batch()
    percall_results = run_percall()
    for a, b in zip(batch_results, percall_results):
        assert np.array_equal(a.edges, b.edges), "batch/per-call edge sets diverged"

    batch_seconds = median_of(run_batch, repeats)
    percall_seconds = median_of(run_percall, repeats)
    payload = {
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host_cores": os.cpu_count(),
        "num_graphs": NUM_GRAPHS,
        "scale": SCALE,
        "num_workers": NUM_WORKERS,
        "repeats": repeats,
        "batch_seconds": batch_seconds,
        "percall_seconds": percall_seconds,
        "batch_graphs_per_sec": NUM_GRAPHS / batch_seconds,
        "percall_graphs_per_sec": NUM_GRAPHS / percall_seconds,
        "speedup": percall_seconds / batch_seconds,
    }
    print(
        f"extract_many        : {batch_seconds:8.3f} s "
        f"({payload['batch_graphs_per_sec']:7.1f} graphs/s)"
    )
    print(
        f"per-call pool spawn : {percall_seconds:8.3f} s "
        f"({payload['percall_graphs_per_sec']:7.1f} graphs/s)"
    )
    print(f"speedup             : {payload['speedup']:8.2f} x")
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")
    return payload


if __name__ == "__main__":
    record()
