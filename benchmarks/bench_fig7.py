"""Regenerates paper Figure 7 (queue sizes and iteration counts)."""

from benchmarks.conftest import BENCH_BIO_FRACTION, BENCH_SCALES, BENCH_SEED
from repro.experiments import fig7


def test_fig7(benchmark):
    result = benchmark.pedantic(
        lambda: fig7.run(
            scales=BENCH_SCALES, bio_fraction=BENCH_BIO_FRACTION, seed=BENCH_SEED
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    rows = {row[0]: row for row in result.rows}
    top = BENCH_SCALES[-1]
    # paper shape: Q2 > Q1 for RMAT-B
    name = f"RMAT-B({top})"
    assert rows[name][3] > rows[name][2]
    # paper shape: the gene networks need double-digit iteration counts
    # (paper: ~10) despite being a fraction of the synthetic graphs' size
    bio_iters = min(rows[n][1] for n in rows if n.startswith("GSE"))
    assert bio_iters >= 8
