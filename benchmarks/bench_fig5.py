"""Regenerates paper Figure 5 (gene-network scaling on XMT/Opteron)."""

from benchmarks.conftest import BENCH_BIO_FRACTION, BENCH_SEED
from repro.experiments import fig5


def test_fig5(benchmark):
    result = benchmark.pedantic(
        lambda: fig5.run(bio_fraction=BENCH_BIO_FRACTION, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    # paper shape: the optimized variant beats unoptimized on the XMT for
    # every network, while the AMD variants stay close
    for net in ("GSE5140(CRT)", "GSE5140(UNT)", "GSE17072(CTL)", "GSE17072(NON)"):
        xmt_unopt = dict(result.series[f"{net}/XMT-Unopt"])
        xmt_opt = dict(result.series[f"{net}/XMT-Opt"])
        assert xmt_opt[16] < xmt_unopt[16], net
        amd_unopt = dict(result.series[f"{net}/AMD-Unopt"])
        amd_opt = dict(result.series[f"{net}/AMD-Opt"])
        assert amd_unopt[32] < 2.5 * amd_opt[32], net
