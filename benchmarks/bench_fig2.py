"""Regenerates paper Figure 2 (clustering coefficient vs neighbors)."""

from benchmarks.conftest import BENCH_SEED
from repro.experiments import fig2


def test_fig2(benchmark):
    result = benchmark.pedantic(
        lambda: fig2.run(scale=10, bio_fraction=1 / 32, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    peaks = {row[0]: row[3] for row in result.rows}
    # paper shape: bio clustering peak far above both synthetic peaks
    assert peaks["GSE5140(UNT)"] > 2 * peaks["RMAT-ER(10)"]
    assert peaks["GSE5140(UNT)"] > 0.3
    assert peaks["RMAT-ER(10)"] < 0.15
