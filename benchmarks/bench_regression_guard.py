"""Tier-2 guard: fail when a hot kernel regresses >2x against the baseline.

Compares the current median wall-clock of every kernel registered in
``benchmarks/record_baseline.py`` against the committed
``benchmarks/BENCH_kernels.json``.  Not part of tier-1 (``bench_*`` files
are not collected by default); run it explicitly:

    PYTHONPATH=src python -m pytest benchmarks/bench_regression_guard.py -q

The 2x factor absorbs machine-to-machine and load noise; a genuine
algorithmic regression (e.g. un-vectorizing a kernel) is far larger.
After an *intentional* slowdown, re-record with
``python benchmarks/record_baseline.py`` and commit the new baseline.
"""

from __future__ import annotations

import json

import pytest

from record_baseline import BASELINE_PATH, build_kernels, median_seconds

#: Maximum tolerated current/baseline ratio.
MAX_REGRESSION = 2.0

#: Floor below which timing jitter dominates and the ratio is meaningless.
MIN_MEANINGFUL_SECONDS = 1e-3

if BASELINE_PATH.exists():
    _BASELINE = json.loads(BASELINE_PATH.read_text())["median_seconds"]
else:  # pragma: no cover - fresh checkout without a recorded baseline
    _BASELINE = {}


@pytest.fixture(scope="module")
def kernels():
    return build_kernels()


@pytest.mark.skipif(not _BASELINE, reason="no committed BENCH_kernels.json")
def test_baseline_covers_registry(kernels):
    """Every registered kernel has a recorded baseline and vice versa."""
    assert set(_BASELINE) == set(kernels)


@pytest.mark.skipif(not _BASELINE, reason="no committed BENCH_kernels.json")
@pytest.mark.parametrize("name", sorted(_BASELINE))
def test_kernel_not_regressed(kernels, name):
    if name not in kernels:
        pytest.skip("kernel removed from registry; re-record the baseline")
    current = median_seconds(kernels[name], repeats=3)
    baseline = max(_BASELINE[name], MIN_MEANINGFUL_SECONDS)
    ratio = current / baseline
    assert ratio <= MAX_REGRESSION, (
        f"{name}: {current * 1e3:.2f} ms vs baseline "
        f"{_BASELINE[name] * 1e3:.2f} ms ({ratio:.2f}x > {MAX_REGRESSION}x); "
        "if intentional, re-run benchmarks/record_baseline.py"
    )
