"""Tier-2 guard: fail when a hot path regresses >2x against its baseline
or an engine's answer quality drops below its recorded baseline.

Seven committed baselines are guarded:

* ``BENCH_kernels.json`` — per-kernel median wall-clock of every kernel
  registered in ``benchmarks/record_baseline.py``, plus the recorded
  native-vs-NumPy sync speedup on the scale-14 RMAT-ER round loop
  (gated at ``NATIVE_MIN_SPEEDUP``x; armed only when the baseline was
  recorded with the compiled backend resolved, and a recorded-but-
  missing backend *fails* rather than skips);
* ``BENCH_batch.json`` — ``extract_many`` batch throughput over one
  persistent process pool (``benchmarks/record_batch_baseline.py``);
* ``BENCH_async.json`` — the asynchronous process engine at the scales in
  ``bench_async_process.GUARD_SCALES`` (the full 11–14 range is record-
  time only, to keep this guard quick);
* ``BENCH_quality.json`` — retained-edge fraction per engine x schedule
  on the ``bench_quality.FAMILIES`` menu, plus the weighted engine's
  retained-weight dominance over the unweighted pipeline
  (``benchmarks/bench_quality.py``).  Quality cells additionally must
  never dip below the certified floor of
  ``repro.chordality.quality.maximal_chordal_floor`` — that failure
  mode is a correctness bug, no re-record can excuse it;
* ``BENCH_service.json`` — ``repro serve`` end-to-end throughput over
  the wire protocol with the recorded number of concurrent clients on
  the mixed cache/pool/inline workload (``benchmarks/bench_service.py``);
* ``BENCH_incremental.json`` — incremental re-extraction updates/sec on
  the seeded mutation stream (``benchmarks/bench_incremental.py``).
  Gated on speed twice — within 2x of the recorded updates/sec AND at
  least ``MIN_INCREMENTAL_SPEEDUP``x faster than full re-extraction —
  and on quality: every re-driven answer must be chordal and meet the
  certified floor (like the quality baseline, a floor breach is a
  correctness bug no re-record can excuse);
* ``BENCH_sharded.json`` — the out-of-core sharded pipeline
  (``benchmarks/bench_sharded.py``).  The recorded run must show all
  three quality gates (stitched result chordal, certified floor met,
  sampled boundary certificates clean) and a retained-edge fraction
  within ``MIN_RETENTION_RATIO`` of the in-memory maximalizing engine;
  the guard re-drives the comparison scale and gates the fresh ratio
  and wall-clock the same way.

Not part of tier-1 (``bench_*`` files are not collected by default); run
explicitly:

    PYTHONPATH=src python -m pytest benchmarks/bench_regression_guard.py -q

The 2x factor absorbs machine-to-machine and load noise; a genuine
algorithmic regression (e.g. un-vectorizing a kernel, serialising the
async sweep) is far larger.  After an *intentional* slowdown, re-record
the relevant baseline (``repro bench --record {kernels,batch,async}``)
and commit it.

A guarded baseline that is *missing* or *schema-stale* (the file exists
but lacks the keys this guard reads) is a *failure*, not a skip — the
``test_*_baseline_wellformed`` tests name the broken file and the exact
re-record command, so the guard can never silently stop guarding.
"""

from __future__ import annotations

import json

import pytest

from bench_async_process import ASYNC_PATH, GUARD_SCALES, measure_process_async
from bench_quality import (
    FAMILIES,
    QUALITY_PATH,
    QUALITY_TOLERANCE,
    WEIGHTED_FAMILY_SEEDS,
    measure_cell,
    measure_weighted,
    quality_cells,
)
from bench_incremental import (
    GUARD_MUTATIONS,
    INCREMENTAL_PATH,
    MIN_INCREMENTAL_SPEEDUP,
    measure_incremental,
)
from bench_service import SERVICE_PATH, measure_service
from bench_sharded import MIN_RETENTION_RATIO, SHARDED_PATH, measure_comparison
from record_baseline import BASELINE_PATH, build_kernels, median_seconds
from record_batch_baseline import BATCH_PATH, NUM_GRAPHS, NUM_WORKERS, build_graphs

#: Maximum tolerated current/baseline ratio.
MAX_REGRESSION = 2.0

#: Floor below which timing jitter dominates and the ratio is meaningless.
MIN_MEANINGFUL_SECONDS = 1e-3

#: The recorded compiled-vs-NumPy sync speedup on the scale-14 RMAT-ER
#: round loop must be at least this (the native backend's acceptance
#: figure; below it the compiled path has lost its reason to exist).
NATIVE_MIN_SPEEDUP = 5.0


def _load_guarded_baseline(path, required_keys, record_cmd):
    """Load one guarded BENCH_*.json; returns ``(data, problem)``.

    ``problem`` is ``None`` for a well-formed file, else a one-line
    actionable diagnosis (which file, what is wrong, how to re-record).
    The individual regression tests *skip* on a problem — the dedicated
    ``test_*_baseline_wellformed`` test turns it into exactly one clear
    failure instead of one noisy failure per parametrized case.
    """
    if not path.exists():
        return {}, (
            f"guarded baseline {path} is missing; record it with "
            f"`{record_cmd}` (on a quiet machine) and commit the file"
        )
    try:
        data = json.loads(path.read_text())
    except ValueError as exc:
        return {}, (
            f"guarded baseline {path} is not valid JSON ({exc}); re-record "
            f"it with `{record_cmd}` and commit the file"
        )
    missing = [k for k in required_keys if k not in data]
    if missing:
        return {}, (
            f"guarded baseline {path} is schema-stale: missing key(s) "
            f"{missing} (the guard reads {sorted(required_keys)}); it was "
            f"likely recorded by an older recorder — re-record it with "
            f"`{record_cmd}` and commit the file"
        )
    return data, None


_KERNELS_DATA, _KERNELS_PROBLEM = _load_guarded_baseline(
    BASELINE_PATH, ("median_seconds", "native"), "repro bench --record kernels"
)
_BASELINE = _KERNELS_DATA.get("median_seconds", {})
_NATIVE_RECORDED = _KERNELS_DATA.get("native", {})

_BATCH_BASELINE, _BATCH_PROBLEM = _load_guarded_baseline(
    BATCH_PATH, ("batch_seconds",), "repro bench --record batch"
)

_ASYNC_BASELINE, _ASYNC_PROBLEM = _load_guarded_baseline(
    ASYNC_PATH, ("scales", "num_workers"), "repro bench --record async"
)

_QUALITY_BASELINE, _QUALITY_PROBLEM = _load_guarded_baseline(
    QUALITY_PATH,
    ("retained_fraction", "families", "weighted"),
    "repro bench --record quality",
)
_QUALITY_CELLS = sorted(_QUALITY_BASELINE.get("retained_fraction", {}))

_SERVICE_BASELINE, _SERVICE_PROBLEM = _load_guarded_baseline(
    SERVICE_PATH,
    ("requests_per_sec", "num_clients"),
    "repro bench --record service",
)

_INCREMENTAL_BASELINE, _INCREMENTAL_PROBLEM = _load_guarded_baseline(
    INCREMENTAL_PATH,
    (
        "updates_per_sec",
        "speedup_vs_full",
        "num_mutations",
        "all_chordal",
        "all_floor_met",
        "maximality_ok",
    ),
    "repro bench --record incremental",
)

_SHARDED_BASELINE, _SHARDED_PROBLEM = _load_guarded_baseline(
    SHARDED_PATH,
    (
        "chordal",
        "floor_met",
        "boundary_sample_ok",
        "all_shards_verified",
        "retention_ratio",
        "sharded_seconds",
        "compare_scale",
    ),
    "repro bench --record sharded",
)


@pytest.fixture(scope="module")
def kernels():
    return build_kernels()


@pytest.mark.parametrize(
    "problem",
    [
        pytest.param(_KERNELS_PROBLEM, id="kernels"),
        pytest.param(_BATCH_PROBLEM, id="batch"),
        pytest.param(_ASYNC_PROBLEM, id="async"),
        pytest.param(_QUALITY_PROBLEM, id="quality"),
        pytest.param(_SERVICE_PROBLEM, id="service"),
        pytest.param(_INCREMENTAL_PROBLEM, id="incremental"),
        pytest.param(_SHARDED_PROBLEM, id="sharded"),
    ],
)
def test_guarded_baseline_wellformed(problem):
    """Missing/stale baselines fail loudly instead of silently skipping."""
    assert problem is None, problem


@pytest.mark.skipif(_KERNELS_PROBLEM is not None, reason="baseline problem reported above")
def test_baseline_covers_registry(kernels):
    """Every registered kernel has a recorded baseline and vice versa.

    The native rows get their own diagnosis: the registry includes them
    only when the compiled backend resolves on *this* host, so a recorded
    native row that is missing from the registry means the guard host
    lost its toolchain — that must fail loudly, not read as generic
    baseline drift.
    """
    recorded_native_only = {k for k in set(_BASELINE) - set(kernels) if "native" in k}
    if recorded_native_only:
        from repro.core.native import native_status

        status = native_status()
        assert status.available, (
            f"BENCH_kernels.json records native rows {sorted(recorded_native_only)} "
            f"but the compiled backend is unavailable on this host "
            f"({status.detail}); the native-vs-NumPy gate cannot run — fix "
            "the toolchain on the guard host (or, if native support was "
            "intentionally dropped, re-record with `repro bench --record "
            "kernels` on the new configuration)"
        )
    assert set(_BASELINE) == set(kernels), (
        "BENCH_kernels.json entries diverge from the kernel registry in "
        "benchmarks/record_baseline.py; re-record with "
        "`repro bench --record kernels` and commit the file"
    )


@pytest.mark.skipif(_KERNELS_PROBLEM is not None, reason="baseline problem reported above")
@pytest.mark.parametrize("name", sorted(_BASELINE))
def test_kernel_not_regressed(kernels, name):
    if name not in kernels:
        pytest.skip("kernel removed from registry; re-record the baseline")
    current = median_seconds(kernels[name], repeats=3)
    baseline = max(_BASELINE[name], MIN_MEANINGFUL_SECONDS)
    ratio = current / baseline
    assert ratio <= MAX_REGRESSION, (
        f"{name}: {current * 1e3:.2f} ms vs baseline "
        f"{_BASELINE[name] * 1e3:.2f} ms ({ratio:.2f}x > {MAX_REGRESSION}x); "
        "if intentional, re-run benchmarks/record_baseline.py"
    )


@pytest.mark.skipif(_KERNELS_PROBLEM is not None, reason="baseline problem reported above")
def test_native_recorded_ratio_gate(kernels):
    """The committed baseline must show the compiled backend beating the
    NumPy round loop by >= NATIVE_MIN_SPEEDUP on the scale-14 RMAT-ER
    rows, and this host must keep at least half that edge live.

    The *only* legitimate skip is a baseline recorded on a host with no
    toolchain (``native.available: false``).  A baseline that *did*
    record native figures on a host that can no longer run them is a
    failure — silently skipping would disarm the gate exactly when the
    backend breaks.
    """
    if not _NATIVE_RECORDED.get("available"):
        pytest.skip(
            "baseline recorded without the compiled backend "
            f"({_NATIVE_RECORDED.get('detail', 'no detail recorded')}); "
            "re-record on a host with a C toolchain to arm this gate"
        )
    from repro.core.native import native_status

    status = native_status()
    assert status.available, (
        "BENCH_kernels.json records the compiled backend as available "
        f"(ratio {_NATIVE_RECORDED.get('sync_ratio_er14', 0.0):.2f}x) but it "
        f"failed to resolve on this host: {status.detail}; the gate refuses "
        "to skip a recorded-but-missing backend — fix the toolchain"
    )
    recorded_ratio = _NATIVE_RECORDED.get("sync_ratio_er14", 0.0)
    assert recorded_ratio >= NATIVE_MIN_SPEEDUP, (
        f"BENCH_kernels.json records a native sync speedup of only "
        f"{recorded_ratio:.2f}x on er14 (acceptance floor "
        f"{NATIVE_MIN_SPEEDUP}x); the compiled backend has lost its reason "
        "to exist — fix it, then re-record with `repro bench --record kernels`"
    )
    numpy_s = median_seconds(kernels["rounds_sync_numpy_er14"], repeats=3)
    native_s = median_seconds(kernels["rounds_sync_native_er14"], repeats=3)
    live_ratio = numpy_s / native_s
    assert live_ratio >= NATIVE_MIN_SPEEDUP / MAX_REGRESSION, (
        f"live native sync speedup on er14 is {live_ratio:.2f}x "
        f"({numpy_s * 1e3:.2f} ms NumPy vs {native_s * 1e3:.2f} ms native) — "
        f"less than half the {NATIVE_MIN_SPEEDUP}x acceptance floor; the "
        "compiled rows regressed relative to the NumPy loop"
    )


@pytest.mark.skipif(_BATCH_PROBLEM is not None, reason="baseline problem reported above")
def test_batch_throughput_not_regressed():
    """extract_many over one persistent pool must stay within 2x of the
    recorded batch wall-clock (BENCH_batch.json)."""
    from repro.core.extract import extract_many
    from repro.util.timing import median_of

    graphs = build_graphs()
    current = median_of(
        lambda: extract_many(graphs, engine="process", num_workers=NUM_WORKERS),
        3,
    )
    baseline = max(_BATCH_BASELINE["batch_seconds"], MIN_MEANINGFUL_SECONDS)
    ratio = current / baseline
    assert ratio <= MAX_REGRESSION, (
        f"extract_many over {NUM_GRAPHS} graphs: {current:.3f} s vs baseline "
        f"{_BATCH_BASELINE['batch_seconds']:.3f} s ({ratio:.2f}x > "
        f"{MAX_REGRESSION}x); if intentional, re-run "
        "benchmarks/record_batch_baseline.py"
    )


@pytest.mark.skipif(_ASYNC_PROBLEM is not None, reason="baseline problem reported above")
@pytest.mark.parametrize("scale", GUARD_SCALES)
def test_async_process_not_regressed(scale):
    """The asynchronous process engine must stay within 2x of the recorded
    per-extraction wall-clock at the guarded scales (BENCH_async.json)."""
    row = _ASYNC_BASELINE["scales"].get(str(scale))
    if row is None:
        pytest.skip(f"scale {scale} not in recorded baseline; re-record")
    current = measure_process_async(
        scale, num_workers=_ASYNC_BASELINE["num_workers"], repeats=3
    )
    baseline = max(row["process_async_seconds"], MIN_MEANINGFUL_SECONDS)
    ratio = current / baseline
    assert ratio <= MAX_REGRESSION, (
        f"process-async at scale {scale}: {current:.3f} s vs baseline "
        f"{row['process_async_seconds']:.3f} s ({ratio:.2f}x > "
        f"{MAX_REGRESSION}x); if intentional, re-run "
        "benchmarks/bench_async_process.py"
    )


@pytest.mark.skipif(_QUALITY_PROBLEM is not None, reason="baseline problem reported above")
def test_quality_baseline_covers_registry():
    """Every registered engine x schedule cell has a recorded quality
    baseline and vice versa (a new engine must be recorded; a removed
    one must be expunged)."""
    assert set(_QUALITY_CELLS) == set(quality_cells()), (
        "BENCH_quality.json cells diverge from the engine registry; "
        "re-record with `repro bench --record quality` and commit the file"
    )
    assert set(_QUALITY_BASELINE["families"]) == set(FAMILIES), (
        "BENCH_quality.json families diverge from bench_quality.FAMILIES; "
        "re-record with `repro bench --record quality` and commit the file"
    )


@pytest.mark.skipif(_QUALITY_PROBLEM is not None, reason="baseline problem reported above")
@pytest.mark.parametrize("cell", _QUALITY_CELLS)
def test_quality_not_regressed(cell):
    """Each engine x schedule cell must retain at least its recorded edge
    fraction (minus QUALITY_TOLERANCE for asynchronous nondeterminism)
    and must never fall below the certified per-graph floor."""
    if cell not in quality_cells():
        pytest.skip(f"cell {cell} no longer registered; re-record the baseline")
    baseline_row = _QUALITY_BASELINE["retained_fraction"][cell]
    for name, build in FAMILIES.items():
        recorded = baseline_row.get(name)
        if recorded is None:
            pytest.skip(f"family {name} not in recorded baseline; re-record")
        graph = build()
        current = measure_cell(cell, graph)
        meta = _QUALITY_BASELINE["families"][name]
        floor_fraction = meta["floor"] / meta["m"] if meta["m"] else 1.0
        assert current >= floor_fraction, (
            f"{cell} on {name}: retained fraction {current:.4f} is below the "
            f"certified maximal-chordal floor {floor_fraction:.4f} — the "
            "output cannot be a maximal chordal subgraph; this is a "
            "correctness bug, not a quality regression"
        )
        assert current >= recorded - QUALITY_TOLERANCE, (
            f"{cell} on {name}: retained fraction {current:.4f} vs recorded "
            f"{recorded:.4f} (drop > {QUALITY_TOLERANCE}); if intentional, "
            "re-record with `repro bench --record quality`"
        )


@pytest.mark.skipif(_QUALITY_PROBLEM is not None, reason="baseline problem reported above")
@pytest.mark.parametrize("family", sorted(WEIGHTED_FAMILY_SEEDS))
def test_weighted_dominates_unweighted(family):
    """The weighted engine must retain at least as much weight as the
    unweighted pipeline (its portfolio contains that pipeline's exact
    edge set, so this holds by construction), and must stay within
    tolerance of its recorded retained weight."""
    recorded = _QUALITY_BASELINE["weighted"].get(family)
    if recorded is None:
        pytest.skip(f"weighted family {family} not in baseline; re-record")
    current = measure_weighted(family)
    assert current["weighted"] >= current["unweighted"] - 1e-9, (
        f"{family}: weighted engine retained {current['weighted']:.2f} < "
        f"unweighted pipeline {current['unweighted']:.2f} — the portfolio "
        "floor invariant is broken"
    )
    total = max(recorded["total_weight"], 1e-12)
    drop = (recorded["weighted"] - current["weighted"]) / total
    assert drop <= QUALITY_TOLERANCE, (
        f"{family}: weighted retained weight {current['weighted']:.2f} vs "
        f"recorded {recorded['weighted']:.2f} (relative drop {drop:.4f} > "
        f"{QUALITY_TOLERANCE}); if intentional, re-record with "
        "`repro bench --record quality`"
    )


@pytest.mark.skipif(_SERVICE_PROBLEM is not None, reason="baseline problem reported above")
def test_service_throughput_not_regressed():
    """`repro serve` must keep at least half the recorded requests/sec
    over the same concurrent mixed workload (BENCH_service.json)."""
    current = measure_service(num_clients=_SERVICE_BASELINE["num_clients"])
    baseline_rps = _SERVICE_BASELINE["requests_per_sec"]
    ratio = baseline_rps / max(current["requests_per_sec"], 1e-9)
    assert ratio <= MAX_REGRESSION, (
        f"service throughput: {current['requests_per_sec']:.1f} req/s vs "
        f"baseline {baseline_rps:.1f} req/s ({ratio:.2f}x slower > "
        f"{MAX_REGRESSION}x); if intentional, re-record with "
        "`repro bench --record service`"
    )


@pytest.mark.skipif(
    _INCREMENTAL_PROBLEM is not None, reason="baseline problem reported above"
)
def test_incremental_recorded_baseline_meets_gates():
    """The committed baseline itself must show the acceptance figures:
    >= MIN_INCREMENTAL_SPEEDUP x over full re-extraction with every
    recorded answer chordal, floor-met, and maximality-certified."""
    assert _INCREMENTAL_BASELINE["speedup_vs_full"] >= MIN_INCREMENTAL_SPEEDUP, (
        f"BENCH_incremental.json records only "
        f"{_INCREMENTAL_BASELINE['speedup_vs_full']:.1f}x over full "
        f"re-extraction (acceptance floor {MIN_INCREMENTAL_SPEEDUP}x); "
        "the incremental path has lost its reason to exist — fix it, "
        "then re-record with `repro bench --record incremental`"
    )
    for key in ("all_chordal", "all_floor_met", "maximality_ok"):
        assert _INCREMENTAL_BASELINE[key] is True, (
            f"BENCH_incremental.json has {key}={_INCREMENTAL_BASELINE[key]} "
            "— a recorded quality breach is a correctness bug, not a "
            "baseline to tolerate"
        )


@pytest.mark.skipif(
    _SHARDED_PROBLEM is not None, reason="baseline problem reported above"
)
def test_sharded_recorded_baseline_meets_gates():
    """The committed baseline itself must show the acceptance figures:
    every shard verified, the stitched result chordal, the certified
    floor met, sampled boundary certificates clean, and retention within
    MIN_RETENTION_RATIO of the in-memory maximalizing engine."""
    for key in ("chordal", "floor_met", "boundary_sample_ok", "all_shards_verified"):
        assert _SHARDED_BASELINE[key] is True, (
            f"BENCH_sharded.json has {key}={_SHARDED_BASELINE[key]} — a "
            "recorded certification breach is a correctness bug, not a "
            "baseline to tolerate"
        )
    assert _SHARDED_BASELINE["retention_ratio"] >= MIN_RETENTION_RATIO, (
        f"BENCH_sharded.json records retention_ratio="
        f"{_SHARDED_BASELINE['retention_ratio']:.3f} below the "
        f"{MIN_RETENTION_RATIO} gate — the sharded mode gives up too much "
        "quality vs the in-memory engine; fix it, then re-record with "
        "`repro bench --record sharded`"
    )


@pytest.mark.skipif(
    _SHARDED_PROBLEM is not None, reason="baseline problem reported above"
)
def test_sharded_comparison_not_regressed():
    """Re-drive the comparison scale: the fresh retention ratio must hold
    the MIN_RETENTION_RATIO gate (quality — deterministic) and the
    sharded wall-clock must stay within 2x of the baseline (speed)."""
    current = measure_comparison(
        scale=_SHARDED_BASELINE["compare_scale"],
        num_shards=_SHARDED_BASELINE.get("compare_shards", 4),
    )
    assert current["retention_ratio"] >= MIN_RETENTION_RATIO, (
        f"sharded re-drive retained only {current['retention_ratio']:.3f} "
        f"of the in-memory engine's edges (gate {MIN_RETENTION_RATIO}) — "
        "a stitching quality regression, not a timing artefact"
    )
    baseline_seconds = max(_SHARDED_BASELINE["sharded_seconds"], MIN_MEANINGFUL_SECONDS)
    ratio = current["sharded_seconds"] / baseline_seconds
    assert ratio <= MAX_REGRESSION, (
        f"sharded pipeline at scale {_SHARDED_BASELINE['compare_scale']}: "
        f"{current['sharded_seconds']:.3f} s vs baseline "
        f"{_SHARDED_BASELINE['sharded_seconds']:.3f} s ({ratio:.2f}x > "
        f"{MAX_REGRESSION}x); if intentional, re-record with "
        "`repro bench --record sharded`"
    )


@pytest.mark.skipif(
    _INCREMENTAL_PROBLEM is not None, reason="baseline problem reported above"
)
def test_incremental_updates_not_regressed():
    """Re-drive a shorter prefix of the recorded stream: updates/sec must
    stay within 2x of the baseline, the speedup over full re-extraction
    must hold, and every answer must pass the quality gate (chordal +
    certified floor — checked after each of the re-driven mutations)."""
    current = measure_incremental(
        num_mutations=GUARD_MUTATIONS,
        check_maximal_every=None,
        full_repeats=1,
    )
    assert current["all_chordal"] and current["all_floor_met"], (
        "incremental re-drive produced a non-chordal or floor-breaching "
        "answer — this is a correctness bug, not a speed regression"
    )
    assert current["speedup_vs_full"] >= MIN_INCREMENTAL_SPEEDUP, (
        f"incremental updates are only {current['speedup_vs_full']:.1f}x "
        f"faster than full re-extraction (gate {MIN_INCREMENTAL_SPEEDUP}x)"
    )
    baseline_ups = _INCREMENTAL_BASELINE["updates_per_sec"]
    ratio = baseline_ups / max(current["updates_per_sec"], 1e-9)
    assert ratio <= MAX_REGRESSION, (
        f"incremental throughput: {current['updates_per_sec']:.1f} "
        f"updates/s vs baseline {baseline_ups:.1f} ({ratio:.2f}x slower > "
        f"{MAX_REGRESSION}x); if intentional, re-record with "
        "`repro bench --record incremental`"
    )
