"""Microbenchmarks of the library's hot kernels.

These benchmark real wall-clock of the Python implementation (multiple
rounds, statistics via pytest-benchmark) — unlike the experiment
regenerations, which replay traces on modeled hardware.
"""

import numpy as np
import pytest

from repro.baselines.dearing import dearing_max_chordal
from repro.chordality.lexbfs import lexbfs_order
from repro.chordality.mcs import mcs_peo
from repro.chordality.peo import is_perfect_elimination_ordering
from record_baseline import arena_state
from repro.core.kernels import (
    build_arena_keys,
    subset_mask,
    vectorized_sync_max_chordal,
)
from repro.core.procpool import ProcessPool
from repro.core.superstep import superstep_max_chordal
from repro.core.threaded import threaded_max_chordal
from repro.graph.bfs import bfs_levels
from repro.graph.generators.rmat import rmat_b, rmat_er
from repro.util.sorting import sorted_subset


@pytest.fixture(scope="module")
def er11():
    return rmat_er(11, seed=1)


@pytest.fixture(scope="module")
def b11():
    return rmat_b(11, seed=1)


def test_extract_er_optimized(benchmark, er11):
    edges, _, _ = benchmark(superstep_max_chordal, er11, variant="optimized")
    assert edges.shape[0] > 0


def test_extract_er_unoptimized(benchmark, er11):
    edges, _, _ = benchmark(superstep_max_chordal, er11, variant="unoptimized")
    assert edges.shape[0] > 0


def test_extract_b_optimized(benchmark, b11):
    edges, _, _ = benchmark(superstep_max_chordal, b11, variant="optimized")
    assert edges.shape[0] > 0


def test_extract_b_synchronous(benchmark, b11):
    edges, _, _ = benchmark(superstep_max_chordal, b11, schedule="synchronous")
    assert edges.shape[0] > 0


def test_extract_sync_driver(benchmark, er11):
    """Superstep-sync through the unified runtime driver — what the
    driver layer adds on top of the raw kernel loop below.  (The seed
    Python pair loop this used to baseline was deleted with the unified
    runtime; `reference` is the surviving seed-style implementation.)"""
    edges, _, _ = benchmark(superstep_max_chordal, er11, schedule="synchronous")
    assert edges.shape[0] > 0


def test_extract_sync_kernels(benchmark, er11):
    """Raw bulk-kernel synchronous loop — same edges as the driver path."""
    edges, _ = benchmark(vectorized_sync_max_chordal, er11)
    assert edges.shape[0] > 0


def test_extract_process_engine(benchmark, er11):
    """Process engine on a persistent pool (fork cost excluded, as the
    paper excludes thread-team spin-up)."""
    with ProcessPool(er11, num_workers=2) as pool:
        edges, _ = benchmark(pool.extract)
    assert edges.shape[0] > 0


@pytest.fixture(scope="module")
def er11_arena(er11):
    """A finished run's chordal arena on er11 (shared with record_baseline)."""
    return arena_state(er11)


def test_kernel_build_arena_keys(benchmark, er11_arena):
    """Arena compression kernel on a fully-extracted chordal arena."""
    _g, n, _lower, offsets, arena, counts = er11_arena
    keys = benchmark(build_arena_keys, arena, offsets, counts, n)
    assert keys.size == counts.sum()


def test_kernel_subset_mask(benchmark, er11_arena):
    """Bulk subset test: every vertex probed against its smallest parent."""
    from repro.core.kernels import initial_parents

    g, n, lower, offsets, arena, counts = er11_arena
    keys = build_arena_keys(arena, offsets, counts, n)
    lp = initial_parents(g.indptr, g.indices, lower)
    ws = np.flatnonzero(lp >= 0)
    vs = lp[ws]
    ok = benchmark(subset_mask, keys, arena, offsets, counts, ws, vs, n)
    assert ok.size == ws.size


def test_extract_threaded_overhead(benchmark, er11):
    """Thread-team engine on 1 CPU: measures the coordination overhead the
    GIL forces (compare against test_extract_er_optimized)."""
    edges, _ = benchmark(threaded_max_chordal, er11, num_threads=4)
    assert edges.shape[0] > 0


def test_extract_with_trace_overhead(benchmark, er11):
    """Instrumentation cost relative to the plain run."""
    edges, _, trace = benchmark(superstep_max_chordal, er11, collect_trace=True)
    assert trace is not None


def test_dearing_baseline(benchmark, er11):
    edges = benchmark(dearing_max_chordal, er11)
    assert edges.shape[0] > 0


def test_mcs_peo_check(benchmark, er11):
    def run():
        peo = mcs_peo(er11)
        return is_perfect_elimination_ordering(er11, peo)

    benchmark(run)


def test_lexbfs(benchmark, er11):
    order = benchmark(lexbfs_order, er11)
    assert order.size == er11.num_vertices


def test_bfs(benchmark, er11):
    levels = benchmark(bfs_levels, er11, 0)
    assert levels.size == er11.num_vertices


def test_subset_kernel(benchmark):
    small = list(range(0, 200, 4))
    big = list(range(0, 400, 2))
    assert benchmark(sorted_subset, small, big)
