#!/usr/bin/env python
"""Record the asynchronous-schedule baseline (BENCH_async.json).

Measures the paper's headline schedule on RMAT-ER at scales 11–14 (the
Figure-4 range) three ways:

* ``threaded`` asynchronous — the GIL-bound thread team sweeping live
  state with per-pair Python services (the only true-parallel *shaped*
  async engine before the process engine gained the schedule);
* ``process`` asynchronous — vertex-partitioned workers sweeping live
  shared-memory slices with the bulk live-arena kernels
  (:func:`repro.core.kernels.subset_mask_live`);
* ``process`` synchronous — the barrier-snapshot reference point, same
  pool.

Process-engine timings use one persistent :class:`ProcessPool` (steady-
state throughput; spawn cost is the batch pipeline's concern and is
tracked by ``BENCH_batch.json``).  Every timed configuration is first
verified to produce a chordal subgraph.  The recorded
``speedup_vs_threaded`` is what the README's engine matrix quotes; the
regression guard re-measures the process-async rows at the scales in
``GUARD_SCALES`` against this baseline.

Re-record on a quiet machine after intentional changes:

    PYTHONPATH=src python benchmarks/bench_async_process.py
    # or: repro bench --record-async
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from pathlib import Path

ASYNC_PATH = Path(__file__).resolve().parent / "BENCH_async.json"

#: RMAT-ER scales recorded (|V| = 2^scale, |E| = 8 * |V|).
SCALES = (11, 12, 13, 14)

#: Scales the tier-2 regression guard re-measures (kept to the small end
#: so `repro bench` stays quick; the full range is record-time only).
GUARD_SCALES = (11, 12)

NUM_WORKERS = 4
NUM_THREADS = 4
REPEATS = 3
SEED = 1


def build_graph(scale: int):
    from repro.graph.generators.rmat import rmat_er

    return rmat_er(scale, seed=SEED)


def measure_process_async(
    scale: int, *, num_workers: int = NUM_WORKERS, repeats: int = REPEATS
) -> float:
    """Median seconds of one process-engine asynchronous extraction at
    ``scale`` over a persistent pool (shared with the regression guard)."""
    from repro.core.procpool import ProcessPool
    from repro.util.timing import median_of

    graph = build_graph(scale)
    with ProcessPool(graph, num_workers=num_workers) as pool:
        return median_of(lambda: pool.extract(schedule="asynchronous"), repeats)


def record(path: Path = ASYNC_PATH, repeats: int = REPEATS) -> dict:
    from repro.chordality.recognition import is_chordal
    from repro.core.procpool import ProcessPool
    from repro.core.threaded import threaded_max_chordal
    from repro.graph.ops import edge_subgraph
    from repro.util.timing import median_of

    scales_payload: dict[str, dict] = {}
    with ProcessPool(num_workers=NUM_WORKERS) as pool:
        for scale in SCALES:
            graph = build_graph(scale)

            def run_threaded():
                return threaded_max_chordal(
                    graph, num_threads=NUM_THREADS, schedule="asynchronous"
                )

            def run_process_async():
                return pool.extract(graph, schedule="asynchronous")

            def run_process_sync():
                return pool.extract(graph, schedule="synchronous")

            # Correctness before speed: every timed path must be chordal.
            for name, run in (
                ("threaded", run_threaded),
                ("process-async", run_process_async),
                ("process-sync", run_process_sync),
            ):
                edges, _ = run()
                assert is_chordal(edge_subgraph(graph, edges)), (scale, name)

            threaded_s = median_of(run_threaded, repeats)
            process_async_s = median_of(run_process_async, repeats)
            process_sync_s = median_of(run_process_sync, repeats)
            row = {
                "num_vertices": graph.num_vertices,
                "num_edges": graph.num_edges,
                "threaded_async_seconds": threaded_s,
                "process_async_seconds": process_async_s,
                "process_sync_seconds": process_sync_s,
                "speedup_vs_threaded": threaded_s / process_async_s,
            }
            scales_payload[str(scale)] = row
            print(
                f"scale {scale}: threaded-async {threaded_s:8.3f} s | "
                f"process-async {process_async_s:8.3f} s | "
                f"process-sync {process_sync_s:8.3f} s | "
                f"async speedup {row['speedup_vs_threaded']:6.2f} x"
            )

    payload = {
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host_cores": os.cpu_count(),
        "family": "rmat_er",
        "seed": SEED,
        "num_workers": NUM_WORKERS,
        "num_threads": NUM_THREADS,
        "repeats": repeats,
        "scales": scales_payload,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")
    return payload


if __name__ == "__main__":
    record()
