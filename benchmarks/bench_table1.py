"""Regenerates paper Table I (test-suite graph properties)."""

from benchmarks.conftest import BENCH_BIO_FRACTION, BENCH_SCALES, BENCH_SEED
from repro.experiments import table1


def test_table1(benchmark):
    result = benchmark.pedantic(
        lambda: table1.run(
            scales=BENCH_SCALES, bio_fraction=BENCH_BIO_FRACTION, seed=BENCH_SEED
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    names = [row[0] for row in result.rows]
    assert len(names) == 3 * len(BENCH_SCALES) + 4
    by_name = {row[0]: row for row in result.rows}
    top = BENCH_SCALES[-1]
    # paper's structural orderings: max degree and variance ER < G < B
    assert (
        by_name[f"RMAT-ER({top})"][4]
        < by_name[f"RMAT-G({top})"][4]
        < by_name[f"RMAT-B({top})"][4]
    )
    assert by_name[f"RMAT-ER({top})"][5] < by_name[f"RMAT-B({top})"][5]
