"""Regenerates paper Figure 6 (relative XMT vs Opteron performance)."""

from benchmarks.conftest import BENCH_SEED
from repro.experiments import fig6


def test_fig6(benchmark):
    result = benchmark.pedantic(
        lambda: fig6.run(scale=11, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    # paper shape: AMD is faster at one processor on both graphs...
    for kind in ("RMAT-ER", "RMAT-B"):
        xmt1 = dict(result.series[f"{kind}/XMT-Unopt"])[1]
        amd1 = dict(result.series[f"{kind}/AMD-Unopt"])[1]
        assert amd1 < xmt1, kind
    # ...and the AMD Opt/Unopt curves nearly coincide while the XMT pair
    # splits visibly on RMAT-B
    amd_gap = (
        dict(result.series["RMAT-B/AMD-Unopt"])[32]
        / dict(result.series["RMAT-B/AMD-Opt"])[32]
    )
    xmt_gap = (
        dict(result.series["RMAT-B/XMT-Unopt"])[32]
        / dict(result.series["RMAT-B/XMT-Opt"])[32]
    )
    assert xmt_gap > amd_gap
