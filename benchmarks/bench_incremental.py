#!/usr/bin/env python
"""Record the incremental re-extraction baseline (BENCH_incremental.json).

Measures :class:`~repro.core.incremental.IncrementalExtractor` on a
seeded ``random_mutation_stream`` over the scale-``SCALE`` RMAT-B graph:
per-update wall-clock (verification excluded from timing) against the
median cost of a full from-scratch re-extraction of the same graph —
the figure that motivates the dynamic-graph mode: re-running Algorithm 1
after every edge flip costs seconds, the incremental path milliseconds.

Quality is recorded alongside speed and the regression guard gates on
both: after **every** mutation the maintained edge set must be chordal
and meet the certified floor
(:func:`~repro.chordality.quality.maximal_chordal_floor`); the full
maximality certificate (:func:`verify_extraction` with
``check_maximal=True``, ~20 s per call at this scale) runs at sampled
checkpoints and on the final state.

The guard (``bench_regression_guard.py``) re-drives a shorter stream and
fails when updates/sec drop more than 2x below this baseline, when the
speedup over full re-extraction falls under
``MIN_INCREMENTAL_SPEEDUP``x, or when any re-driven answer breaks the
quality gate.

Re-record on a quiet machine after intentional changes:

    PYTHONPATH=src python benchmarks/bench_incremental.py
    # or: repro bench --record incremental
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path

INCREMENTAL_PATH = Path(__file__).resolve().parent / "BENCH_incremental.json"

#: RMAT-B scale of the mutated graph (the ISSUE's floor is 11).
SCALE = 11
GRAPH_SEED = 42
STREAM_SEED = 7
NUM_MUTATIONS = 1000

#: Repeats for the full-re-extraction baseline median.
FULL_REPEATS = 3

#: Run the full maximality certificate every this many mutations (and on
#: the final state).  ``None`` disables checkpoints (guard mode — the
#: per-mutation chordality + floor gates still run).
CHECK_MAXIMAL_EVERY = 250

#: The guard's speed gate: incremental updates/sec must beat full
#: re-extraction by at least this factor.
MIN_INCREMENTAL_SPEEDUP = 5.0

#: Shorter stream the guard re-drives (same graph, same stream seed).
GUARD_MUTATIONS = 200


def measure_incremental(
    scale: int = SCALE,
    num_mutations: int = NUM_MUTATIONS,
    check_maximal_every: int | None = CHECK_MAXIMAL_EVERY,
    full_repeats: int = FULL_REPEATS,
) -> dict:
    """Drive a seeded mutation stream; returns speed + quality figures.

    Timing covers only the mutation calls themselves; the full
    re-extraction baseline, the initial extraction, and all verification
    run outside the timed region.
    """
    from repro import IncrementalExtractor
    from repro.chordality.quality import maximal_chordal_floor
    from repro.chordality.recognition import is_chordal
    from repro.chordality.verify import verify_extraction
    from repro.core.extract import extract_maximal_chordal_subgraph
    from repro.graph.builder import from_edge_array
    from repro.graph.generators import rmat_b
    from repro.graph.generators.chordal import random_mutation_stream
    from repro.util.timing import median_of

    graph = rmat_b(scale, seed=GRAPH_SEED)
    full_seconds = median_of(
        lambda: extract_maximal_chordal_subgraph(graph, maximalize=True),
        full_repeats,
        warmup=False,
    )

    t0 = time.perf_counter()
    inc = IncrementalExtractor(graph)
    init_seconds = time.perf_counter() - t0

    stream = random_mutation_stream(graph, num_mutations, seed=STREAM_SEED)
    update_seconds = 0.0
    all_chordal = True
    all_floor_met = True
    maximality_checks = 0
    maximality_ok = True
    for index, (op, u, v) in enumerate(stream):
        t0 = time.perf_counter()
        if op == "insert":
            inc.insert_edge(u, v)
        else:
            inc.delete_edge(u, v)
        update_seconds += time.perf_counter() - t0
        # Quality gates, untimed: chordal + floor after every mutation,
        # the full maximality certificate at checkpoints.
        subgraph = from_edge_array(inc.num_vertices, inc.edges)
        current = inc.graph
        all_chordal &= is_chordal(subgraph)
        all_floor_met &= inc.edges.shape[0] >= maximal_chordal_floor(current)
        last = index == num_mutations - 1
        if check_maximal_every and (index % check_maximal_every == check_maximal_every - 1 or last):
            maximality_checks += 1
            maximality_ok &= verify_extraction(
                current, inc.edges, check_maximal=True
            ).ok

    per_update = update_seconds / num_mutations
    return {
        "scale": scale,
        "graph_seed": GRAPH_SEED,
        "stream_seed": STREAM_SEED,
        "num_mutations": num_mutations,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "updates_per_sec": num_mutations / update_seconds,
        "per_update_ms": per_update * 1e3,
        "full_extraction_seconds": full_seconds,
        "speedup_vs_full": full_seconds / per_update,
        "init_seconds": init_seconds,
        "all_chordal": all_chordal,
        "all_floor_met": all_floor_met,
        "maximality_checks": maximality_checks,
        "maximality_ok": maximality_ok,
        "extractor_stats": dict(inc.stats),
    }


def record(path: Path = INCREMENTAL_PATH) -> dict:
    measured = measure_incremental()
    payload = {
        **measured,
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"incremental: {payload['updates_per_sec']:.1f} updates/s "
        f"({payload['per_update_ms']:.2f} ms/update) vs full re-extraction "
        f"{payload['full_extraction_seconds']:.2f} s -> "
        f"{payload['speedup_vs_full']:.0f}x; chordal={payload['all_chordal']} "
        f"floor={payload['all_floor_met']} "
        f"maximal={payload['maximality_ok']} "
        f"({payload['maximality_checks']} checkpoints) -> {path}"
    )
    return payload


if __name__ == "__main__":
    record()
