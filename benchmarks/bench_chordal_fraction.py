"""Regenerates the Section V chordal-edge-percentage measurements."""

from benchmarks.conftest import BENCH_SCALES, BENCH_SEED
from repro.experiments import chordal_fraction


def test_chordal_fraction(benchmark):
    result = benchmark.pedantic(
        lambda: chordal_fraction.run(
            scales=BENCH_SCALES, bio_fraction=1 / 32, seed=BENCH_SEED
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    frac = {row[0]: row[3] for row in result.rows}
    # all fractions are small minorities of the edge set (paper: 4-11%;
    # denser laptop-scale graphs run higher but stay well below half
    # for the synthetic suite at the largest benchmarked scale)
    top = BENCH_SCALES[-1]
    assert frac[f"RMAT-ER({top})"] < 0.25
    # ER fraction is nearly scale-invariant (paper: "values remain nearly
    # constant across all the three scales")
    vals = [frac[f"RMAT-ER({s})"] for s in BENCH_SCALES]
    assert max(vals) - min(vals) < 0.05
