#!/usr/bin/env python
"""Record the extraction-service baseline (BENCH_service.json).

Measures `repro serve` end-to-end over its unix-socket wire protocol:
one in-process :class:`~repro.service.server.ReproServer` with a warm
worker pool, driven by ``NUM_CLIENTS`` concurrent
:class:`~repro.service.client.ServiceClient` threads over a mixed
workload — small and mid-size RMAT-B graphs, pool-backed (``process``)
and inline (``superstep``) engines, repeated graphs that exercise the
content-hash result cache and ``no_cache`` requests that force real
dispatches.  Every request round-trips the full stack: framing, JSON
decode, cache lookup, admission queue, dispatch, encode.

Recorded figures are aggregate ``requests_per_sec`` plus p50/p99
per-request latency; the regression guard re-drives the same workload
and fails if throughput drops more than 2x (BENCH_service.json).

Re-record on a quiet machine after intentional changes:

    PYTHONPATH=src python benchmarks/bench_service.py
    # or: repro bench --record service
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

SERVICE_PATH = Path(__file__).resolve().parent / "BENCH_service.json"

#: Concurrent clients (the ISSUE's floor is 8; the guard re-uses the
#: recorded count so the comparison stays apples-to-apples).
NUM_CLIENTS = 8

#: Requests issued by each client over the mixed workload.
REQUESTS_PER_CLIENT = 12

NUM_POOLS = 1
NUM_WORKERS = 2
SEED = 7


def _workload():
    """The per-client request menu: (graph, config, no_cache) triples.

    Mixed by design — two sizes, a pool-backed and an inline engine,
    repeats that hit the cache, and ``no_cache`` rows that always reach
    a dispatcher.  Every client walks the same menu (offset by its id)
    so cache hits and real dispatches interleave under contention.
    """
    from repro import rmat_b

    small = rmat_b(5, seed=SEED)
    medium = rmat_b(8, seed=SEED + 1)
    large = rmat_b(9, seed=SEED + 2)
    return [
        (small, {"engine": "superstep"}, False),
        (medium, {"engine": "process"}, False),
        (small, {"engine": "superstep"}, True),
        (large, {"engine": "process"}, False),
        (medium, {"engine": "process"}, True),
        (small, {"engine": "superstep", "maximalize": True}, False),
        (large, {"engine": "superstep", "schedule": "asynchronous"}, False),
        (medium, {"engine": "reference"}, False),
    ]


def measure_service(
    num_clients: int = NUM_CLIENTS,
    requests_per_client: int = REQUESTS_PER_CLIENT,
) -> dict:
    """Drive a live server with ``num_clients`` concurrent clients.

    Returns aggregate throughput and latency percentiles over every
    request issued (``num_clients * requests_per_client`` total).
    """
    import numpy as np

    from repro.service import ReproServer, ServiceClient, ServiceConfig

    menu = _workload()
    latencies: list[list[float]] = [[] for _ in range(num_clients)]
    errors: list[BaseException] = []

    def run_client(cid: int, socket_path: str) -> None:
        try:
            with ServiceClient(socket_path=socket_path) as client:
                for i in range(requests_per_client):
                    graph, config, no_cache = menu[(cid + i) % len(menu)]
                    t0 = time.perf_counter()
                    client.extract(graph, config=config, no_cache=no_cache)
                    latencies[cid].append(time.perf_counter() - t0)
        except BaseException as exc:  # surfaced below; never swallowed
            errors.append(exc)

    with tempfile.TemporaryDirectory() as tmp:
        config = ServiceConfig(
            socket_path=str(Path(tmp) / "bench.sock"),
            num_pools=NUM_POOLS,
            num_workers=NUM_WORKERS,
            queue_depth=max(32, 4 * num_clients),
        )
        with ReproServer(config) as server:
            threads = [
                threading.Thread(
                    target=run_client,
                    args=(cid, config.socket_path),
                    name=f"bench-client-{cid}",
                )
                for cid in range(num_clients)
            ]
            wall_start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - wall_start
            stats = server.stats()

    if errors:
        raise errors[0]
    flat = np.sort(np.concatenate([np.asarray(c) for c in latencies]))
    total = int(flat.size)
    assert total == num_clients * requests_per_client
    return {
        "requests_per_sec": total / wall,
        "num_clients": num_clients,
        "requests_per_client": requests_per_client,
        "num_requests": total,
        "wall_seconds": wall,
        "latency_ms": {
            "p50": float(np.percentile(flat, 50)) * 1e3,
            "p99": float(np.percentile(flat, 99)) * 1e3,
            "max": float(flat[-1]) * 1e3,
        },
        "cache_hits": stats["cache_hits"],
        "pool_dispatches": stats["pool_dispatches"],
        "inline_dispatches": stats["inline_dispatches"],
    }


def record(path: Path = SERVICE_PATH) -> dict:
    measured = measure_service()
    payload = {
        **measured,
        "num_pools": NUM_POOLS,
        "num_workers": NUM_WORKERS,
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    lat = payload["latency_ms"]
    print(
        f"service: {payload['requests_per_sec']:.1f} req/s over "
        f"{payload['num_clients']} clients "
        f"(p50 {lat['p50']:.1f} ms, p99 {lat['p99']:.1f} ms) -> {path}"
    )
    return payload


if __name__ == "__main__":
    record()
