"""Regenerates paper Figure 3 (shortest-path length distribution)."""

from benchmarks.conftest import BENCH_SEED
from repro.experiments import fig3


def test_fig3(benchmark):
    result = benchmark.pedantic(
        lambda: fig3.run(scale=10, bio_fraction=1 / 32, sample=256, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    max_len = {row[0]: row[1] for row in result.rows}
    # paper shape: bio distribution much wider than RMAT-ER's; RMAT-B at
    # least as wide as RMAT-ER
    assert max_len["GSE5140(UNT)"] > max_len["RMAT-ER(10)"]
    assert max_len["RMAT-B(10)"] >= max_len["RMAT-ER(10)"]
