#!/usr/bin/env python
"""Measured wall-clock scaling of the process engine (Fig-4 style, real).

Times synchronous extraction on R-MAT graphs at three implementations:

* ``loop``    — the seed Python pair-loop superstep engine (the baseline
  every speedup is reported against),
* ``kernels`` — the vectorized serial engine (bulk NumPy supersteps),
* ``process@W`` — the shared-memory worker-process engine at each worker
  count in the sweep (persistent pool; fork cost excluded, matching the
  paper's exclusion of thread-team spin-up).

Unlike ``repro.experiments.fig4`` (which replays instrumented traces on
calibrated machine models), every number here is a real measurement on
this host.  On a single-core container the worker sweep is flat — the
kernels row is then the honest source of speedup.

Run:
    PYTHONPATH=src python benchmarks/bench_scaling.py \
        [--scale 14] [--kinds RMAT-ER RMAT-B] [--workers 1 2 4 8] \
        [--repeats 3] [--json out.json]
"""

from __future__ import annotations

import argparse
import json
import os

from repro.experiments.report import format_table
from repro.experiments.scaling_measured import measure_engines
from repro.experiments.testsuite import DEFAULT_SEED, build_graph_cached, rmat_spec

DEFAULT_WORKERS = (1, 2, 4, 8)


def measure_scaling(
    kind: str,
    scale: int,
    workers=DEFAULT_WORKERS,
    seed: int = DEFAULT_SEED,
    repeats: int = 3,
) -> dict:
    """Wall-clock seconds for reference / kernels / process@W on one graph.

    Thin wrapper over :func:`repro.experiments.scaling_measured
    .measure_engines` (the one measurement protocol both this script and
    the registered experiment report) adding graph identification.

    Returns ``{"graph", "n", "m", "reference", "kernels", "process":
    {W: t}, "speedup": {label: x}}`` with speedups relative to the
    reference engine (the seed implementation style).
    """
    graph = build_graph_cached(rmat_spec(kind, scale, seed))
    measures = measure_engines(graph, workers=workers, repeats=repeats)
    return {
        "graph": f"{kind}({scale})",
        "n": graph.num_vertices,
        "m": graph.num_edges,
        **measures,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=14)
    parser.add_argument(
        "--kinds", nargs="+", default=["RMAT-ER", "RMAT-B"],
        choices=["RMAT-ER", "RMAT-G", "RMAT-B"],
    )
    parser.add_argument("--workers", nargs="+", type=int,
                        default=list(DEFAULT_WORKERS))
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--json", default=None,
                        help="also write the raw measurements to this path")
    args = parser.parse_args()
    if any(w < 1 for w in args.workers):
        parser.error("--workers values must be >= 1")

    print(f"host cores: {os.cpu_count()}   repeats: best of {args.repeats}\n")
    results = []
    for kind in args.kinds:
        r = measure_scaling(
            kind, args.scale, workers=args.workers,
            seed=args.seed, repeats=args.repeats,
        )
        results.append(r)

    headers = ["Graph", "n", "m", "reference s", "kernels s"] + [
        f"proc@{w} s" for w in args.workers
    ] + ["best speedup"]
    rows = []
    for r in results:
        best = max(r["speedup"].values())
        rows.append(
            [r["graph"], r["n"], r["m"], round(r["reference"], 3),
             round(r["kernels"], 3)]
            + [round(r["process"][w], 3) for w in args.workers]
            + [f"{best:.1f}x"]
        )
    print(format_table(headers, rows))
    print("\nspeedup vs seed loop engine:")
    for r in results:
        parts = ", ".join(f"{k} {v:.1f}x" for k, v in r["speedup"].items())
        print(f"  {r['graph']}: {parts}")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"cores": os.cpu_count(), "results": results}, fh, indent=2)
        print(f"\nwrote {args.json}")


if __name__ == "__main__":
    main()
