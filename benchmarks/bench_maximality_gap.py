"""Quantifies the Theorem 2 maximality gap (erratum experiment, ours)."""

from benchmarks.conftest import BENCH_SEED
from repro.experiments import maximality_gap


def test_maximality_gap(benchmark):
    result = benchmark.pedantic(
        lambda: maximality_gap.run(scales=(8, 9), bio_fraction=1 / 128, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    # the gap exists somewhere (the erratum is real) ...
    assert any(row[3] > 0 for row in result.rows)
    # ... and Dearing never yields fewer edges than raw Algorithm 1
    for row in result.rows:
        assert row[5] >= row[2] * 0.95, row
