#!/usr/bin/env python
"""Record the out-of-core sharded extraction baseline (BENCH_sharded.json).

Two measurements feed one file:

* **out-of-core figures** — the full ``plan -> run -> stitch`` pipeline
  on the scale-``SCALE`` RMAT-ER graph spilled to ``NUM_SHARDS`` shards:
  per-phase wall-clock, peak-address-space delta (``VmPeak``), boundary
  edge volume, admitted/rejected split, and the three quality gates
  (stitched result chordal, certified
  :func:`~repro.chordality.quality.maximal_chordal_floor` met, sampled
  boundary certificates clean).  At this scale the in-memory
  maximalizing engine needs several hundred seconds, the sharded
  pipeline a few — which is the point of the subsystem;
* **retention comparison** — retained-edge fraction of the sharded
  pipeline vs the in-memory maximalizing engine at
  ``COMPARE_SCALE``, the largest scale where the in-memory completion
  pass is still cheap enough to re-drive inside the regression guard.

The guard (``bench_regression_guard.py``) re-drives the comparison:
quality gates must hold on the fresh answer, the retention ratio must
stay above ``MIN_RETENTION_RATIO``, and the sharded wall-clock must stay
within 2x of this baseline.

Re-record on a quiet machine after intentional changes:

    PYTHONPATH=src python benchmarks/bench_sharded.py
    # or: repro bench --record sharded
"""

from __future__ import annotations

import json
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

SHARDED_PATH = Path(__file__).resolve().parent / "BENCH_sharded.json"

#: RMAT-ER scale of the out-of-core run (the acceptance scale: the
#: in-memory maximalizing engine is already impractical here).
SCALE = 14
NUM_SHARDS = 8
GRAPH_SEED = 1

#: Largest scale where the in-memory engine's maximalize pass is cheap
#: enough to re-run in the guard (~seconds; scale 14 is ~minutes).
COMPARE_SCALE = 11
COMPARE_SHARDS = 4

#: Boundary-certificate samples per recorded run.
SAMPLES = 32

#: The guard's quality gate: sharded retained edges must stay within
#: this fraction of the in-memory maximalizing engine's count.
MIN_RETENTION_RATIO = 0.8


def _vmpeak_kb() -> int | None:
    """Peak address space of this process in KiB (Linux), else ``None``."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmPeak"):
                    return int(line.split()[1])
    except OSError:
        pass
    return None


def measure_sharded(
    scale: int = SCALE,
    num_shards: int = NUM_SHARDS,
    samples: int = SAMPLES,
) -> dict:
    """Spill one RMAT-ER graph and run the sharded pipeline end to end.

    Returns per-phase timings, the ``VmPeak`` delta across the pipeline
    (``None`` off-Linux), boundary volumes, and the quality gates.
    """
    from repro.chordality.quality import maximal_chordal_floor
    from repro.chordality.recognition import is_chordal
    from repro.graph.generators.rmat import rmat_er
    from repro.graph.io import save_graph
    from repro.shard import (
        build_plan,
        run_shards,
        sampled_boundary_report,
        stitch_shards,
    )

    graph = rmat_er(scale, seed=GRAPH_SEED)
    floor = maximal_chordal_floor(graph)
    with tempfile.TemporaryDirectory(prefix="bench-sharded-") as tmp:
        input_path = Path(tmp) / f"rmat_er_{scale}.txt"
        save_graph(graph, input_path, format="snap")
        peak_before = _vmpeak_kb()

        t0 = time.perf_counter()
        plan, _reused = build_plan(input_path, num_shards, Path(tmp) / "spill")
        plan_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        stats = run_shards(plan, verify=True)
        run_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        result = stitch_shards(plan)
        stitch_seconds = time.perf_counter() - t0

        report = sampled_boundary_report(result, samples=samples)
        peak_after = _vmpeak_kb()

    peak_delta_mb = (
        (peak_after - peak_before) / 1024.0
        if peak_before is not None and peak_after is not None
        else None
    )
    return {
        "scale": scale,
        "graph_seed": GRAPH_SEED,
        "num_shards": num_shards,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "plan_seconds": plan_seconds,
        "run_seconds": run_seconds,
        "stitch_seconds": stitch_seconds,
        "total_seconds": plan_seconds + run_seconds + stitch_seconds,
        "peak_delta_mb": peak_delta_mb,
        "boundary_edges": result.boundary_edges,
        "admitted_boundary": result.admitted_boundary,
        "stitch_rounds": result.rounds,
        "chordal_edges": result.num_chordal_edges,
        "retained_fraction": result.num_chordal_edges / graph.num_edges,
        "all_shards_verified": all(s.verified for s in stats),
        "chordal": is_chordal(result.subgraph()),
        "floor_met": result.num_chordal_edges >= floor,
        "boundary_sample_ok": bool(report["ok"]),
    }


def measure_comparison(
    scale: int = COMPARE_SCALE,
    num_shards: int = COMPARE_SHARDS,
) -> dict:
    """Sharded vs in-memory maximalizing engine on one graph.

    Runs both paths on the same RMAT-ER graph and returns retained-edge
    fractions plus wall-clock for each; the ratio is the quality price
    of never materialising the full graph.
    """
    from repro.chordality.quality import retained_fraction
    from repro.core.session import Extractor
    from repro.graph.generators.rmat import rmat_er
    from repro.graph.io import save_graph
    from repro.shard import extract_sharded

    graph = rmat_er(scale, seed=GRAPH_SEED)
    t0 = time.perf_counter()
    with Extractor(maximalize=True) as session:
        expected = session.extract(graph)
    memory_seconds = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="bench-sharded-cmp-") as tmp:
        input_path = Path(tmp) / f"rmat_er_{scale}.txt"
        save_graph(graph, input_path, format="snap")
        t0 = time.perf_counter()
        result = extract_sharded(
            input_path,
            num_shards=num_shards,
            spill_dir=Path(tmp) / "spill",
            verify_shards=True,
        )
        sharded_seconds = time.perf_counter() - t0

    sharded_fraction = retained_fraction(graph, result.edges)
    memory_fraction = retained_fraction(graph, expected.edges)
    return {
        "compare_scale": scale,
        "compare_shards": num_shards,
        "sharded_fraction": sharded_fraction,
        "memory_fraction": memory_fraction,
        "retention_ratio": sharded_fraction / memory_fraction,
        "sharded_seconds": sharded_seconds,
        "memory_seconds": memory_seconds,
    }


def record(path: Path = SHARDED_PATH) -> dict:
    measured = measure_sharded()
    comparison = measure_comparison()
    payload = {
        **measured,
        **comparison,
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    peak = (
        f"{payload['peak_delta_mb']:.0f} MB peak delta"
        if payload["peak_delta_mb"] is not None
        else "peak n/a"
    )
    print(
        f"sharded: scale {payload['scale']} x {payload['num_shards']} shards "
        f"in {payload['total_seconds']:.1f} s ({peak}), boundary "
        f"{payload['boundary_edges']} -> {payload['admitted_boundary']} "
        f"admitted over {payload['stitch_rounds']} rounds; "
        f"chordal={payload['chordal']} floor={payload['floor_met']} "
        f"sample={payload['boundary_sample_ok']}; retention at scale "
        f"{payload['compare_scale']}: {payload['sharded_fraction']:.4f} vs "
        f"in-memory {payload['memory_fraction']:.4f} "
        f"({payload['retention_ratio']:.3f}x) -> {path}"
    )
    return payload


if __name__ == "__main__":
    record()
