"""Microbenchmarks of the graph generators."""


from repro.graph.generators.bio import GSE5140_UNT, bio_network
from repro.graph.generators.rmat import rmat_b, rmat_er


def test_rmat_er_scale12(benchmark):
    g = benchmark(rmat_er, 12, 7)
    assert g.num_vertices == 4096


def test_rmat_b_scale12(benchmark):
    g = benchmark(rmat_b, 12, 7)
    assert g.num_vertices == 4096


def test_bio_network_small(benchmark):
    params = GSE5140_UNT.scaled(1 / 32)
    g = benchmark(bio_network, params, 7)
    assert g.num_vertices == params.num_vertices
