"""Regenerates paper Table II (speedups at 128 XMT procs / 32 AMD cores)."""

from benchmarks.conftest import BENCH_BIO_FRACTION, BENCH_SCALES, BENCH_SEED
from repro.experiments import table2


def test_table2(benchmark):
    result = benchmark.pedantic(
        lambda: table2.run(
            scales=BENCH_SCALES, bio_fraction=BENCH_BIO_FRACTION, seed=BENCH_SEED
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    by_name = {row[0]: row for row in result.rows}
    top = BENCH_SCALES[-1]
    er = by_name[f"RMAT-ER({top})"]
    b = by_name[f"RMAT-B({top})"]
    # paper shape: XMT speedups exceed AMD's on ER at the largest scale
    assert er[1] > er[3]
    # paper shape: RMAT-B scales worse than RMAT-ER on the XMT
    assert b[1] < er[1]
    # every speedup is at least ~1 (no catastrophic slowdown)
    for row in result.rows:
        assert min(row[1:]) > 0.5, row
