#!/usr/bin/env python
"""Record the answer-quality baseline (BENCH_quality.json).

The perf baselines guard *how fast* the engines run; this one guards
*how much they keep*.  For every registered engine x schedule cell it
records the retained-edge fraction (``|EC| / |E|``, the paper's Section
V statistic, measured with ``maximalize=True`` — the full pipeline) on
a fixed menu of seeded families, plus a weighted section comparing the
``weighted`` engine's retained *weight* against the unweighted pipeline
on the same weighted graphs.

The regression guard (``bench_regression_guard.py``) re-measures every
cell and fails when

* a retained fraction drops more than ``QUALITY_TOLERANCE`` below its
  recorded value (one-sided: getting *better* never fails),
* any cell dips below the certified floor of
  :func:`repro.chordality.quality.maximal_chordal_floor` (that is a
  correctness bug, not a regression), or
* the weighted engine retains less weight than the unweighted pipeline
  (the portfolio's by-construction invariant).

Deterministic cells are measured once; nondeterministic (asynchronous
threaded/process) cells record a median of ``REPEATS`` runs and lean on
the tolerance.  Re-record after an intentional quality change:

    PYTHONPATH=src python benchmarks/bench_quality.py
    # or: repro bench --record quality
"""

from __future__ import annotations

import json
import statistics
from datetime import datetime, timezone
from pathlib import Path

QUALITY_PATH = Path(__file__).resolve().parent / "BENCH_quality.json"

#: Allowed one-sided drop of a retained fraction vs its recorded value.
#: Deterministic cells reproduce exactly; this absorbs asynchronous
#: schedule nondeterminism (measured drift is well under 0.02).
QUALITY_TOLERANCE = 0.05

#: Runs per nondeterministic cell (median is recorded/compared).
REPEATS = 3

SCHEMA_VERSION = 1

#: Engine used as the unweighted comparator in the weighted section
#: (deterministic under both schedules, bit-identical to the other
#: Algorithm-1 engines under the synchronous schedule).
UNWEIGHTED_COMPARATOR = "superstep"


def _gnp(n, p, seed):
    from repro.graph.generators import gnp_random_graph

    return gnp_random_graph(n, p, seed=seed)


def _rmat(scale, seed):
    from repro.graph.generators.rmat import rmat_er

    return rmat_er(scale, seed=seed)


def _chordal(n, density, seed):
    from repro.graph.generators import random_chordal

    return random_chordal(n, density, seed=seed)


#: Unweighted quality families: name -> zero-arg builder (seeded, so the
#: recorded and re-measured graphs are identical).
FAMILIES = {
    "gnp_n100_p0.10_s11": lambda: _gnp(100, 0.10, 11),
    "gnp_n100_p0.30_s12": lambda: _gnp(100, 0.30, 12),
    "rmat_er_s7_s13": lambda: _rmat(7, 13),
    "chordal_n80_d0.3_s14": lambda: _chordal(80, 0.3, 14),
}

#: Weighted families: the same structural menu with seeded U(0.1, 5)
#: edge weights attached.
WEIGHTED_FAMILY_SEEDS = {
    "gnp_n100_p0.10_s11": 21,
    "gnp_n100_p0.30_s12": 22,
    "rmat_er_s7_s13": 23,
}


def build_weighted(name: str):
    """The weighted variant of family ``name`` (seeded weights)."""
    import numpy as np

    from repro.graph.weights import attach_edge_weights

    graph = FAMILIES[name]()
    rng = np.random.default_rng(WEIGHTED_FAMILY_SEEDS[name])
    return attach_edge_weights(graph, rng.uniform(0.1, 5.0, graph.num_edges))


def quality_cells():
    """``engine|schedule`` labels for every registered capability cell."""
    from repro.core.engines import registered_engines

    return tuple(
        f"{spec.name}|{schedule}"
        for spec in registered_engines()
        for schedule in spec.schedules
    )


def measure_cell(cell: str, graph, *, repeats: int = REPEATS) -> float:
    """Retained-edge fraction for one engine x schedule cell.

    One run for deterministic cells; the median of ``repeats`` runs
    otherwise (asynchronous schedules may differ run to run).
    """
    from repro.chordality.quality import retained_fraction
    from repro.core.engines import get_engine
    from repro.core.session import Extractor

    engine, schedule = cell.split("|")
    spec = get_engine(engine)
    runs = 1 if spec.is_deterministic(schedule) else repeats
    fractions = []
    with Extractor(engine=engine, schedule=schedule, maximalize=True) as ex:
        for _ in range(runs):
            fractions.append(retained_fraction(graph, ex.extract(graph).edges))
    return float(statistics.median(fractions))


def measure_weighted(name: str) -> dict:
    """Weighted-engine vs unweighted-pipeline retained weight on one
    weighted family (both measured under the same weights)."""
    from repro.core.session import Extractor
    from repro.graph.weights import retained_weight

    graph = build_weighted(name)
    with Extractor(engine="weighted", maximalize=True) as ex:
        weighted = retained_weight(graph, ex.extract(graph).edges)
    with Extractor(
        engine=UNWEIGHTED_COMPARATOR, schedule="synchronous", maximalize=True
    ) as ex:
        edges = ex.extract(graph.without_weights()).edges
        unweighted = retained_weight(graph, edges)
    return {
        "weighted": weighted,
        "unweighted": unweighted,
        "total_weight": float(graph.total_weight),
    }


def record(path: Path = QUALITY_PATH, repeats: int = REPEATS) -> dict:
    from repro.chordality.quality import maximal_chordal_floor

    families_payload = {}
    for name, build in FAMILIES.items():
        graph = build()
        families_payload[name] = {
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "floor": maximal_chordal_floor(graph),
        }

    fractions: dict[str, dict[str, float]] = {}
    for cell in quality_cells():
        row = {}
        for name, build in FAMILIES.items():
            row[name] = measure_cell(cell, build(), repeats=repeats)
        fractions[cell] = row
        shown = " | ".join(f"{k} {v:.3f}" for k, v in row.items())
        print(f"{cell:24s} {shown}")

    weighted_payload = {}
    for name in WEIGHTED_FAMILY_SEEDS:
        weighted_payload[name] = measure_weighted(name)
        w, u = weighted_payload[name]["weighted"], weighted_payload[name]["unweighted"]
        print(f"weighted {name:24s} weighted {w:9.2f} vs unweighted {u:9.2f}")

    payload = {
        "schema": SCHEMA_VERSION,
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "maximalize": True,
        "repeats": repeats,
        "tolerance": QUALITY_TOLERANCE,
        "families": families_payload,
        "retained_fraction": fractions,
        "weighted": weighted_payload,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return payload


if __name__ == "__main__":
    record()
