"""Regenerates paper Figure 4 (synthetic-graph scaling on XMT/Opteron)."""

from benchmarks.conftest import BENCH_SCALES, BENCH_SEED
from repro.experiments import fig4


def test_fig4(benchmark):
    result = benchmark.pedantic(
        lambda: fig4.run(scales=BENCH_SCALES, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    top = BENCH_SCALES[-1]
    er_xmt = dict(result.series[f"RMAT-ER/XMT/S{top}-Unopt"])
    b_xmt = dict(result.series[f"RMAT-B/XMT/S{top}-Unopt"])
    # strong scaling: ER time at 128 well below at 1
    assert er_xmt[128] < 0.5 * er_xmt[1]
    # RMAT-B saturates earlier: its 128-proc gain is smaller than ER's
    assert (b_xmt[1] / b_xmt[128]) < (er_xmt[1] / er_xmt[128])
    # weak scaling: each +1 scale roughly doubles single-proc time
    t_lo = dict(result.series[f"RMAT-ER/XMT/S{BENCH_SCALES[0]}-Unopt"])[1]
    t_hi = er_xmt[1]
    growth = t_hi / t_lo
    doublings = len(BENCH_SCALES) - 1
    assert 2 ** (doublings - 1) < growth < 2 ** (doublings + 1.5)
