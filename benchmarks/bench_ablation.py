"""Design-choice ablations (schedule, ordering, distributed baseline)."""

from benchmarks.conftest import BENCH_SEED
from repro.experiments import ablation


def test_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: ablation.run(scale=10, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    rows = {row[0]: row for row in result.rows}
    # async completes in (far) fewer iterations than sync
    assert rows["schedule=async"][1] < rows["schedule=sync"][1]
    # distributed triangle heuristic breaks chordality at >= 2 parts
    assert rows["distributed p=4"][3] == "NOT chordal"
