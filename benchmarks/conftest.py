"""Shared fixtures for the benchmark suite.

Scale knobs: the benchmarks default to R-MAT scales (9, 10, 11) and a
1/64 bio fraction so the whole suite finishes in a few minutes on one
core; the recorded full runs in EXPERIMENTS.md use the experiment CLI at
larger scales.  Rendered experiment outputs print with ``-s``.
"""

from __future__ import annotations

import pytest

from repro.experiments.testsuite import clear_cache

#: Scales used by benchmark experiment regenerations.
BENCH_SCALES = (9, 10, 11)
BENCH_BIO_FRACTION = 1.0 / 64.0
BENCH_SEED = 20120910


@pytest.fixture(scope="session", autouse=True)
def _suite_cache():
    """Share generated graphs/traces across all benchmarks, then drop."""
    yield
    clear_cache()
