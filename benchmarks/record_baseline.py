#!/usr/bin/env python
"""Record the kernel wall-clock baseline (BENCH_kernels.json).

Measures the median wall-clock of every registered hot kernel and writes
``benchmarks/BENCH_kernels.json``.  The committed baseline is what
``benchmarks/bench_regression_guard.py`` (tier-2) compares against: a
kernel that regresses more than the guard's factor (2x) against this file
fails the check.

Re-record (on a quiet machine) whenever a kernel is *intentionally* made
slower or faster:

    PYTHONPATH=src python benchmarks/record_baseline.py

The kernel registry below is shared with the regression guard, so the two
files can never disagree about what is measured.

The ``rounds_*_native_er14`` rows exist only when the compiled backend
resolves on the recording host; the payload's ``native`` section records
the resolution detail and the scale-14 native-vs-NumPy sync speedup that
``bench_regression_guard.py`` gates (>= ``NATIVE_MIN_SPEEDUP``).  Record
on a host with a C toolchain so the gate is armed.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_kernels.json"

#: Median-of-N repeats used for both recording and guarding.
REPEATS = 5


def arena_state(graph):
    """A finished run's chordal arena on ``graph``: C[w] = accepted parents.

    Shared between the kernel microbenchmarks here and in
    ``bench_kernels.py`` so both measure identical inputs.  Returns
    ``(g, n, lower, offsets, arena, counts)``.
    """
    import numpy as np

    from repro.core.kernels import (
        arena_offsets,
        lower_counts,
        vectorized_sync_max_chordal,
    )

    g = graph.with_sorted_adjacency()
    n = g.num_vertices
    lower = lower_counts(g.indptr, g.indices)
    offsets = arena_offsets(lower)
    edges, _ = vectorized_sync_max_chordal(g)
    arena = np.full(int(offsets[-1]), -1, dtype=np.int64)
    counts = np.zeros(n, dtype=np.int64)
    for v, w in edges:  # (parent, child): v joins C[w], in increasing order
        arena[offsets[w] + counts[w]] = v
        counts[w] += 1
    return g, n, lower, offsets, arena, counts


def build_kernels() -> dict:
    """name -> zero-arg callable for every guarded hot kernel.

    Imports happen here (not at module top) so the regression guard can
    import this module cheaply before deciding to skip.
    """
    import numpy as np

    from repro.baselines.dearing import dearing_max_chordal
    from repro.chordality.lexbfs import lexbfs_order
    from repro.chordality.mcs import mcs_peo
    from repro.core.kernels import (
        build_arena_keys,
        initial_parents,
        subset_mask,
        vectorized_sync_max_chordal,
    )
    from repro.core.superstep import superstep_max_chordal
    from repro.core.threaded import threaded_max_chordal
    from repro.graph.bfs import bfs_levels
    from repro.graph.generators.rmat import rmat_b, rmat_er

    from repro.core.native import native_available
    from repro.core.runtime import (
        LocalState,
        NativeThreadTeamExecutor,
        SerialExecutor,
        drive,
    )

    er11 = rmat_er(11, seed=1)
    b11 = rmat_b(11, seed=1)
    er14 = rmat_er(14, seed=1)

    g, n, lower, offsets, arena, counts = arena_state(er11)
    keys = build_arena_keys(arena, offsets, counts, n)
    lp = initial_parents(g.indptr, g.indices, lower)
    ws = np.flatnonzero(lp >= 0)
    vs = lp[ws]

    # Round-loop rows at paper scale 14 reuse one prebuilt state per
    # backend (drive() resets it), so they time the rounds themselves
    # rather than graph construction.  The native/numpy pair on the
    # *same* machine is what the >=NATIVE_MIN_SPEEDUP gate reads.
    st14_numpy = LocalState(er14)
    serial = SerialExecutor()

    kernels = {
        # Async sweep through the superstep engine.  (Replaces the old
        # opt/unopt pair: `variant` only toggles trace bookkeeping, and
        # the recorded difference between the two rows was pure noise.)
        "extract_async_sweep_er11": lambda: superstep_max_chordal(er11),
        # Superstep-sync through the unified runtime driver (LocalState +
        # SerialExecutor); replaces the historical `use_kernels=False`
        # Python pair loop, which was deleted in the runtime refactor.
        "extract_sync_driver_er11": lambda: superstep_max_chordal(
            er11, schedule="synchronous"
        ),
        # The traced path (driver-side trace reconstruction) is the
        # slowest remaining superstep-sync variant; guard it so trace
        # collection can't quietly become pathological.
        "extract_sync_traced_er11": lambda: superstep_max_chordal(
            er11, schedule="synchronous", collect_trace=True
        ),
        "extract_sync_kernels_er11": lambda: vectorized_sync_max_chordal(er11),
        "extract_sync_kernels_b11": lambda: vectorized_sync_max_chordal(b11),
        "extract_threaded_sync_er11": lambda: threaded_max_chordal(
            er11, num_threads=4, schedule="synchronous"
        ),
        "dearing_er11": lambda: dearing_max_chordal(er11),
        "mcs_peo_er11": lambda: mcs_peo(er11),
        "lexbfs_er11": lambda: lexbfs_order(er11),
        "bfs_er11": lambda: bfs_levels(er11, 0),
        "kernel_build_arena_keys_er11": lambda: build_arena_keys(
            arena, offsets, counts, n
        ),
        "kernel_subset_mask_er11": lambda: subset_mask(
            keys, arena, offsets, counts, ws, vs, n
        ),
        "rounds_sync_numpy_er14": lambda: drive(
            st14_numpy, serial, schedule="synchronous"
        ),
    }

    if native_available():
        st14_native = LocalState(er14, 1, edge_claims=True)
        # One thread: the compiled rows must win on single-thread kernel
        # speed, not parallelism (and record hosts may have one core).
        nat = NativeThreadTeamExecutor(1)
        kernels["rounds_sync_native_er14"] = lambda: drive(
            st14_native, nat, schedule="synchronous"
        )
        kernels["rounds_async_native_er14"] = lambda: drive(
            st14_native, nat, schedule="asynchronous"
        )

    return kernels


def median_seconds(fn, repeats: int = REPEATS) -> float:
    """Median wall-clock of ``repeats`` calls (one untimed warm-up)."""
    from repro.util.timing import median_of

    return median_of(fn, repeats)


def record(path: Path = BASELINE_PATH, repeats: int = REPEATS) -> dict:
    from repro.core.native import native_status

    kernels = build_kernels()
    medians = {}
    for name, fn in kernels.items():
        medians[name] = median_seconds(fn, repeats)
        print(f"  {name:<32} {medians[name] * 1e3:9.3f} ms")
    status = native_status()
    native = {
        "available": status.available,
        "detail": status.detail,
        "threads": 1,
    }
    if status.available:
        native["sync_ratio_er14"] = (
            medians["rounds_sync_numpy_er14"] / medians["rounds_sync_native_er14"]
        )
        print(f"  native sync speedup on er14: {native['sync_ratio_er14']:.2f}x")
    payload = {
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host_cores": os.cpu_count(),
        "repeats": repeats,
        "median_seconds": medians,
        "native": native,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")
    return payload


if __name__ == "__main__":
    record()
