"""Tests for the experiment CLI and the errors module."""

import pytest

import repro
from repro.errors import (
    ConvergenceError,
    GraphFormatError,
    MachineModelError,
    NotChordalError,
    ReproError,
)
from repro.experiments.runner import build_parser, main


class TestErrors:
    def test_hierarchy(self):
        for exc in (GraphFormatError, NotChordalError, ConvergenceError, MachineModelError):
            assert issubclass(exc, ReproError)

    def test_graph_format_is_value_error(self):
        assert issubclass(GraphFormatError, ValueError)

    def test_catchable_as_base(self):
        from repro.graph.builder import build_graph

        with pytest.raises(ReproError):
            build_graph(2, [(0, 9)])


class TestCli:
    def test_parser_accepts_scales(self):
        args = build_parser().parse_args(["table1", "--scales", "8,9"])
        assert args.scales == (8, 9)

    def test_parser_rejects_bad_scales(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scales", "a,b"])

    def test_main_runs_experiment(self, capsys):
        rc = main(["table1", "--scales", "7", "--bio-fraction", "0.01", "--seed", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "RMAT-ER(7)" in out

    def test_main_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["fig99"])

    def test_main_scale_flag(self, capsys):
        rc = main(["ablation", "--scale", "7", "--seed", "5"])
        assert rc == 0
        assert "ablation" in capsys.readouterr().out


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        import repro.analysis
        import repro.baselines
        import repro.chordalg
        import repro.chordality
        import repro.core
        import repro.experiments
        import repro.graph
        import repro.machine
        import repro.parallel

        for module in (
            repro.analysis,
            repro.baselines,
            repro.chordalg,
            repro.chordality,
            repro.core,
            repro.graph,
            repro.machine,
            repro.parallel,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)
