"""Tests for the public extraction API and ChordalResult."""

import numpy as np
import pytest

from repro.chordality.maximality import assert_valid_extraction
from repro.chordality.recognition import is_chordal
from repro.core.extract import extract_maximal_chordal_subgraph
from repro.graph.bfs import connected_components
from repro.graph.builder import build_graph
from repro.graph.generators.classic import cycle_graph, disjoint_cliques, grid_graph
from repro.graph.generators.rmat import rmat_b, rmat_g


class TestResultObject:
    def test_fields(self):
        g = cycle_graph(5)
        r = extract_maximal_chordal_subgraph(g)
        assert r.num_chordal_edges == 4
        assert r.chordal_fraction == pytest.approx(4 / 5)
        assert r.num_iterations == len(r.queue_sizes)
        assert r.engine == "superstep"
        assert r.variant == "optimized"
        assert r.schedule == "asynchronous"

    def test_edges_canonical(self):
        g = rmat_g(7, seed=2)
        r = extract_maximal_chordal_subgraph(g)
        e = r.edges
        assert bool(np.all(e[:, 0] < e[:, 1]))
        order = np.lexsort((e[:, 1], e[:, 0]))
        assert bool(np.all(order == np.arange(e.shape[0])))

    def test_subgraph_cached(self):
        g = cycle_graph(5)
        r = extract_maximal_chordal_subgraph(g)
        assert r.subgraph is r.subgraph

    def test_empty_graph(self):
        g = build_graph(0, [])
        r = extract_maximal_chordal_subgraph(g)
        assert r.num_chordal_edges == 0
        assert r.chordal_fraction == 1.0

    def test_edgeless_graph(self):
        g = build_graph(5, [])
        r = extract_maximal_chordal_subgraph(g)
        assert r.num_chordal_edges == 0
        assert r.num_iterations == 0


class TestOptions:
    # These assert the ValueError back-compat contract of the legacy
    # shims; the raised type is actually ConfigError (a ValueError
    # subclass) — see tests/test_session_api.py for the session API.
    def test_invalid_engine(self):
        with pytest.raises(ValueError, match="engine"):
            extract_maximal_chordal_subgraph(cycle_graph(4), engine="gpu")

    def test_errors_catchable_as_reproerror(self):
        from repro.errors import ConfigError, ReproError

        with pytest.raises(ReproError):
            extract_maximal_chordal_subgraph(cycle_graph(4), engine="gpu")
        with pytest.raises(ConfigError):
            extract_maximal_chordal_subgraph(cycle_graph(4), schedule="warp")

    def test_invalid_variant(self):
        with pytest.raises(ValueError, match="variant"):
            extract_maximal_chordal_subgraph(cycle_graph(4), variant="turbo")

    def test_invalid_schedule(self):
        with pytest.raises(ValueError, match="schedule"):
            extract_maximal_chordal_subgraph(cycle_graph(4), schedule="warp")

    def test_invalid_renumber(self):
        with pytest.raises(ValueError, match="renumber"):
            extract_maximal_chordal_subgraph(cycle_graph(4), renumber="dfs")

    def test_trace_requires_trace_capable_engine(self):
        """Traces are a driver feature of the in-process backends: superstep
        and threaded collect them, reference and process do not."""
        with pytest.raises(ValueError, match="collect_trace"):
            extract_maximal_chordal_subgraph(
                cycle_graph(4), engine="reference", collect_trace=True
            )
        r = extract_maximal_chordal_subgraph(
            cycle_graph(4), engine="threaded", num_threads=2, collect_trace=True
        )
        assert r.trace is not None

    def test_all_engine_variant_combos_chordal(self, zoo_graph):
        for engine in ("superstep", "threaded", "reference"):
            for variant in ("optimized", "unoptimized"):
                r = extract_maximal_chordal_subgraph(
                    zoo_graph, engine=engine, variant=variant, num_threads=2
                )
                assert is_chordal(r.subgraph), (engine, variant)


class TestRenumber:
    def test_edges_in_original_ids(self):
        g = rmat_b(7, seed=4)
        r = extract_maximal_chordal_subgraph(g, renumber="bfs")
        assert r.renumbered
        # every output edge exists in the original graph
        for u, v in r.edges:
            assert g.has_edge(int(u), int(v))

    def test_bfs_connected_output_per_component(self):
        g = grid_graph(4, 4)
        r = extract_maximal_chordal_subgraph(g, renumber="bfs")
        assert connected_components(r.subgraph)[0] == 1

    def test_maximalize_with_bfs_certified(self):
        g = rmat_b(7, seed=4)
        r = extract_maximal_chordal_subgraph(g, renumber="bfs", maximalize=True)
        assert_valid_extraction(g, r.subgraph)


class TestStitch:
    def test_disjoint_cliques_bridged(self):
        g = disjoint_cliques(3, 3)
        plain = extract_maximal_chordal_subgraph(g, stitch=True)
        # no cross-component edges exist in G, so no bridges can be added
        assert plain.stitched_bridges == 0

    def test_stitch_connects_when_possible(self):
        # natural ids that fragment EC: star with high-id hub
        g = build_graph(6, [(0, 5), (1, 5), (2, 5), (3, 5), (4, 5), (0, 1)])
        r = extract_maximal_chordal_subgraph(g, stitch=True)
        assert is_chordal(r.subgraph)
        assert connected_components(r.subgraph)[0] <= connected_components(
            extract_maximal_chordal_subgraph(g).subgraph
        )[0]


class TestMaximalize:
    def test_gap_reported_and_closed(self):
        g = rmat_b(8, seed=42)
        raw = extract_maximal_chordal_subgraph(g)
        fixed = extract_maximal_chordal_subgraph(g, maximalize=True)
        assert fixed.maximality_gap >= 0
        assert fixed.num_chordal_edges == raw.num_chordal_edges + fixed.maximality_gap
        from repro.chordality.maximality import addable_edges

        assert addable_edges(g, fixed.subgraph, limit=1) == []

    def test_gap_zero_when_already_maximal(self):
        g = cycle_graph(5)
        r = extract_maximal_chordal_subgraph(g, maximalize=True)
        assert r.maximality_gap == 0
