"""Tests for MCS, Lex-BFS, and the Tarjan–Yannakakis PEO verifier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chordality.lexbfs import lexbfs_order, lexbfs_peo
from repro.chordality.mcs import mcs_order, mcs_peo
from repro.chordality.peo import is_perfect_elimination_ordering, peo_violation
from repro.graph.builder import build_graph
from repro.graph.generators.classic import (
    binary_tree,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from tests.conftest import random_graph_from_data


class TestMcsOrder:
    def test_is_permutation(self, zoo_graph):
        order = mcs_order(zoo_graph)
        assert sorted(order.tolist()) == list(range(zoo_graph.num_vertices))

    def test_starts_at_start(self):
        assert mcs_order(cycle_graph(5), start=3)[0] == 3

    def test_start_out_of_range(self):
        with pytest.raises(ValueError):
            mcs_order(path_graph(3), start=7)

    def test_empty_graph(self):
        assert mcs_order(build_graph(0, [])).size == 0

    def test_deterministic(self, zoo_graph):
        assert np.array_equal(mcs_order(zoo_graph), mcs_order(zoo_graph))

    def test_clique_reverse_order_is_peo(self):
        g = complete_graph(6)
        assert is_perfect_elimination_ordering(g, mcs_peo(g))

    def test_prefers_max_weight(self):
        # star: after the hub, every leaf has weight 1; ties break by id
        order = mcs_order(star_graph(4), start=0)
        assert list(order) == [0, 1, 2, 3, 4]


class TestLexBfs:
    def test_is_permutation(self, zoo_graph):
        order = lexbfs_order(zoo_graph)
        assert sorted(order.tolist()) == list(range(zoo_graph.num_vertices))

    def test_start_vertex(self):
        assert lexbfs_order(cycle_graph(6), start=2)[0] == 2

    def test_start_out_of_range(self):
        with pytest.raises(ValueError):
            lexbfs_order(path_graph(3), start=-1)

    def test_empty_graph(self):
        assert lexbfs_order(build_graph(0, [])).size == 0

    def test_agrees_with_mcs_on_chordality(self, zoo_graph):
        """The two orderings must judge chordality identically."""
        mcs_ok = is_perfect_elimination_ordering(zoo_graph, mcs_peo(zoo_graph))
        lex_ok = is_perfect_elimination_ordering(zoo_graph, lexbfs_peo(zoo_graph))
        assert mcs_ok == lex_ok

    def test_path_visits_contiguously(self):
        # Lex-BFS on a path explores monotonically from the start
        order = lexbfs_order(path_graph(5), start=0)
        assert list(order) == [0, 1, 2, 3, 4]


class TestPeoVerifier:
    def test_path_natural_order(self):
        g = path_graph(5)
        assert is_perfect_elimination_ordering(g, np.arange(5))

    def test_cycle4_no_peo_exists(self):
        g = cycle_graph(4)
        import itertools

        assert all(
            not is_perfect_elimination_ordering(g, np.array(p))
            for p in itertools.permutations(range(4))
        )

    def test_violation_witness_is_nonedge(self):
        g = cycle_graph(5)
        witness = peo_violation(g, np.arange(5))
        assert witness is not None
        u, w = witness
        assert not g.has_edge(u, w)

    def test_tree_any_leaf_first_order(self):
        g = binary_tree(3)
        assert is_perfect_elimination_ordering(g, mcs_peo(g))

    def test_non_permutation_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            is_perfect_elimination_ordering(g, np.array([0, 0, 1]))

    def test_wrong_length_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            is_perfect_elimination_ordering(g, np.array([0, 1]))

    def test_clique_every_order_is_peo(self):
        g = complete_graph(5)
        rng = np.random.default_rng(0)
        for _ in range(5):
            perm = rng.permutation(5)
            assert is_perfect_elimination_ordering(g, perm)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_fillin_zero_iff_peo(data):
    """Property: the independent fill-in oracle agrees with the verifier."""
    from repro.chordalg.elimination import fill_in

    n = data.draw(st.integers(2, 8))
    bits = data.draw(st.lists(st.booleans(), min_size=n * (n - 1) // 2,
                              max_size=n * (n - 1) // 2))
    g = random_graph_from_data(n, bits)
    order = np.asarray(data.draw(st.permutations(range(n))), dtype=np.int64)
    assert (fill_in(g, order) == 0) == is_perfect_elimination_ordering(g, order)
