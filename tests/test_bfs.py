"""Tests for BFS kernels, components, and BFS renumbering."""

import numpy as np
import pytest

from repro.graph.bfs import bfs_levels, bfs_order, bfs_renumber, connected_components
from repro.graph.builder import build_graph
from repro.graph.generators.classic import (
    cycle_graph,
    disjoint_cliques,
    grid_graph,
    path_graph,
)
from tests.conftest import to_networkx


class TestBfsLevels:
    def test_path_distances(self):
        levels = bfs_levels(path_graph(5), 0)
        assert list(levels) == [0, 1, 2, 3, 4]

    def test_cycle_distances(self):
        levels = bfs_levels(cycle_graph(6), 0)
        assert list(levels) == [0, 1, 2, 3, 2, 1]

    def test_unreachable_marked(self):
        g = build_graph(4, [(0, 1)])
        levels = bfs_levels(g, 0)
        assert list(levels) == [0, 1, -1, -1]

    def test_source_out_of_range(self):
        with pytest.raises(ValueError):
            bfs_levels(path_graph(3), 5)

    def test_matches_networkx(self, zoo_graph):
        import networkx as nx

        G = to_networkx(zoo_graph)
        ours = bfs_levels(zoo_graph, 0)
        theirs = nx.single_source_shortest_path_length(G, 0)
        for v in range(zoo_graph.num_vertices):
            assert ours[v] == theirs.get(v, -1)


class TestBfsOrder:
    def test_starts_at_source(self):
        order = bfs_order(grid_graph(3, 3), 4)
        assert order[0] == 4

    def test_levels_nondecreasing(self):
        g = grid_graph(4, 4)
        order = bfs_order(g, 0)
        levels = bfs_levels(g, 0)
        seq = levels[order]
        assert bool(np.all(np.diff(seq) >= 0))

    def test_only_reachable(self):
        g = build_graph(5, [(0, 1), (2, 3)])
        assert set(bfs_order(g, 0).tolist()) == {0, 1}


class TestComponents:
    def test_connected(self):
        ncomp, labels = connected_components(cycle_graph(5))
        assert ncomp == 1
        assert set(labels) == {0}

    def test_disjoint_cliques(self):
        ncomp, labels = connected_components(disjoint_cliques(3, 4))
        assert ncomp == 3
        assert len(set(labels.tolist())) == 3

    def test_isolated_vertices(self):
        ncomp, _ = connected_components(build_graph(4, []))
        assert ncomp == 4

    def test_labels_numbered_by_smallest_vertex(self):
        g = build_graph(6, [(4, 5), (0, 1)])
        _, labels = connected_components(g)
        assert labels[0] == 0 and labels[4] > 0

    def test_matches_networkx(self, zoo_graph):
        import networkx as nx

        ncomp, _ = connected_components(zoo_graph)
        assert ncomp == nx.number_connected_components(to_networkx(zoo_graph))


class TestBfsRenumber:
    def test_permutation_valid(self, zoo_graph):
        _, new_of_old = bfs_renumber(zoo_graph)
        assert sorted(new_of_old.tolist()) == list(range(zoo_graph.num_vertices))

    def test_structure_preserved(self, zoo_graph):
        out, _ = bfs_renumber(zoo_graph)
        assert out.num_edges == zoo_graph.num_edges
        assert sorted(out.degrees().tolist()) == sorted(zoo_graph.degrees().tolist())

    def test_source_becomes_zero(self):
        g = cycle_graph(5)
        _, new_of_old = bfs_renumber(g, source=3)
        assert new_of_old[3] == 0

    def test_component_contiguity(self):
        g = disjoint_cliques(2, 3)
        out, new_of_old = bfs_renumber(g)
        # each original clique maps to a contiguous id range
        first = sorted(new_of_old[:3].tolist())
        second = sorted(new_of_old[3:].tolist())
        assert first == [0, 1, 2] and second == [3, 4, 5]

    def test_empty_graph(self):
        from repro.graph.builder import build_graph

        g = build_graph(0, [])
        out, perm = bfs_renumber(g) if g.num_vertices else (g, np.empty(0))
        assert out.num_vertices == 0
