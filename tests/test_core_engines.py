"""Tests for the three Algorithm 1 engines and their agreement."""

import numpy as np
import pytest

from repro.chordality.recognition import is_chordal
from repro.core.reference import reference_max_chordal
from repro.core.superstep import superstep_max_chordal
from repro.core.threaded import threaded_max_chordal
from repro.errors import ConvergenceError
from repro.graph.builder import build_graph
from repro.graph.generators.classic import (
    complete_graph,
    cycle_graph,
    disjoint_cliques,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.generators.rmat import rmat_b
from repro.graph.ops import edge_subgraph


def canon(edges: np.ndarray) -> set[tuple[int, int]]:
    return {(min(int(u), int(v)), max(int(u), int(v))) for u, v in edges}


class TestReferenceEngine:
    def test_cycle_keeps_all_but_one(self):
        edges, _ = reference_max_chordal(cycle_graph(6))
        assert len(edges) == 5

    def test_clique_keeps_everything(self):
        edges, qs = reference_max_chordal(complete_graph(5))
        assert len(edges) == 10
        assert len(qs) == 4  # paper: k-1 steps for a k-clique

    def test_empty_and_trivial(self):
        edges, qs = reference_max_chordal(build_graph(0, []))
        assert edges.shape == (0, 2) and qs == []
        edges, qs = reference_max_chordal(build_graph(3, []))
        assert edges.shape == (0, 2) and qs == []

    def test_path_keeps_everything(self):
        edges, _ = reference_max_chordal(path_graph(6))
        assert len(edges) == 5

    def test_star_single_iteration(self):
        edges, qs = reference_max_chordal(star_graph(5))
        assert len(edges) == 5
        assert len(qs) == 1  # hub 0 is everyone's only parent

    def test_parent_rows_are_lower(self):
        edges, _ = reference_max_chordal(rmat_b(7, seed=3))
        assert bool(np.all(edges[:, 0] < edges[:, 1]))

    def test_schedules_both_chordal(self, zoo_graph):
        for schedule in ("asynchronous", "synchronous"):
            edges, _ = reference_max_chordal(zoo_graph, schedule=schedule)
            assert is_chordal(edge_subgraph(zoo_graph, edges))

    def test_sync_iterations_bounded_by_max_lower_degree(self):
        g = rmat_b(7, seed=5)
        _, qs = reference_max_chordal(g, schedule="synchronous")
        max_lower = max(
            int(np.sum(g.neighbors(v) < v)) for v in range(g.num_vertices)
        )
        assert len(qs) == max_lower

    def test_bad_schedule(self):
        with pytest.raises(ValueError):
            reference_max_chordal(path_graph(3), schedule="bogus")

    def test_iteration_budget_enforced(self):
        with pytest.raises(ConvergenceError):
            reference_max_chordal(complete_graph(8), max_iterations=2)


class TestSuperstepEngine:
    def test_matches_reference_async(self, zoo_graph):
        ref, ref_qs = reference_max_chordal(zoo_graph, schedule="asynchronous")
        got, qs, _tr = superstep_max_chordal(zoo_graph, schedule="asynchronous")
        assert canon(got) == canon(ref)
        assert qs == ref_qs

    def test_matches_reference_sync(self, zoo_graph):
        ref, ref_qs = reference_max_chordal(zoo_graph, schedule="synchronous")
        got, qs, _tr = superstep_max_chordal(zoo_graph, schedule="synchronous")
        assert canon(got) == canon(ref)
        assert qs == ref_qs

    def test_unoptimized_same_edges(self, zoo_graph):
        opt, _, _ = superstep_max_chordal(zoo_graph, variant="optimized")
        unopt, _, _ = superstep_max_chordal(zoo_graph, variant="unoptimized")
        assert canon(opt) == canon(unopt)

    def test_unsorted_input_handled(self):
        g = rmat_b(7, seed=9).shuffled(np.random.default_rng(0))
        opt, _, _ = superstep_max_chordal(g, variant="optimized")
        unopt, _, _ = superstep_max_chordal(g, variant="unoptimized")
        assert canon(opt) == canon(unopt)

    def test_trace_collection(self):
        g = rmat_b(7, seed=1)
        edges, qs, trace = superstep_max_chordal(g, collect_trace=True)
        assert trace is not None
        assert trace.num_iterations == len(qs)
        assert trace.queue_sizes == qs
        assert trace.total_edges_added == len(edges)
        assert trace.total_work > 0
        assert all(it.critical_path_ops > 0 for it in trace.iterations)

    def test_no_trace_by_default(self):
        _, _, trace = superstep_max_chordal(path_graph(4))
        assert trace is None

    def test_bad_variant(self):
        with pytest.raises(ValueError):
            superstep_max_chordal(path_graph(3), variant="bogus")

    def test_bad_schedule(self):
        with pytest.raises(ValueError):
            superstep_max_chordal(path_graph(3), schedule="bogus")

    def test_disjoint_cliques_parallel_queues(self):
        g = disjoint_cliques(3, 4)
        _, qs, _ = superstep_max_chordal(g)
        # three cliques progress simultaneously: first queue has 3 LPs
        assert qs[0] == 3
        assert len(qs) == 3  # k-1 iterations for K4


class TestThreadedEngine:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_sync_equals_serial_exactly(self, zoo_graph, threads):
        serial, s_qs, _ = superstep_max_chordal(zoo_graph, schedule="synchronous")
        threaded, t_qs = threaded_max_chordal(
            zoo_graph, num_threads=threads, schedule="synchronous"
        )
        assert canon(threaded) == canon(serial)
        assert t_qs == s_qs

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_async_output_valid(self, zoo_graph, threads):
        edges, _ = threaded_max_chordal(
            zoo_graph, num_threads=threads, schedule="asynchronous"
        )
        assert is_chordal(edge_subgraph(zoo_graph, edges))

    def test_single_thread_async_matches_serial(self, zoo_graph):
        serial, _, _ = superstep_max_chordal(zoo_graph, schedule="asynchronous")
        threaded, _ = threaded_max_chordal(
            zoo_graph, num_threads=1, schedule="asynchronous"
        )
        assert canon(threaded) == canon(serial)

    def test_bad_thread_count(self):
        with pytest.raises(ValueError):
            threaded_max_chordal(path_graph(3), num_threads=0)

    def test_bad_schedule(self):
        with pytest.raises(ValueError):
            threaded_max_chordal(path_graph(3), schedule="bogus")

    def test_unoptimized_variant(self):
        g = grid_graph(4, 4)
        edges, _ = threaded_max_chordal(g, num_threads=3, variant="unoptimized")
        assert is_chordal(edge_subgraph(g, edges))
