"""Tests for the work-trace instrumentation (paper §V claims included)."""

import numpy as np
import pytest

from repro.core.extract import extract_maximal_chordal_subgraph
from repro.core.instrument import CostModelParams, TraceBuilder
from repro.graph.generators.classic import complete_graph, disjoint_cliques
from repro.graph.generators.rmat import rmat_b, rmat_er


class TestTraceBuilder:
    def test_disabled_builder_records_nothing(self):
        b = TraceBuilder("optimized", 10, 20, enabled=False)
        b.scan(0, 5)
        b.service(0, 1, 3, 1, True)
        b.flush()
        assert b.trace.num_iterations == 0

    def test_single_iteration_accounting(self):
        b = TraceBuilder("optimized", 10, 20)
        b.scan(0, 4)
        b.service(0, 1, test_cost=2, advance_cost=1, edge_added=True)
        b.service(0, 2, test_cost=3, advance_cost=1, edge_added=False)
        b.flush()
        it = b.trace.iterations[0]
        assert it.queue_size == 1
        assert it.services == 2
        assert it.edges_added == 1
        assert it.scan_ops == 4
        assert it.subset_comparisons == 5
        assert it.advance_ops == 2
        assert it.queue_ops == 4
        # item cost: 4*scan + (2+1+2) + (3+1+2)
        assert it.total_work == pytest.approx(4 + 5 + 6)

    def test_critical_path_chains_through_common_child(self):
        b = TraceBuilder("optimized", 10, 20)
        # w=5 served by v=1 then v=2: the two services chain
        b.service(1, 5, 2, 1, True)
        b.service(2, 5, 2, 1, True)
        # independent service elsewhere
        b.service(3, 7, 2, 1, True)
        b.flush()
        it = b.trace.iterations[0]
        per_service = 2 + 1 + 2
        assert it.critical_path_ops == pytest.approx(2 * per_service)

    def test_critical_path_chains_through_parent_set(self):
        b = TraceBuilder("optimized", 10, 20)
        # v=3 is served as a child, then serves its own child: dependent
        b.service(1, 3, 2, 1, True)
        b.service(3, 8, 2, 1, True)
        b.flush()
        assert b.trace.iterations[0].critical_path_ops == pytest.approx(10)

    def test_iterations_reset(self):
        b = TraceBuilder("optimized", 10, 20)
        b.service(0, 1, 1, 1, True)
        b.flush()
        b.service(2, 3, 1, 1, False)
        b.flush()
        assert b.trace.num_iterations == 2
        assert b.trace.iterations[1].edges_added == 0

    def test_cost_params_respected(self):
        params = CostModelParams(scan_op=10.0, compare_op=0.0, advance_op=0.0, queue_op=0.0)
        b = TraceBuilder("optimized", 10, 20, params)
        b.scan(0, 3)
        b.service(0, 1, 5, 5, True)
        b.flush()
        assert b.trace.iterations[0].total_work == pytest.approx(30.0)


class TestAlgorithmTraces:
    def test_queue_sizes_match_engine(self):
        g = rmat_er(9, seed=4)
        r = extract_maximal_chordal_subgraph(g, collect_trace=True)
        assert r.trace.queue_sizes == r.queue_sizes

    def test_no_edge_checked_twice(self):
        """Paper §III: 'No edge is checked more than once' — total services
        equals the number of (vertex, lower-neighbor) pairs."""
        g = rmat_er(9, seed=4)
        r = extract_maximal_chordal_subgraph(g, collect_trace=True)
        services = sum(it.services for it in r.trace.iterations)
        total_lower = sum(
            int(np.sum(g.neighbors(v) < v)) for v in range(g.num_vertices)
        )
        assert services == total_lower == g.num_edges

    def test_clique_iteration_law(self):
        """Paper §III: a k-clique requires k-1 steps."""
        for k in (3, 5, 8):
            r = extract_maximal_chordal_subgraph(complete_graph(k), collect_trace=True)
            assert r.trace.num_iterations == k - 1

    def test_q2_exceeds_q1_on_rmat(self):
        """Paper Fig 7: 'slightly more [LPs] in the second iteration'."""
        g = rmat_b(10, seed=6)
        r = extract_maximal_chordal_subgraph(g)
        assert r.queue_sizes[1] > r.queue_sizes[0]

    def test_queue_decays_after_peak(self):
        g = rmat_b(10, seed=6)
        qs = extract_maximal_chordal_subgraph(g).queue_sizes
        peak = int(np.argmax(qs))
        tail = qs[peak:]
        assert all(a >= b for a, b in zip(tail, tail[1:])) or tail[-1] < qs[peak] / 4

    def test_unopt_advance_ops_exceed_opt(self):
        g = rmat_b(9, seed=2)
        opt = extract_maximal_chordal_subgraph(g, collect_trace=True, variant="optimized")
        unopt = extract_maximal_chordal_subgraph(g, collect_trace=True, variant="unoptimized")
        assert (
            sum(it.advance_ops for it in unopt.trace.iterations)
            > 3 * sum(it.advance_ops for it in opt.trace.iterations)
        )

    def test_disjoint_cliques_summary(self):
        g = disjoint_cliques(2, 5)
        r = extract_maximal_chordal_subgraph(g, collect_trace=True)
        summary = r.trace.summary()
        assert summary["iterations"] == 4
        assert summary["chordal_edges"] == 20
        assert summary["critical_path"] > 0
