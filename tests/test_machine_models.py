"""Tests for the XMT/Opteron machine models and the simulation driver."""

import pytest

from repro.core.extract import extract_maximal_chordal_subgraph
from repro.errors import MachineModelError
from repro.graph.generators.rmat import rmat_b, rmat_er
from repro.machine.calibration import default_opteron, default_xmt
from repro.machine.model import speedup_curve
from repro.machine.opteron import OpteronModel
from repro.machine.xmt import CrayXMTModel


@pytest.fixture(scope="module")
def er_trace():
    g = rmat_er(10, seed=3)
    return extract_maximal_chordal_subgraph(g, collect_trace=True).trace


@pytest.fixture(scope="module")
def b_trace():
    g = rmat_b(10, seed=3)
    return extract_maximal_chordal_subgraph(g, collect_trace=True).trace


class TestSimulationBasics:
    def test_result_structure(self, er_trace):
        res = default_xmt().simulate(er_trace, 4)
        assert res.processors == 4
        assert res.total_seconds > 0
        assert len(res.iteration_seconds) == er_trace.num_iterations
        assert res.total_seconds == pytest.approx(sum(res.iteration_seconds))
        assert 0 < res.sync_seconds < res.total_seconds
        assert res.compute_seconds > 0

    def test_monotone_in_processors(self, er_trace):
        """More processors never slow an iteration's compute below... the
        total may rise slightly from barrier growth, but T(P) <= T(1)."""
        xmt = default_xmt()
        t1 = xmt.simulate(er_trace, 1).total_seconds
        for p in (2, 8, 32, 128):
            assert xmt.simulate(er_trace, p).total_seconds <= t1

    def test_processor_bounds(self, er_trace):
        with pytest.raises(MachineModelError):
            default_xmt().simulate(er_trace, 0)
        with pytest.raises(MachineModelError):
            default_xmt().simulate(er_trace, 129)
        with pytest.raises(MachineModelError):
            default_opteron().simulate(er_trace, 64)

    def test_speedup_curve(self, er_trace):
        curve = speedup_curve(default_xmt(), er_trace, [1, 2, 4])
        assert curve[1] == pytest.approx(1.0)
        assert curve[4] >= curve[2] >= 1.0


class TestPaperShapes:
    """The headline qualitative claims of the paper's Section V."""

    def test_xmt_slower_single_processor(self, er_trace):
        """Fig 6: single-processor XMT is several times slower than AMD."""
        t_xmt = default_xmt().simulate(er_trace, 1).total_seconds
        t_amd = default_opteron().simulate(er_trace, 1).total_seconds
        assert t_xmt > 2 * t_amd

    def test_er_scales_better_than_b_on_xmt(self, er_trace, b_trace):
        """Fig 4: RMAT-B saturates earlier on the XMT than RMAT-ER."""
        xmt = default_xmt()
        s_er = speedup_curve(xmt, er_trace, [64])[64]
        s_b = speedup_curve(xmt, b_trace, [64])[64]
        assert s_er > s_b

    def test_opt_beats_unopt_on_xmt_rmat_b(self):
        """Section V: 'the optimized version is nearly twice as fast as
        the unoptimized for RMAT-B' (on XMT)."""
        g = rmat_b(10, seed=3)
        xmt = default_xmt()
        t_unopt = xmt.simulate(
            extract_maximal_chordal_subgraph(g, collect_trace=True, variant="unoptimized").trace, 64
        ).total_seconds
        t_opt = xmt.simulate(
            extract_maximal_chordal_subgraph(g, collect_trace=True, variant="optimized").trace, 64
        ).total_seconds
        assert t_unopt > 1.5 * t_opt

    def test_opt_unopt_insignificant_on_amd(self):
        """Section V: 'differences between optimized and unoptimized
        algorithms was insignificant' on the Opteron."""
        g = rmat_er(10, seed=3)
        amd = default_opteron()
        t_unopt = amd.simulate(
            extract_maximal_chordal_subgraph(g, collect_trace=True, variant="unoptimized").trace, 1
        ).total_seconds
        t_opt = amd.simulate(
            extract_maximal_chordal_subgraph(g, collect_trace=True, variant="optimized").trace, 1
        ).total_seconds
        assert t_unopt < 1.6 * t_opt


class TestModelConfiguration:
    def test_xmt_validation(self):
        with pytest.raises(MachineModelError):
            CrayXMTModel(clock_hz=0)
        with pytest.raises(MachineModelError):
            CrayXMTModel(streams_per_processor=0)
        with pytest.raises(MachineModelError):
            CrayXMTModel(lookahead=0)

    def test_opteron_validation(self):
        with pytest.raises(MachineModelError):
            OpteronModel(clock_hz=-1)
        with pytest.raises(MachineModelError):
            OpteronModel(miss_rate_floor=0.9, miss_rate_ceiling=0.1)
        with pytest.raises(MachineModelError):
            OpteronModel(serial_fraction=1.0)

    def test_opteron_miss_rate_grows_with_working_set(self, er_trace):
        amd = default_opteron()
        from repro.core.instrument import WorkTrace

        small = WorkTrace("optimized", 100, 1000)
        big = WorkTrace("optimized", 10_000_000, 500_000_000)
        assert amd.miss_rate(small) < amd.miss_rate(big)

    def test_fresh_default_instances(self):
        assert default_xmt() is not default_xmt()
        assert default_opteron() is not default_opteron()


class TestEmptyTrace:
    def test_empty_trace_zero_time(self):
        from repro.core.instrument import WorkTrace

        trace = WorkTrace("optimized", 10, 0)
        res = default_xmt().simulate(trace, 4)
        assert res.total_seconds == 0.0
        assert res.iteration_seconds == []
