"""Result-cache certification for the extraction service.

The cache's identity is ``graph_content_hash × config_cache_key`` over
the *resolved* config.  These tests pin the contract from the outside,
using the server's dispatch counters as instrumentation: a hit must
return the bit-identical stored edge set *without touching a pool*
(``pool_dispatches`` / ``inline_dispatches`` unchanged), while any
change of graph content (relabeling, weights) or resolved regime is a
miss.  The LRU ceilings (entries and bytes) are pinned both through the
:class:`~repro.service.server.ResultCache` unit surface and through a
live server sized to evict.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_graph, rmat_b
from repro.graph.weights import attach_edge_weights
from repro.service import ReproServer, ServiceClient, ServiceConfig
from repro.service.server import ResultCache


def _dispatches(stats) -> int:
    return stats["pool_dispatches"] + stats["inline_dispatches"]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    sock = str(tmp_path_factory.mktemp("svc-cache") / "repro.sock")
    config = ServiceConfig(
        socket_path=sock,
        num_pools=1,
        num_workers=2,
        cache_entries=64,
        barrier_timeout=30.0,
    )
    with ReproServer(config) as srv:
        yield srv


@pytest.fixture
def client(server):
    with ServiceClient(socket_path=server.config.socket_path) as c:
        yield c


def test_cache_hit_is_bit_identical_and_never_touches_a_pool(client):
    graph = rmat_b(7, seed=42)
    config = {"engine": "process"}
    first = client.extract(graph, config=config)
    assert not first.cached and first.served_by == "pool"
    before = client.stats()
    second = client.extract(graph, config=config)
    after = client.stats()
    assert second.cached and second.served_by == "cache"
    assert second.pool is None
    assert (second.edges == first.edges).all()
    assert second.edges.dtype == first.edges.dtype
    # the hit was served without any dispatcher involvement
    assert _dispatches(after) == _dispatches(before)
    assert after["cache_hits"] == before["cache_hits"] + 1


def test_same_content_different_wire_shape_is_a_hit(client):
    graph = rmat_b(6, seed=43)
    config = {"engine": "superstep", "schedule": "synchronous"}
    first = client.extract(graph, config=config, binary=True)
    second = client.extract(graph, config=config, binary=False)
    assert second.cached
    assert (second.edges == first.edges).all()


def test_relabeled_isomorphic_graph_misses(client):
    # Same structure, different vertex names -> different content.
    g = build_graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
    relabeled = build_graph(5, [(1, 2), (2, 3), (3, 4), (4, 0), (0, 1)])
    genuinely = build_graph(5, [(0, 2), (2, 4), (4, 1), (1, 3), (3, 0)])
    config = {"engine": "superstep"}
    client.extract(g, config=config)
    assert client.extract(relabeled, config=config).cached  # same edge set
    assert not client.extract(genuinely, config=config).cached


def test_weighted_and_unweighted_same_topology_miss(client):
    square = build_graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    weighted = attach_edge_weights(
        square, {(0, 1): 4.0, (1, 2): 1.0, (2, 3): 4.0, (0, 3): 1.0}
    )
    config = {"engine": "weighted"}
    unweighted_result = client.extract(square, config=config)
    weighted_result = client.extract(weighted, config=config)
    assert not weighted_result.cached  # weights are part of the identity
    assert client.extract(square, config=config).cached
    assert client.extract(weighted, config=config).cached
    # ... and different weights are a different graph again
    reweighted = attach_edge_weights(
        square, {(0, 1): 1.0, (1, 2): 4.0, (2, 3): 1.0, (0, 3): 4.0}
    )
    assert not client.extract(reweighted, config=config).cached
    assert unweighted_result.num_edges == weighted_result.num_edges == 3


def test_differing_resolved_configs_miss(client):
    graph = rmat_b(6, seed=44)
    base = client.extract(graph, config={"engine": "superstep"})
    assert not base.cached
    for other in (
        {"engine": "superstep", "variant": "unoptimized"},
        {"engine": "superstep", "maximalize": True},
        {"engine": "superstep", "stitch": True},
        {"engine": "superstep", "renumber": "bfs"},
        {"engine": "reference"},
    ):
        assert not client.extract(graph, config=other).cached, other


def test_default_and_explicit_schedule_share_one_entry(client):
    # schedule=None resolves to the engine default — same cache row.
    graph = rmat_b(6, seed=45)
    client.extract(graph, config={"engine": "process"})
    explicit = client.extract(
        graph, config={"engine": "process", "schedule": "synchronous"}
    )
    assert explicit.cached


def test_no_cache_bypasses_both_lookup_and_store(client):
    graph = rmat_b(6, seed=46)
    config = {"engine": "superstep", "variant": "unoptimized", "stitch": True}
    client.extract(graph, config=config, no_cache=True)
    before = client.stats()
    repeat = client.extract(graph, config=config, no_cache=True)
    after = client.stats()
    assert not repeat.cached
    assert _dispatches(after) == _dispatches(before) + 1
    # no_cache runs did not populate the cache either
    assert not client.extract(graph, config=config, no_cache=True).cached


def test_verify_runs_at_most_once_per_cached_entry(client):
    graph = rmat_b(6, seed=47)
    config = {"engine": "superstep", "maximalize": True}
    before = client.stats()
    first = client.extract(graph, config=config, verify=True)
    mid = client.stats()
    assert first.verified and not first.cached
    assert mid["verifications"] == before["verifications"] + 1
    # verified hits are served from the stored bit: no re-verification,
    # no dispatch
    for _ in range(3):
        again = client.extract(graph, config=config, verify=True)
        assert again.cached and again.verified
    after = client.stats()
    assert after["verifications"] == mid["verifications"]
    assert _dispatches(after) == _dispatches(mid)


def test_unverified_hit_is_verified_once_on_demand(client):
    graph = rmat_b(6, seed=48)
    config = {"engine": "superstep", "maximalize": True}
    plain = client.extract(graph, config=config)  # populates, unverified
    assert not plain.verified
    before = client.stats()
    hit = client.extract(graph, config=config, verify=True)
    mid = client.stats()
    assert hit.cached and hit.verified
    assert mid["verifications"] == before["verifications"] + 1
    assert _dispatches(mid) == _dispatches(before)  # verified the cached edges
    # the bit is now stored: further verified hits are free
    assert client.extract(graph, config=config, verify=True).verified
    assert client.stats()["verifications"] == mid["verifications"]


def test_mutate_invalidates_only_the_mutated_graphs_entries(server):
    mutated = rmat_b(6, seed=49)
    bystander = rmat_b(6, seed=50)
    config = {"engine": "superstep"}
    with ServiceClient(socket_path=server.config.socket_path) as client:
        client.extract(mutated, config=config)
        client.extract(bystander, config=config)
        before = client.stats()
        opened = client.mutate(graph=mutated)
        assert opened.session == "opened"
        assert opened.num_graph_edges == mutated.num_edges
        # opening alone mutates nothing and evicts nothing
        assert client.stats()["cache_invalidations"] == before[
            "cache_invalidations"
        ]
        u, v = (int(x) for x in mutated.edge_array()[0])
        step = client.mutate(ops=[("delete", u, v)], verify=True)
        assert step.session == "continued"
        assert step.applied == {
            "applied": 1,
            "inserted": 0,
            "retained": 0,
            "deleted": 1,
        }
        assert step.verified
        assert step.num_graph_edges == mutated.num_edges - 1
        after = client.stats()
        assert after["mutations"] == before["mutations"] + 1
        assert after["cache_invalidations"] > before["cache_invalidations"]
        # targeted: the mutated graph's entry is gone, the bystander's hits
        assert not client.extract(mutated, config=config).cached
        assert client.extract(bystander, config=config).cached
        # round trip: reinsert restores the original edge set
        restored = client.mutate(ops=[("insert", u, v)])
        assert np.array_equal(
            np.sort(restored.edges, axis=0),
            np.sort(client.extract(mutated, config=config).edges, axis=0),
        ) or restored.num_graph_edges == mutated.num_edges


def test_mutate_without_session_or_with_bad_ops_is_rejected(server):
    from repro.service import ServiceError

    with ServiceClient(socket_path=server.config.socket_path) as client:
        with pytest.raises(ServiceError, match="no open mutate session"):
            client.mutate(ops=[("insert", 0, 1)])
        graph = build_graph(4, [(0, 1), (1, 2)])
        client.mutate(graph=graph)
        with pytest.raises(ServiceError, match="mutation rejected"):
            client.mutate(ops=[("delete", 0, 3)])  # not an edge
        # the session survives a rejected mutation and stays coherent
        ok = client.mutate(ops=[("insert", 0, 2)])
        assert ok.session == "continued"
        assert ok.num_graph_edges == 3


def test_mutate_sessions_are_per_connection(server):
    graph = build_graph(4, [(0, 1), (1, 2)])
    with ServiceClient(socket_path=server.config.socket_path) as c1:
        c1.mutate(graph=graph)
        with ServiceClient(socket_path=server.config.socket_path) as c2:
            from repro.service import ServiceError

            with pytest.raises(ServiceError, match="no open mutate session"):
                c2.mutate(ops=[("insert", 0, 2)])
        # c1's session is unaffected by c2's lifecycle
        assert c1.mutate(ops=[("insert", 0, 2)]).session == "continued"


def test_lru_eviction_pins_the_entry_ceiling(tmp_path):
    sock = str(tmp_path / "lru.sock")
    config = ServiceConfig(
        socket_path=sock, num_workers=1, cache_entries=2, barrier_timeout=30.0
    )
    graphs = [rmat_b(5, seed=s) for s in (1, 2, 3)]
    with ReproServer(config):
        with ServiceClient(socket_path=sock) as client:
            for g in graphs:
                client.extract(g, config={"engine": "superstep"})
            stats = client.stats()["cache"]
            assert stats["entries"] <= 2
            assert stats["evictions"] >= 1
            # LRU: g0 (oldest) was evicted, g2 (newest) survives
            assert client.extract(graphs[2], config={"engine": "superstep"}).cached
            assert not client.extract(
                graphs[0], config={"engine": "superstep"}
            ).cached


# ---------------------------------------------------------------------------
# ResultCache unit surface


def _edges(k: int, offset: int = 0) -> np.ndarray:
    return np.arange(offset, offset + 2 * k, dtype=np.int64).reshape(k, 2)


def test_result_cache_entry_ceiling_holds():
    cache = ResultCache(max_entries=3, max_bytes=1 << 20)
    for i in range(10):
        cache.put((i,), _edges(4, i), {"i": i})
        assert cache.stats()["entries"] <= 3
    assert cache.get((9,)) is not None
    assert cache.get((0,)) is None
    assert cache.stats()["evictions"] == 7


def test_result_cache_byte_ceiling_holds():
    row_bytes = _edges(10).nbytes
    cache = ResultCache(max_entries=100, max_bytes=3 * row_bytes)
    for i in range(10):
        cache.put((i,), _edges(10), {})
        assert cache.stats()["bytes"] <= 3 * row_bytes
    assert cache.stats()["entries"] == 3


def test_result_cache_rejects_oversized_entry_outright():
    cache = ResultCache(max_entries=10, max_bytes=64)
    cache.put(("big",), _edges(1000), {})
    assert cache.stats() == {
        "entries": 0,
        "bytes": 0,
        "max_entries": 10,
        "max_bytes": 64,
        "hits": 0,
        "misses": 0,
        "evictions": 0,
    }


def test_result_cache_verified_bit_round_trip():
    cache = ResultCache(max_entries=4, max_bytes=1 << 20)
    cache.put(("a",), _edges(2), {})
    assert not cache.is_verified(("a",))
    cache.mark_verified(("a",))
    assert cache.is_verified(("a",))
    # the verified probe is not a hit and must not refresh recency
    hits = cache.stats()["hits"]
    assert cache.is_verified(("a",))
    assert cache.stats()["hits"] == hits
    # put with verified=True stores the bit up front
    cache.put(("b",), _edges(2, 10), {}, verified=True)
    assert cache.is_verified(("b",))
    # replacing an entry resets its verified bit
    cache.put(("b",), _edges(3, 20), {})
    assert not cache.is_verified(("b",))
    # marking an absent key is a no-op, probing it is False
    cache.mark_verified(("ghost",))
    assert not cache.is_verified(("ghost",))


def test_result_cache_invalidate_graph_targets_one_content_hash():
    cache = ResultCache(max_entries=8, max_bytes=1 << 20)
    cache.put(("h1", "cfgA"), _edges(2), {})
    cache.put(("h1", "cfgB"), _edges(3), {})
    cache.put(("h2", "cfgA"), _edges(4), {})
    assert cache.invalidate_graph("h1") == 2
    assert cache.get(("h1", "cfgA")) is None
    assert cache.get(("h1", "cfgB")) is None
    assert cache.get(("h2", "cfgA")) is not None
    assert cache.stats()["evictions"] == 2
    assert cache.invalidate_graph("absent") == 0


def test_result_cache_get_recency_and_replacement():
    cache = ResultCache(max_entries=2, max_bytes=1 << 20)
    cache.put(("a",), _edges(2), {"tag": "a"})
    cache.put(("b",), _edges(2, 10), {"tag": "b"})
    assert cache.get(("a",))[1]["tag"] == "a"  # refresh 'a'
    cache.put(("c",), _edges(2, 20), {"tag": "c"})  # evicts 'b', not 'a'
    assert cache.get(("b",)) is None
    edges, meta = cache.get(("a",))
    assert (edges == _edges(2)).all()
    # replacing a key updates bytes accounting rather than double-counting
    cache.put(("a",), _edges(5), {"tag": "a2"})
    assert cache.stats()["bytes"] == _edges(5).nbytes + _edges(2).nbytes
