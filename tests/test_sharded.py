"""Out-of-core sharded extraction (:mod:`repro.shard`).

The heart of this suite is the property sweep: for every seeded family x
shard count, the stitched result must be **chordal** (full recognition
check, not sampled) and meet the certified
:func:`~repro.chordality.quality.maximal_chordal_floor` — the same bar
every in-memory engine is held to in ``tests/test_quality_oracles.py``.
Every assertion message carries the ``(family, seed, shards)`` tuple
needed to replay the failing case::

    from repro.shard import extract_sharded
    extract_sharded(path_to(family, seed), num_shards=shards,
                    spill_dir=tmp)

Seam-specific certificates (the exact failure mode of
``baselines/distributed.py``): sampled rejected boundary edges must stay
non-addable against the final subgraph, and sampled boundary
neighbourhoods must be hole-free — a hole in an induced subgraph is a
genuine hole, so one hit disproves chordality at the cut.

The memory-capped proof that sharding actually runs where the in-memory
path cannot lives in ``tests/test_sharded_stress.py``
(``--run-sharded-stress``).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.chordality.maximality import edge_addable
from repro.chordality.quality import maximal_chordal_floor, retained_fraction
from repro.chordality.recognition import find_hole, is_chordal
from repro.chordality.verify import verify_extraction
from repro.core.config import ExtractionConfig
from repro.core.session import Extractor
from repro.errors import ShardError
from repro.graph.builder import build_graph
from repro.graph.generators.chordal import random_chordal
from repro.graph.generators.random import gnp_random_graph
from repro.graph.generators.rmat import rmat_b, rmat_er
from repro.graph.io import save_graph
from repro.shard import (
    build_plan,
    clear_shard_results,
    extract_shard,
    extract_sharded,
    load_boundary_edges,
    load_plan,
    load_shard_edges,
    load_shard_result,
    run_shards,
    sampled_boundary_report,
    stitch_shards,
)

#: family name -> seeded builder.  Sizes are chosen so the full sweep
#: (families x seeds x shard counts, each planning + extracting every
#: shard + stitching) stays tier-1 fast.
FAMILIES = {
    "gnp": lambda s: gnp_random_graph(90 + 7 * (s % 3), 0.08, seed=s),
    "rmat_er": lambda s: rmat_er(7, seed=s),
    "rmat_b": lambda s: rmat_b(7, seed=s),
    "chordal": lambda s: random_chordal(60, 0.2, seed=s),
}


def _spill(tmp_path, graph, num_shards, *, name="g.txt", config=None):
    """Write ``graph`` to disk and run the full sharded pipeline."""
    path = tmp_path / name
    save_graph(graph, path, format="edgelist")
    return extract_sharded(
        path,
        num_shards=num_shards,
        spill_dir=tmp_path / f"spill_{name}_{num_shards}",
        config=config,
    )


class TestPropertySweep:
    @pytest.mark.parametrize("shards", [2, 3, 5])
    @pytest.mark.parametrize("seed", [1, 2])
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_stitched_chordal_and_meets_floor(
        self, tmp_path, family, seed, shards
    ):
        graph = FAMILIES[family](seed)
        result = _spill(tmp_path, graph, shards)
        subgraph = result.subgraph()
        tag = f"(family={family!r}, seed={seed}, shards={shards})"
        hole = find_hole(subgraph)
        assert hole is None, (
            f"stitched result has hole {hole} {tag} — the boundary "
            "reconciliation admitted a chord-free cycle"
        )
        floor = maximal_chordal_floor(graph)
        assert result.num_chordal_edges >= floor, (
            f"stitched result keeps {result.num_chordal_edges} edges, "
            f"certified floor is {floor} {tag}"
        )
        # Output edges are a subset of the input's.
        in_set = graph.edge_set()
        out = {(int(u), int(v)) for u, v in result.edges}
        assert out <= in_set, (
            f"stitched result invents edges {sorted(out - in_set)[:3]} {tag}"
        )

    @pytest.mark.parametrize("seed", [1, 2])
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_boundary_certificates(self, tmp_path, family, seed):
        """The sampled seam report must be clean, and — independently of
        its sampling — every rejected boundary edge must be non-addable
        against the final subgraph (the fixpoint's full certificate)."""
        graph = FAMILIES[family](seed)
        result = _spill(tmp_path, graph, 3)
        tag = f"(family={family!r}, seed={seed}, shards=3)"
        report = sampled_boundary_report(result, samples=48, seed=0)
        assert report["ok"], f"seam certificates failed {tag}: {report}"
        adj = [set() for _ in range(result.num_vertices)]
        for u, v in result.edges:
            adj[int(u)].add(int(v))
            adj[int(v)].add(int(u))
        for u, v in result.rejected[:64]:
            assert not edge_addable(adj, int(u), int(v)), (
                f"rejected boundary edge ({u}, {v}) is addable {tag} — "
                "stitching stopped before its fixpoint"
            )

    def test_chordal_input_survives_whole(self, tmp_path):
        """A chordal input must come back with every edge — sharding can
        never lose edges a maximal extraction must keep."""
        graph = random_chordal(50, 0.25, seed=9)
        result = _spill(tmp_path, graph, 4)
        assert result.num_chordal_edges == graph.num_edges, (
            f"(family='chordal', seed=9, shards=4): kept "
            f"{result.num_chordal_edges} of {graph.num_edges} edges of a "
            "chordal input"
        )

    def test_single_shard_matches_in_memory_engine(self, tmp_path):
        """shards=1 has no boundary: the pipeline must reduce exactly to
        the in-memory engine under the same (deterministic) config."""
        graph = rmat_er(7, seed=4)
        result = _spill(tmp_path, graph, 1)
        assert result.boundary_edges == 0
        with Extractor(maximalize=True) as session:
            expected = session.extract(graph)
        assert np.array_equal(result.edges, expected.edges)

    def test_retained_fraction_tracks_in_memory(self, tmp_path):
        """Sharding trades retained edges for memory; the loss on a
        modest RMAT graph must stay small (the ICPP motivation dies if
        sharding throws away half the subgraph)."""
        graph = rmat_er(8, seed=6)
        result = _spill(tmp_path, graph, 4)
        with Extractor(maximalize=True) as session:
            expected = session.extract(graph)
        sharded_frac = retained_fraction(graph, result.edges)
        memory_frac = retained_fraction(graph, expected.edges)
        assert sharded_frac >= 0.75 * memory_frac, (
            f"(family='rmat_er', seed=6, shards=4): sharded retains "
            f"{sharded_frac:.3f} vs in-memory {memory_frac:.3f}"
        )


class TestPlan:
    def test_spills_partition_the_edge_set(self, tmp_path):
        """Union of per-shard spills + boundary spill == the input's
        canonical edge set; locals land inside one shard's range,
        boundary pairs straddle two."""
        graph = gnp_random_graph(70, 0.1, seed=3)
        path = tmp_path / "g.txt"
        save_graph(graph, path, format="edgelist")
        plan, reused = build_plan(path, 3, tmp_path / "spill")
        assert not reused
        rebuilt = set()
        for s in range(3):
            lo, hi = plan.shard_range(s)
            for u, v in load_shard_edges(plan, s):
                assert lo <= u < hi and lo <= v < hi
                rebuilt.add((int(u), int(v)))
        for u, v in load_boundary_edges(plan):
            assert int(plan.owner_of(np.array([u]))[0]) != int(
                plan.owner_of(np.array([v]))[0]
            )
            rebuilt.add((int(u), int(v)))
        assert rebuilt == graph.edge_set()
        assert plan.cuts[0] == 0 and plan.cuts[-1] == graph.num_vertices

    def test_resume_reuses_matching_plan(self, tmp_path):
        graph = gnp_random_graph(40, 0.1, seed=1)
        path = tmp_path / "g.txt"
        save_graph(graph, path, format="edgelist")
        plan, reused = build_plan(path, 2, tmp_path / "spill")
        assert not reused
        again, reused = build_plan(path, 2, tmp_path / "spill")
        assert reused and again == plan

    def test_changed_input_invalidates_plan(self, tmp_path):
        path = tmp_path / "g.txt"
        save_graph(gnp_random_graph(40, 0.1, seed=1), path, format="edgelist")
        plan, _reused = build_plan(path, 2, tmp_path / "spill")
        save_graph(gnp_random_graph(40, 0.1, seed=2), path, format="edgelist")
        fresh, reused = build_plan(path, 2, tmp_path / "spill")
        assert not reused and fresh.input_digest != plan.input_digest

    def test_different_shard_count_replans(self, tmp_path):
        path = tmp_path / "g.txt"
        save_graph(gnp_random_graph(40, 0.1, seed=1), path, format="edgelist")
        build_plan(path, 2, tmp_path / "spill")
        plan, reused = build_plan(path, 3, tmp_path / "spill")
        assert not reused and plan.num_shards == 3

    def test_damaged_spill_triggers_replan(self, tmp_path):
        path = tmp_path / "g.txt"
        save_graph(gnp_random_graph(40, 0.1, seed=1), path, format="edgelist")
        plan, _reused = build_plan(path, 2, tmp_path / "spill")
        plan.spill_path(0).write_bytes(b"short")
        _again, reused = build_plan(path, 2, tmp_path / "spill")
        assert not reused  # intact check caught the truncation

    def test_snap_sparse_ids_are_compacted(self, tmp_path):
        graph = gnp_random_graph(30, 0.15, seed=7)
        path = tmp_path / "dump.txt"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("# FromNodeId\tToNodeId\n")
            for u, v in graph.iter_edges():
                fh.write(f"{u * 13}\t{v * 13}\n")
        plan, _reused = build_plan(path, 2, tmp_path / "spill", format="snap")
        assert plan.has_labels
        labels = plan.labels()
        assert np.array_equal(labels % 13, np.zeros_like(labels))
        assert plan.num_vertices == labels.size

    def test_degree_balanced_cuts_beat_vertex_split_on_rmat(self, tmp_path):
        """The planner must bin by degree mass: on RMAT-B the hub-heavy
        low-id range would otherwise swallow most spill bytes."""
        graph = rmat_b(9, seed=3)
        path = tmp_path / "g.txt"
        save_graph(graph, path, format="edgelist")
        plan, _reused = build_plan(path, 4, tmp_path / "spill")
        sizes = [plan.cuts[s + 1] - plan.cuts[s] for s in range(4)]
        # Degree balancing on a power-law sequence must give the hub
        # shard far fewer vertices than the tail shard.
        assert min(sizes) < max(sizes) / 2, (
            f"cuts {plan.cuts} look like a vertex-count split on RMAT-B"
        )

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.txt"
        save_graph(build_graph(3, []), path, format="edgelist")
        result = extract_sharded(
            path, num_shards=2, spill_dir=tmp_path / "spill"
        )
        assert result.num_chordal_edges == 0
        assert result.boundary_edges == 0

    def test_bad_shard_count_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        save_graph(build_graph(3, [(0, 1)]), path, format="edgelist")
        with pytest.raises(ShardError, match="num_shards"):
            build_plan(path, 0, tmp_path / "spill")

    def test_load_plan_missing_dir(self, tmp_path):
        with pytest.raises(ShardError, match="repro shard plan"):
            load_plan(tmp_path)

    def test_plan_json_round_trips(self, tmp_path):
        path = tmp_path / "g.txt"
        save_graph(gnp_random_graph(40, 0.1, seed=1), path, format="edgelist")
        plan, _reused = build_plan(path, 2, tmp_path / "spill")
        assert load_plan(tmp_path / "spill") == plan
        payload = json.loads(plan.plan_path.read_text())
        assert payload["num_shards"] == 2


class TestCacheAndResume:
    def _plan(self, tmp_path, seed=1):
        path = tmp_path / "g.txt"
        save_graph(gnp_random_graph(60, 0.1, seed=seed), path, format="edgelist")
        plan, _reused = build_plan(path, 2, tmp_path / "spill")
        return plan

    def test_second_run_loads_from_cache(self, tmp_path):
        plan = self._plan(tmp_path)
        first = run_shards(plan)
        second = run_shards(plan)
        assert not any(s.from_cache for s in first)
        assert all(s.from_cache for s in second)
        assert [s.retained_edges for s in first] == [
            s.retained_edges for s in second
        ]

    def test_config_change_misses_cache(self, tmp_path):
        plan = self._plan(tmp_path)
        run_shards(plan)
        other = ExtractionConfig(engine="reference", maximalize=True)
        assert load_shard_result(plan, 0, other) is None
        stats = run_shards(plan, config=other)
        assert not any(s.from_cache for s in stats)

    def test_corrupt_result_is_a_miss(self, tmp_path):
        plan = self._plan(tmp_path)
        run_shards(plan)
        plan.result_path(0).write_bytes(b"not an npz archive")
        stats = run_shards(plan)
        assert not stats[0].from_cache and stats[1].from_cache

    def test_clear_shard_results(self, tmp_path):
        plan = self._plan(tmp_path)
        run_shards(plan)
        assert clear_shard_results(plan) == 2
        assert clear_shard_results(plan) == 0

    def test_partial_run_resumes_per_shard(self, tmp_path):
        """The crash-resume contract: extracting shard 0, 'crashing',
        then re-running the batch must only extract the missing shard."""
        plan = self._plan(tmp_path)
        extract_shard(plan, 0)
        stats = run_shards(plan)
        assert stats[0].from_cache and not stats[1].from_cache

    def test_stitch_requires_results(self, tmp_path):
        plan = self._plan(tmp_path)
        with pytest.raises(ShardError, match="repro shard run"):
            stitch_shards(plan)

    def test_stitch_is_deterministic(self, tmp_path):
        graph = rmat_er(7, seed=11)
        a = _spill(tmp_path, graph, 3, name="a.txt")
        b = _spill(tmp_path, graph, 3, name="b.txt")
        assert np.array_equal(a.edges, b.edges)
        assert a.rounds == b.rounds

    def test_session_and_config_conflict(self, tmp_path):
        plan = self._plan(tmp_path)
        with Extractor(maximalize=True) as session:
            with pytest.raises(ShardError, match="not both"):
                extract_shard(
                    plan, 0, session=session, config=ExtractionConfig()
                )

    def test_per_shard_verification(self, tmp_path):
        plan = self._plan(tmp_path)
        for shard in range(plan.num_shards):
            edges, stats = extract_shard(plan, shard, verify=True)
            assert stats.verified
            lo, hi = plan.shard_range(shard)
            from repro.graph.builder import from_edge_array

            g = from_edge_array(hi - lo, load_shard_edges(plan, shard) - lo)
            report = verify_extraction(g, edges - lo, check_maximal=True)
            assert report.ok, f"shard {shard}: {report}"


class TestStitchedStructure:
    def test_union_without_boundary_is_chordal(self, tmp_path):
        """Sanity for the 'chordal by construction' argument: the
        pre-stitch union (intra-shard edges only) is already chordal."""
        graph = rmat_er(7, seed=2)
        path = tmp_path / "g.txt"
        save_graph(graph, path, format="edgelist")
        plan, _reused = build_plan(path, 3, tmp_path / "spill")
        run_shards(plan)
        result = stitch_shards(plan)
        intra = result.edges.shape[0] - result.admitted_boundary
        assert intra == result.intra_shard_edges
        union = np.array(
            [
                row
                for row in result.edges.tolist()
                if tuple(row) not in {tuple(r) for r in result.admitted.tolist()}
            ],
            dtype=np.int64,
        ).reshape(-1, 2)
        from repro.graph.builder import from_edge_array

        assert is_chordal(from_edge_array(result.num_vertices, union))

    def test_admitted_plus_rejected_cover_boundary(self, tmp_path):
        graph = rmat_er(7, seed=5)
        result = _spill(tmp_path, graph, 4)
        assert (
            result.admitted_boundary + result.rejected.shape[0]
            == result.boundary_edges
        )
