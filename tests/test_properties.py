"""Cross-cutting property-based tests on the core invariants.

These are the reproduction's load-bearing guarantees, fuzzed with
hypothesis over random graphs:

1. Theorem 1 — every engine/schedule/variant output is chordal;
2. certified maximality after the completion pass;
3. engine agreement (superstep == reference; threaded-sync == sync);
4. the chordal edge set is a subset of the input edges with parents below
   children;
5. queue-size sanity (positive, bounded by n).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chordality.maximality import addable_edges
from repro.chordality.recognition import is_chordal
from repro.core.extract import extract_maximal_chordal_subgraph
from repro.core.reference import reference_max_chordal
from repro.core.superstep import superstep_max_chordal
from tests.conftest import random_graph_from_data


def graphs(draw, max_n=10):
    n = draw(st.integers(1, max_n))
    bits = draw(
        st.lists(st.booleans(), min_size=n * (n - 1) // 2, max_size=n * (n - 1) // 2)
    )
    return random_graph_from_data(n, bits)


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_theorem1_chordality_all_configs(data):
    g = graphs(data.draw)
    schedule = data.draw(st.sampled_from(["asynchronous", "synchronous"]))
    variant = data.draw(st.sampled_from(["optimized", "unoptimized"]))
    engine = data.draw(st.sampled_from(["superstep", "threaded", "reference"]))
    result = extract_maximal_chordal_subgraph(
        g, engine=engine, variant=variant, schedule=schedule, num_threads=2
    )
    assert is_chordal(result.subgraph)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_certified_maximality_after_completion(data):
    g = graphs(data.draw, max_n=9)
    result = extract_maximal_chordal_subgraph(g, renumber="bfs", maximalize=True)
    assert is_chordal(result.subgraph)
    assert addable_edges(g, result.subgraph, limit=1) == []


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_engines_agree(data):
    g = graphs(data.draw)
    schedule = data.draw(st.sampled_from(["asynchronous", "synchronous"]))
    ref, ref_qs = reference_max_chordal(g, schedule=schedule)
    got, qs, _ = superstep_max_chordal(g, schedule=schedule)
    assert {tuple(e) for e in ref.tolist()} == {tuple(e) for e in got.tolist()}
    assert qs == ref_qs


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_edge_set_invariants(data):
    g = graphs(data.draw)
    result = extract_maximal_chordal_subgraph(g)
    edges = result.edges
    # subset of input edges
    assert result.subgraph.edge_set() <= g.edge_set()
    # canonical (u < v), no duplicates
    if edges.size:
        assert bool(np.all(edges[:, 0] < edges[:, 1]))
        keys = edges[:, 0] * g.num_vertices + edges[:, 1]
        assert np.unique(keys).size == keys.size
    # spanning-forest lower bound: EC connects at least as much as a forest
    # would within each component reachable through chordal edges
    assert result.num_chordal_edges <= g.num_edges


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_queue_size_sanity(data):
    g = graphs(data.draw)
    result = extract_maximal_chordal_subgraph(g)
    for q in result.queue_sizes:
        assert 1 <= q <= g.num_vertices
    # iterations bounded by max degree + 1 (paper's O(Delta) bound)
    assert result.num_iterations <= g.max_degree() + 1


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_chordal_input_fully_retained(data):
    """If the input is already chordal, Algorithm 1 keeps every edge
    (the subset tests always pass along a perfect elimination structure)?
    Not guaranteed by the paper — but the *completion pass* must restore
    every edge of a chordal input."""
    g = graphs(data.draw, max_n=8)
    sub = extract_maximal_chordal_subgraph(g).subgraph  # chordal input
    result = extract_maximal_chordal_subgraph(sub, renumber="bfs", maximalize=True)
    assert result.subgraph.edge_set() == sub.edge_set()


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_dearing_certified_maximal(data):
    from repro.baselines.dearing import dearing_max_chordal
    from repro.graph.ops import edge_subgraph

    g = graphs(data.draw, max_n=9)
    sub = edge_subgraph(g, dearing_max_chordal(g))
    assert is_chordal(sub)
    assert addable_edges(g, sub, limit=1) == []


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(4, 25),
    k=st.integers(1, 3),
    seed=st.integers(0, 50),
)
def test_ktree_roundtrip_through_full_stack(n, k, seed):
    """Known-chordal input (k-tree): recognition accepts it, the completion
    pass restores all of it, and its treewidth survives the pipeline."""
    from repro.chordalg.treewidth import chordal_treewidth
    from repro.graph.generators.chordal import ktree

    if n < k + 1:
        n = k + 1
    g = ktree(n, k, seed=seed)
    assert is_chordal(g)
    result = extract_maximal_chordal_subgraph(g, renumber="bfs", maximalize=True)
    assert result.subgraph.edge_set() == g.edge_set()
    assert chordal_treewidth(result.subgraph) == (k if n > k else n - 1)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 40), density=st.floats(0, 1), seed=st.integers(0, 50))
def test_random_chordal_extraction_preserves_connectivity(n, density, seed):
    """On connected chordal inputs, BFS-renumbered extraction keeps the
    graph connected (Theorem 2's corollary chain)."""
    from repro.graph.bfs import connected_components
    from repro.graph.generators.chordal import random_chordal

    g = random_chordal(n, density, seed=seed)
    result = extract_maximal_chordal_subgraph(g, renumber="bfs")
    assert connected_components(result.subgraph)[0] == connected_components(g)[0]
