"""Tests for structural graph operations."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.builder import build_graph
from repro.graph.generators.classic import complete_graph, cycle_graph, path_graph
from repro.graph.ops import (
    complement,
    degree_histogram,
    edge_subgraph,
    induced_subgraph,
    relabel,
    union_edges,
)


@pytest.fixture
def diamond():
    return build_graph(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])


class TestEdgeSubgraph:
    def test_keeps_all_vertices(self, diamond):
        sub = edge_subgraph(diamond, [(0, 1)])
        assert sub.num_vertices == 4
        assert sub.num_edges == 1

    def test_empty_edge_set(self, diamond):
        sub = edge_subgraph(diamond, [])
        assert sub.num_edges == 0

    def test_numpy_input(self, diamond):
        sub = edge_subgraph(diamond, np.array([[0, 1], [1, 3]]))
        assert sub.edge_set() == {(0, 1), (1, 3)}

    def test_foreign_edge_rejected(self, diamond):
        with pytest.raises(GraphFormatError, match="not present"):
            edge_subgraph(diamond, [(0, 3)])


class TestInducedSubgraph:
    def test_relabels(self, diamond):
        sub, mapping = induced_subgraph(diamond, [1, 2, 3])
        assert sub.num_vertices == 3
        assert list(mapping) == [1, 2, 3]
        assert sub.edge_set() == {(0, 1), (0, 2), (1, 2)}

    def test_empty_selection(self, diamond):
        sub, mapping = induced_subgraph(diamond, [])
        assert sub.num_vertices == 0
        assert mapping.size == 0

    def test_out_of_range_rejected(self, diamond):
        with pytest.raises(GraphFormatError):
            induced_subgraph(diamond, [9])

    def test_duplicates_ignored(self, diamond):
        sub, mapping = induced_subgraph(diamond, [2, 2, 1])
        assert sub.num_vertices == 2


class TestRelabel:
    def test_identity(self, diamond):
        assert relabel(diamond, np.arange(4)) == diamond

    def test_swap_preserves_structure(self, diamond):
        perm = np.array([3, 1, 2, 0])
        out = relabel(diamond, perm)
        assert out.num_edges == diamond.num_edges
        assert sorted(out.degrees().tolist()) == sorted(diamond.degrees().tolist())

    def test_non_permutation_rejected(self, diamond):
        with pytest.raises(GraphFormatError, match="permutation"):
            relabel(diamond, np.array([0, 0, 1, 2]))

    def test_wrong_length_rejected(self, diamond):
        with pytest.raises(GraphFormatError):
            relabel(diamond, np.array([0, 1, 2]))


class TestUnionComplement:
    def test_union(self):
        a = build_graph(4, [(0, 1)])
        b = build_graph(4, [(1, 2)])
        assert union_edges(a, b).edge_set() == {(0, 1), (1, 2)}

    def test_union_overlapping(self):
        a = build_graph(3, [(0, 1), (1, 2)])
        b = build_graph(3, [(1, 2)])
        assert union_edges(a, b).num_edges == 2

    def test_union_size_mismatch(self):
        with pytest.raises(GraphFormatError):
            union_edges(build_graph(3, []), build_graph(4, []))

    def test_complement_of_empty_is_complete(self):
        comp = complement(build_graph(4, []))
        assert comp.num_edges == 6

    def test_complement_of_complete_is_empty(self):
        assert complement(complete_graph(5)).num_edges == 0

    def test_complement_involution(self):
        g = cycle_graph(6)
        assert complement(complement(g)) == g

    def test_complement_size_guard(self):
        with pytest.raises(ValueError):
            complement(build_graph(5000, []))


class TestDegreeHistogram:
    def test_path(self):
        hist = degree_histogram(path_graph(4))
        assert list(hist) == [0, 2, 2]

    def test_empty(self):
        assert list(degree_histogram(build_graph(0, []))) == [0]

    def test_sums_to_n(self):
        g = cycle_graph(7)
        assert degree_histogram(g).sum() == 7
