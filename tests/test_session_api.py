"""Tests for the session API: ExtractionConfig, the engine registry and
Extractor — plus the back-compat contract of the legacy shims.

Covers the redesign's acceptance criteria:

* shim vs Extractor bit-identity across every engine x schedule cell
  (deterministic cells exact, nondeterministic async cells
  ``verify_extraction``-valid);
* registry capability rejection messages (unknown engine, unsupported
  schedule, collect_trace without the supports_trace capability, pool
  with a pool-incapable engine);
* ``stream()`` laziness — the first result is yielded before the input
  iterator is exhausted;
* pool reuse — N process-engine extracts through one Extractor spawn
  exactly one worker team;
* the pool/num_workers conflict check (previously silently ignored).
"""

import numpy as np
import pytest

from repro.chordality.verify import verify_extraction
from repro.core.config import ExtractionConfig
from repro.core.engines import (
    EngineSpec,
    engine_names,
    get_engine,
    register_engine,
    schedule_names,
    unregister_engine,
)
from repro.core.extract import (
    ENGINES,
    SCHEDULES,
    extract_many,
    extract_maximal_chordal_subgraph,
)
from repro.core.procpool import ProcessPool
from repro.core.session import Extractor
from repro.errors import ConfigError, ReproError, SessionClosedError
from repro.graph.generators.classic import cycle_graph, path_graph
from repro.graph.generators.rmat import rmat_b, rmat_er


class TestExtractionConfig:
    def test_defaults_validate(self):
        cfg = ExtractionConfig()
        assert cfg.engine == "superstep"
        assert cfg.schedule is None
        assert cfg.num_workers is None

    def test_resolved_fills_engine_default_schedule(self):
        assert ExtractionConfig().resolved().schedule == "asynchronous"
        assert (
            ExtractionConfig(engine="process").resolved().schedule == "synchronous"
        )
        assert (
            ExtractionConfig(engine="threaded").resolved().schedule == "asynchronous"
        )

    def test_resolved_keeps_explicit_schedule(self):
        cfg = ExtractionConfig(engine="process", schedule="asynchronous")
        assert cfg.resolved().schedule == "asynchronous"

    def test_resolved_fills_num_workers(self):
        assert ExtractionConfig().resolved().num_workers == 4
        assert ExtractionConfig(num_workers=2).resolved().num_workers == 2

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExtractionConfig().engine = "threaded"

    def test_replace_revalidates(self):
        cfg = ExtractionConfig()
        assert cfg.replace(engine="process").engine == "process"
        with pytest.raises(ConfigError):
            cfg.replace(engine="gpu")

    def test_deterministic_property(self):
        assert ExtractionConfig(engine="superstep").deterministic
        assert ExtractionConfig(engine="reference").deterministic
        assert ExtractionConfig(engine="process").deterministic  # sync default
        assert not ExtractionConfig(
            engine="process", schedule="asynchronous"
        ).deterministic
        assert not ExtractionConfig(engine="threaded").deterministic


class TestConfigErrors:
    """Every bad argument raises ConfigError — one catchable base class
    (ReproError) without breaking ValueError-era callers."""

    def test_configerror_is_reproerror_and_valueerror(self):
        assert issubclass(ConfigError, ReproError)
        assert issubclass(ConfigError, ValueError)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"engine": "gpu"},
            {"variant": "turbo"},
            {"schedule": "warp"},
            {"renumber": "dfs"},
            {"num_threads": 0},
            {"num_workers": 0},
            {"max_iterations": 0},
            {"engine": "process", "collect_trace": True},
        ],
    )
    def test_bad_field_raises_configerror(self, kwargs):
        with pytest.raises(ConfigError):
            ExtractionConfig(**kwargs)

    def test_unknown_engine_message_lists_registry(self):
        with pytest.raises(ConfigError, match="superstep.*threaded.*process"):
            ExtractionConfig(engine="gpu")

    def test_collect_trace_message_names_capable_engines(self):
        with pytest.raises(ConfigError, match="supports_trace.*superstep"):
            ExtractionConfig(engine="reference", collect_trace=True)

    def test_shims_raise_configerror(self):
        g = cycle_graph(4)
        with pytest.raises(ConfigError):
            extract_maximal_chordal_subgraph(g, engine="gpu")
        with pytest.raises(ConfigError):
            extract_many([g], schedule="warp")

    def test_shims_keep_valueerror_compat(self):
        with pytest.raises(ValueError, match="engine"):
            extract_maximal_chordal_subgraph(cycle_graph(4), engine="gpu")

    def test_shim_schedule_none_resolves_to_engine_default(self):
        """schedule=None through the single-call shim means "the engine's
        registered default" (previously it raised) — same rule as
        extract_many and ExtractionConfig."""
        g = cycle_graph(6)
        r = extract_maximal_chordal_subgraph(g, schedule=None)
        assert r.schedule == "asynchronous"
        r = extract_maximal_chordal_subgraph(g, engine="process", schedule=None)
        assert r.schedule == "synchronous"


class TestRegistry:
    def test_builtin_names_and_views(self):
        assert engine_names() == (
            "superstep",
            "threaded",
            "native",
            "process",
            "reference",
            "weighted",
        )
        assert tuple(ENGINES) == engine_names()
        assert tuple(SCHEDULES) == schedule_names() == (
            "asynchronous",
            "synchronous",
        )

    def test_capability_flags(self):
        assert get_engine("superstep").supports_trace
        assert get_engine("threaded").supports_trace
        assert get_engine("process").supports_pool
        assert not get_engine("process").supports_trace
        assert not get_engine("reference").supports_trace
        assert get_engine("process").is_deterministic("synchronous")
        assert not get_engine("process").is_deterministic("asynchronous")
        assert get_engine("reference").is_deterministic("asynchronous")

    def test_weighted_engine_capabilities(self):
        """The quality engine: weight-aware, synchronous-only, a different
        algorithm tag (excluded from Algorithm-1 bit-identity sweeps)."""
        spec = get_engine("weighted")
        assert spec.supports_weights
        assert spec.algorithm == "maxchord"
        assert spec.schedules == ("synchronous",)
        assert spec.is_deterministic("synchronous")
        assert not spec.supports_pool and not spec.supports_trace
        # Algorithm-1 engines carry the default tag and no weight support.
        for name in ("superstep", "threaded", "process", "reference"):
            other = get_engine(name)
            assert other.algorithm == "algorithm1"
            assert not other.supports_weights

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_engine(get_engine("superstep"))

    def test_get_unknown_engine_message(self):
        with pytest.raises(ConfigError, match="unknown engine 'gpu'"):
            get_engine("gpu")

    def test_third_party_engine_registers_and_runs(self):
        """A registered engine shows up in the derived views, drives the
        session, and its capability limits produce data-driven errors."""

        def run_fixed(graph, config, pool):
            return np.empty((0, 2), dtype=np.int64), [], None

        spec = EngineSpec(
            name="nulleng",
            run_fn=run_fixed,
            description="returns the empty edge set",
            schedules=("synchronous",),
            default_schedule="synchronous",
            deterministic_schedules=("synchronous",),
        )
        register_engine(spec)
        try:
            assert "nulleng" in ENGINES
            assert "nulleng" in engine_names()
            # schedule=None resolves to the engine's declared default
            cfg = ExtractionConfig(engine="nulleng").resolved()
            assert cfg.schedule == "synchronous"
            with Extractor(cfg) as ex:
                r = ex.extract(cycle_graph(4))
            assert r.num_chordal_edges == 0
            assert r.engine == "nulleng"
            # capability rejection: the unsupported schedule is named
            # along with the supported set
            with pytest.raises(
                ConfigError,
                match="'nulleng' does not support schedule 'asynchronous'",
            ):
                ExtractionConfig(engine="nulleng", schedule="asynchronous")
            # the legacy shim accepts it too (registry-driven dispatch)
            r2 = extract_maximal_chordal_subgraph(
                cycle_graph(4), engine="nulleng", schedule="synchronous"
            )
            assert r2.num_chordal_edges == 0
        finally:
            unregister_engine("nulleng")
        assert "nulleng" not in ENGINES
        with pytest.raises(ConfigError):
            ExtractionConfig(engine="nulleng")

    def test_bad_spec_rejected(self):
        with pytest.raises(ConfigError, match="default_schedule"):
            EngineSpec(name="x", run_fn=lambda *a: None, schedules=("synchronous",))
        with pytest.raises(ConfigError, match="deterministic_schedules"):
            EngineSpec(
                name="x",
                run_fn=lambda *a: None,
                schedules=("synchronous",),
                default_schedule="synchronous",
                deterministic_schedules=("warp",),
            )

    def test_plain_protocol_object_checked_at_registration(self):
        """A non-EngineSpec object conforming to the Engine protocol is
        held to the same capability invariants when registered, so the
        error surfaces at registration, not at extract-time resolution."""

        class Bogus:
            name = "bogus"
            description = ""
            schedules = ("synchronous",)
            default_schedule = "asynchronous"  # not in schedules
            deterministic_schedules = ()
            supports_trace = False
            supports_pool = False

            def run(self, graph, config, pool=None):
                return np.empty((0, 2), dtype=np.int64), [], None

        with pytest.raises(ConfigError, match="default_schedule"):
            register_engine(Bogus())
        assert "bogus" not in engine_names()

    def test_missing_protocol_attributes_rejected_at_registration(self):
        class Incomplete:
            name = "incomplete"
            schedules = ("synchronous",)
            default_schedule = "synchronous"
            deterministic_schedules = ()
            # no description / supports_trace / supports_pool / run

        with pytest.raises(ConfigError, match="missing required"):
            register_engine(Incomplete())

        class NoRun:
            name = "norun"
            description = ""
            schedules = ("synchronous",)
            default_schedule = "synchronous"
            deterministic_schedules = ()
            supports_trace = False
            supports_pool = False

        with pytest.raises(ConfigError, match="callable run"):
            register_engine(NoRun())
        assert "incomplete" not in engine_names()
        assert "norun" not in engine_names()


class TestShimExtractorIdentity:
    """Acceptance: Extractor(config).extract(g) is bit-identical to the
    legacy function for every engine x schedule x variant cell —
    deterministic cells exact, nondeterministic ones verify-valid."""

    @pytest.fixture(scope="class")
    def graphs(self):
        return [rmat_b(6, seed=3), rmat_er(6, seed=7), cycle_graph(9)]

    @pytest.mark.parametrize("engine", ["superstep", "threaded", "process", "reference"])
    @pytest.mark.parametrize("schedule", ["asynchronous", "synchronous"])
    @pytest.mark.parametrize("variant", ["optimized", "unoptimized"])
    def test_cell(self, graphs, engine, schedule, variant):
        config = ExtractionConfig(
            engine=engine,
            schedule=schedule,
            variant=variant,
            num_threads=2,
            num_workers=2,
        )
        spec = config.engine_spec
        with Extractor(config) as ex:
            for g in graphs:
                session = ex.extract(g)
                legacy = extract_maximal_chordal_subgraph(
                    g,
                    engine=engine,
                    schedule=schedule,
                    variant=variant,
                    num_threads=2,
                    num_workers=2,
                )
                assert session.engine == legacy.engine == engine
                assert session.schedule == legacy.schedule == schedule
                if spec.is_deterministic(schedule):
                    assert np.array_equal(session.edges, legacy.edges), (
                        engine,
                        schedule,
                        variant,
                    )
                else:
                    for r in (session, legacy):
                        report = verify_extraction(g, r, check_maximal=False)
                        assert report.ok, (engine, schedule, variant, report)

    def test_extract_many_matches_session(self, graphs):
        legacy = extract_many(graphs, engine="process", num_workers=2)
        with Extractor(
            ExtractionConfig(engine="process", num_workers=2)
        ) as ex:
            session = ex.extract_many(graphs)
        for a, b in zip(legacy, session):
            assert a.schedule == b.schedule == "synchronous"
            assert np.array_equal(a.edges, b.edges)

    def test_pipeline_knobs_through_session(self):
        g = rmat_b(6, seed=4)
        cfg = ExtractionConfig(renumber="bfs", maximalize=True, stitch=True)
        with Extractor(cfg) as ex:
            session = ex.extract(g)
        legacy = extract_maximal_chordal_subgraph(
            g, renumber="bfs", maximalize=True, stitch=True
        )
        assert np.array_equal(session.edges, legacy.edges)
        assert session.renumbered and legacy.renumbered
        assert session.maximality_gap == legacy.maximality_gap
        assert session.stitched_bridges == legacy.stitched_bridges

    def test_collect_trace_through_session(self):
        g = cycle_graph(6)
        with Extractor(ExtractionConfig(collect_trace=True)) as ex:
            r = ex.extract(g)
        assert r.trace is not None


class TestExtractorLifecycle:
    def test_context_manager_closes(self):
        ex = Extractor(ExtractionConfig())
        with ex:
            ex.extract(cycle_graph(4))
        with pytest.raises(RuntimeError, match="closed"):
            ex.extract(cycle_graph(4))

    def test_close_idempotent(self):
        ex = Extractor(ExtractionConfig())
        ex.close()
        ex.close()

    def test_kwargs_shorthand(self):
        with Extractor(engine="reference") as ex:
            assert ex.config.engine == "reference"
            assert ex.config.schedule == "asynchronous"  # resolved

    def test_kwargs_override_config(self):
        base = ExtractionConfig(engine="superstep")
        with Extractor(base, engine="reference") as ex:
            assert ex.config.engine == "reference"

    def test_stream_is_lazy(self):
        """The first result arrives before the input iterator advances
        past the first graph — million-graph inputs never materialise."""
        consumed = []

        def generate():
            for i in range(100):
                consumed.append(i)
                yield cycle_graph(5)

        with Extractor(ExtractionConfig()) as ex:
            stream = ex.stream(generate())
            assert consumed == []  # generator: nothing pulled yet
            first = next(stream)
            assert first.num_chordal_edges == 4
            assert consumed == [0]
            next(stream)
            assert consumed == [0, 1]

    def test_stream_matches_extract_many(self):
        graphs = [cycle_graph(5), path_graph(6), rmat_b(5, seed=1)]
        with Extractor(ExtractionConfig()) as ex:
            streamed = list(ex.stream(graphs))
            listed = ex.extract_many(graphs)
        for a, b in zip(streamed, listed):
            assert np.array_equal(a.edges, b.edges)

    def test_close_mid_stream_raises_clean_repro_error(self):
        """Regression: closing the session while a stream() generator is
        mid-iteration must surface as SessionClosedError (a ReproError)
        on the next next(), never a half-torn-down AttributeError from
        inside the pool machinery."""
        ex = Extractor(ExtractionConfig(engine="process", num_workers=2))
        stream = ex.stream(rmat_b(5, seed=s) for s in range(10))
        first = next(stream)
        assert first.num_chordal_edges > 0
        ex.close()
        with pytest.raises(SessionClosedError, match="mid-iteration"):
            next(stream)
        # the session error is both a ReproError (library base class) and
        # a RuntimeError (what these paths historically raised)
        assert issubclass(SessionClosedError, ReproError)
        assert issubclass(SessionClosedError, RuntimeError)

    def test_external_pool_closed_mid_stream_raises_clean_repro_error(self):
        """Same teardown gap via the caller-owned pool: the pool dying
        under a streaming session is a SessionClosedError, not an
        AttributeError."""
        pool = ProcessPool(num_workers=2)
        ex = Extractor(ExtractionConfig(engine="process"), pool=pool)
        stream = ex.stream(rmat_b(5, seed=s) for s in range(10))
        next(stream)
        pool.close()
        with pytest.raises(SessionClosedError, match="closed"):
            next(stream)
        ex.close()

    def test_process_pool_spawned_once(self):
        """Acceptance: N process-engine extracts through one Extractor
        spawn exactly one worker team (extract_many's amortization)."""
        graphs = [rmat_er(5, seed=i) for i in range(4)]
        with Extractor(ExtractionConfig(engine="process", num_workers=2)) as ex:
            assert ex.pool is None  # lazy: no spawn before first extract
            results = [ex.extract(g) for g in graphs]
            pids = [p.pid for p in ex.pool._procs]
            assert len(pids) == 2
            ex.extract(graphs[0])
            assert [p.pid for p in ex.pool._procs] == pids  # same team
        for g, r in zip(graphs, results):
            legacy = extract_maximal_chordal_subgraph(
                g, engine="process", schedule="synchronous", num_workers=2
            )
            assert np.array_equal(r.edges, legacy.edges)

    def test_non_pool_engine_never_spawns(self):
        with Extractor(ExtractionConfig(engine="superstep")) as ex:
            ex.extract(cycle_graph(5))
            assert ex.pool is None

    def test_external_pool_left_open(self):
        g = rmat_er(5, seed=1)
        with ProcessPool(num_workers=2) as pool:
            with Extractor(ExtractionConfig(engine="process"), pool=pool) as ex:
                ex.extract(g)
                assert ex.pool is pool
            # session close must not close the caller's pool
            edges, _ = pool.extract(g)
            assert edges.shape[1] == 2


class TestPoolConflicts:
    """The pool= / num_workers mismatch used to be silently ignored."""

    def test_conflicting_num_workers_rejected(self):
        with ProcessPool(num_workers=2) as pool:
            with pytest.raises(ConfigError, match="num_workers=4 conflicts"):
                extract_maximal_chordal_subgraph(
                    rmat_er(5, seed=1), engine="process", num_workers=4, pool=pool
                )
            with pytest.raises(ConfigError, match="conflicts"):
                Extractor(
                    ExtractionConfig(engine="process", num_workers=3), pool=pool
                )
            with pytest.raises(ConfigError, match="conflicts"):
                extract_many(
                    [rmat_er(5, seed=1)], engine="process", num_workers=1, pool=pool
                )

    def test_matching_num_workers_accepted(self):
        g = rmat_er(5, seed=1)
        with ProcessPool(num_workers=2) as pool:
            r = extract_maximal_chordal_subgraph(
                g, engine="process", num_workers=2, pool=pool
            )
            assert r.num_chordal_edges > 0

    def test_unspecified_num_workers_adopts_pool_size(self):
        with ProcessPool(num_workers=2) as pool:
            ex = Extractor(ExtractionConfig(engine="process"), pool=pool)
            assert ex.config.num_workers == 2
            ex.close()

    def test_pool_with_incapable_engine_rejected(self):
        with ProcessPool(num_workers=1) as pool:
            with pytest.raises(ConfigError, match="pool.*process"):
                Extractor(ExtractionConfig(engine="superstep"), pool=pool)
