"""Tests for the analysis package (Table I / Fig 2 / Fig 3 machinery)."""

import numpy as np
import pytest

from repro.analysis.assortativity import degree_assortativity
from repro.analysis.clustering import (
    average_clustering,
    clustering_by_degree,
    local_clustering,
)
from repro.analysis.degrees import degree_stats
from repro.analysis.paths import shortest_path_histogram
from repro.analysis.summary import summarize_graph
from repro.graph.builder import build_graph
from repro.graph.generators.classic import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graph.generators.rmat import rmat_er
from tests.conftest import to_networkx


class TestDegreeStats:
    def test_cycle(self):
        s = degree_stats(cycle_graph(6))
        assert s.avg_degree == 2.0
        assert s.max_degree == 2
        assert s.variance == 0.0
        assert s.edges_per_vertex == 1.0

    def test_star(self):
        s = degree_stats(star_graph(5))
        assert s.max_degree == 5
        assert s.avg_degree == pytest.approx(10 / 6)

    def test_empty(self):
        s = degree_stats(build_graph(0, []))
        assert s.num_vertices == 0 and s.max_degree == 0

    def test_row_uses_paper_convention(self):
        # paper's "Avg Degree" column is edges/vertices
        s = degree_stats(cycle_graph(6))
        row = s.row()
        assert row[2] == 1  # m/n = 1 for a cycle


class TestClustering:
    def test_triangle_all_ones(self):
        assert list(local_clustering(complete_graph(3))) == [1.0, 1.0, 1.0]

    def test_path_all_zero(self):
        assert average_clustering(path_graph(5)) == 0.0

    def test_degree_below_two_zero(self):
        g = star_graph(3)
        cc = local_clustering(g)
        assert cc[1] == cc[2] == cc[3] == 0.0
        assert cc[0] == 0.0  # hub's neighbors are pairwise non-adjacent

    def test_matches_networkx(self, zoo_graph):
        import networkx as nx

        ours = local_clustering(zoo_graph)
        theirs = nx.clustering(to_networkx(zoo_graph))
        for v in range(zoo_graph.num_vertices):
            assert ours[v] == pytest.approx(theirs[v], abs=1e-12)

    def test_unsorted_input(self):
        g = complete_graph(4).shuffled(np.random.default_rng(0))
        assert average_clustering(g) == pytest.approx(1.0)

    def test_by_degree_profile(self):
        g = complete_graph(4)
        profile = clustering_by_degree(g)
        assert profile == [(3, 1.0, 4)]

    def test_empty(self):
        assert average_clustering(build_graph(0, [])) == 0.0
        assert clustering_by_degree(build_graph(0, [])) == []


class TestPathHistogram:
    def test_path_graph_exact(self):
        # path 0-1-2: ordered pairs at distance 1: 4, distance 2: 2
        hist = shortest_path_histogram(path_graph(3))
        assert list(hist) == [0, 4, 2]

    def test_matches_networkx_exact(self, zoo_graph):
        import networkx as nx

        hist = shortest_path_histogram(zoo_graph)
        G = to_networkx(zoo_graph)
        expected: dict[int, int] = {}
        for _src, dists in nx.all_pairs_shortest_path_length(G):
            for _dst, d in dists.items():
                if d >= 1:
                    expected[d] = expected.get(d, 0) + 1
        got = {i: int(f) for i, f in enumerate(hist) if i >= 1 and f}
        assert got == expected

    def test_sampling_approximates(self):
        g = rmat_er(9, seed=2)
        full = shortest_path_histogram(g)
        sampled = shortest_path_histogram(g, sample=128, seed=0)
        # same support shape, total mass within 25%
        assert abs(sampled.sum() - full.sum()) / full.sum() < 0.25

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            shortest_path_histogram(path_graph(3), sample=0)

    def test_empty(self):
        hist = shortest_path_histogram(build_graph(0, []))
        assert hist.sum() == 0


class TestAssortativity:
    def test_star_disassortative(self):
        assert degree_assortativity(star_graph(5)) < 0

    def test_regular_graph_degenerate(self):
        assert degree_assortativity(cycle_graph(6)) == 0.0

    def test_no_edges(self):
        assert degree_assortativity(build_graph(3, [])) == 0.0

    def test_matches_networkx(self, zoo_graph):
        import networkx as nx

        ours = degree_assortativity(zoo_graph)
        G = to_networkx(zoo_graph)
        if zoo_graph.num_edges == 0:
            return
        theirs = nx.degree_assortativity_coefficient(G)
        if np.isnan(theirs):
            assert ours == 0.0
        else:
            assert ours == pytest.approx(theirs, abs=1e-8)


class TestSummary:
    def test_summary_fields(self):
        s = summarize_graph("C6", cycle_graph(6))
        assert s.name == "C6"
        assert s.num_components == 1
        assert s.table1_row()[0] == "C6"

    def test_components_skippable(self):
        s = summarize_graph("x", cycle_graph(6), components=False)
        assert s.num_components == -1
