"""Tests for the thread runtime, partitioners, and atomics."""

import threading

import numpy as np
import pytest

from repro.parallel.atomics import (
    AtomicCounter,
    AtomicMax,
    atomic_load,
    atomic_store,
    bulk_compare_and_set,
    compare_and_set,
)
from repro.parallel.partition import (
    balanced_chunks,
    block_ranges,
    cyclic_indices,
    degree_balanced_cuts,
    lpt_assign,
)
from repro.parallel.runtime import ThreadTeam, parallel_for


class TestThreadTeam:
    def test_runs_all_workers(self):
        seen = [False] * 4
        with ThreadTeam(4) as team:
            team.run(lambda tid: seen.__setitem__(tid, True))
        assert all(seen)

    def test_multiple_supersteps(self):
        counter = AtomicCounter()
        with ThreadTeam(3) as team:
            for _ in range(5):
                team.run(lambda tid: counter.fetch_add(1))
        assert counter.value == 15

    def test_worker_exception_propagates(self):
        def boom(tid):
            if tid == 1:
                raise RuntimeError("worker failed")

        with ThreadTeam(2) as team:
            with pytest.raises(RuntimeError, match="worker failed"):
                team.run(boom)
            # team still usable after an error
            team.run(lambda tid: None)

    def test_close_idempotent(self):
        team = ThreadTeam(2)
        team.close()
        team.close()
        with pytest.raises(RuntimeError):
            team.run(lambda tid: None)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ThreadTeam(0)

    def test_parallel_for_covers_items(self):
        items = list(range(23))
        hit = [0] * 23
        with ThreadTeam(4) as team:
            parallel_for(team, items, lambda i, item: hit.__setitem__(i, item + 1))
        assert hit == [i + 1 for i in range(23)]


class TestBlockRanges:
    def test_exact_division(self):
        assert block_ranges(9, 3) == [(0, 3), (3, 6), (6, 9)]

    def test_remainder_spread(self):
        ranges = block_ranges(10, 3)
        sizes = [b - a for a, b in ranges]
        assert sorted(sizes) == [3, 3, 4]
        assert ranges[-1][1] == 10

    def test_more_parts_than_items(self):
        ranges = block_ranges(2, 5)
        sizes = [b - a for a, b in ranges]
        assert sum(sizes) == 2
        assert all(s in (0, 1) for s in sizes)

    def test_zero_items(self):
        assert block_ranges(0, 3) == [(0, 0), (0, 0), (0, 0)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            block_ranges(5, 0)
        with pytest.raises(ValueError):
            block_ranges(-1, 2)


class TestBalancedChunks:
    def test_covers_everything_contiguously(self):
        w = np.array([5, 1, 1, 1, 5, 1, 1, 1], dtype=float)
        chunks = balanced_chunks(w, 3)
        assert chunks[0][0] == 0 and chunks[-1][1] == 8
        for (a1, b1), (a2, b2) in zip(chunks, chunks[1:]):
            assert b1 == a2

    def test_balances_weights(self):
        w = np.ones(100)
        chunks = balanced_chunks(w, 4)
        sizes = [b - a for a, b in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_heavy_head(self):
        w = np.array([100, 1, 1, 1], dtype=float)
        chunks = balanced_chunks(w, 2)
        assert chunks[0] == (0, 1)

    def test_zero_weights_fall_back(self):
        chunks = balanced_chunks(np.zeros(6), 2)
        assert chunks == [(0, 3), (3, 6)]

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            balanced_chunks(np.array([-1.0, 2.0]), 2)

    def test_empty(self):
        assert balanced_chunks(np.empty(0), 3) == [(0, 0)] * 3


class TestDegreeBalancedCuts:
    def test_shape_and_cover(self):
        cuts = degree_balanced_cuts(np.ones(10), 3)
        assert cuts.dtype == np.int64
        assert cuts[0] == 0 and cuts[-1] == 10
        assert np.all(np.diff(cuts) >= 0)

    def test_uniform_degrees_match_block_ranges(self):
        cuts = degree_balanced_cuts(np.full(12, 5.0), 4)
        blocks = block_ranges(12, 4)
        assert [(int(cuts[p]), int(cuts[p + 1])) for p in range(4)] == blocks

    def test_power_law_beats_block_ranges(self):
        """On a hub-heavy degree sequence the vertex-count split piles
        most of the degree mass into the first part; the degree-balanced
        cuts keep every part near 1/n_parts of the mass."""
        from repro.graph.generators.rmat import rmat_b

        graph = rmat_b(9, seed=3)
        degrees = graph.degrees().astype(np.float64)
        total = degrees.sum()
        n_parts = 4

        def part_masses(ranges):
            return [degrees[a:b].sum() for a, b in ranges]

        block_masses = part_masses(block_ranges(graph.num_vertices, n_parts))
        cuts = degree_balanced_cuts(degrees, n_parts)
        cut_masses = part_masses([(cuts[p], cuts[p + 1]) for p in range(n_parts)])
        assert max(block_masses) / total > 0.4, (
            "expected RMAT-B hub skew to make the block split lopsided "
            f"(masses {block_masses}); the premise of this test is gone"
        )
        assert max(cut_masses) / total < max(block_masses) / total
        # Every part within 2x of the ideal share (one giant hub vertex
        # is the only way to exceed this, and RMAT-B at scale 9 has none).
        assert max(cut_masses) <= 2.0 * total / n_parts

    def test_ownership_lookup_via_searchsorted(self):
        degrees = np.array([9.0, 1.0, 1.0, 1.0, 9.0, 1.0])
        cuts = degree_balanced_cuts(degrees, 2)
        owner = np.searchsorted(cuts, np.arange(6), side="right") - 1
        for p in range(2):
            members = np.flatnonzero(owner == p)
            assert np.array_equal(members, np.arange(cuts[p], cuts[p + 1]))

    def test_zero_degrees_fall_back_to_blocks(self):
        cuts = degree_balanced_cuts(np.zeros(7), 3)
        blocks = block_ranges(7, 3)
        assert [(int(cuts[p]), int(cuts[p + 1])) for p in range(3)] == blocks

    def test_isolated_tail_vertices_are_covered(self):
        degrees = np.array([4.0, 4.0, 0.0, 0.0, 0.0])
        cuts = degree_balanced_cuts(degrees, 2)
        assert cuts[-1] == 5  # isolated tail still owned by the last part

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            degree_balanced_cuts(np.ones((2, 2)), 2)
        with pytest.raises(ValueError):
            degree_balanced_cuts(np.ones(4), 0)
        with pytest.raises(ValueError):
            degree_balanced_cuts(np.array([1.0, -1.0]), 2)


class TestCyclicAndLpt:
    def test_cyclic_partition_disjoint_cover(self):
        parts = [set(cyclic_indices(10, p, 3).tolist()) for p in range(3)]
        union = set().union(*parts)
        assert union == set(range(10))
        assert sum(len(p) for p in parts) == 10

    def test_cyclic_bad_part(self):
        with pytest.raises(ValueError):
            cyclic_indices(10, 3, 3)

    def test_lpt_balances(self):
        costs = np.array([7.0, 5.0, 4.0, 3.0, 2.0, 2.0])
        loads, assignment = lpt_assign(costs, 2)
        assert loads.sum() == costs.sum()
        assert max(loads) <= 13  # LPT optimum here is 12; 4/3 bound allows 16

    def test_lpt_assignment_consistent(self):
        costs = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        loads, assignment = lpt_assign(costs, 3)
        for p in range(3):
            assert loads[p] == pytest.approx(costs[assignment == p].sum())

    def test_lpt_empty(self):
        loads, assignment = lpt_assign(np.empty(0), 4)
        assert loads.tolist() == [0, 0, 0, 0]

    def test_lpt_invalid_parts(self):
        with pytest.raises(ValueError):
            lpt_assign(np.array([1.0]), 0)


class TestAtomics:
    def test_counter_fetch_add(self):
        c = AtomicCounter(10)
        assert c.fetch_add(5) == 10
        assert c.value == 15

    def test_counter_threaded_consistency(self):
        c = AtomicCounter()
        threads = [
            threading.Thread(target=lambda: [c.fetch_add(1) for _ in range(1000)])
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000

    def test_atomic_max(self):
        m = AtomicMax()
        m.update(3.0)
        m.update(1.0)
        assert m.value == 3.0
        assert m.update(7.0) == 7.0


class TestSharedWordAtomics:
    """The shared-memory word primitives the async process engine builds
    its edge-claim protocol on (single-mutator-per-slot contract)."""

    def test_load_store_round_trip(self):
        arr = np.zeros(4, dtype=np.int64)
        atomic_store(arr, 2, 41)
        assert atomic_load(arr, 2) == 41
        assert atomic_load(arr, 0) == 0

    def test_compare_and_set_claims_once(self):
        arr = np.zeros(3, dtype=np.int64)
        assert compare_and_set(arr, 1, 0, 7)
        assert arr[1] == 7
        assert not compare_and_set(arr, 1, 0, 9)  # lost claim: untouched
        assert arr[1] == 7
        assert compare_and_set(arr, 1, 7, 9)
        assert arr[1] == 9

    def test_bulk_compare_and_set_mixed_outcomes(self):
        arr = np.array([0, 5, 0, 0], dtype=np.int64)
        idx = np.array([0, 1, 3], dtype=np.int64)
        new = np.array([10, 11, 13], dtype=np.int64)
        won = bulk_compare_and_set(arr, idx, 0, new)
        assert won.tolist() == [True, False, True]
        assert arr.tolist() == [10, 5, 0, 13]

    def test_bulk_compare_and_set_scalar_new(self):
        arr = np.array([0, 2, 0], dtype=np.int64)
        won = bulk_compare_and_set(arr, np.array([0, 1, 2]), 0, 1)
        assert won.tolist() == [True, False, True]
        assert arr.tolist() == [1, 2, 1]

    def test_rejects_non_int64(self):
        with pytest.raises(ValueError, match="int64"):
            compare_and_set(np.zeros(2, dtype=np.int32), 0, 0, 1)

    def test_rejects_misaligned_view(self):
        buf = np.zeros(5, dtype=np.int32)  # 4-byte stride base
        view = np.ndarray((2,), dtype=np.int64, buffer=buf.data, offset=4)
        with pytest.raises(ValueError, match="aligned"):
            atomic_load(view, 0)
