"""Tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.builder import build_graph
from repro.graph.csr import CSRGraph


@pytest.fixture
def small():
    return build_graph(4, [(0, 1), (1, 2), (2, 3), (0, 2)])


class TestBasics:
    def test_counts(self, small):
        assert small.num_vertices == 4
        assert small.num_edges == 4
        assert small.num_arcs == 8

    def test_degrees(self, small):
        assert small.degree(0) == 2
        assert small.degree(2) == 3
        assert list(small.degrees()) == [2, 2, 3, 1]

    def test_max_degree(self, small):
        assert small.max_degree() == 3

    def test_neighbors_sorted(self, small):
        assert list(small.neighbors(2)) == [0, 1, 3]

    def test_has_edge_both_directions(self, small):
        assert small.has_edge(0, 2) and small.has_edge(2, 0)

    def test_has_edge_absent(self, small):
        assert not small.has_edge(0, 3)

    def test_has_edge_unsorted_graph(self, small):
        shuffled = small.shuffled(np.random.default_rng(0))
        assert shuffled.has_edge(0, 2)
        assert not shuffled.has_edge(0, 3)

    def test_empty_graph(self):
        g = build_graph(0, [])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.max_degree() == 0

    def test_arrays_readonly(self, small):
        with pytest.raises(ValueError):
            small.indices[0] = 3


class TestEdgeViews:
    def test_edge_array_ordered(self, small):
        edges = small.edge_array()
        assert edges.shape == (4, 2)
        assert bool(np.all(edges[:, 0] < edges[:, 1]))

    def test_edge_set(self, small):
        assert small.edge_set() == {(0, 1), (0, 2), (1, 2), (2, 3)}

    def test_iter_edges_matches_edge_set(self, small):
        assert set(small.iter_edges()) == small.edge_set()


class TestTransforms:
    def test_shuffled_same_edge_set(self, small):
        shuffled = small.shuffled(np.random.default_rng(1))
        assert shuffled == small
        assert not shuffled.sorted_adjacency

    def test_with_sorted_adjacency_roundtrip(self, small):
        resorted = small.shuffled(np.random.default_rng(1)).with_sorted_adjacency()
        assert resorted == small
        assert resorted.sorted_adjacency

    def test_with_sorted_is_noop_when_sorted(self, small):
        assert small.with_sorted_adjacency() is small

    def test_validate_symmetry_ok(self, small):
        small.validate_symmetry()

    def test_validate_symmetry_detects_asymmetry(self):
        indptr = np.array([0, 1, 1])
        indices = np.array([1])
        g = CSRGraph(indptr, indices, sorted_adjacency=True, validate=False)
        with pytest.raises(GraphFormatError):
            g.validate_symmetry()

    def test_validate_symmetry_detects_self_loop(self):
        indptr = np.array([0, 1])
        indices = np.array([0])
        g = CSRGraph(indptr, indices, sorted_adjacency=True, validate=False)
        with pytest.raises(GraphFormatError, match="self-loop"):
            g.validate_symmetry()


class TestValidation:
    def test_bad_indptr_start(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([1, 2]), np.array([0, 1]), sorted_adjacency=False)

    def test_indptr_mismatch(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 3]), np.array([0]), sorted_adjacency=False)

    def test_decreasing_indptr(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 2, 1]), np.array([1, 0, 1]), sorted_adjacency=False)

    def test_out_of_range_indices(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 1]), np.array([5]), sorted_adjacency=False)

    def test_sorted_claim_checked(self):
        indptr = np.array([0, 2, 3, 3])
        indices = np.array([2, 1, 0])
        with pytest.raises(GraphFormatError, match="strictly increasing"):
            CSRGraph(indptr, indices, sorted_adjacency=True)


class TestEquality:
    def test_equal_ignores_adjacency_order(self, small):
        assert small == small.shuffled(np.random.default_rng(3))

    def test_unequal_different_edges(self, small):
        other = build_graph(4, [(0, 1), (1, 2), (2, 3)])
        assert small != other

    def test_unequal_different_sizes(self, small):
        other = build_graph(5, list(small.iter_edges()))
        assert small != other

    def test_not_equal_to_non_graph(self, small):
        assert small != "graph"
