"""Tests for the R-MAT generator (the paper's synthetic suite)."""

import numpy as np
import pytest

from repro.graph.generators.rmat import (
    RMAT_B_PROBS,
    RMAT_ER_PROBS,
    RMAT_G_PROBS,
    RMATParams,
    rmat_b,
    rmat_edges,
    rmat_er,
    rmat_g,
    rmat_graph,
)
from repro.util.rng import make_rng


class TestParams:
    def test_vertex_count(self):
        assert RMATParams(10).num_vertices == 1024

    def test_nominal_edges_default_factor(self):
        assert RMATParams(10).nominal_edges == 8192

    def test_label(self):
        assert RMATParams(12, name="RMAT-B").label() == "RMAT-B(12)"

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            RMATParams(-1)
        with pytest.raises(ValueError):
            RMATParams(31)

    def test_bad_probs(self):
        with pytest.raises(ValueError):
            RMATParams(8, probs=(0.5, 0.5, 0.5, 0.5))

    def test_bad_edge_factor(self):
        with pytest.raises(ValueError):
            RMATParams(8, edge_factor=0)

    def test_presets_sum_to_one(self):
        for probs in (RMAT_ER_PROBS, RMAT_G_PROBS, RMAT_B_PROBS):
            assert sum(probs) == pytest.approx(1.0)


class TestGeneration:
    def test_raw_edges_shape_and_range(self):
        params = RMATParams(8)
        raw = rmat_edges(params, make_rng(0))
        assert raw.shape == (params.nominal_edges, 2)
        assert raw.min() >= 0 and raw.max() < params.num_vertices

    def test_determinism(self):
        assert rmat_er(9, seed=5) == rmat_er(9, seed=5)

    def test_different_seeds_differ(self):
        assert rmat_er(9, seed=5) != rmat_er(9, seed=6)

    def test_simple_graph(self):
        rmat_b(9, seed=1).validate_symmetry()

    def test_dedup_shrinks_edges(self):
        """Duplicates/loops are dropped, so |E| < nominal (paper Table I)."""
        g = rmat_b(10, seed=2)
        assert g.num_edges < RMATParams(10).nominal_edges

    def test_er_edges_close_to_nominal(self):
        g = rmat_er(10, seed=3)
        assert g.num_edges > 0.95 * RMATParams(10).nominal_edges

    def test_scale_zero(self):
        g = rmat_graph(RMATParams(0), seed=1)
        assert g.num_vertices == 1
        assert g.num_edges == 0


class TestDegreeProfiles:
    """The paper's Table I orderings: max degree and variance ER < G < B."""

    @pytest.fixture(scope="class")
    def triple(self):
        scale, seed = 11, 7
        return rmat_er(scale, seed=seed), rmat_g(scale, seed=seed), rmat_b(scale, seed=seed)

    def test_max_degree_ordering(self, triple):
        er, g, b = triple
        assert er.max_degree() < g.max_degree() < b.max_degree()

    def test_variance_ordering(self, triple):
        er, g, b = triple
        var = lambda x: float(np.var(x.degrees()))
        assert var(er) < var(g) < var(b)

    def test_er_degrees_concentrated(self, triple):
        er, _, _ = triple
        # paper Table I: RMAT-ER max degree stays in the tens
        assert er.max_degree() < 8 * er.degrees().mean()
