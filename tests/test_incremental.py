"""Property suite for :class:`repro.core.incremental.IncrementalExtractor`.

The invariant under test: after *every* mutation the retained edge set is
a maximal chordal subgraph of the current graph
(:func:`~repro.chordality.verify.verify_extraction` with the maximality
certificate) and meets the certified quality floor
(:func:`~repro.chordality.quality.maximal_chordal_floor`).

Two oracles make the checks exact rather than merely self-consistent:

* **Chordal streams** (:func:`chordal_mutation_stream`): the host graph
  is chordal at every event boundary, and the only maximal chordal
  subgraph of a chordal graph is the graph itself — so ``H == G`` is a
  bit-exact expectation, no reference extractor needed.
* **From-scratch checkpoints**: on chordal streams the unique answer
  also lets us bit-compare against a fresh
  :class:`~repro.core.session.Extractor` run at sampled checkpoints.

Replaying a failure
-------------------
Every stream here is seeded; a failing parametrization prints the
``(family, seed, mutation index)`` triple.  To replay outside pytest::

    PYTHONPATH=src python - <<'PY'
    from repro import IncrementalExtractor
    from repro.graph.generators import gnp_random_graph
    from repro.graph.generators.chordal import random_mutation_stream
    g = gnp_random_graph(40, 0.15, seed=7)          # the failing family
    inc = IncrementalExtractor(g)
    for i, (op, u, v) in enumerate(random_mutation_stream(g, 120, seed=5)):
        inc.apply_batch([(op, u, v)])               # stop at the index
    PY

The long sweeps live behind the ``incremental_stress`` marker
(``--run-incremental-stress``); tier-1 runs the short versions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ExtractionConfig,
    IncrementalExtractor,
    extract_maximal_chordal_subgraph,
)
from repro.chordality.quality import maximal_chordal_floor
from repro.chordality.recognition import is_chordal
from repro.chordality.verify import verify_extraction
from repro.core.session import Extractor
from repro.errors import ConfigError
from repro.graph.builder import build_graph
from repro.graph.generators import (
    chordal_mutation_stream,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    random_chordal,
    rmat_b,
    rmat_er,
)
from repro.graph.generators.chordal import random_mutation_stream
from repro.graph.weights import attach_edge_weights

# ---------------------------------------------------------------------------
# Helpers.


def _assert_valid(inc: IncrementalExtractor, context: str) -> None:
    """The full certificate: chordal + maximal + floor met."""
    result = inc.result()
    report = verify_extraction(result.graph, result.edges, check_maximal=True)
    assert report.ok, f"{context}: {report}"
    floor = maximal_chordal_floor(result.graph)
    assert result.edges.shape[0] >= floor, (
        f"{context}: retained {result.edges.shape[0]} < floor {floor}"
    )


_FAMILIES = {
    "gnp": lambda: gnp_random_graph(40, 0.15, seed=7),
    "grid": lambda: grid_graph(6, 6),
    "cycle": lambda: cycle_graph(12),
    "rmat_er": lambda: rmat_er(7, seed=1),
    "rmat_b": lambda: rmat_b(7, seed=3),
    "chordal": lambda: random_chordal(40, 0.2, seed=9),
}


# ---------------------------------------------------------------------------
# Property sweep: every family, verify after every mutation.


@pytest.mark.parametrize("family", sorted(_FAMILIES))
def test_property_sweep_verifies_after_every_mutation(family):
    graph = _FAMILIES[family]()
    inc = IncrementalExtractor(graph)
    _assert_valid(inc, f"{family}: initial")
    stream = random_mutation_stream(graph, 120, seed=5)
    for index, (op, u, v) in enumerate(stream):
        if op == "insert":
            inc.insert_edge(u, v)
        else:
            inc.delete_edge(u, v)
        _assert_valid(inc, f"family={family} seed=5 mutation#{index} {op} {u} {v}")


def test_graph_property_tracks_mutations():
    graph = gnp_random_graph(30, 0.2, seed=3)
    inc = IncrementalExtractor(graph)
    assert inc.graph == graph
    before = inc.num_edges
    stream = random_mutation_stream(graph, 40, seed=4)
    counts = inc.apply_batch(stream)
    assert counts["applied"] == 40
    assert counts["inserted"] + counts["deleted"] == 40
    assert inc.num_edges == before + counts["inserted"] - counts["deleted"]
    assert inc.graph.num_edges == inc.num_edges
    # Retained edges are a subset of the current graph.
    current = {tuple(e) for e in inc.graph.edge_array()}
    assert {tuple(e) for e in inc.edges} <= current


def test_determinism_bit_identical_replay():
    graph = gnp_random_graph(40, 0.15, seed=7)
    stream = random_mutation_stream(graph, 200, seed=11)
    runs = []
    for _ in range(2):
        inc = IncrementalExtractor(graph)
        inc.apply_batch(stream)
        runs.append(inc.edges)
    assert np.array_equal(runs[0], runs[1])


# ---------------------------------------------------------------------------
# Chordal-stream oracle: unique answer, bit-exact.


@pytest.mark.parametrize("seed", [1, 11])
def test_chordal_stream_tracks_host_exactly(seed):
    host, events = chordal_mutation_stream(36, 120, seed=seed)
    assert is_chordal(host)
    inc = IncrementalExtractor(host)
    assert inc.num_chordal_edges == inc.num_edges
    for index, event in enumerate(events):
        inc.apply_batch(event)
        # The host stays chordal at event boundaries; the only maximal
        # chordal subgraph of a chordal graph is itself.
        assert inc.num_chordal_edges == inc.num_edges, (
            f"seed={seed} event#{index}: H != G on a chordal stream"
        )
        assert is_chordal(inc.graph)
    assert inc.stats["rejected_inserts"] == 0
    assert inc.stats["full_rebuilds"] == 0


@pytest.mark.parametrize("seed", [2, 13])
def test_chordal_stream_checkpoints_match_from_scratch(seed):
    host, events = chordal_mutation_stream(30, 80, seed=seed)
    inc = IncrementalExtractor(host)
    config = ExtractionConfig(maximalize=True)
    with Extractor(config) as fresh:
        for index, event in enumerate(events):
            inc.apply_batch(event)
            if index % 20 != 19:
                continue
            expected = fresh.extract(inc.graph).edges
            assert np.array_equal(inc.edges, expected), (
                f"seed={seed} checkpoint after event#{index}"
            )


# ---------------------------------------------------------------------------
# Repair path and the full-rebuild escape hatch.


def test_deleting_retained_edge_repairs_chordality():
    # K4 minus nothing: every edge retained; deleting one must keep H
    # chordal and maximal in the smaller graph.
    graph = build_graph(4, [(u, v) for u in range(4) for v in range(u + 1, 4)])
    inc = IncrementalExtractor(graph)
    assert inc.num_chordal_edges == 6
    inc.delete_edge(0, 1)
    _assert_valid(inc, "K4 after delete")
    assert inc.num_chordal_edges == 5


def test_full_rebuild_threshold_zero_forces_rebuild():
    graph = gnp_random_graph(30, 0.25, seed=19)
    inc = IncrementalExtractor(graph, full_rebuild_threshold=0)
    # Delete retained edges until a repair would evict something.
    for u, v in [tuple(e) for e in inc.edges]:
        inc.delete_edge(int(u), int(v))
        _assert_valid(inc, f"threshold=0 delete ({u},{v})")
        if inc.stats["full_rebuilds"]:
            break
    assert inc.stats["full_rebuilds"] >= 1


def test_threshold_none_never_rebuilds():
    graph = gnp_random_graph(30, 0.25, seed=19)
    inc = IncrementalExtractor(graph, full_rebuild_threshold=None)
    inc.apply_batch(random_mutation_stream(graph, 80, seed=2))
    assert inc.stats["full_rebuilds"] == 0
    _assert_valid(inc, "threshold=None sweep")


# ---------------------------------------------------------------------------
# Error handling and config validation.


def test_error_cases():
    graph = build_graph(5, [(0, 1), (1, 2), (2, 3)])
    inc = IncrementalExtractor(graph)
    with pytest.raises(ValueError, match="already an edge"):
        inc.insert_edge(0, 1)
    with pytest.raises(ValueError, match="already an edge"):
        inc.insert_edge(1, 0)  # canonicalised first
    with pytest.raises(ValueError, match="not an edge"):
        inc.delete_edge(0, 3)
    with pytest.raises(ValueError, match="self-loop"):
        inc.insert_edge(2, 2)
    with pytest.raises(ValueError, match="out of range"):
        inc.insert_edge(0, 5)
    with pytest.raises(ValueError, match="out of range"):
        inc.delete_edge(-1, 2)
    # Failed mutations must not corrupt state.
    _assert_valid(inc, "after rejected mutations")
    assert inc.num_edges == 3


def test_apply_batch_rejects_malformed_rows():
    inc = IncrementalExtractor(build_graph(4, [(0, 1)]))
    with pytest.raises(ValueError, match="mutation #1.*unknown op"):
        inc.apply_batch([("insert", 1, 2), ("upsert", 2, 3)])
    with pytest.raises(ValueError, match=r"mutation #0.*\(op, u, v\)"):
        inc.apply_batch([("insert", 1)])
    # The first (valid) row of the failed batch was applied.
    assert inc.num_edges == 2


def test_weighted_graph_rejected():
    graph = attach_edge_weights(build_graph(3, [(0, 1), (1, 2)]), 2.0)
    with pytest.raises(ConfigError, match="without_weights"):
        IncrementalExtractor(graph)
    # The suggested remedy works.
    IncrementalExtractor(graph.without_weights())


def test_bad_threshold_rejected():
    graph = build_graph(3, [(0, 1)])
    with pytest.raises(ConfigError, match="full_rebuild_threshold"):
        IncrementalExtractor(graph, full_rebuild_threshold=-1)


def test_maximalize_is_forced_on():
    graph = gnp_random_graph(25, 0.2, seed=1)
    config = ExtractionConfig(maximalize=False)
    inc = IncrementalExtractor(graph, config=config)
    _assert_valid(inc, "maximalize forced on")


def test_result_matches_extract_chordal_contract():
    graph = gnp_random_graph(25, 0.2, seed=1)
    inc = IncrementalExtractor(graph)
    result = inc.result()
    assert result.engine == "incremental"
    assert result.schedule == "incremental"
    # Same certified floor contract as the one-shot API.
    baseline = extract_maximal_chordal_subgraph(graph, maximalize=True)
    floor = maximal_chordal_floor(graph)
    assert result.edges.shape[0] >= floor
    assert baseline.edges.shape[0] >= floor


# ---------------------------------------------------------------------------
# Stress tier: long streams, verified after every event.


@pytest.mark.incremental_stress
@pytest.mark.parametrize("family", sorted(_FAMILIES))
def test_stress_long_streams(family):
    graph = _FAMILIES[family]()
    inc = IncrementalExtractor(graph)
    stream = random_mutation_stream(graph, 600, seed=23)
    for index, (op, u, v) in enumerate(stream):
        if op == "insert":
            inc.insert_edge(u, v)
        else:
            inc.delete_edge(u, v)
        _assert_valid(inc, f"stress family={family} seed=23 mutation#{index}")


@pytest.mark.incremental_stress
def test_stress_chordal_stream_long():
    host, events = chordal_mutation_stream(60, 500, seed=29)
    inc = IncrementalExtractor(host)
    for index, event in enumerate(events):
        inc.apply_batch(event)
        assert inc.num_chordal_edges == inc.num_edges, f"event#{index}"
    assert inc.stats["rejected_inserts"] == 0
