"""Weighted extraction: the weights API, the engine, and its degenerate inputs.

Covers the satellite checklist for the quality subsystem:

* attaching weights (mapping / per-edge array / scalar), validation of
  non-edges, wrong shapes, non-finite values, and duplicate orientations
  (agreeing duplicates fine, conflicting ones rejected);
* degenerate weight values — zero, negative, uniform — are legal
  *preferences*: extraction stays a valid maximal chordal subgraph and
  uniform weights reproduce the unweighted MAXCHORD pass exactly;
* a weighted graph with a non-weight-aware engine is a ``ConfigError``
  (silently ignoring weights is the bug this gate exists to prevent);
* weights survive graph transforms (adjacency sorting, shuffling,
  session-level BFS renumbering);
* the retained-weight metrics on :class:`ChordalResult`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dearing import dearing_max_chordal
from repro.chordality.maximality import assert_valid_extraction
from repro.core.session import Extractor
from repro.core.weighted import weighted_max_chordal
from repro.errors import ConfigError, GraphFormatError
from repro.graph.builder import build_graph
from repro.graph.generators.random import gnp_random_graph
from repro.graph.ops import edge_subgraph
from repro.graph.weights import (
    attach_edge_weights,
    edge_weight_mapping,
    retained_weight,
    uniform_weights,
)


def _weighted(n=16, p=0.3, seed=0, *, lo=0.1, hi=5.0):
    g = gnp_random_graph(n, p, seed=seed)
    rng = np.random.default_rng(seed + 1000)
    return attach_edge_weights(g, rng.uniform(lo, hi, g.num_edges))


# ---------------------------------------------------------------------------
# Attaching weights.


def test_attach_mapping_scalar_and_array_agree():
    g = build_graph(4, [(0, 1), (1, 2), (2, 3)])
    by_map = attach_edge_weights(g, {(0, 1): 2.0, (1, 2): 2.0, (2, 3): 2.0})
    by_scalar = attach_edge_weights(g, 2.0)
    by_array = attach_edge_weights(g, [2.0, 2.0, 2.0])
    for gw in (by_map, by_scalar, by_array):
        assert gw.has_weights
        assert gw.total_weight == pytest.approx(6.0)
        assert gw.edge_weight(1, 2) == pytest.approx(2.0)


def test_attach_mapping_accepts_either_orientation_and_default():
    g = build_graph(3, [(0, 1), (1, 2)])
    gw = attach_edge_weights(g, {(2, 1): 7.0}, default=3.0)
    assert gw.edge_weight(1, 2) == pytest.approx(7.0)
    assert gw.edge_weight(0, 1) == pytest.approx(3.0)


def test_attach_rejects_bad_inputs():
    g = build_graph(3, [(0, 1), (1, 2)])
    with pytest.raises(GraphFormatError, match="not an edge"):
        attach_edge_weights(g, {(0, 2): 1.0})
    with pytest.raises(GraphFormatError, match="not a valid edge"):
        attach_edge_weights(g, {(0, 9): 1.0})
    with pytest.raises(GraphFormatError, match="finite"):
        attach_edge_weights(g, {(0, 1): float("nan")})
    with pytest.raises(GraphFormatError, match="length"):
        attach_edge_weights(g, [1.0])


def test_duplicate_orientations_agreeing_ok_conflicting_rejected():
    g = build_graph(3, [(0, 1), (1, 2)])
    gw = attach_edge_weights(g, {(0, 1): 2.0, (1, 0): 2.0})
    assert gw.edge_weight(0, 1) == pytest.approx(2.0)
    with pytest.raises(GraphFormatError, match="conflicting duplicate"):
        attach_edge_weights(g, {(0, 1): 2.0, (1, 0): 3.0})


def test_without_weights_round_trip():
    gw = _weighted()
    assert gw.has_weights
    stripped = gw.without_weights()
    assert not stripped.has_weights
    assert stripped.num_edges == gw.num_edges
    assert stripped.total_weight == float(gw.num_edges)


def test_neighbor_weights_align_with_neighbors():
    gw = _weighted(seed=3)
    mapping = edge_weight_mapping(gw)
    for v in range(gw.num_vertices):
        for u, w in zip(gw.neighbors(v), gw.neighbor_weights(v)):
            edge = (min(v, int(u)), max(v, int(u)))
            assert w == pytest.approx(mapping[edge])


# ---------------------------------------------------------------------------
# Transforms preserve weights.


def test_sorted_adjacency_and_shuffle_preserve_edge_weights():
    gw = _weighted(seed=5)
    before = edge_weight_mapping(gw)
    assert edge_weight_mapping(gw.with_sorted_adjacency()) == before
    rng = np.random.default_rng(9)
    assert edge_weight_mapping(gw.shuffled(rng)) == before


def test_session_renumber_carries_weights():
    gw = _weighted(seed=6)
    with Extractor(engine="weighted", renumber="bfs") as ex:
        result = ex.extract(gw)
    assert_valid_extraction(gw, edge_subgraph(gw, result.edges), check_maximal=True)
    # Renumbering is an internal detail: plain and renumbered runs are
    # both maximal; their retained weight refers to the same original ids.
    assert result.retained_weight == pytest.approx(
        retained_weight(gw, result.edges)
    )


# ---------------------------------------------------------------------------
# Degenerate weight values.


@pytest.mark.parametrize("value", [0.0, -2.5, 1.0])
def test_uniform_degenerate_weights_still_extract_validly(value):
    g = gnp_random_graph(14, 0.35, seed=7)
    gw = attach_edge_weights(g, value)
    with Extractor(engine="weighted") as ex:
        result = ex.extract(gw)
    assert_valid_extraction(g, edge_subgraph(g, result.edges), check_maximal=True)
    assert result.retained_weight == pytest.approx(value * result.num_chordal_edges)


def test_mixed_sign_weights_extract_validly():
    g = gnp_random_graph(14, 0.35, seed=8)
    rng = np.random.default_rng(8)
    gw = attach_edge_weights(g, rng.uniform(-2.0, 2.0, g.num_edges))
    with Extractor(engine="weighted") as ex:
        result = ex.extract(gw)
    assert_valid_extraction(g, edge_subgraph(g, result.edges), check_maximal=True)


def test_uniform_weights_reproduce_unweighted_maxchord_exactly():
    """With uniform positive weights the weighted pass's selection order
    is pinned to the unweighted Dearing–Shier–Warner baseline."""
    for seed in range(5):
        g = gnp_random_graph(18, 0.3, seed=seed)
        gu = uniform_weights(g, 2.0)
        ours, _profile = weighted_max_chordal(gu, complete=False)
        baseline = np.asarray(dearing_max_chordal(g), dtype=np.int64).reshape(-1, 2)
        a = sorted(map(tuple, np.sort(ours, axis=1)))
        b = sorted(map(tuple, np.sort(baseline, axis=1)))
        assert a == b, f"seed={seed}: uniform-weight pass diverged from MAXCHORD"


# ---------------------------------------------------------------------------
# The engine gate and metrics.


@pytest.mark.parametrize("engine", ["superstep", "threaded", "reference"])
def test_weighted_graph_with_unweighted_engine_is_config_error(engine):
    gw = _weighted(seed=9)
    with Extractor(engine=engine) as ex:
        with pytest.raises(ConfigError, match="not weight-aware"):
            ex.extract(gw)
    # The stripped graph extracts fine in the same session.
    with Extractor(engine=engine) as ex:
        result = ex.extract(gw.without_weights())
    assert result.num_chordal_edges > 0


def test_weighted_engine_accepts_unweighted_graph():
    g = gnp_random_graph(15, 0.3, seed=10)
    with Extractor(engine="weighted") as ex:
        result = ex.extract(g)
    assert_valid_extraction(g, edge_subgraph(g, result.edges), check_maximal=True)
    # Unweighted weight is edge count.
    assert result.retained_weight == float(result.num_chordal_edges)
    assert result.weight_fraction == pytest.approx(result.chordal_fraction)


def test_weighted_engine_rejects_asynchronous_schedule():
    with pytest.raises(ConfigError):
        Extractor(engine="weighted", schedule="asynchronous")


def test_result_weight_metrics():
    gw = _weighted(seed=11)
    with Extractor(engine="weighted") as ex:
        result = ex.extract(gw)
    assert result.total_weight == pytest.approx(float(gw.total_weight))
    assert 0.0 < result.retained_weight <= result.total_weight
    assert 0.0 < result.weight_fraction <= 1.0
    assert result.weight_fraction == pytest.approx(
        result.retained_weight / result.total_weight
    )


def test_retained_weight_rejects_foreign_edges():
    gw = _weighted(seed=12)
    with pytest.raises(GraphFormatError, match="not in the graph"):
        retained_weight(gw, [(0, gw.num_vertices - 1)]) if not gw.has_edge(
            0, gw.num_vertices - 1
        ) else retained_weight(gw, [(-5, -4)])


def test_weighted_determinism_across_runs():
    gw = _weighted(seed=13)
    with Extractor(engine="weighted") as ex:
        first = ex.extract(gw).edges
        second = ex.extract(gw).edges
    assert np.array_equal(first, second)
