"""End-to-end integration tests across the full pipeline."""

import numpy as np

from repro import (
    bfs_renumber,
    extract_maximal_chordal_subgraph,
    is_chordal,
    rmat_b,
    rmat_er,
)
from repro.baselines.dearing import dearing_max_chordal
from repro.chordalg.cliques import max_clique
from repro.chordalg.coloring import chordal_coloring, greedy_coloring, verify_coloring
from repro.chordality.maximality import assert_valid_extraction
from repro.graph.generators.bio import (
    GSE5140_UNT,
    bio_network,
    correlation_network,
    synthetic_expression,
)
from repro.graph.io import load_npz, read_edgelist, save_npz, write_edgelist
from repro.graph.ops import edge_subgraph
from repro.machine.calibration import default_opteron, default_xmt


class TestFullPipelineSynthetic:
    """generate -> extract -> verify -> consume, as a user would."""

    def test_rmat_to_coloring(self):
        g = rmat_er(9, seed=1)
        result = extract_maximal_chordal_subgraph(g, renumber="bfs", maximalize=True)
        assert_valid_extraction(g, result.subgraph)
        colors, k_chordal = chordal_coloring(result.subgraph)
        assert verify_coloring(result.subgraph, colors)
        # the chordal coloring seeds a valid greedy coloring of G itself
        full_colors = greedy_coloring(g, np.argsort(colors, kind="stable"))
        assert verify_coloring(g, full_colors)

    def test_rmat_clique_lower_bound(self):
        g = rmat_b(9, seed=2)
        sub = extract_maximal_chordal_subgraph(g).subgraph
        clique = max_clique(sub)
        # a clique of the subgraph is a clique of G: NP-hard lower bound
        for i, u in enumerate(clique):
            for v in clique[i + 1:]:
                assert g.has_edge(u, v)
        assert len(clique) >= 3

    def test_serialization_roundtrip_preserves_extraction(self, tmp_path):
        g = rmat_b(8, seed=3)
        before = extract_maximal_chordal_subgraph(g).edges
        write_edgelist(g, tmp_path / "g.txt")
        save_npz(g, tmp_path / "g.npz")
        for loaded in (read_edgelist(tmp_path / "g.txt"), load_npz(tmp_path / "g.npz")):
            after = extract_maximal_chordal_subgraph(loaded).edges
            assert np.array_equal(before, after)


class TestFullPipelineBio:
    def test_expression_to_extraction(self):
        expr, _ = synthetic_expression(250, 30, 5, seed=4)
        g = correlation_network(expr, threshold=0.9)
        result = extract_maximal_chordal_subgraph(g, renumber="bfs")
        assert is_chordal(result.subgraph)
        assert result.num_chordal_edges <= g.num_edges

    def test_bio_replica_to_machine_models(self):
        g = bio_network(GSE5140_UNT.scaled(1 / 128), seed=5)
        result = extract_maximal_chordal_subgraph(g, collect_trace=True)
        trace = result.trace
        t_xmt = default_xmt().simulate(trace, 16).total_seconds
        t_amd = default_opteron().simulate(trace, 16).total_seconds
        assert t_xmt > 0 and t_amd > 0


class TestCrossAlgorithmConsistency:
    def test_alg1_and_dearing_same_graph_class(self, zoo_graph):
        """Both must produce chordal subgraphs; Dearing must be maximal."""
        alg1 = extract_maximal_chordal_subgraph(zoo_graph).subgraph
        dearing = edge_subgraph(zoo_graph, dearing_max_chordal(zoo_graph))
        assert is_chordal(alg1)
        assert_valid_extraction(zoo_graph, dearing)

    def test_renumbering_invariance_of_validity(self):
        g = rmat_b(8, seed=7)
        renumbered, _ = bfs_renumber(g)
        for graph in (g, renumbered):
            result = extract_maximal_chordal_subgraph(graph)
            assert is_chordal(result.subgraph)

    def test_maximalized_yield_between_raw_and_total(self):
        g = rmat_b(9, seed=8)
        raw = extract_maximal_chordal_subgraph(g).num_chordal_edges
        fixed = extract_maximal_chordal_subgraph(g, maximalize=True).num_chordal_edges
        assert raw <= fixed <= g.num_edges
