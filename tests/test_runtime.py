"""Tests for the unified extraction runtime (driver × state × executor).

The refactor's contract, pinned here:

1. **Determinism pins** — the synchronous schedule produces bit-identical
   edge rows and queue profiles across *every* StateBackend ×
   ExecutorBackend pairing, including the off-diagonal ones no built-in
   engine uses (shared-memory state driven by the serial or thread-team
   executor).
2. **Cross-backend trace equivalence** — the work trace is a property of
   the schedule, not of who ran it: superstep and threaded produce
   identical synchronous traces (queue sizes, per-iteration services and
   work items, critical path), and both match the reference engine's
   queue sizes on the deterministic schedules.
3. **Driver validation** — bad knobs and unsupported combinations raise
   :class:`~repro.errors.ConfigError` before any work happens.
4. **The third-party recipe** — ``backend_run_fn`` + ``register_engine``
   is enough to plug a new pairing into the session API.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chordality.recognition import is_chordal
from repro.core.engines import EngineSpec, register_engine, unregister_engine
from repro.core.extract import extract_maximal_chordal_subgraph
from repro.core.kernels import arena_offsets, lower_counts
from repro.core.procpool import ProcessPool
from repro.core.reference import reference_max_chordal
from repro.core.runtime import (
    LocalState,
    NativeThreadTeamExecutor,
    SerialExecutor,
    SharedSegmentState,
    ThreadTeamExecutor,
    backend_run_fn,
    drive,
)
from repro.core.superstep import superstep_max_chordal
from repro.core.threaded import threaded_max_chordal
from repro.errors import ConfigError, ConvergenceError
from repro.graph.builder import build_graph
from repro.graph.generators.classic import complete_graph, disjoint_cliques
from repro.graph.generators.random import gnp_random_graph
from repro.graph.generators.rmat import rmat_b, rmat_er
from repro.graph.ops import edge_subgraph

GENERATORS = {
    "gnp": lambda s: gnp_random_graph(28, 0.18, seed=s),
    "rmat_er": lambda s: rmat_er(7, seed=s),
    "rmat_b": lambda s: rmat_b(7, seed=s),
}
SEEDS = (0, 1, 2)


def shared_state(graph, num_slices):
    """A SharedSegmentState bound to ``graph`` (exact-fit segment)."""
    g = graph if graph.sorted_adjacency else graph.with_sorted_adjacency()
    lower = lower_counts(g.indptr, g.indices)
    offsets = arena_offsets(lower)
    state = SharedSegmentState(num_slices)
    state.reallocate(state.plan_growth(g.num_vertices, int(g.indices.size), int(offsets[-1])))
    state.bind_graph(g, lower, offsets)
    return state


class TestSyncDeterminismAcrossPairings:
    """Bit-identical synchronous rows for every state × executor pairing,
    including the off-diagonal pairings no built-in engine registers."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("gen", sorted(GENERATORS))
    def test_all_pairings_bit_identical(self, gen, seed):
        graph = GENERATORS[gen](seed)
        base_edges, base_qs, _ = drive(
            LocalState(graph), SerialExecutor(), schedule="synchronous"
        )

        pairings = []
        for slices in (1, 3):
            pairings.append((LocalState(graph, slices), SerialExecutor()))
        for threads in (2, 5):
            pairings.append(
                (LocalState(graph, threads), ThreadTeamExecutor(threads))
            )
        # Native pairing: compiled bodies when available, NumPy fallback
        # otherwise — both must reproduce the same rows at any width.
        for threads in (1, 4):
            pairings.append(
                (
                    LocalState(graph, threads, edge_claims=True),
                    NativeThreadTeamExecutor(threads),
                )
            )
        # Off-diagonal: shared-memory arrays driven without any worker
        # processes — the rounds must not care where the arrays live.
        pairings.append((shared_state(graph, 1), SerialExecutor()))
        pairings.append((shared_state(graph, 3), ThreadTeamExecutor(3)))
        pairings.append((shared_state(graph, 2), NativeThreadTeamExecutor(2)))

        for state, executor in pairings:
            with executor:
                edges, qs, _ = drive(state, executor, schedule="synchronous")
            label = (type(state).__name__, type(executor).__name__, seed)
            assert np.array_equal(edges, base_edges), label
            assert qs == base_qs, label
            if isinstance(state, SharedSegmentState):
                state.release()

    @pytest.mark.parametrize("workers", (1, 3, 6))
    def test_process_team_matches_serial(self, workers):
        graph = GENERATORS["rmat_er"](4)
        base_edges, base_qs, _ = superstep_max_chordal(graph, schedule="synchronous")
        with ProcessPool(graph, num_workers=workers) as pool:
            edges, qs = pool.extract(schedule="synchronous")
        assert np.array_equal(edges, base_edges)
        assert qs == base_qs

    def test_async_sweep_on_shared_state_matches_superstep(self):
        """The maximal-progress sweep also runs over shared-memory arrays
        (set mirrors live in the driving process regardless of where the
        arrays do); serial executor ⇒ deterministic, equal to superstep."""
        graph = GENERATORS["gnp"](1)
        base_edges, base_qs, _ = superstep_max_chordal(graph, schedule="asynchronous")
        state = shared_state(graph, 1)
        try:
            edges, qs, _ = drive(state, SerialExecutor(), schedule="asynchronous")
            assert np.array_equal(edges, base_edges)
            assert qs == base_qs
        finally:
            state.release()


class TestCrossBackendTraceEquivalence:
    """The trace is a property of the schedule, not the executor."""

    @pytest.mark.parametrize("variant", ("optimized", "unoptimized"))
    @pytest.mark.parametrize("gen", sorted(GENERATORS))
    def test_threaded_sync_trace_equals_superstep(self, gen, variant):
        graph = GENERATORS[gen](0)
        _, _, serial_trace = drive(
            LocalState(graph),
            SerialExecutor(),
            schedule="synchronous",
            variant=variant,
            collect_trace=True,
        )
        with ThreadTeamExecutor(3) as executor:
            _, _, team_trace = drive(
                LocalState(graph, 3),
                executor,
                schedule="synchronous",
                variant=variant,
                collect_trace=True,
            )
        assert serial_trace.queue_sizes == team_trace.queue_sizes
        assert len(serial_trace.iterations) == len(team_trace.iterations)
        for a, b in zip(serial_trace.iterations, team_trace.iterations):
            assert a.services == b.services
            assert a.edges_added == b.edges_added
            assert a.subset_comparisons == b.subset_comparisons
            assert a.advance_ops == b.advance_ops
            assert a.scan_ops == b.scan_ops
            assert a.queue_ops == b.queue_ops
            assert a.critical_path_ops == b.critical_path_ops
            assert np.array_equal(a.work_items, b.work_items)

    @pytest.mark.parametrize("schedule", ("asynchronous", "synchronous"))
    def test_traced_queue_sizes_match_reference(self, schedule):
        """Superstep (serial, both schedules) and reference agree on the
        per-iteration queue profile; the trace repeats it exactly."""
        graph = GENERATORS["rmat_b"](2)
        _, ref_qs = reference_max_chordal(graph, schedule=schedule)
        edges, qs, trace = superstep_max_chordal(
            graph, schedule=schedule, collect_trace=True
        )
        assert qs == ref_qs
        assert trace.queue_sizes == ref_qs
        assert trace.total_edges_added == edges.shape[0]

    def test_threaded_async_trace_accounts_every_service(self):
        """The thread-sliced sweep trace is nondeterministic but complete:
        every (vertex, lower-neighbor) pair is serviced exactly once."""
        graph = GENERATORS["gnp"](3)
        with ThreadTeamExecutor(3) as executor:
            edges, qs, trace = drive(
                LocalState(graph, 3),
                executor,
                schedule="asynchronous",
                collect_trace=True,
            )
        services = sum(it.services for it in trace.iterations)
        assert services == graph.num_edges
        assert trace.total_edges_added == edges.shape[0]
        assert trace.queue_sizes == qs
        assert is_chordal(edge_subgraph(graph, edges))

    def test_session_trace_for_threaded_engine(self):
        r = extract_maximal_chordal_subgraph(
            GENERATORS["gnp"](0),
            engine="threaded",
            schedule="synchronous",
            num_threads=2,
            collect_trace=True,
        )
        base = extract_maximal_chordal_subgraph(
            GENERATORS["gnp"](0), engine="superstep", schedule="synchronous",
            collect_trace=True,
        )
        assert r.trace.queue_sizes == base.trace.queue_sizes
        assert r.trace.total_work == base.trace.total_work


class TestDriverValidation:
    def test_bad_variant(self):
        with pytest.raises(ConfigError, match="variant"):
            drive(LocalState(complete_graph(4)), SerialExecutor(), variant="turbo")

    def test_bad_schedule(self):
        with pytest.raises(ConfigError, match="schedule"):
            drive(LocalState(complete_graph(4)), SerialExecutor(), schedule="warp")

    def test_live_rounds_refuse_trace(self):
        graph = complete_graph(5)
        with ProcessPool(graph, num_workers=2) as pool:
            with pytest.raises(ConfigError, match="collect_trace"):
                drive(
                    pool._state,
                    pool._executor,
                    schedule="asynchronous",
                    collect_trace=True,
                )

    def test_live_rounds_need_edge_claims(self):
        """In-process live rounds (the native pairing's asynchronous
        regime) refuse a state without edge-claim words up front —
        whether the compiled bodies or the NumPy fallback would run."""
        with NativeThreadTeamExecutor(2) as executor:
            with pytest.raises(ConfigError, match="edge-claim"):
                drive(
                    LocalState(complete_graph(5), 2),
                    executor,
                    schedule="asynchronous",
                )

    def test_iteration_budget(self):
        with pytest.raises(ConvergenceError, match="iteration budget"):
            drive(
                LocalState(complete_graph(8)),
                SerialExecutor(),
                schedule="synchronous",
                max_iterations=2,
            )

    def test_trivial_graphs(self):
        for g in (build_graph(0, []), build_graph(5, [])):
            edges, qs, trace = drive(
                LocalState(g), SerialExecutor(), collect_trace=True
            )
            assert edges.shape == (0, 2)
            assert qs == []
            assert trace.num_iterations == 0


class TestThirdPartyBackendRecipe:
    """The README's 'writing a third-party backend' recipe end to end."""

    def test_registered_pairing_runs_through_session(self):
        run_fn = backend_run_fn(
            lambda graph, num_slices, config: LocalState(graph, num_slices),
            lambda config: ThreadTeamExecutor(2),
        )
        spec = EngineSpec(
            name="duo",
            run_fn=run_fn,
            description="two-thread pairing (test)",
            deterministic_schedules=("synchronous",),
            supports_trace=True,
        )
        register_engine(spec)
        try:
            graph = GENERATORS["rmat_er"](0)
            base = extract_maximal_chordal_subgraph(graph, schedule="synchronous")
            got = extract_maximal_chordal_subgraph(
                graph, engine="duo", schedule="synchronous"
            )
            assert np.array_equal(got.edges, base.edges)
            traced = extract_maximal_chordal_subgraph(
                graph, engine="duo", schedule="synchronous", collect_trace=True
            )
            assert traced.trace is not None
        finally:
            unregister_engine("duo")


class TestSweepSemantics:
    """Pins of the maximal-progress sweep the serial engines rely on."""

    def test_clique_iteration_law(self):
        for k in (3, 5, 8):
            _, qs, _ = drive(LocalState(complete_graph(k)), SerialExecutor())
            assert len(qs) == k - 1

    def test_disjoint_cliques_progress_in_parallel(self):
        g = disjoint_cliques(3, 4)
        _, qs, _ = drive(LocalState(g), SerialExecutor())
        assert qs[0] == 3
        assert len(qs) == 3

    @pytest.mark.parametrize("threads", (2, 4))
    def test_thread_sliced_sweep_always_valid(self, threads):
        for seed in SEEDS:
            g = GENERATORS["rmat_b"](seed)
            edges, _ = threaded_max_chordal(
                g, num_threads=threads, schedule="asynchronous"
            )
            assert is_chordal(edge_subgraph(g, edges)), (threads, seed)
