"""Machine-checked counterexample to the paper's Theorem 2 claim.

Theorem 2 asserts that when Algorithm 1's output ``EC`` induces a
connected subgraph, that subgraph is a *maximal* chordal subgraph of the
input.  The proof ends by exhibiting a cycle of length > 3 through a
rejected edge and declaring chordality destroyed — but the exhibited
cycle can be chorded, and the rejected edge can in fact be addable.

The root cause: the subset test ``C[w] ⊆ C[v]`` (line 15) evaluates while
``C[v]`` is still growing.  An element reaching ``C[w]`` via an earlier
parent may enter ``C[v]`` only *after* the pair ``(v, w)`` is processed,
so the rejection is premature relative to the final sets.

This module pins a concrete counterexample (found by search, verified
with two independent chordality oracles) so the erratum stays documented
and the completion pass stays honest.
"""

import networkx as nx
import pytest

from repro.chordality.maximality import addable_edges
from repro.chordality.recognition import is_chordal
from repro.core.extract import extract_maximal_chordal_subgraph
from repro.graph.bfs import bfs_renumber, connected_components
from repro.graph.generators.rmat import rmat_b
from tests.conftest import to_networkx


@pytest.fixture(scope="module")
def counterexample():
    """BFS-numbered RMAT-B(8) instance known to violate the claim."""
    graph, _ = bfs_renumber(rmat_b(8, seed=42))
    result = extract_maximal_chordal_subgraph(graph)
    return graph, result


class TestTheorem2Gap:
    def test_output_is_chordal(self, counterexample):
        """Theorem 1 (chordality) does hold."""
        graph, result = counterexample
        assert is_chordal(result.subgraph)

    def test_addable_edge_exists(self, counterexample):
        """Theorem 2 (maximality) does not: some graph edge is addable."""
        graph, result = counterexample
        found = addable_edges(graph, result.subgraph, limit=1)
        assert found, "expected a maximality violation on this instance"

    def test_violation_within_connected_component(self, counterexample):
        """The violation is not a disconnected-output artifact: the
        addable edge lies inside one connected component of EC."""
        graph, result = counterexample
        (u, v) = addable_edges(graph, result.subgraph, limit=1)[0]
        _, labels = connected_components(result.subgraph)
        assert labels[u] == labels[v]

    def test_confirmed_by_networkx(self, counterexample):
        """Independent oracle: networkx agrees the augmented subgraph is
        still chordal."""
        graph, result = counterexample
        (u, v) = addable_edges(graph, result.subgraph, limit=1)[0]
        G = to_networkx(result.subgraph)
        assert nx.is_chordal(G)
        G.add_edge(int(u), int(v))
        assert nx.is_chordal(G)
        assert graph.has_edge(int(u), int(v))

    def test_completion_pass_closes_gap(self, counterexample):
        graph, _ = counterexample
        fixed = extract_maximal_chordal_subgraph(graph, maximalize=True)
        assert fixed.maximality_gap > 0
        assert addable_edges(graph, fixed.subgraph, limit=1) == []

    def test_gap_affects_both_schedules(self):
        graph, _ = bfs_renumber(rmat_b(8, seed=42))
        for schedule in ("asynchronous", "synchronous"):
            result = extract_maximal_chordal_subgraph(graph, schedule=schedule)
            assert addable_edges(graph, result.subgraph, limit=1), schedule
