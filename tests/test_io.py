"""Tests for edge-list and npz serialisation."""

import io

import pytest

from repro.errors import GraphFormatError
from repro.graph.builder import build_graph
from repro.graph.generators.rmat import rmat_g
from repro.graph.io import load_npz, read_edgelist, save_npz, write_edgelist


@pytest.fixture
def sample():
    return build_graph(5, [(0, 1), (1, 2), (3, 4)])


class TestEdgelist:
    def test_roundtrip_file(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        write_edgelist(sample, path)
        assert read_edgelist(path) == sample

    def test_roundtrip_stream(self, sample):
        buf = io.StringIO()
        write_edgelist(sample, buf)
        buf.seek(0)
        assert read_edgelist(buf) == sample

    def test_header_preserves_isolated_vertices(self, tmp_path):
        g = build_graph(10, [(0, 1)])
        path = tmp_path / "g.txt"
        write_edgelist(g, path)
        assert read_edgelist(path).num_vertices == 10

    def test_comments_and_blank_lines(self):
        text = "# a comment\n\n0 1\n# another\n1 2\n"
        g = read_edgelist(io.StringIO(text))
        assert g.edge_set() == {(0, 1), (1, 2)}

    def test_vertex_count_inferred(self):
        g = read_edgelist(io.StringIO("0 7\n"))
        assert g.num_vertices == 8

    def test_malformed_line_raises(self):
        with pytest.raises(GraphFormatError, match="line 1"):
            read_edgelist(io.StringIO("0 1 2\n"))

    def test_empty_file(self):
        g = read_edgelist(io.StringIO(""))
        assert g.num_vertices == 0

    def test_rmat_roundtrip(self, tmp_path):
        g = rmat_g(7, seed=9)
        path = tmp_path / "rmat.txt"
        write_edgelist(g, path)
        assert read_edgelist(path) == g


class TestNpz:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(sample, path)
        loaded = load_npz(path)
        assert loaded == sample
        assert loaded.sorted_adjacency == sample.sorted_adjacency

    def test_preserves_unsorted_flag(self, sample, tmp_path):
        import numpy as np

        path = tmp_path / "g.npz"
        save_npz(sample.shuffled(np.random.default_rng(0)), path)
        assert not load_npz(path).sorted_adjacency


class TestMetis:
    def test_roundtrip(self, sample, tmp_path):
        from repro.graph.io import read_metis, write_metis

        path = tmp_path / "g.metis"
        write_metis(sample, path)
        assert read_metis(path) == sample

    def test_stream_roundtrip(self):
        import io as _io

        from repro.graph.io import read_metis, write_metis
        from repro.graph.generators.rmat import rmat_er

        g = rmat_er(7, seed=4)
        buf = _io.StringIO()
        write_metis(g, buf)
        buf.seek(0)
        assert read_metis(buf) == g

    def test_comments_skipped(self):
        import io as _io

        from repro.graph.io import read_metis

        text = "% header comment\n3 2\n2 3\n1\n1\n"
        g = read_metis(_io.StringIO(text))
        assert g.edge_set() == {(0, 1), (0, 2)}

    def test_header_mismatch_rejected(self):
        import io as _io

        import pytest as _pytest

        from repro.errors import GraphFormatError
        from repro.graph.io import read_metis

        with _pytest.raises(GraphFormatError, match="declares"):
            read_metis(_io.StringIO("3 5\n2\n1\n\n"))

    def test_edge_weights_without_vertex_weights_rejected(self):
        import io as _io

        import pytest as _pytest

        from repro.errors import GraphFormatError
        from repro.graph.io import read_metis

        # fmt "1" (and "001") declare edge weights with no vertex weights;
        # there is no weight-carrying topology to salvage, so this rejects.
        for fmt in ("1", "001"):
            with _pytest.raises(GraphFormatError, match="edge weights"):
                read_metis(_io.StringIO(f"2 1 {fmt}\n2 5\n1 5\n"))

    def test_vertex_weighted_read_topology_only(self):
        import io as _io

        from repro.graph.io import read_metis

        # fmt "10": one vertex-weight token per row, skipped on read.
        g = read_metis(_io.StringIO("3 2 10\n7 2 3\n4 1\n9 1\n"))
        assert g.edge_set() == {(0, 1), (0, 2)}
        # fmt "011": vertex weight first, then neighbor/edge-weight pairs;
        # edge weights are skipped and only the topology is kept.
        g = read_metis(_io.StringIO("2 1 011\n7 2 5\n9 1 5\n"))
        assert g.num_vertices == 2
        assert g.edge_set() == {(0, 1)}

    def test_empty_file_rejected(self):
        import io as _io

        import pytest as _pytest

        from repro.errors import GraphFormatError
        from repro.graph.io import read_metis

        with _pytest.raises(GraphFormatError, match="header"):
            read_metis(_io.StringIO(""))

    def test_isolated_trailing_vertices(self):
        import io as _io

        from repro.graph.io import read_metis

        g = read_metis(_io.StringIO("4 1\n2\n1\n"))
        assert g.num_vertices == 4
        assert g.degree(3) == 0
