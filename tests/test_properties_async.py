"""Property-based engine × schedule × num_workers verification sweep.

The asynchronous schedules (threaded and, new, the true-parallel process
engine) are *any-valid*: a run returns some chordal subgraph, not a
bit-reproducible one, so these tests certify every configuration through
:func:`repro.chordality.verify_extraction` instead of bit-identity:

1. the **raw** output of every engine × schedule × worker-count combo is
   a chordal subgraph of the input (Theorem 1, no completion pass);
2. after the completion pass the output is certified **maximal**
   (Theorem 2 as the paper intended it).

Graphs are drawn from seeded generators across every family the paper
touches (R-MAT ER/G/B, Erdős–Rényi, bio co-expression stand-ins, chordal
generators) plus the degenerate shapes that historically break engines
(empty, isolated vertices, a single edge, cliques, stars, cycles).

Every assertion message carries the ``(family, seed, engine, schedule,
workers)`` tuple needed to replay the exact failing case — see
``tests/README.md`` ("Re-running a failing property seed").

One :class:`~repro.core.procpool.ProcessPool` per worker count is shared
module-wide, so the 200-graph acceptance sweep pays worker spawn once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chordality.verify import verify_extraction
from repro.core.extract import extract_maximal_chordal_subgraph
from repro.core.maximalize import maximalize_chordal_edges
from repro.core.procpool import ProcessPool
from repro.graph.builder import build_graph
from repro.graph.generators.bio import GSE5140_UNT, bio_network
from repro.graph.generators.chordal import ktree, partial_ktree, random_chordal
from repro.graph.generators.classic import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graph.generators.random import gnp_random_graph
from repro.graph.generators.rmat import rmat_b, rmat_er, rmat_g

#: family name -> seeded builder.  Sizes are kept small enough that the
#: maximality certificate (one BFS per rejected edge) stays cheap.
FAMILIES = {
    "rmat_er": lambda s: rmat_er(5, seed=s),
    "rmat_g": lambda s: rmat_g(5, seed=s),
    "rmat_b": lambda s: rmat_b(5, seed=s),
    "gnp": lambda s: gnp_random_graph(16 + s % 17, 0.08 + 0.04 * (s % 5), seed=s),
    "bio": lambda s: bio_network(GSE5140_UNT.scaled(1 / 1024), seed=s),
    "chordal": lambda s: random_chordal(14 + s % 12, 0.25, seed=s),
    "ktree": lambda s: ktree(10 + s % 8, 1 + s % 3, seed=s),
    "partial_ktree": lambda s: partial_ktree(18, 3, 0.6, seed=s),
    # Degenerate shapes: every engine must survive them at every worker
    # count (empty active sets, more workers than vertices, ...).
    "empty": lambda s: build_graph(0, []),
    "isolated": lambda s: build_graph(1 + s % 5, []),
    "single_edge": lambda s: build_graph(2 + s % 3, [(0, 1)]),
    "complete": lambda s: complete_graph(3 + s % 5),
    "star": lambda s: star_graph(4 + s % 4),
    "path": lambda s: path_graph(5 + s % 5),
    "cycle": lambda s: cycle_graph(4 + s % 4),
}

#: Every engine × schedule × worker-count combination under test.
CONFIGS = [
    ("reference", "synchronous", 0),
    ("reference", "asynchronous", 0),
    ("superstep", "synchronous", 0),
    ("superstep", "asynchronous", 0),
    ("threaded", "synchronous", 3),
    ("threaded", "asynchronous", 3),
    ("native", "synchronous", 1),
    ("native", "synchronous", 3),
    ("native", "asynchronous", 1),
    ("native", "asynchronous", 3),
    ("process", "synchronous", 1),
    ("process", "synchronous", 3),
    ("process", "asynchronous", 1),
    ("process", "asynchronous", 3),
    ("process", "asynchronous", 4),
]

_CONFIG_IDS = [f"{e}-{s[:5]}-w{w}" for e, s, w in CONFIGS]

#: Acceptance-criterion sweep size for the async process engine.
ACCEPTANCE_GRAPHS = 200
_CHUNK = 20


@pytest.fixture(scope="module")
def pools():
    """Shared per-worker-count process pools (spawned lazily, closed once)."""
    cache: dict[int, ProcessPool] = {}

    def get(num_workers: int) -> ProcessPool:
        if num_workers not in cache:
            cache[num_workers] = ProcessPool(num_workers=num_workers)
        return cache[num_workers]

    yield get
    for pool in cache.values():
        pool.close()


def _run_and_verify(graph, *, family, seed, engine, schedule, workers, pool=None):
    """Extract, certify raw chordality, then certify completed maximality."""
    tag = (
        f"family={family} seed={seed} engine={engine} "
        f"schedule={schedule} workers={workers}"
    )
    result = extract_maximal_chordal_subgraph(
        graph,
        engine=engine,
        schedule=schedule,
        num_threads=workers or 3,
        num_workers=workers or 4,
        pool=pool,
    )
    raw = verify_extraction(graph, result, check_maximal=False)
    assert raw.ok, f"{tag}: raw output invalid: {raw}"
    # Iteration budget (the paper's O(max degree) bound, +2 slack).
    assert result.num_iterations <= graph.max_degree() + 2, tag
    completed, _gap = maximalize_chordal_edges(graph, result.edges)
    report = verify_extraction(graph, completed, check_maximal=True)
    assert report.ok, f"{tag}: completed output not maximal-chordal: {report}"
    return result


@pytest.mark.parametrize("engine,schedule,workers", CONFIGS, ids=_CONFIG_IDS)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_every_config_yields_valid_extraction(family, engine, schedule, workers, pools):
    for seed in (0, 1):
        _run_and_verify(
            FAMILIES[family](seed),
            family=family,
            seed=seed,
            engine=engine,
            schedule=schedule,
            workers=workers,
            pool=pools(workers) if engine == "process" else None,
        )


@pytest.mark.parametrize("chunk", range(ACCEPTANCE_GRAPHS // _CHUNK))
def test_acceptance_async_process_200_graphs(chunk, pools):
    """Acceptance criterion: ``engine="process", schedule="asynchronous",
    num_workers=4`` passes ``verify_extraction()`` (chordal + maximal
    after the completion pass) on 200 randomized property-test graphs."""
    names = sorted(FAMILIES)
    pool = pools(4)
    for i in range(_CHUNK):
        idx = chunk * _CHUNK + i
        family = names[idx % len(names)]
        seed = 1000 + idx
        _run_and_verify(
            FAMILIES[family](seed),
            family=family,
            seed=seed,
            engine="process",
            schedule="asynchronous",
            workers=4,
            pool=pool,
        )


def test_async_process_is_not_required_to_match_sync(pools):
    """Document the weaker async contract: live-sweep output *may* differ
    from the synchronous edge set (it does on this input), yet both are
    valid extractions of the same graph."""
    g = rmat_b(7, seed=2)
    pool = pools(4)
    sync = extract_maximal_chordal_subgraph(
        g, engine="process", schedule="synchronous", pool=pool
    )
    seen_diff = False
    for _ in range(5):
        r = extract_maximal_chordal_subgraph(
            g, engine="process", schedule="asynchronous", pool=pool
        )
        assert verify_extraction(g, r, check_maximal=False).ok
        if not np.array_equal(r.edges, sync.edges):
            seen_diff = True
    # Not asserted: equality would also be a legal outcome.  Record the
    # observation so a future all-equal regression is at least visible.
    if not seen_diff:  # pragma: no cover - legal but unexpected
        pytest.skip("async runs happened to match sync on every repeat")


@pytest.mark.async_stress
@pytest.mark.parametrize("seed", tuple(range(12)))
def test_async_process_wide_seed_sweep(seed, pools):
    """Deeper randomized sweep across worker counts (--run-async-stress)."""
    for family in sorted(FAMILIES):
        for workers in (1, 2, 3, 5):
            _run_and_verify(
                FAMILIES[family](seed),
                family=family,
                seed=seed,
                engine="process",
                schedule="asynchronous",
                workers=workers,
                pool=pools(workers),
            )
