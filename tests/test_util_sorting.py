"""Tests for the sorted-array kernels (two-pointer subset, merges)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.util.sorting import (
    is_sorted,
    is_strictly_sorted,
    merge_unique,
    sorted_intersect_size,
    sorted_subset,
    sorted_subset_arrays,
)


class TestIsSorted:
    def test_empty(self):
        assert is_sorted([])
        assert is_strictly_sorted([])

    def test_single(self):
        assert is_sorted([5])
        assert is_strictly_sorted([5])

    def test_sorted_with_duplicates(self):
        assert is_sorted([1, 2, 2, 3])
        assert not is_strictly_sorted([1, 2, 2, 3])

    def test_unsorted(self):
        assert not is_sorted([3, 1, 2])
        assert not is_strictly_sorted([3, 1, 2])

    def test_numpy_input(self):
        assert is_sorted(np.array([1, 4, 9]))
        assert is_strictly_sorted(np.array([1, 4, 9]))


class TestSortedSubset:
    def test_empty_is_subset(self):
        assert sorted_subset([], [1, 2, 3])
        assert sorted_subset([], [])

    def test_identity(self):
        assert sorted_subset([1, 2, 3], [1, 2, 3])

    def test_proper_subset(self):
        assert sorted_subset([2, 5], [1, 2, 3, 5, 8])

    def test_missing_element(self):
        assert not sorted_subset([2, 4], [1, 2, 3, 5])

    def test_larger_than_superset(self):
        assert not sorted_subset([1, 2, 3], [1, 2])

    def test_nonempty_vs_empty(self):
        assert not sorted_subset([1], [])

    def test_element_beyond_end(self):
        assert not sorted_subset([9], [1, 2, 3])

    @given(
        st.lists(st.integers(0, 50), unique=True),
        st.lists(st.integers(0, 50), unique=True),
    )
    def test_matches_set_semantics(self, a, b):
        a, b = sorted(a), sorted(b)
        assert sorted_subset(a, b) == set(a).issubset(b)

    @given(
        st.lists(st.integers(0, 50), unique=True),
        st.lists(st.integers(0, 50), unique=True),
    )
    def test_array_variant_matches(self, a, b):
        a, b = sorted(a), sorted(b)
        got = sorted_subset_arrays(np.asarray(a, np.int64), np.asarray(b, np.int64))
        assert got == set(a).issubset(b)


class TestIntersectAndMerge:
    def test_intersect_disjoint(self):
        assert sorted_intersect_size([1, 3], [2, 4]) == 0

    def test_intersect_overlap(self):
        assert sorted_intersect_size([1, 2, 5, 9], [2, 5, 7]) == 2

    def test_merge_disjoint(self):
        assert merge_unique([1, 3], [2, 4]) == [1, 2, 3, 4]

    def test_merge_with_common(self):
        assert merge_unique([1, 2, 5], [2, 5, 7]) == [1, 2, 5, 7]

    def test_merge_one_empty(self):
        assert merge_unique([], [1, 2]) == [1, 2]
        assert merge_unique([1, 2], []) == [1, 2]

    @given(
        st.lists(st.integers(0, 30), unique=True),
        st.lists(st.integers(0, 30), unique=True),
    )
    def test_intersect_matches_sets(self, a, b):
        assert sorted_intersect_size(sorted(a), sorted(b)) == len(set(a) & set(b))

    @given(
        st.lists(st.integers(0, 30), unique=True),
        st.lists(st.integers(0, 30), unique=True),
    )
    def test_merge_matches_sets(self, a, b):
        assert merge_unique(sorted(a), sorted(b)) == sorted(set(a) | set(b))
