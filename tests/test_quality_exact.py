"""Exact ground truth: every engine sandwiched against the B&B maximum.

``repro.chordality.quality.exact_max_chordal`` computes a true
**maximum**(-weight) chordal subgraph by hole-branching branch-and-bound
(cross-validated against a 2^m brute force in
``test_exact_matches_bruteforce``).  With ground truth in hand, every
engine's *maximal* output is pinned from both sides:

    certified floor  <=  |engine output|  <=  |maximum|  <=  m

The sweep covers **all** labeled graphs on up to 5 vertices (1,088
graphs — the "exhaustive small graphs" tier; exhausting n <= 7 would be
2^21 graphs, so n in {6, 7} is covered by seeded samples instead, and
sparse seeded samples reach n = 20), and the weighted tier pins the
portfolio invariant ``weighted retained weight >= unweighted`` plus
``weighted <= weighted maximum``.

Assertion messages carry the exact edge list (small graphs) or the
``(family, seed)`` tag needed to replay a failure — see
``tests/README.md``.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.chordality.quality import exact_max_chordal, maximal_chordal_floor
from repro.chordality.recognition import is_chordal
from repro.core.engines import registered_engines
from repro.core.procpool import ProcessPool
from repro.core.session import Extractor
from repro.graph.builder import from_edge_array
from repro.graph.generators.random import gnp_random_graph
from repro.graph.weights import attach_edge_weights, retained_weight

#: Engines swept over the exhaustive n <= 5 tier (serial — the tier runs
#: thousands of extractions; the full registry grid runs on the sampled
#: tiers below).
EXHAUSTIVE_ENGINES = ("superstep", "weighted")

#: Registry-driven grid for the sampled tiers.
CELLS = [
    (spec.name, schedule)
    for spec in registered_engines()
    for schedule in spec.schedules
]
_CELL_IDS = [f"{engine}-{schedule[:5]}" for engine, schedule in CELLS]


def _graph_from_mask(n: int, pairs, mask: int):
    rows = [pairs[i] for i in range(len(pairs)) if mask >> i & 1]
    arr = (
        np.asarray(rows, dtype=np.int64)
        if rows
        else np.empty((0, 2), dtype=np.int64)
    )
    return from_edge_array(n, arr), rows


@pytest.fixture(scope="module")
def pool():
    with ProcessPool(num_workers=2) as p:
        yield p


#: (n, p, seed) -> (maximum, floor); the sampled sweep re-tests the same
#: graphs for every registry cell, so ground truth is computed once.
_GROUND_TRUTH: dict[tuple, tuple[int, int]] = {}


def _ground_truth(n: int, p: float, seed: int) -> tuple[int, int]:
    key = (n, p, seed)
    if key not in _GROUND_TRUTH:
        graph = gnp_random_graph(n, p, seed=seed)
        _edges, maximum = exact_max_chordal(graph)
        _GROUND_TRUTH[key] = (int(maximum), maximal_chordal_floor(graph))
    return _GROUND_TRUTH[key]


def _brute_force_max(n: int, rows) -> int:
    best = -1
    m = len(rows)
    for mask in range(1 << m):
        kept = [rows[i] for i in range(m) if mask >> i & 1]
        if len(kept) <= best:
            continue
        arr = (
            np.asarray(kept, dtype=np.int64)
            if kept
            else np.empty((0, 2), dtype=np.int64)
        )
        if is_chordal(from_edge_array(n, arr)):
            best = len(kept)
    return best


@pytest.mark.parametrize("n", (3, 4))
def test_exact_matches_bruteforce(n):
    """The B&B equals the 2^m brute force on every labeled graph with
    n <= 4 (cheap enough to enumerate both sides exhaustively)."""
    pairs = list(itertools.combinations(range(n), 2))
    for mask in range(1 << len(pairs)):
        graph, rows = _graph_from_mask(n, pairs, mask)
        edges, weight = exact_max_chordal(graph)
        assert int(weight) == _brute_force_max(n, rows), f"n={n} edges={rows}"
        assert edges.shape[0] == int(weight)
        assert is_chordal(from_edge_array(n, edges)), f"n={n} edges={rows}"


@pytest.mark.parametrize("n", (4, 5))
def test_exhaustive_small_graphs_sandwich(n):
    """floor <= |engine maximal| <= |maximum| on ALL labeled graphs with
    n vertices, for the serial engines."""
    pairs = list(itertools.combinations(range(n), 2))
    extractors = {
        name: Extractor(engine=name, maximalize=True) for name in EXHAUSTIVE_ENGINES
    }
    try:
        for mask in range(1 << len(pairs)):
            graph, rows = _graph_from_mask(n, pairs, mask)
            _edges, maximum = exact_max_chordal(graph)
            maximum = int(maximum)
            floor = maximal_chordal_floor(graph)
            assert floor <= maximum, f"n={n} edges={rows}"
            for name, ex in extractors.items():
                kept = ex.extract(graph).num_chordal_edges
                assert floor <= kept <= maximum, (
                    f"engine={name} n={n} edges={rows}: retained {kept}, "
                    f"certified floor {floor}, exact maximum {maximum}"
                )
    finally:
        for ex in extractors.values():
            ex.close()


@pytest.mark.parametrize("engine,schedule", CELLS, ids=_CELL_IDS)
def test_sampled_graphs_sandwich_all_engines(engine, schedule, pool):
    """Seeded samples at n = 6, 7 (the exhaustive-tier sizes that are too
    many to enumerate) and sparse n = 20: the full registry grid stays
    between the certified floor and the exact maximum."""
    spec = next(s for s in registered_engines() if s.name == engine)
    samples = [(6, 0.4, s) for s in range(8)]
    samples += [(7, 0.4, 100 + s) for s in range(8)]
    samples += [(16, 0.15, 200 + s) for s in range(3)]
    samples += [(20, 0.10, 400 + s) for s in range(3)]
    with Extractor(
        engine=engine,
        schedule=schedule,
        maximalize=True,
        pool=pool if spec.supports_pool else None,
    ) as ex:
        for n, p, seed in samples:
            graph = gnp_random_graph(n, p, seed=seed)
            tag = f"n={n} p={p} seed={seed} engine={engine} schedule={schedule}"
            maximum, floor = _ground_truth(n, p, seed)
            kept = ex.extract(graph).num_chordal_edges
            assert floor <= kept <= maximum, (
                f"{tag}: retained {kept}, floor {floor}, maximum {maximum}"
            )


def test_weighted_engine_between_unweighted_and_weighted_maximum():
    """On seeded weighted graphs: unweighted-pipeline weight <= weighted
    engine weight <= exact maximum weight (ties allowed everywhere)."""
    rng = np.random.default_rng(42)
    for seed in range(6):
        base = gnp_random_graph(12, 0.35, seed=seed)
        weights = {
            tuple(map(int, e)): float(rng.uniform(0.1, 5.0))
            for e in base.edge_array()
        }
        graph = attach_edge_weights(base, weights)
        tag = f"seed={seed}"
        with Extractor(engine="weighted", maximalize=True) as ex:
            weighted = retained_weight(graph, ex.extract(graph).edges)
        with Extractor(engine="superstep", maximalize=True) as ex:
            unweighted = retained_weight(graph, ex.extract(base).edges)
        _edges, maximum = exact_max_chordal(base, weights=weights)
        assert unweighted <= weighted + 1e-9, (
            f"{tag}: weighted engine retained {weighted:.3f} < unweighted "
            f"pipeline {unweighted:.3f} — the portfolio floor is broken"
        )
        assert weighted <= maximum + 1e-9, (
            f"{tag}: weighted engine retained {weighted:.3f} above the "
            f"exact maximum {maximum:.3f} — impossible; oracle or engine bug"
        )


def test_exact_weighted_prefers_heavy_hole_edge():
    """Hand-checked weighted instance: a 4-cycle keeps its three heaviest
    edges, dropping the lightest."""
    base = from_edge_array(
        4, np.asarray([(0, 1), (1, 2), (2, 3), (0, 3)], dtype=np.int64)
    )
    weights = {(0, 1): 5.0, (1, 2): 4.0, (2, 3): 3.0, (0, 3): 0.5}
    edges, weight = exact_max_chordal(base, weights=weights)
    assert weight == pytest.approx(12.0)
    assert (0, 3) not in {tuple(map(int, e)) for e in edges}


def test_exact_rejects_negative_weights_and_honours_node_limit():
    g = gnp_random_graph(10, 0.5, seed=1)
    first = tuple(map(int, g.edge_array()[0]))
    with pytest.raises(ValueError, match="non-negative"):
        exact_max_chordal(g, weights={first: -1.0})
    with pytest.raises(RuntimeError, match="node_limit"):
        exact_max_chordal(gnp_random_graph(16, 0.6, seed=2), node_limit=3)
