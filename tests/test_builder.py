"""Tests for graph construction and sanitisation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph.builder import (
    build_graph,
    from_adjacency_dict,
    from_edge_array,
    from_networkx,
)


class TestSanitisation:
    def test_self_loops_dropped(self):
        g = build_graph(3, [(0, 0), (0, 1), (2, 2)])
        assert g.edge_set() == {(0, 1)}

    def test_duplicates_collapsed(self):
        g = build_graph(3, [(0, 1), (0, 1), (1, 0)])
        assert g.num_edges == 1

    def test_reversed_duplicates_collapsed(self):
        g = build_graph(4, [(2, 1), (1, 2), (3, 0), (0, 3)])
        assert g.edge_set() == {(1, 2), (0, 3)}

    def test_empty_edges(self):
        g = from_edge_array(5, np.empty((0, 2), np.int64))
        assert g.num_vertices == 5
        assert g.num_edges == 0

    def test_out_of_range_raises(self):
        with pytest.raises(GraphFormatError, match="out of range"):
            build_graph(3, [(0, 5)])

    def test_out_of_range_dropped_when_allowed(self):
        g = from_edge_array(3, np.array([[0, 5], [0, 1]]), allow_out_of_range=True)
        assert g.edge_set() == {(0, 1)}

    def test_negative_vertex_count_raises(self):
        with pytest.raises(GraphFormatError):
            from_edge_array(-1, np.empty((0, 2), np.int64))

    def test_bad_shape_raises(self):
        with pytest.raises(GraphFormatError, match="shape"):
            from_edge_array(3, np.array([[0, 1, 2]]))

    def test_adjacency_always_sorted(self):
        g = build_graph(5, [(4, 0), (4, 2), (4, 1), (4, 3)])
        assert list(g.neighbors(4)) == [0, 1, 2, 3]

    def test_symmetry(self):
        g = build_graph(6, [(0, 3), (5, 1), (2, 4)])
        g.validate_symmetry()

    def test_small_graph_uses_int32(self):
        g = build_graph(10, [(0, 1)])
        assert g.indices.dtype == np.int32


class TestAdjacencyDict:
    def test_basic(self):
        g = from_adjacency_dict({0: [1, 2], 1: [2]})
        assert g.edge_set() == {(0, 1), (0, 2), (1, 2)}

    def test_asymmetric_input_symmetrised(self):
        g = from_adjacency_dict({0: [1]})
        assert g.has_edge(1, 0)

    def test_isolated_trailing_vertex(self):
        g = from_adjacency_dict({0: [1], 3: []})
        assert g.num_vertices == 4
        assert g.degree(3) == 0

    def test_empty(self):
        g = from_adjacency_dict({})
        assert g.num_vertices == 0


class TestNetworkxConversion:
    def test_roundtrip(self):
        import networkx as nx

        G = nx.Graph([(0, 1), (1, 2), (2, 0), (2, 3)])
        g = from_networkx(G)
        assert g.edge_set() == {(0, 1), (0, 2), (1, 2), (2, 3)}

    def test_bad_labels_rejected(self):
        import networkx as nx

        G = nx.Graph([(1, 5)])
        with pytest.raises(GraphFormatError):
            from_networkx(G)


@given(
    n=st.integers(1, 12),
    edges=st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=60),
)
def test_builder_is_idempotent_and_simple(n, edges):
    """Property: output has no loops/dups and rebuilding is a fixed point."""
    edges = [(u % n, v % n) for u, v in edges]
    g = build_graph(n, edges)
    expected = {(min(u, v), max(u, v)) for u, v in edges if u != v}
    assert g.edge_set() == expected
    rebuilt = build_graph(n, list(g.iter_edges()))
    assert rebuilt == g
