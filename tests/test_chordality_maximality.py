"""Tests for the addability criterion and the maximality checker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chordality.maximality import (
    addable_edges,
    addable_edges_slow,
    assert_valid_extraction,
    edge_addable,
    is_maximal_chordal_subgraph,
)
from repro.graph.builder import build_graph
from repro.graph.generators.classic import complete_graph, cycle_graph, path_graph
from tests.conftest import random_graph_from_data


def _adj_sets(graph):
    return [set(int(x) for x in graph.neighbors(v)) for v in range(graph.num_vertices)]


class TestEdgeAddable:
    def test_disconnected_pair_addable(self):
        g = build_graph(4, [(0, 1), (2, 3)])
        assert edge_addable(_adj_sets(g), 1, 2)

    def test_triangle_completion_addable(self):
        g = build_graph(3, [(0, 1), (1, 2)])
        assert edge_addable(_adj_sets(g), 0, 2)

    def test_closing_long_cycle_not_addable(self):
        g = path_graph(4)  # 0-1-2-3
        assert not edge_addable(_adj_sets(g), 0, 3)

    def test_existing_edge_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            edge_addable(_adj_sets(g), 0, 1)

    def test_common_neighbor_blocks_only_short_paths(self):
        # 0-1-2 plus 0-3-4-2: common nbr of (0,2) is 1, but the long path
        # 0-3-4-2 survives its removal -> not addable
        g = build_graph(5, [(0, 1), (1, 2), (0, 3), (3, 4), (4, 2)])
        assert not edge_addable(_adj_sets(g), 0, 2)


class TestAddableEdges:
    def test_maximal_has_none(self):
        g = complete_graph(5)
        sub = g  # a clique is its own maximal chordal subgraph
        assert addable_edges(g, sub) == []

    def test_path_in_cycle_has_none(self):
        g = cycle_graph(5)
        sub = build_graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert addable_edges(g, sub) == []

    def test_detects_addable(self):
        g = complete_graph(4)
        sub = build_graph(4, [(0, 1), (1, 2), (2, 3)])
        found = addable_edges(g, sub)
        assert found  # e.g. (0, 2) completes a triangle

    def test_limit_respected(self):
        g = complete_graph(6)
        sub = build_graph(6, [(0, 1)])
        assert len(addable_edges(g, sub, limit=2)) == 2

    def test_requires_chordal_subgraph(self):
        g = cycle_graph(4)
        with pytest.raises(ValueError, match="chordal"):
            addable_edges(g, g)

    def test_size_mismatch(self):
        from repro.errors import GraphFormatError

        with pytest.raises(GraphFormatError):
            addable_edges(complete_graph(3), complete_graph(4))


class TestIsMaximal:
    def test_spanning_path_of_cycle(self):
        g = cycle_graph(6)
        sub = build_graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
        assert is_maximal_chordal_subgraph(g, sub)

    def test_not_maximal(self):
        g = complete_graph(4)
        sub = build_graph(4, [(0, 1), (2, 3)])
        assert not is_maximal_chordal_subgraph(g, sub)

    def test_non_chordal_sub_rejected(self):
        g = cycle_graph(4)
        assert not is_maximal_chordal_subgraph(g, g)

    def test_foreign_edges_rejected(self):
        g = path_graph(4)
        sub = build_graph(4, [(0, 2)])
        assert not is_maximal_chordal_subgraph(g, sub)

    def test_assert_valid_raises_with_diagnosis(self):
        g = complete_graph(4)
        sub = build_graph(4, [(0, 1)])
        with pytest.raises(AssertionError, match="not maximal"):
            assert_valid_extraction(g, sub)


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_fast_addability_matches_oracle(data):
    """Property: the two-pair BFS criterion == rebuild-and-recognise."""
    from repro.core.extract import extract_maximal_chordal_subgraph

    n = data.draw(st.integers(2, 9))
    bits = data.draw(
        st.lists(st.booleans(), min_size=n * (n - 1) // 2, max_size=n * (n - 1) // 2)
    )
    g = random_graph_from_data(n, bits)
    sub = extract_maximal_chordal_subgraph(g).subgraph  # chordal by Thm 1
    assert addable_edges(g, sub) == addable_edges_slow(g, sub)
