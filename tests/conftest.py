"""Shared fixtures, markers and helpers for the test suite.

Markers (registered here so ``--strict-markers`` stays viable):

* ``slow``   — long-running sweeps; skipped unless ``--run-slow`` (or an
  explicit ``-m`` expression naming ``slow``) is given.
* ``stress`` — adversarial concurrency stress; skipped unless
  ``--run-stress`` (or ``-m ... stress ...``) is given.
* ``async_stress`` — wide sweeps and worker-churn scenarios for the
  asynchronous process engine; skipped unless ``--run-async-stress``
  (or ``-m ... async_stress ...``) is given.
* ``service_stress`` — fault injection against a live ``repro serve``
  daemon (worker SIGKILL, client kill, queue saturation, drain);
  skipped unless ``--run-service-stress`` (or ``-m ... service_stress
  ...``) is given.
* ``incremental_stress`` — long seeded mutation streams verified after
  every event (``IncrementalExtractor``); skipped unless
  ``--run-incremental-stress`` (or ``-m ... incremental_stress ...``).
* ``sharded_stress`` — memory-capped (``resource.setrlimit``) proof that
  out-of-core sharded extraction fits where the in-memory path cannot;
  skipped unless ``--run-sharded-stress`` (or ``-m ... sharded_stress``).

One marker is different in kind:

* ``native`` — tests that require the *compiled* kernel backend
  (:mod:`repro.core.native`).  These run by default (they are tier-1 on
  any host with a C toolchain); when the backend cannot be resolved they
  are **skipped with the resolution detail as the reason** (no compiler
  vs. missing cffi vs. build failure vs. ``REPRO_NATIVE=0``) — never
  silently passed.

Tier-1 (``pytest -x -q``) therefore stays fast; the marked sweeps are the
tier-2 deep end (see ``tests/README.md``).
"""

from __future__ import annotations

import pytest

from repro.graph.builder import build_graph
from repro.graph.csr import CSRGraph
from repro.graph.generators.classic import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.generators.random import gnp_random_graph
from repro.graph.generators.rmat import rmat_b, rmat_er, rmat_g

_OPTIONAL_MARKERS = {
    "slow": ("--run-slow", "long-running test; skipped unless --run-slow"),
    "stress": ("--run-stress", "adversarial stress test; skipped unless --run-stress"),
    "async_stress": (
        "--run-async-stress",
        "async process-engine stress test; skipped unless --run-async-stress",
    ),
    "service_stress": (
        "--run-service-stress",
        "extraction-service fault injection; skipped unless --run-service-stress",
    ),
    "incremental_stress": (
        "--run-incremental-stress",
        "long seeded mutation streams for the incremental extractor; "
        "skipped unless --run-incremental-stress",
    ),
    "sharded_stress": (
        "--run-sharded-stress",
        "memory-capped (resource.setrlimit) out-of-core extraction proof; "
        "skipped unless --run-sharded-stress",
    ),
}


def pytest_addoption(parser) -> None:
    for name, (flag, _description) in _OPTIONAL_MARKERS.items():
        parser.addoption(
            flag,
            action="store_true",
            default=False,
            help=f"also run tests marked '{name}'",
        )


def pytest_configure(config) -> None:
    for name, (_flag, description) in _OPTIONAL_MARKERS.items():
        config.addinivalue_line("markers", f"{name}: {description}")
    config.addinivalue_line(
        "markers",
        "native: needs the compiled kernel backend; skipped (with the "
        "resolution detail as the reason) when it cannot be built/loaded",
    )


def pytest_collection_modifyitems(config, items) -> None:
    markexpr = config.getoption("-m", default="") or ""
    for name, (flag, _description) in _OPTIONAL_MARKERS.items():
        if config.getoption(flag) or name in markexpr:
            continue
        skip = pytest.mark.skip(reason=f"needs {flag} (or -m {name})")
        for item in items:
            if name in item.keywords:
                item.add_marker(skip)
    if any("native" in item.keywords for item in items):
        from repro.core.native import native_status

        status = native_status()
        if not status.available:
            # Skip *with the specific reason* — a silent pass would hide
            # which failure mode (no compiler / no cffi / broken build /
            # explicit disable) the host is in.
            skip_native = pytest.mark.skip(
                reason=f"native kernel backend unavailable: {status.detail}"
            )
            for item in items:
                if "native" in item.keywords:
                    item.add_marker(skip_native)


def to_networkx(graph: CSRGraph):
    """Convert to networkx.Graph (nodes 0..n-1 always present)."""
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(graph.num_vertices))
    G.add_edges_from(map(tuple, graph.edge_array()))
    return G


@pytest.fixture
def triangle() -> CSRGraph:
    return build_graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def square() -> CSRGraph:
    """4-cycle — the smallest non-chordal graph."""
    return cycle_graph(4)


@pytest.fixture
def empty_graph() -> CSRGraph:
    return build_graph(0, [])


@pytest.fixture
def singleton() -> CSRGraph:
    return build_graph(1, [])


@pytest.fixture
def isolated_vertices() -> CSRGraph:
    return build_graph(5, [])


@pytest.fixture(
    params=["path", "cycle5", "k5", "grid33", "star", "barbell", "gnp",
            "rmat_er", "rmat_g", "rmat_b"]
)
def zoo_graph(request) -> CSRGraph:
    """A diverse zoo of small graphs for cross-cutting invariants."""
    return {
        "path": lambda: path_graph(8),
        "cycle5": lambda: cycle_graph(5),
        "k5": lambda: complete_graph(5),
        "grid33": lambda: grid_graph(3, 3),
        "star": lambda: star_graph(6),
        "barbell": lambda: barbell_graph(4, 2),
        "gnp": lambda: gnp_random_graph(40, 0.15, seed=7),
        "rmat_er": lambda: rmat_er(7, seed=1),
        "rmat_g": lambda: rmat_g(7, seed=2),
        "rmat_b": lambda: rmat_b(7, seed=3),
    }[request.param]()


def random_graph_from_data(n: int, edge_bits: list[bool]) -> CSRGraph:
    """Deterministic graph from a hypothesis-drawn boolean mask over the
    upper-triangular pair enumeration."""
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = [p for p, keep in zip(pairs, edge_bits) if keep]
    return build_graph(n, edges)
