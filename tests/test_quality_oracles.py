"""Theory-backed answer-quality oracles, swept over every engine x schedule.

``repro.chordality.quality`` turns "how many edges should an extraction
keep?" into assertable bounds.  This module tests both directions:

* the **oracles themselves** against hand-checkable graphs (cliques,
  trees, k-trees, cycles) and against each other (floor <= ceiling,
  envelope ordering);
* **every registered engine x schedule cell** against the certified
  per-graph floor ``maximal_chordal_floor`` on seeded random / R-MAT /
  chordal families — a maximal chordal subgraph provably cannot retain
  fewer edges, so any violation is an engine bug, independent of how
  the extraction is scheduled or parallelised.

The sweep is registry-driven: a newly registered engine is picked up
automatically and held to the same floor.  Every assertion message
carries the ``(family, seed, engine, schedule)`` tuple needed to replay
the failing case — see ``tests/README.md``.
"""

from __future__ import annotations

import math

import pytest

from repro.chordality.quality import (
    chordal_edge_ceiling,
    clique_number_chordal,
    f_lower_bound,
    gnp_envelope,
    maximal_chordal_floor,
    retained_fraction,
)
from repro.core.engines import registered_engines
from repro.core.procpool import ProcessPool
from repro.core.session import Extractor
from repro.graph.builder import build_graph
from repro.graph.generators.chordal import ktree, partial_ktree, random_chordal
from repro.graph.generators.classic import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graph.generators.random import gnp_random_graph
from repro.graph.generators.rmat import rmat_er, rmat_g

#: family name -> seeded builder (small: the floor check runs the full
#: engine grid, including the literal reference engine).
FAMILIES = {
    "gnp": lambda s: gnp_random_graph(24 + s % 13, 0.1 + 0.05 * (s % 4), seed=s),
    "rmat_er": lambda s: rmat_er(5, seed=s),
    "rmat_g": lambda s: rmat_g(5, seed=s),
    "chordal": lambda s: random_chordal(16 + s % 9, 0.3, seed=s),
    "partial_ktree": lambda s: partial_ktree(18, 3, 0.6, seed=s),
    "cycle": lambda s: cycle_graph(4 + s % 5),
    "single_edge": lambda s: build_graph(2 + s % 3, [(0, 1)]),
}

#: Registry-driven engine x schedule grid — new engines join automatically.
CELLS = [
    (spec.name, schedule)
    for spec in registered_engines()
    for schedule in spec.schedules
]
_CELL_IDS = [f"{engine}-{schedule[:5]}" for engine, schedule in CELLS]

SEEDS = (0, 1)


@pytest.fixture(scope="module")
def pool():
    """One shared process pool for the pool-capable engines."""
    with ProcessPool(num_workers=2) as p:
        yield p


# ---------------------------------------------------------------------------
# The oracles themselves.


def test_f_lower_bound_small_cases():
    assert f_lower_bound(0, 0) == 0
    assert f_lower_bound(5, 0) == 0
    assert f_lower_bound(2, 1) == 1  # one edge survives whole
    # A triangle (m=3) needs s >= 3 non-isolated vertices -> >= 2 edges.
    assert f_lower_bound(3, 3) == 2
    # K5: s >= 5 -> ceil(5/2) = 3.
    assert f_lower_bound(5, 10) == 3
    with pytest.raises(ValueError):
        f_lower_bound(-1, 0)


def test_f_lower_bound_monotone_in_m():
    values = [f_lower_bound(40, m) for m in range(0, 780)]
    assert values == sorted(values)
    assert values[-1] == 20  # all 40 vertices non-isolated -> >= 20 edges


def test_floor_on_known_graphs():
    # Chordal inputs must be returned whole: floor == m.
    for g in (complete_graph(6), path_graph(7), star_graph(5), ktree(10, 2, seed=0)):
        assert maximal_chordal_floor(g) == g.num_edges
    # A cycle is connected: the spanning floor keeps n - 1 of its n edges.
    cycle = cycle_graph(8)
    assert maximal_chordal_floor(cycle) == 7
    # Edgeless graph: floor 0.
    assert maximal_chordal_floor(build_graph(4, [])) == 0


def test_chordal_edge_ceiling_known_values():
    # Trees: omega = 2 -> n - 1 edges.
    assert chordal_edge_ceiling(10, 2) == 9
    # Complete graph: omega = n -> C(n, 2).
    assert chordal_edge_ceiling(6, 6) == 15
    # omega beyond n clamps to n.
    assert chordal_edge_ceiling(4, 99) == 6
    assert chordal_edge_ceiling(5, 0) == 0
    # 3-trees (omega = 4) attain the bound exactly.
    g = ktree(12, 3, seed=1)
    assert g.num_edges == chordal_edge_ceiling(12, 4)


def test_clique_number_chordal_known_graphs():
    assert clique_number_chordal(complete_graph(7)) == 7
    assert clique_number_chordal(path_graph(6)) == 2
    assert clique_number_chordal(star_graph(5)) == 2
    assert clique_number_chordal(ktree(11, 3, seed=2)) == 4
    assert clique_number_chordal(build_graph(3, [])) == 1
    with pytest.raises(ValueError):
        clique_number_chordal(cycle_graph(5))


def test_floor_never_exceeds_ceiling():
    """Certified floor <= certified ceiling on every swept family."""
    for family, build in sorted(FAMILIES.items()):
        for seed in SEEDS:
            g = build(seed)
            if g.num_edges == 0:
                continue
            floor = maximal_chordal_floor(g)
            omega_cap = g.num_vertices  # trivial clique cap
            ceiling = min(g.num_edges, chordal_edge_ceiling(g.num_vertices, omega_cap))
            assert floor <= ceiling, f"family={family} seed={seed}"


def test_gnp_envelope_orders_and_scales():
    low, high = gnp_envelope(200, 0.3)
    assert 0 <= low < high
    assert low == pytest.approx(199, abs=1)  # connectivity regime
    # Theta(n log n) scaling: high grows ~linearly in n log n, so it is
    # far below the quadratic edge count of a dense G(n, p).
    assert high < 0.25 * 200 * 199 / 2
    with pytest.raises(ValueError):
        gnp_envelope(10, 1.5)


def test_gnp_envelope_contains_actual_extractions():
    """On comfortable (n, p) the retained count of the real pipeline
    falls inside the whp envelope."""
    n, p = 80, 0.3
    low, high = gnp_envelope(n, p)
    with Extractor(engine="superstep", maximalize=True) as ex:
        for seed in (3, 4, 5):
            g = gnp_random_graph(n, p, seed=seed)
            kept = ex.extract(g).num_chordal_edges
            assert low <= kept <= high, f"seed={seed} kept={kept} not in [{low},{high}]"


def test_retained_fraction_degenerate():
    g = build_graph(3, [])
    assert retained_fraction(g, []) == 1.0
    g = build_graph(3, [(0, 1), (1, 2)])
    assert retained_fraction(g, [(0, 1)]) == 0.5


# ---------------------------------------------------------------------------
# Every engine x schedule cell respects the certified floor.


@pytest.mark.parametrize("engine,schedule", CELLS, ids=_CELL_IDS)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_every_cell_meets_certified_floor(family, engine, schedule, pool):
    spec = next(s for s in registered_engines() if s.name == engine)
    for seed in SEEDS:
        graph = FAMILIES[family](seed)
        tag = f"family={family} seed={seed} engine={engine} schedule={schedule}"
        floor = maximal_chordal_floor(graph)
        with Extractor(
            engine=engine,
            schedule=schedule,
            maximalize=True,
            pool=pool if spec.supports_pool else None,
        ) as ex:
            result = ex.extract(graph)
        kept = result.num_chordal_edges
        assert kept >= floor, (
            f"{tag}: retained {kept} edges, below the certified "
            f"maximal-chordal floor {floor} (n={graph.num_vertices}, "
            f"m={graph.num_edges}) — output cannot be maximal"
        )
        assert kept <= graph.num_edges, f"{tag}: retained more edges than exist"
        assert kept >= f_lower_bound(graph.num_vertices, graph.num_edges), tag


def test_floor_is_sharp_enough_to_bite():
    """Sanity that the floor is not vacuous: on a connected G(n, p) it
    demands at least the spanning-tree edge count, a substantial
    fraction of what the engines actually retain."""
    g = gnp_random_graph(40, 0.3, seed=9)
    floor = maximal_chordal_floor(g)
    assert floor >= g.num_vertices - 1  # connected at this density/seed
    with Extractor(engine="superstep", maximalize=True) as ex:
        kept = ex.extract(g).num_chordal_edges
    assert floor >= math.ceil(0.3 * kept)
