"""Tests for component stitching and the maximality completion pass."""

import numpy as np

from repro.chordality.recognition import is_chordal
from repro.core.connect import stitch_components
from repro.core.extract import extract_maximal_chordal_subgraph
from repro.core.maximalize import maximalize_chordal_edges
from repro.graph.bfs import connected_components
from repro.graph.builder import build_graph
from repro.graph.generators.classic import complete_graph, cycle_graph, disjoint_cliques
from repro.graph.generators.rmat import rmat_g
from repro.graph.ops import edge_subgraph


class TestStitchComponents:
    def test_noop_when_connected(self):
        g = cycle_graph(5)
        edges = extract_maximal_chordal_subgraph(g).edges
        out = stitch_components(g, edges)
        assert out.shape == edges.shape

    def test_bridges_added_when_available(self):
        # path 0-2-1: natural-id extraction rejects (1,2), leaving vertex 1
        # isolated even though G connects it.
        g = build_graph(3, [(0, 2), (1, 2)])
        result = extract_maximal_chordal_subgraph(g)
        assert connected_components(result.subgraph)[0] == 2
        stitched = stitch_components(g, result.edges)
        sub = edge_subgraph(g, stitched)
        assert connected_components(sub)[0] == 1
        assert is_chordal(sub)

    def test_skips_pairs_without_edges(self):
        g = disjoint_cliques(3, 3)  # no cross-component edges exist
        edges = extract_maximal_chordal_subgraph(g).edges
        out = stitch_components(g, edges)
        assert out.shape == edges.shape

    def test_chordality_preserved(self):
        g = rmat_g(7, seed=8)
        edges = extract_maximal_chordal_subgraph(g).edges
        out = stitch_components(g, edges)
        assert is_chordal(edge_subgraph(g, out))

    def test_successive_pairs_only(self):
        # components 0-1 disconnected in G, 0-2 and 1-2 connected: the
        # paper's rule joins (0,1)? no edge -> skipped; (1,2) joined.
        g = build_graph(
            6, [(0, 1), (2, 3), (4, 5), (1, 4), (3, 4)]
        )
        edges = np.asarray([[0, 1], [2, 3], [4, 5]], dtype=np.int64)
        out = stitch_components(g, edges)
        sub = edge_subgraph(g, out)
        assert is_chordal(sub)
        assert out.shape[0] >= 4  # at least one bridge added


class TestMaximalize:
    def test_empty_base(self):
        g = complete_graph(4)
        edges, added = maximalize_chordal_edges(g, np.empty((0, 2), np.int64))
        sub = edge_subgraph(g, edges)
        assert is_chordal(sub)
        assert added == edges.shape[0]
        from repro.chordality.maximality import addable_edges

        assert addable_edges(g, sub, limit=1) == []

    def test_already_maximal_unchanged(self):
        g = cycle_graph(7)
        base = extract_maximal_chordal_subgraph(g, maximalize=True).edges
        edges, added = maximalize_chordal_edges(g, base)
        assert added == 0
        assert np.array_equal(edges, base)

    def test_result_superset_of_input(self):
        g = rmat_g(7, seed=8)
        base = extract_maximal_chordal_subgraph(g).edges
        out, added = maximalize_chordal_edges(g, base)
        base_set = {tuple(e) for e in base.tolist()}
        out_set = {tuple(sorted(e)) for e in out.tolist()}
        assert base_set <= out_set
        assert len(out_set) == len(base_set) + added

    def test_certified_maximal_on_zoo(self, zoo_graph):
        from repro.chordality.maximality import addable_edges

        base = extract_maximal_chordal_subgraph(zoo_graph).edges
        out, _ = maximalize_chordal_edges(zoo_graph, base)
        sub = edge_subgraph(zoo_graph, out)
        assert is_chordal(sub)
        assert addable_edges(zoo_graph, sub, limit=1) == []
