"""Tests for the random graph families."""

import numpy as np
import pytest

from repro.graph.generators.random import barabasi_albert, gnm_random_graph, gnp_random_graph


class TestGnp:
    def test_determinism(self):
        assert gnp_random_graph(50, 0.2, seed=3) == gnp_random_graph(50, 0.2, seed=3)

    def test_p_zero_empty(self):
        assert gnp_random_graph(30, 0.0, seed=1).num_edges == 0

    def test_p_one_complete(self):
        g = gnp_random_graph(10, 1.0, seed=1)
        assert g.num_edges == 45

    def test_edge_count_near_expectation(self):
        n, p = 200, 0.1
        g = gnp_random_graph(n, p, seed=5)
        expected = p * n * (n - 1) / 2
        assert 0.75 * expected < g.num_edges < 1.25 * expected

    def test_large_n_skip_sampling_path(self):
        g = gnp_random_graph(4000, 0.0005, seed=2)
        expected = 0.0005 * 4000 * 3999 / 2
        assert 0.6 * expected < g.num_edges < 1.4 * expected
        g.validate_symmetry()

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            gnp_random_graph(10, 1.5)

    def test_zero_vertices(self):
        assert gnp_random_graph(0, 0.5, seed=1).num_vertices == 0


class TestGnm:
    def test_exact_edge_count(self):
        g = gnm_random_graph(40, 100, seed=4)
        assert g.num_edges == 100

    def test_zero_edges(self):
        assert gnm_random_graph(10, 0, seed=1).num_edges == 0

    def test_max_edges(self):
        g = gnm_random_graph(8, 28, seed=1)
        assert g.num_edges == 28

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            gnm_random_graph(5, 11)

    def test_determinism(self):
        assert gnm_random_graph(30, 60, seed=9) == gnm_random_graph(30, 60, seed=9)

    def test_no_self_loops(self):
        g = gnm_random_graph(20, 50, seed=2)
        g.validate_symmetry()


class TestBarabasiAlbert:
    def test_counts(self):
        g = barabasi_albert(50, 3, seed=1)
        assert g.num_vertices == 50
        # each arriving vertex adds at most m_attach distinct edges
        assert g.num_edges <= 3 * 47 + 3

    def test_connected(self):
        from repro.graph.bfs import connected_components

        g = barabasi_albert(60, 2, seed=2)
        assert connected_components(g)[0] == 1

    def test_skewed_degrees(self):
        g = barabasi_albert(300, 2, seed=3)
        degs = g.degrees()
        assert degs.max() > 4 * np.median(degs)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 0)
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)

    def test_determinism(self):
        assert barabasi_albert(40, 2, seed=5) == barabasi_albert(40, 2, seed=5)
