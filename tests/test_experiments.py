"""Smoke + shape tests for every registered experiment (tiny parameters)."""

import pytest

from repro.experiments import REGISTRY, get_experiment, list_experiments
from repro.experiments.report import ExperimentResult, format_series, format_table
from repro.experiments.testsuite import (
    GraphSpec,
    bio_specs,
    build_graph_cached,
    clear_cache,
    rmat_spec,
    rmat_specs,
    trace_for,
)

TINY = dict(scales=(7, 8), bio_fraction=1 / 128, seed=99)


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def run_tiny(experiment_id: str) -> ExperimentResult:
    import inspect

    run = get_experiment(experiment_id)
    params = inspect.signature(run).parameters
    kwargs = {k: v for k, v in TINY.items() if k in params}
    if "scale" in params:
        kwargs["scale"] = 7
    if "sample" in params:
        kwargs["sample"] = 64
    return run(**kwargs)


class TestRegistry:
    def test_all_listed(self):
        expected = {
            "table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6",
            "fig7", "chordal_fraction", "maximality_gap", "ablation",
            "scaling_measured",
        }
        assert set(list_experiments()) == expected

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="available"):
            get_experiment("fig99")


@pytest.mark.parametrize("experiment_id", sorted(REGISTRY))
def test_experiment_runs_and_renders(experiment_id):
    result = run_tiny(experiment_id)
    assert result.experiment_id == experiment_id
    text = result.render()
    assert experiment_id in text
    assert result.rows or result.series


class TestShapeCriteria:
    """Spot-check the headline shape relations at tiny scale."""

    def test_table1_orderings(self):
        result = run_tiny("table1")
        by_name = {row[0]: row for row in result.rows}
        # max degree: ER < G < B at the same scale
        assert by_name["RMAT-ER(8)"][4] < by_name["RMAT-B(8)"][4]
        # bio replicas have higher edges/vertex than RMAT-ER... at tiny
        # bio fractions the structural guarantee is size, so just check
        # presence of all 4 networks
        assert sum(1 for name in by_name if name.startswith("GSE")) == 4

    def test_chordal_fraction_trends(self):
        """At laptop scales RMAT-B is denser than the paper's half-billion-
        edge instances, so its fraction sits *above* ER's and decreases
        with scale toward the paper's ordering (ER 11% > B 6% at scale
        24-26); we assert the decreasing trend and sane ranges."""
        result = run_tiny("chordal_fraction")
        frac = {row[0]: row[3] for row in result.rows}
        assert frac["RMAT-B(8)"] <= frac["RMAT-B(7)"] * 1.15  # decreasing-ish
        for name, f in frac.items():
            assert 0.0 < f <= 1.0, name

    def test_fig7_bio_more_iterations_than_rmat(self):
        result = run_tiny("fig7")
        iters = {row[0]: row[1] for row in result.rows}
        rmat_iters = max(v for k, v in iters.items() if k.startswith("RMAT"))
        bio_iters = max(v for k, v in iters.items() if k.startswith("GSE"))
        assert bio_iters > rmat_iters * 0.8

    def test_fig4_series_sane(self):
        """All times positive; parallel time never *far* above serial
        (at scale 7 the modeled barrier can exceed the tiny compute, so a
        small tolerance is allowed — the recorded larger-scale runs
        descend monotonically, see EXPERIMENTS.md)."""
        result = run_tiny("fig4")
        for name, pts in result.series.items():
            assert all(t > 0 for _p, t in pts), name
            t_first = pts[0][1]
            t_last = pts[-1][1]
            assert t_last <= 1.3 * t_first, name

    def test_maximality_gap_nonnegative(self):
        result = run_tiny("maximality_gap")
        assert all(row[3] >= 0 for row in result.rows)


class TestTestsuite:
    def test_graph_cache_hits(self):
        spec = rmat_spec("RMAT-ER", 7, seed=99)
        a = build_graph_cached(spec)
        b = build_graph_cached(spec)
        assert a is b

    def test_trace_cache_hits(self):
        spec = rmat_spec("RMAT-ER", 7, seed=99)
        a = trace_for(spec, "optimized")
        b = trace_for(spec, "optimized")
        assert a is b

    def test_specs_cover_kinds(self):
        specs = rmat_specs((7, 8), seed=1)
        assert len(specs) == 6
        assert len(bio_specs(0.01, seed=1)) == 4

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            rmat_spec("RMAT-X", 7)
        with pytest.raises(ValueError):
            build_graph_cached(GraphSpec(name="?", kind="mystery"))


class TestReportRendering:
    def test_format_table_alignment(self):
        text = format_table(["A", "Bee"], [[1, 2.5], ["xx", 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[:2])) >= 1

    def test_format_series(self):
        text = format_series({"s": [(1, 2.0), (2, 4.0)]})
        assert "[s]" in text and "4" in text

    def test_float_formatting(self):
        text = format_table(["x"], [[0.000123], [12345.6], [0.5]])
        assert "0.000123" in text
        assert "1.23e+04" in text
