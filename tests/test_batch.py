"""Tests for the batch pipeline: ``extract_many`` and the rebindable
:class:`~repro.core.procpool.ProcessPool` (PR 2 amortisation layer)."""

import numpy as np
import pytest

from repro.core.extract import extract_many, extract_maximal_chordal_subgraph
from repro.core.procpool import ProcessPool
from repro.core.superstep import superstep_max_chordal
from repro.graph.builder import build_graph
from repro.graph.generators.rmat import rmat_b, rmat_er, rmat_g


def sync_reference(graph):
    """Serial synchronous engine — the bit-identity oracle for the pool."""
    edges, queue_sizes, _ = superstep_max_chordal(graph, schedule="synchronous")
    return edges, queue_sizes


@pytest.fixture(scope="module")
def batch():
    return [rmat_er(6, seed=1), rmat_g(7, seed=2), rmat_b(6, seed=3)]


class TestProcessPoolRebind:
    def test_rebind_matches_serial_sync_per_graph(self, batch):
        with ProcessPool(num_workers=2) as pool:
            for g in batch:
                edges, queue_sizes = pool.extract(g)
                ref_edges, ref_sizes = sync_reference(g)
                assert np.array_equal(edges, ref_edges)
                assert queue_sizes == ref_sizes

    def test_growth_then_shrink(self):
        # small -> much larger (forces capacity growth) -> small again.
        sizes = [rmat_er(5, seed=1), rmat_b(9, seed=2), rmat_er(5, seed=3)]
        with ProcessPool(num_workers=2) as pool:
            for g in sizes:
                assert np.array_equal(pool.extract(g)[0], sync_reference(g)[0])

    def test_inplace_growth_keeps_worker_team(self):
        small, big = rmat_er(5, seed=7), rmat_er(6, seed=7)
        with ProcessPool(small, num_workers=2, headroom=8.0) as pool:
            pids = [p.pid for p in pool._procs]
            edges, _ = pool.extract(big)
            assert [p.pid for p in pool._procs] == pids
            assert np.array_equal(edges, sync_reference(big)[0])

    def test_segment_overflow_restarts_worker_team(self):
        small, big = rmat_er(5, seed=7), rmat_b(9, seed=8)
        with ProcessPool(small, num_workers=2, headroom=1.0) as pool:
            pids = [p.pid for p in pool._procs]
            edges, _ = pool.extract(big)
            assert [p.pid for p in pool._procs] != pids
            assert np.array_equal(edges, sync_reference(big)[0])

    def test_constructor_graph_and_argless_extract(self):
        g = rmat_er(6, seed=4)
        with ProcessPool(g, num_workers=2) as pool:
            first = pool.extract()[0]
            again = pool.extract()[0]  # repeat on the bound graph
        assert np.array_equal(first, sync_reference(g)[0])
        assert np.array_equal(first, again)

    def test_trivial_graphs_mid_batch(self):
        graphs = [rmat_er(5, seed=1), build_graph(0, []), build_graph(4, []),
                  rmat_er(5, seed=2)]
        with ProcessPool(num_workers=2) as pool:
            for g in graphs:
                edges, queue_sizes = pool.extract(g)
                assert np.array_equal(edges, sync_reference(g)[0])

    def test_extract_without_bind_raises(self):
        with ProcessPool(num_workers=1) as pool:
            with pytest.raises(RuntimeError, match="no graph bound"):
                pool.extract()

    def test_closed_pool_raises(self):
        pool = ProcessPool(rmat_er(5, seed=1), num_workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.extract()
        with pytest.raises(RuntimeError, match="closed"):
            pool.bind(rmat_er(5, seed=1))
        pool.close()  # idempotent

    def test_bad_num_workers(self):
        with pytest.raises(ValueError, match="num_workers"):
            ProcessPool(num_workers=0)


class TestExtractMany:
    def test_results_match_single_calls(self, batch):
        for engine in ("superstep", "process"):
            many = extract_many(batch, engine=engine, num_workers=2)
            for g, result in zip(batch, many):
                single = extract_maximal_chordal_subgraph(
                    g,
                    engine=engine,
                    schedule="synchronous" if engine == "process" else "asynchronous",
                    num_workers=2,
                )
                assert np.array_equal(result.edges, single.edges)
                assert result.queue_sizes == single.queue_sizes
                assert result.engine == engine

    def test_empty_batch(self):
        assert extract_many([], engine="process") == []

    def test_accepts_iterator(self, batch):
        results = extract_many(iter(batch), engine="superstep")
        assert len(results) == len(batch)

    def test_kwargs_forwarded(self, batch):
        results = extract_many(batch, engine="superstep", renumber="bfs",
                               maximalize=True)
        for r in results:
            assert r.renumbered
            assert r.maximality_gap >= 0

    def test_async_batch_through_one_pool(self, batch):
        """extract_many with the asynchronous schedule: every result is a
        valid (any-valid) extraction and the shared pool survives, and
        rebinding across graph shapes doesn't confuse the claim words."""
        from repro.chordality.verify import verify_extraction

        results = extract_many(
            batch, engine="process", schedule="asynchronous", num_workers=2
        )
        assert len(results) == len(batch)
        for g, r in zip(batch, results):
            assert r.schedule == "asynchronous"
            report = verify_extraction(g, r, check_maximal=False)
            assert report.ok, report

    def test_mixed_schedules_on_caller_pool(self, batch):
        """Interleaving async and sync extractions on one caller-owned
        pool keeps the sync results bit-identical to the serial oracle."""
        with ProcessPool(num_workers=2) as pool:
            for g in batch:
                extract_maximal_chordal_subgraph(
                    g, engine="process", schedule="asynchronous", pool=pool
                )
                sync = extract_maximal_chordal_subgraph(
                    g, engine="process", schedule="synchronous", pool=pool
                )
                ref_edges, _ = sync_reference(g)
                # ChordalResult canonicalises rows; compare canonically.
                lo = np.minimum(ref_edges[:, 0], ref_edges[:, 1])
                hi = np.maximum(ref_edges[:, 0], ref_edges[:, 1])
                order = np.lexsort((hi, lo))
                canon = np.column_stack((lo[order], hi[order]))
                assert np.array_equal(sync.edges, canon)

    def test_caller_owned_pool_stays_open(self, batch):
        with ProcessPool(num_workers=2) as pool:
            extract_many(batch[:2], engine="process", pool=pool)
            # pool is still usable after extract_many returns
            edges, _ = pool.extract(batch[0])
            assert np.array_equal(edges, sync_reference(batch[0])[0])

    def test_pool_with_wrong_engine_rejected(self, batch):
        with ProcessPool(num_workers=1) as pool:
            with pytest.raises(ValueError, match="pool"):
                extract_maximal_chordal_subgraph(
                    batch[0], engine="superstep", pool=pool
                )
            # extract_many mirrors the single-call validation instead of
            # silently ignoring the pool.
            with pytest.raises(ValueError, match="pool"):
                extract_many(batch, engine="superstep", pool=pool)

    @pytest.mark.slow
    def test_killed_worker_detected_within_bounded_time(self):
        """A worker SIGKILLed mid-batch (the OOM-killer scenario) can wedge
        the mp.Barrier state beyond any wait(timeout); the barrier-agent
        thread must still surface a RuntimeError in bounded time and
        release the shared segment."""
        import os
        import signal
        import time

        g = rmat_er(8, seed=1)
        pool = ProcessPool(g, num_workers=2, barrier_timeout=1.0)
        pool.extract()
        os.kill(pool._procs[0].pid, signal.SIGKILL)
        time.sleep(0.2)
        start = time.perf_counter()
        with pytest.raises(RuntimeError, match="barrier"):
            pool.extract()
        # 2 * barrier_timeout + 5s queue slack + 2 * 5s worker reaping.
        assert time.perf_counter() - start < 20.0
        assert pool._closed  # pool self-closed; segment released

    @pytest.mark.slow
    def test_batch_faster_than_per_call_pool_spawn(self):
        """The amortisation claim of BENCH_batch.json, as a loose gate."""
        from repro.util.timing import median_of

        graphs = [rmat_er(7, seed=i) for i in range(12)]

        def batch_run():
            extract_many(graphs, engine="process", num_workers=2)

        def percall_run():
            for g in graphs:
                extract_maximal_chordal_subgraph(
                    g, engine="process", schedule="synchronous", num_workers=2
                )

        batch_s = median_of(batch_run, 3)
        percall_s = median_of(percall_run, 3)
        # The measured gap is ~2.7x (BENCH_batch.json); 1.2x absorbs noise.
        assert batch_s * 1.2 < percall_s, (batch_s, percall_s)
