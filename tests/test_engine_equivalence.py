"""Cross-engine equivalence harness (property-style seed sweep).

The synchronous schedule is the repo's determinism contract: all four
engines (``superstep``, ``threaded``, ``process``, ``reference``) × both
variants must produce the *identical canonical edge set* on every input
(the first three are pairings of the one runtime driver, so this also
pins the driver against every backend).  The asynchronous schedule promises less — any run
yields a chordal subgraph whose maximality gap the completion pass can
close — and that weaker contract is asserted for every engine (all four
offer the schedule since the process engine gained its live sweep); the
full any-valid certification lives in ``tests/test_properties_async.py``.

A small seed sweep runs in tier-1; the wide sweep is marked ``slow``
(``--run-slow``).  See ``tests/README.md``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chordality.maximality import addable_edges
from repro.chordality.recognition import is_chordal
from repro.core.extract import ENGINES, VARIANTS, extract_maximal_chordal_subgraph
from repro.core.procpool import ProcessPool, process_max_chordal
from repro.core.superstep import superstep_max_chordal
from repro.graph.generators.chordal import partial_ktree, random_chordal
from repro.graph.generators.random import gnp_random_graph
from repro.graph.generators.rmat import rmat_b, rmat_er, rmat_g

#: name -> seeded generator; diverse shapes, small enough for a full sweep.
GENERATORS = {
    "gnp": lambda s: gnp_random_graph(28, 0.18, seed=s),
    "rmat_er": lambda s: rmat_er(7, seed=s),
    "rmat_g": lambda s: rmat_g(7, seed=s),
    "rmat_b": lambda s: rmat_b(7, seed=s),
    "chordal": lambda s: random_chordal(24, 0.3, seed=s),
    "partial_ktree": lambda s: partial_ktree(24, 3, 0.7, seed=s),
}

TIER1_SEEDS = (0, 1, 2)
WIDE_SEEDS = tuple(range(3, 15))

ASYNC_ENGINES = ("superstep", "threaded", "reference", "process")

#: Worker counts the synchronous determinism pin sweeps (1 = degenerate
#: team, 3 = uneven slices, 6 = more workers than some actives).
SYNC_WORKER_COUNTS = (1, 3, 6)


def _assert_sync_engines_identical(maker, seed: int) -> None:
    """All Algorithm-1 engines agree bit-for-bit under the synchronous
    schedule.  Engines implementing a *different* algorithm (the
    ``weighted`` MAXCHORD engine, ``EngineSpec.algorithm != "algorithm1"``)
    legitimately return different maximal chordal subgraphs and are
    excluded by the registry's algorithm tag."""
    from repro.core.engines import get_engine

    graph = maker(seed)
    baseline = extract_maximal_chordal_subgraph(
        graph, engine="superstep", schedule="synchronous"
    ).edges
    for engine in ENGINES:
        if getattr(get_engine(engine), "algorithm", "algorithm1") != "algorithm1":
            continue
        for variant in VARIANTS:
            result = extract_maximal_chordal_subgraph(
                graph,
                engine=engine,
                variant=variant,
                schedule="synchronous",
                num_threads=3,
                num_workers=2,
            )
            assert np.array_equal(result.edges, baseline), (
                engine,
                variant,
                seed,
            )


def _assert_async_run_valid(maker, seed: int, engine: str, variant: str) -> None:
    graph = maker(seed)
    result = extract_maximal_chordal_subgraph(
        graph,
        engine=engine,
        variant=variant,
        schedule="asynchronous",
        num_threads=3,
        num_workers=3,
        maximalize=True,
    )
    # Chordal, certified maximal after the completion pass, and the gap the
    # pass had to close is bounded (a blown bound means the engine is
    # discarding far more than the benign snapshot race can explain).
    assert is_chordal(result.subgraph), (engine, variant, seed)
    assert addable_edges(graph, result.subgraph, limit=1) == []
    assert result.maximality_gap <= max(4, result.num_chordal_edges // 2), (
        engine,
        variant,
        seed,
        result.maximality_gap,
    )
    # Queue budget: the run fitted the paper's max_degree + 2 iteration bound.
    assert result.num_iterations <= graph.max_degree() + 2


@pytest.mark.parametrize("seed", TIER1_SEEDS)
@pytest.mark.parametrize("gen", sorted(GENERATORS))
def test_sync_all_engines_identical(gen, seed):
    _assert_sync_engines_identical(GENERATORS[gen], seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", WIDE_SEEDS)
@pytest.mark.parametrize("gen", sorted(GENERATORS))
def test_sync_all_engines_identical_wide(gen, seed):
    _assert_sync_engines_identical(GENERATORS[gen], seed)


@pytest.mark.parametrize("seed", TIER1_SEEDS)
@pytest.mark.parametrize("engine", ASYNC_ENGINES)
def test_async_runs_chordal_and_gap_bounded(engine, seed):
    for gen in ("gnp", "rmat_b"):
        for variant in VARIANTS:
            _assert_async_run_valid(GENERATORS[gen], seed, engine, variant)


@pytest.mark.slow
@pytest.mark.parametrize("seed", WIDE_SEEDS)
@pytest.mark.parametrize("engine", ASYNC_ENGINES)
def test_async_runs_chordal_and_gap_bounded_wide(engine, seed):
    for gen in sorted(GENERATORS):
        for variant in VARIANTS:
            _assert_async_run_valid(GENERATORS[gen], seed, engine, variant)


class TestKernelLoopAgreement:
    """Back-compat pins of the deprecated ``use_kernels`` flag: since the
    unified runtime, every synchronous superstep runs the bulk kernels,
    so both historical spellings must agree exactly (rows and queue
    sizes) and the historical error contract must survive."""

    @pytest.mark.parametrize("seed", TIER1_SEEDS)
    @pytest.mark.parametrize("gen", sorted(GENERATORS))
    def test_rows_and_queues_identical(self, gen, seed):
        graph = GENERATORS[gen](seed)
        loop_edges, loop_qs, _ = superstep_max_chordal(
            graph, schedule="synchronous", use_kernels=False
        )
        vec_edges, vec_qs, _ = superstep_max_chordal(
            graph, schedule="synchronous", use_kernels=True
        )
        assert loop_qs == vec_qs
        assert np.array_equal(loop_edges, vec_edges)

    def test_kernels_refuse_trace(self):
        with pytest.raises(ValueError, match="collect_trace"):
            superstep_max_chordal(
                gnp_random_graph(10, 0.3, seed=0),
                schedule="synchronous",
                use_kernels=True,
                collect_trace=True,
            )


class TestSyncDeterminismPins:
    """The synchronous schedule is the determinism contract: bit-identical
    edge sets AND queue profiles across every engine and every worker
    count, pinned so the asynchronous process path can never leak
    nondeterminism into the sync kernels."""

    @pytest.mark.parametrize("gen", ("gnp", "rmat_b"))
    def test_process_sync_identical_for_every_worker_count(self, gen):
        for seed in TIER1_SEEDS[:2]:
            graph = GENERATORS[gen](seed)
            serial, qs, _ = superstep_max_chordal(graph, schedule="synchronous")
            for workers in SYNC_WORKER_COUNTS:
                edges, pqs = process_max_chordal(graph, num_workers=workers)
                assert np.array_equal(edges, serial), (gen, seed, workers)
                assert pqs == qs, (gen, seed, workers)

    def test_sync_unchanged_after_async_runs_on_same_pool(self):
        """An async sweep must leave no residue (edge-state words, epoch
        counters, arena contents) that shifts a later sync run."""
        graph = GENERATORS["rmat_er"](4)
        serial, qs, _ = superstep_max_chordal(graph, schedule="synchronous")
        with ProcessPool(graph, num_workers=3) as pool:
            before = pool.extract(schedule="synchronous")
            for _ in range(3):
                pool.extract(schedule="asynchronous")
            after = pool.extract(schedule="synchronous")
        for edges, pqs in (before, after):
            assert np.array_equal(edges, serial)
            assert pqs == qs

    def test_threaded_sync_identical_for_every_thread_count(self):
        graph = GENERATORS["gnp"](1)
        baseline = extract_maximal_chordal_subgraph(
            graph, engine="superstep", schedule="synchronous"
        ).edges
        for threads in (1, 2, 5):
            result = extract_maximal_chordal_subgraph(
                graph, engine="threaded", schedule="synchronous",
                num_threads=threads,
            )
            assert np.array_equal(result.edges, baseline), threads


class TestProcessEngineContract:
    def test_async_schedule_supported(self):
        """The former ValueError contract is gone: the process engine now
        runs the paper's asynchronous schedule (validity is certified by
        tests/test_properties_async.py; here just the plumbing)."""
        g = gnp_random_graph(10, 0.3, seed=0)
        edges, qs = process_max_chordal(g, schedule="asynchronous", num_workers=2)
        assert edges.shape[1] == 2
        assert len(qs) >= 1

    def test_unknown_schedule_rejected(self):
        g = gnp_random_graph(10, 0.3, seed=0)
        with pytest.raises(ValueError, match="schedule"):
            process_max_chordal(g, schedule="bogus")
        with ProcessPool(g, num_workers=1) as pool:
            with pytest.raises(ValueError, match="schedule"):
                pool.extract(schedule="bogus")

    def test_bad_worker_count(self):
        with pytest.raises(ValueError, match="num_workers"):
            process_max_chordal(gnp_random_graph(5, 0.5, seed=0), num_workers=0)

    def test_bad_variant(self):
        with pytest.raises(ValueError, match="variant"):
            process_max_chordal(gnp_random_graph(5, 0.5, seed=0), variant="turbo")

    def test_more_workers_than_vertices(self):
        g = gnp_random_graph(6, 0.6, seed=1)
        serial, qs, _ = superstep_max_chordal(g, schedule="synchronous")
        edges, pqs = process_max_chordal(g, num_workers=8)
        assert np.array_equal(edges, serial)
        assert pqs == qs

    def test_pool_reuse_is_deterministic(self):
        g = rmat_er(7, seed=5)
        with ProcessPool(g, num_workers=2) as pool:
            first = pool.extract()
            second = pool.extract()
        assert np.array_equal(first[0], second[0])
        assert first[1] == second[1]

    def test_closed_pool_rejected(self):
        g = rmat_er(7, seed=5)
        pool = ProcessPool(g, num_workers=2)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.extract()

    def test_trivial_graphs(self):
        from repro.graph.builder import build_graph

        for g in (build_graph(0, []), build_graph(7, [])):
            edges, qs = process_max_chordal(g, num_workers=2)
            assert edges.shape == (0, 2)
            assert qs == []

    def test_iteration_budget_enforced(self):
        from repro.errors import ConvergenceError
        from repro.graph.generators.classic import complete_graph

        g = complete_graph(8)
        with pytest.raises(ConvergenceError):
            process_max_chordal(g, num_workers=2, max_iterations=2)
