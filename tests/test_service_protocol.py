"""Wire-protocol certification for the extraction service.

Two layers:

* pure codec tests — framing, graph/edge payloads, config decoding and
  the cache identities, over ``socket.socketpair`` (no server);
* live-server tests — a module-scoped ``repro serve`` daemon answering
  real sockets: round trips whose outputs pass ``verify_extraction``,
  plus every malformed-input class (truncated frames, oversized length
  prefixes, invalid JSON, unknown ops/fields) and a seeded fuzz loop of
  random byte blobs — each must produce exactly one *typed* error
  response (or a clean close), never a hang and never a traceback over
  the wire, and the server must keep serving afterwards.
"""

from __future__ import annotations

import os
import socket
import struct

import numpy as np
import pytest

from repro import build_graph, rmat_b, verify_extraction
from repro.core.config import ExtractionConfig
from repro.errors import ReproError
from repro.graph.weights import attach_edge_weights
from repro.service import (
    ERROR_CODES,
    ProtocolError,
    ReproServer,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service import protocol


# ---------------------------------------------------------------------------
# Framing (socketpair, no server)


def _pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


def test_message_round_trip():
    a, b = _pair()
    with a, b:
        message = {"op": "ping", "nested": {"x": [1, 2, 3]}}
        protocol.send_message(a, message)
        assert protocol.recv_message(b) == message


def test_clean_eof_is_none():
    a, b = _pair()
    with b:
        a.close()
        assert protocol.recv_message(b) is None


def test_truncated_header_is_protocol_error():
    a, b = _pair()
    with a, b:
        a.sendall(protocol.MAGIC[:2])  # 2 of 8 header bytes
        a.shutdown(socket.SHUT_WR)
        with pytest.raises(ProtocolError, match="truncated"):
            protocol.recv_message(b)


def test_truncated_payload_is_protocol_error():
    a, b = _pair()
    with a, b:
        a.sendall(protocol.HEADER.pack(protocol.MAGIC, 100) + b'{"op"')
        a.shutdown(socket.SHUT_WR)
        with pytest.raises(ProtocolError, match="truncated|payload"):
            protocol.recv_message(b)


def test_bad_magic_is_protocol_error():
    a, b = _pair()
    with a, b:
        a.sendall(b"EVIL" + struct.pack("!I", 2) + b"{}")
        with pytest.raises(ProtocolError, match="magic"):
            protocol.recv_message(b)


def test_oversized_length_prefix_is_protocol_error():
    a, b = _pair()
    with a, b:
        a.sendall(protocol.HEADER.pack(protocol.MAGIC, 2**31))
        with pytest.raises(ProtocolError, match="oversized"):
            protocol.recv_message(b)


def test_invalid_json_payload_is_protocol_error():
    a, b = _pair()
    with a, b:
        protocol.write_frame(a, b"not json at all")
        with pytest.raises(ProtocolError, match="JSON"):
            protocol.recv_message(b)


def test_non_object_json_is_protocol_error():
    a, b = _pair()
    with a, b:
        protocol.write_frame(a, b"[1, 2, 3]")
        with pytest.raises(ProtocolError, match="object"):
            protocol.recv_message(b)


def test_write_frame_refuses_oversized_payload():
    a, b = _pair()
    with a, b:
        with pytest.raises(ProtocolError, match="refusing"):
            protocol.write_frame(a, b"x" * 100, max_frame=10)


# ---------------------------------------------------------------------------
# Graph / edge payload codecs


@pytest.fixture
def graph():
    return rmat_b(6, seed=11)


def test_csr_payload_round_trip(graph):
    decoded = protocol.decode_graph(protocol.encode_graph(graph, binary=True))
    assert decoded.num_vertices == graph.num_vertices
    assert (decoded.edge_array() == graph.edge_array()).all()


def test_edge_list_payload_round_trip(graph):
    decoded = protocol.decode_graph(protocol.encode_graph(graph, binary=False))
    assert decoded.num_vertices == graph.num_vertices
    assert (
        np.sort(decoded.edge_array(), axis=0)
        == np.sort(graph.edge_array(), axis=0)
    ).all()


def test_weighted_payload_round_trips_both_shapes(triangle):
    weighted = attach_edge_weights(
        triangle, {(0, 1): 1.5, (1, 2): 2.0, (0, 2): 0.25}
    )
    for binary in (True, False):
        decoded = protocol.decode_graph(
            protocol.encode_graph(weighted, binary=binary)
        )
        assert decoded.has_weights
        assert decoded.total_weight == pytest.approx(weighted.total_weight)


def test_both_shapes_share_one_content_hash(graph):
    via_csr = protocol.decode_graph(protocol.encode_graph(graph, binary=True))
    via_edges = protocol.decode_graph(protocol.encode_graph(graph, binary=False))
    assert (
        protocol.graph_content_hash(via_csr)
        == protocol.graph_content_hash(via_edges)
        == protocol.graph_content_hash(graph)
    )


def test_relabeled_graph_hashes_distinctly():
    g = build_graph(4, [(0, 1), (1, 2), (2, 3)])
    relabeled = build_graph(4, [(3, 2), (2, 1), (1, 0)])  # same up to names
    iso = build_graph(4, [(0, 2), (2, 1), (1, 3)])  # genuinely relabeled
    assert protocol.graph_content_hash(g) == protocol.graph_content_hash(relabeled)
    assert protocol.graph_content_hash(g) != protocol.graph_content_hash(iso)


def test_weighted_and_unweighted_hash_distinctly(triangle):
    weighted = attach_edge_weights(
        triangle, {(0, 1): 1.0, (1, 2): 1.0, (0, 2): 1.0}
    )
    assert protocol.graph_content_hash(triangle) != protocol.graph_content_hash(
        weighted
    )


@pytest.mark.parametrize(
    "payload",
    [
        "not a dict",
        {"mystery": 1},
        {"csr": {"indptr": "AA==", "indices": "AA==", "bogus": 1}},
        {"csr": "not an object"},
        {"csr": {"indptr": 17, "indices": "AA=="}},
        {"csr": {"indptr": "!!!not base64!!!", "indices": "AA=="}},
        {"n": 2, "edges": [[0, 1]], "csr": {}},
        {"edges": "not a list"},
        {"edges": [[0, 1, 2]]},
        {"edges": [[0, "x"]]},
        {"n": -3, "edges": []},
        {"n": 2, "edges": [[0, 1]], "weights": [1.0, 2.0]},
    ],
)
def test_malformed_graph_payloads_are_bad_graph(payload):
    with pytest.raises(ProtocolError) as excinfo:
        protocol.decode_graph(payload)
    assert excinfo.value.code == protocol.BAD_GRAPH


def test_asymmetric_csr_is_bad_graph():
    # Arc 0->1 with no 1->0 back-arc: structurally valid CSR, not a graph.
    payload = {
        "csr": {
            "n": 2,
            "indptr": protocol._b64(np.array([0, 1, 1]), "<i8"),
            "indices": protocol._b64(np.array([1]), "<i8"),
        }
    }
    with pytest.raises(ProtocolError) as excinfo:
        protocol.decode_graph(payload)
    assert excinfo.value.code == protocol.BAD_GRAPH


def test_edges_round_trip():
    edges = np.array([[0, 1], [2, 5], [3, 4]], dtype=np.int64)
    assert (protocol.decode_edges(protocol.encode_edges(edges)) == edges).all()
    empty = protocol.decode_edges(protocol.encode_edges(np.empty((0, 2))))
    assert empty.shape == (0, 2)


def test_edges_decode_rejects_corrupt_payloads():
    good = protocol.encode_edges(np.array([[0, 1]]))
    with pytest.raises(ProtocolError, match="odd"):
        protocol.decode_edges(
            {"edges_b64": protocol._b64(np.array([1, 2, 3]), "<i8")}
        )
    with pytest.raises(ProtocolError, match="num_edges"):
        protocol.decode_edges({**good, "num_edges": 7})


# ---------------------------------------------------------------------------
# Config / timeout decoding and cache identity


def test_decode_config_defaults_to_default_config():
    assert protocol.decode_config(None) == ExtractionConfig()
    assert protocol.decode_config({}) == ExtractionConfig()


def test_decode_config_accepts_every_allowed_field():
    config = protocol.decode_config(
        {
            "engine": "process",
            "variant": "unoptimized",
            "schedule": "synchronous",
            "num_threads": 2,
            "renumber": "bfs",
            "stitch": True,
            "maximalize": True,
            "max_iterations": 5,
        }
    )
    assert config.engine == "process"
    assert config.maximalize and config.stitch
    assert config.max_iterations == 5


@pytest.mark.parametrize(
    "payload, code",
    [
        ("nope", protocol.INVALID_CONFIG),
        ({"mystery_knob": 1}, protocol.INVALID_CONFIG),
        ({"num_workers": 8}, protocol.INVALID_CONFIG),
        ({"collect_trace": True}, protocol.INVALID_CONFIG),
        ({"cost_params": {"a": 1}}, protocol.INVALID_CONFIG),
        ({"engine": "no-such-engine"}, protocol.INVALID_CONFIG),
        ({"engine": "superstep", "schedule": "sideways"}, protocol.INVALID_CONFIG),
        ({"num_threads": 0}, protocol.INVALID_CONFIG),
    ],
)
def test_decode_config_rejections_are_typed(payload, code):
    with pytest.raises(ProtocolError) as excinfo:
        protocol.decode_config(payload)
    assert excinfo.value.code == code


def test_decode_timeout():
    assert protocol.decode_timeout(None, 12.5) == 12.5
    assert protocol.decode_timeout(3, 12.5) == 3.0
    for bad in ("5", True, 0, -1, protocol.MAX_TIMEOUT + 1):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_timeout(bad, 12.5)
        assert excinfo.value.code == protocol.BAD_REQUEST


def test_config_cache_key_identifies_resolved_regimes():
    explicit = ExtractionConfig(engine="process", schedule="synchronous")
    defaulted = ExtractionConfig(engine="process")  # resolves to synchronous
    assert protocol.config_cache_key(
        explicit.resolved()
    ) == protocol.config_cache_key(defaulted.resolved())
    other = ExtractionConfig(engine="process", schedule="asynchronous")
    assert protocol.config_cache_key(other.resolved()) != protocol.config_cache_key(
        explicit.resolved()
    )


# ---------------------------------------------------------------------------
# Live server


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    sock = str(tmp_path_factory.mktemp("svc") / "repro.sock")
    config = ServiceConfig(
        socket_path=sock,
        num_pools=1,
        num_workers=2,
        queue_depth=8,
        request_timeout=60.0,
        barrier_timeout=30.0,
    )
    with ReproServer(config) as srv:
        yield srv


@pytest.fixture
def client(server):
    with ServiceClient(socket_path=server.config.socket_path) as c:
        yield c


def _raw_connection(server):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(server.config.socket_path)
    return sock


def test_ping_reports_versions(client):
    pong = client.ping()
    assert pong["pong"] and pong["protocol"] == protocol.PROTOCOL_VERSION


@pytest.mark.parametrize("engine", ["superstep", "process", "reference"])
def test_extract_round_trip_is_verified_valid(client, engine):
    graph = rmat_b(7, seed=len(engine))
    result = client.extract(
        graph, config={"engine": engine, "maximalize": True}, no_cache=True
    )
    report = verify_extraction(graph, result.edges)
    assert report.ok, report
    assert result.served_by == ("pool" if engine == "process" else "inline")


def test_csr_and_edge_list_payloads_yield_identical_edges(client):
    graph = rmat_b(6, seed=23)
    config = {"engine": "process", "schedule": "synchronous"}
    via_csr = client.extract(graph, config=config, no_cache=True, binary=True)
    via_edges = client.extract(graph, config=config, no_cache=True, binary=False)
    assert (via_csr.edges == via_edges.edges).all()


def test_weighted_graph_served_by_weighted_engine(client):
    weighted = attach_edge_weights(
        build_graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)]),
        {(0, 1): 4.0, (1, 2): 1.0, (2, 3): 4.0, (0, 3): 1.0},
    )
    result = client.extract(weighted, config={"engine": "weighted"})
    report = verify_extraction(weighted, result.edges, check_maximal=False)
    assert report.ok, report


def test_unknown_op_is_bad_request_and_connection_survives(server):
    with _raw_connection(server) as sock:
        protocol.send_message(sock, {"op": "frobnicate"})
        response = protocol.recv_message(sock)
        assert response["ok"] is False
        assert response["error"]["code"] == protocol.BAD_REQUEST
        protocol.send_message(sock, {"op": "ping"})  # same connection
        assert protocol.recv_message(sock)["ok"] is True


@pytest.mark.parametrize(
    "request_message, code",
    [
        ({"op": "extract"}, protocol.BAD_REQUEST),
        (
            {"op": "extract", "graph": {"n": 2, "edges": [[0, 1]]}, "sneaky": 1},
            protocol.BAD_REQUEST,
        ),
        ({"op": "extract", "graph": {"edges": "zzz"}}, protocol.BAD_GRAPH),
        (
            {
                "op": "extract",
                "graph": {"n": 2, "edges": [[0, 1]]},
                "config": {"num_workers": 64},
            },
            protocol.INVALID_CONFIG,
        ),
        (
            {
                "op": "extract",
                "graph": {"n": 2, "edges": [[0, 1]]},
                "config": {"mystery": True},
            },
            protocol.INVALID_CONFIG,
        ),
        (
            {
                "op": "extract",
                "graph": {"n": 2, "edges": [[0, 1]]},
                "timeout": "soon",
            },
            protocol.BAD_REQUEST,
        ),
    ],
)
def test_bad_extract_requests_get_typed_errors(server, request_message, code):
    with _raw_connection(server) as sock:
        protocol.send_message(sock, request_message)
        response = protocol.recv_message(sock)
        assert response["ok"] is False
        assert response["error"]["code"] == code
        assert "Traceback" not in response["error"]["message"]


def test_client_raises_typed_service_error(client, triangle):
    with pytest.raises(ServiceError) as excinfo:
        client.extract(triangle, config={"engine": "no-such-engine"})
    assert excinfo.value.code == protocol.INVALID_CONFIG


def _expect_one_typed_error_then_close(sock):
    """After garbage, the server sends at most one BAD_FRAME error and
    closes; it must never hang or send a second frame."""
    try:
        response = protocol.recv_message(sock)
    except (ProtocolError, OSError):
        return  # server slammed the door mid-frame — also acceptable
    if response is not None:
        assert response["ok"] is False
        assert response["error"]["code"] == protocol.BAD_FRAME
        assert response["error"]["code"] in ERROR_CODES
        # Nothing after the error frame: clean EOF, or a reset when the
        # server closed with unread garbage still buffered.
        try:
            assert protocol.recv_message(sock) is None
        except (ProtocolError, OSError):
            pass


def test_truncated_frame_over_live_socket(server):
    with _raw_connection(server) as sock:
        sock.sendall(protocol.HEADER.pack(protocol.MAGIC, 500) + b"only this")
        sock.shutdown(socket.SHUT_WR)
        _expect_one_typed_error_then_close(sock)


def test_oversized_prefix_over_live_socket(server):
    with _raw_connection(server) as sock:
        sock.sendall(protocol.HEADER.pack(protocol.MAGIC, 2**31 - 1))
        _expect_one_typed_error_then_close(sock)


def test_invalid_json_over_live_socket(server):
    with _raw_connection(server) as sock:
        protocol.write_frame(sock, b"\xff\xfe not json")
        _expect_one_typed_error_then_close(sock)


def test_fuzzed_byte_prefixes_never_hang_or_leak_tracebacks(server):
    rng = np.random.default_rng(0xC0FFEE)
    for trial in range(25):
        blob = rng.integers(0, 256, size=int(rng.integers(1, 64))).astype(
            np.uint8
        ).tobytes()
        with _raw_connection(server) as sock:
            sock.sendall(blob)
            sock.shutdown(socket.SHUT_WR)
            _expect_one_typed_error_then_close(sock)
    # ... and the server still serves real work afterwards.
    with ServiceClient(socket_path=server.config.socket_path) as c:
        assert c.ping()["pong"]


def test_stats_op_reports_counters(client, triangle):
    client.extract(triangle)
    stats = client.stats()
    assert stats["requests"] >= 1
    assert stats["queue_capacity"] == 8
    assert stats["cache"]["max_entries"] == 128
    assert len(stats["pools"][0]["worker_pids"]) == 2


def test_client_requires_exactly_one_address():
    with pytest.raises(ReproError, match="exactly one"):
        ServiceClient()
    with pytest.raises(ReproError, match="exactly one"):
        ServiceClient(socket_path="/tmp/x", host="localhost", port=1)


def test_tcp_listener_serves_too():
    config = ServiceConfig(host="127.0.0.1", port=0, num_workers=1)
    with ReproServer(config) as srv:
        host, port = srv.tcp_address
        with ServiceClient(host=host, port=port) as c:
            result = c.extract(build_graph(3, [(0, 1), (1, 2), (0, 2)]))
            assert result.num_edges == 3


def test_protocol_shutdown_op_drains_and_stops(tmp_path):
    sock_path = str(tmp_path / "stop.sock")
    server = ReproServer(
        ServiceConfig(socket_path=sock_path, num_workers=1)
    ).start()
    with ServiceClient(socket_path=sock_path) as c:
        assert c.shutdown()["stopping"]
    server._stopped.wait(timeout=30.0)
    assert server._stopped.is_set()
    assert not os.path.exists(sock_path)
    # a restart attempt is a clean error, not an undefined state
    with pytest.raises(ReproError, match="restarted"):
        server.start()


def test_shutdown_op_can_be_disabled(tmp_path):
    sock_path = str(tmp_path / "nostop.sock")
    config = ServiceConfig(
        socket_path=sock_path, num_workers=1, allow_remote_shutdown=False
    )
    with ReproServer(config) as srv:
        with ServiceClient(socket_path=sock_path) as c:
            with pytest.raises(ServiceError) as excinfo:
                c.shutdown()
            assert excinfo.value.code == protocol.BAD_REQUEST
            assert c.ping()["pong"]  # still alive
