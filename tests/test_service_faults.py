"""Fault injection against a live extraction service (``service_stress``).

Run with ``pytest --run-service-stress tests/test_service_faults.py``
(see ``tests/README.md`` for the replay recipe).  Scenarios:

* a pool worker SIGKILLed — idle and mid-request — must cost at most one
  transparent retry (pool rebuilt warm, ``pool_rebuilds`` counted), never
  the server;
* clients that vanish mid-request must cost nothing but their own lost
  response — no wedged queue, no leaked connection threads;
* queue saturation must answer late clients ``BUSY`` while every
  admitted request completes (explicit backpressure, no unbounded
  buffering);
* a request must honour its deadline with a typed ``TIMEOUT``;
* shutdown must drain: admitted requests answered, later ones refused.

Servers here run with a ~2s ``barrier_timeout`` so worker-death
detection (normally 120s) fits a test budget; ``dispatch_delay_s`` is
the server's built-in fault-injection seam — an artificial pre-execution
pause that makes "mid-request" and "queue full" timing deterministic.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import rmat_b
from repro.errors import ReproError
from repro.service import (
    ProtocolError,
    ReproServer,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    protocol,
)

pytestmark = pytest.mark.service_stress

BARRIER_TIMEOUT = 2.0


def _server_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        socket_path=str(tmp_path / "svc.sock"),
        num_pools=1,
        num_workers=2,
        queue_depth=8,
        request_timeout=90.0,
        barrier_timeout=BARRIER_TIMEOUT,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _worker_pids(client) -> list[int]:
    return client.stats()["pools"][0]["worker_pids"]


# ---------------------------------------------------------------------------
# Worker death


def test_sigkill_idle_worker_recovers_transparently(tmp_path):
    graph = rmat_b(8, seed=1)
    with ReproServer(_server_config(tmp_path)) as server:
        with ServiceClient(
            socket_path=server.config.socket_path, timeout=120.0
        ) as client:
            first = client.extract(graph, config={"engine": "process"})
            pids = _worker_pids(client)
            os.kill(pids[0], signal.SIGKILL)
            # Next pool request trips the barrier agent, rebuilds, retries.
            second = client.extract(
                graph, config={"engine": "process"}, no_cache=True
            )
            assert (second.edges == first.edges).all()  # sync = bit-identical
            stats = client.stats()
            assert stats["pool_rebuilds"] >= 1
            assert stats["retries"] >= 1
            fresh = _worker_pids(client)
            assert len(fresh) == 2 and not set(fresh) & set(pids)


def test_sigkill_worker_mid_request_retries_once_and_succeeds(tmp_path):
    graph = rmat_b(8, seed=2)
    # dispatch_delay_s gives a deterministic window in which the request
    # is admitted+claimed but the pool has not run yet: a kill landing
    # there (or during the run) surfaces at the next superstep barrier.
    config = _server_config(tmp_path, dispatch_delay_s=1.0)
    with ReproServer(config) as server:
        with ServiceClient(
            socket_path=server.config.socket_path, timeout=120.0
        ) as client:
            warm = client.extract(graph, config={"engine": "process"})
            pids = _worker_pids(client)

            outcome = {}

            def submit():
                with ServiceClient(
                    socket_path=server.config.socket_path, timeout=120.0
                ) as c:
                    try:
                        outcome["result"] = c.extract(
                            graph, config={"engine": "process"}, no_cache=True
                        )
                    except ServiceError as exc:
                        outcome["error"] = exc

            thread = threading.Thread(target=submit)
            thread.start()
            time.sleep(0.4)  # inside the dispatch delay: request in flight
            os.kill(pids[1], signal.SIGKILL)
            thread.join(timeout=120.0)
            assert not thread.is_alive()
            # The retry-once contract: this request either succeeded on the
            # rebuilt pool or failed *typed*; the server itself never died.
            if "result" in outcome:
                assert (outcome["result"].edges == warm.edges).all()
            else:
                assert outcome["error"].code == protocol.WORKER_DIED
            stats = client.stats()
            assert stats["pool_rebuilds"] >= 1
            assert client.ping()["pong"]  # server survived either way


def test_worker_death_does_not_poison_other_requests(tmp_path):
    graph = rmat_b(7, seed=3)
    with ReproServer(_server_config(tmp_path, num_pools=1)) as server:
        with ServiceClient(
            socket_path=server.config.socket_path, timeout=120.0
        ) as client:
            baseline = client.extract(graph, config={"engine": "process"})
            os.kill(_worker_pids(client)[0], signal.SIGKILL)
            # A burst of mixed traffic right after the kill: everything
            # must come back ok (inline engines unaffected; pool requests
            # ride the rebuild).
            results = {}

            def hit(i, engine):
                try:
                    with ServiceClient(
                        socket_path=server.config.socket_path, timeout=120.0
                    ) as c:
                        results[i] = c.extract(
                            graph, config={"engine": engine}, no_cache=True
                        )
                except ServiceError as exc:  # pragma: no cover - diagnostic
                    results[i] = exc

            threads = [
                threading.Thread(target=hit, args=(i, engine))
                for i, engine in enumerate(
                    ["superstep", "process", "superstep", "process"]
                )
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)
            assert all(not t.is_alive() for t in threads)
            for i, r in results.items():
                assert not isinstance(r, Exception), (i, r)
            assert (results[1].edges == baseline.edges).all()


# ---------------------------------------------------------------------------
# Client death


def test_clients_vanishing_mid_request_leak_nothing(tmp_path):
    graph = rmat_b(7, seed=4)
    payload = {
        "op": "extract",
        "graph": protocol.encode_graph(graph),
        "no_cache": True,
    }
    with ReproServer(_server_config(tmp_path)) as server:
        before_threads = threading.active_count()
        for _ in range(5):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(10.0)
            sock.connect(server.config.socket_path)
            protocol.send_message(sock, payload)
            sock.close()  # gone before the response exists
        # the server must still serve, with no queue wedge ...
        with ServiceClient(
            socket_path=server.config.socket_path, timeout=120.0
        ) as client:
            result = client.extract(graph, config={"engine": "superstep"})
            assert result.num_edges > 0
            stats = client.stats()
            assert stats["queue_depth"] == 0
        # ... and no connection-thread leak once the dust settles.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if threading.active_count() <= before_threads + 1:
                break
            time.sleep(0.2)
        assert threading.active_count() <= before_threads + 1


def test_client_half_close_after_request_still_gets_response(tmp_path):
    graph = rmat_b(6, seed=5)
    with ReproServer(_server_config(tmp_path)) as server:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(60.0)
        sock.connect(server.config.socket_path)
        with sock:
            protocol.send_message(
                sock, {"op": "extract", "graph": protocol.encode_graph(graph)}
            )
            sock.shutdown(socket.SHUT_WR)  # we will never send again
            response = protocol.recv_message(sock)
            assert response["ok"] is True
            assert protocol.decode_edges(response).shape[1] == 2


# ---------------------------------------------------------------------------
# Backpressure and deadlines


def test_queue_saturation_answers_busy_and_serves_the_admitted(tmp_path):
    graph = rmat_b(6, seed=6)
    config = _server_config(
        tmp_path, queue_depth=2, dispatch_delay_s=0.5, request_timeout=60.0
    )
    results: dict[int, tuple[str, object]] = {}

    with ReproServer(config) as server:

        def hit(i):
            try:
                with ServiceClient(
                    socket_path=server.config.socket_path, timeout=120.0
                ) as c:
                    r = c.extract(
                        graph, config={"engine": "superstep"}, no_cache=True
                    )
                    results[i] = ("ok", r.num_edges)
            except ServiceError as exc:
                results[i] = ("error", exc.code)

        threads = [threading.Thread(target=hit, args=(i,)) for i in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert all(not t.is_alive() for t in threads)

        outcomes = [results[i] for i in sorted(results)]
        oks = [o for o in outcomes if o[0] == "ok"]
        errors = [o[1] for o in outcomes if o[0] == "error"]
        # every admitted request completed; every rejection was typed BUSY
        assert len(oks) >= 2  # at least the queue capacity's worth
        assert errors and set(errors) == {protocol.BUSY}
        assert len(oks) + len(errors) == 10
        edge_counts = {o[1] for o in oks}
        assert len(edge_counts) == 1  # same graph, same deterministic answer
        # and the server is idle again afterwards
        with ServiceClient(socket_path=server.config.socket_path) as c:
            assert c.stats()["busy_rejections"] == len(errors)


def test_request_deadline_times_out_typed(tmp_path):
    graph = rmat_b(6, seed=7)
    config = _server_config(tmp_path, dispatch_delay_s=2.0)
    with ReproServer(config) as server:
        with ServiceClient(
            socket_path=server.config.socket_path, timeout=60.0
        ) as client:
            start = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.extract(
                    graph,
                    config={"engine": "superstep"},
                    no_cache=True,
                    timeout=0.3,
                )
            elapsed = time.monotonic() - start
            assert excinfo.value.code == protocol.TIMEOUT
            assert elapsed < 2.0  # answered at the deadline, not after the work
            assert client.stats()["timeouts"] == 1
            # the server finishes (and caches) the abandoned work; it
            # keeps serving new requests afterwards
            assert client.ping()["pong"]


# ---------------------------------------------------------------------------
# Shutdown drain


def test_shutdown_drains_in_flight_requests(tmp_path):
    graphs = [rmat_b(6, seed=s) for s in (10, 11, 12)]
    config = _server_config(
        tmp_path, dispatch_delay_s=0.3, queue_depth=8, drain_timeout=30.0
    )
    results: dict[int, object] = {}
    with ReproServer(config) as server:

        def submit(i):
            try:
                with ServiceClient(
                    socket_path=server.config.socket_path, timeout=120.0
                ) as c:
                    results[i] = c.extract(
                        graphs[i], config={"engine": "superstep"}, no_cache=True
                    )
            except (ServiceError, ReproError) as exc:
                results[i] = exc

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        time.sleep(0.15)  # all three admitted, first one mid-delay
        server.shutdown()  # must drain, not drop
        for t in threads:
            t.join(timeout=60.0)
        assert all(not t.is_alive() for t in threads)
    for i in range(3):
        assert not isinstance(results[i], Exception), (i, results[i])
        assert results[i].num_edges > 0
    # after shutdown, new connections are refused cleanly
    with pytest.raises((ReproError, OSError)):
        ServiceClient(socket_path=config.socket_path)


def test_late_requests_during_drain_fail_typed_or_closed(tmp_path):
    graph = rmat_b(6, seed=13)
    config = _server_config(tmp_path, dispatch_delay_s=0.5, drain_timeout=30.0)
    with ReproServer(config) as server:
        early = ServiceClient(socket_path=server.config.socket_path, timeout=60.0)
        late = ServiceClient(socket_path=server.config.socket_path, timeout=60.0)
        slow = threading.Thread(
            target=lambda: early.extract(
                graph, config={"engine": "superstep"}, no_cache=True
            )
        )
        slow.start()
        time.sleep(0.1)
        stopper = threading.Thread(target=server.shutdown)
        stopper.start()
        time.sleep(0.1)
        # a request on an already-open connection during the drain: either
        # a typed SHUTTING_DOWN or a clean connection-closed error —
        # never a hang, never an untyped failure.
        try:
            late.extract(graph, config={"engine": "superstep"})
        except ServiceError as exc:
            assert exc.code in (protocol.SHUTTING_DOWN, protocol.BUSY)
        except (ReproError, ProtocolError, OSError):
            pass
        finally:
            late.close()
        slow.join(timeout=60.0)
        stopper.join(timeout=60.0)
        early.close()
        assert not slow.is_alive() and not stopper.is_alive()


# ---------------------------------------------------------------------------
# End-to-end through the real CLI daemon


def test_cli_daemon_survives_worker_kill_and_drains_on_sigterm(tmp_path):
    sock_path = str(tmp_path / "cli.sock")
    graph_path = str(tmp_path / "g.mtx")
    out_path = str(tmp_path / "g.chordal.txt")
    env = {**os.environ, "PYTHONPATH": "src"}
    subprocess.run(
        [sys.executable, "-m", "repro", "generate", "rmat-b",
         "--scale", "7", "--seed", "3", "-o", graph_path],
        env=env, check=True,
    )
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock_path,
         "--num-workers", "2", "--barrier-timeout", str(BARRIER_TIMEOUT)],
        env=env, stderr=subprocess.PIPE, text=True,
    )
    try:
        deadline = time.monotonic() + 30.0
        while not os.path.exists(sock_path):
            assert time.monotonic() < deadline, "daemon never bound its socket"
            time.sleep(0.1)
        with ServiceClient(socket_path=sock_path, timeout=120.0) as client:
            pids = _worker_pids(client)
            os.kill(pids[0], signal.SIGKILL)
        extract = subprocess.run(
            [sys.executable, "-m", "repro", "extract", graph_path,
             "--server", sock_path, "--engine", "process", "--maximalize",
             "--verify", "-o", out_path],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert extract.returncode == 0, extract.stderr
        assert "verified=chordal,maximal" in extract.stderr
        assert os.path.exists(out_path)
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            assert server.wait(timeout=60) == 0
        except subprocess.TimeoutExpired:  # pragma: no cover - diagnostic
            server.kill()
            raise AssertionError("daemon did not drain on SIGTERM")
    assert not os.path.exists(sock_path)
