"""Tests for the chordal-by-construction generators and treewidth tools."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chordalg.treewidth import (
    chordal_treewidth,
    tree_decomposition,
    treewidth_upper_bound,
)
from repro.chordality.mcs import mcs_peo
from repro.chordality.recognition import is_chordal
from repro.errors import NotChordalError
from repro.graph.builder import build_graph
from repro.graph.generators.chordal import (
    interval_graph,
    ktree,
    partial_ktree,
    random_chordal,
)
from repro.graph.generators.classic import complete_graph, cycle_graph, path_graph


class TestKTree:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_chordal_with_exact_treewidth(self, k):
        g = ktree(14, k, seed=1)
        assert is_chordal(g)
        assert chordal_treewidth(g) == k

    def test_edge_count(self):
        # k-tree on n vertices has k(k+1)/2 + k(n-k-1) edges
        n, k = 12, 3
        g = ktree(n, k, seed=2)
        assert g.num_edges == k * (k + 1) // 2 + k * (n - k - 1)

    def test_minimal_case_is_clique(self):
        assert ktree(4, 3, seed=1) == complete_graph(4)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ktree(3, 3)

    def test_determinism(self):
        assert ktree(15, 2, seed=9) == ktree(15, 2, seed=9)

    def test_one_tree_is_tree(self):
        from repro.graph.bfs import connected_components

        g = ktree(10, 1, seed=3)
        assert g.num_edges == 9
        assert connected_components(g)[0] == 1


class TestPartialKTree:
    def test_treewidth_bounded(self):
        g = partial_ktree(18, 3, 0.6, seed=4)
        bound = treewidth_upper_bound(g, mcs_peo(g))
        # MCS gives a decent (not necessarily tight) triangulation; the
        # true treewidth is <= 3 so a reasonable heuristic stays small
        assert bound <= 6

    def test_keep_one_is_full_ktree(self):
        assert partial_ktree(10, 2, 1.0, seed=5).num_edges == ktree(10, 2, seed=5).num_edges

    def test_keep_zero_is_empty(self):
        assert partial_ktree(10, 2, 0.0, seed=5).num_edges == 0

    def test_bad_keep(self):
        with pytest.raises(ValueError):
            partial_ktree(10, 2, 1.5)


class TestRandomChordal:
    @pytest.mark.parametrize("density", [0.0, 0.2, 0.5, 0.9])
    def test_always_chordal(self, density):
        assert is_chordal(random_chordal(40, density, seed=6))

    def test_natural_order_reversed_is_peo(self):
        from repro.chordality.peo import is_perfect_elimination_ordering

        g = random_chordal(25, 0.5, seed=7)
        order = np.arange(25)[::-1]
        assert is_perfect_elimination_ordering(g, order)

    def test_density_monotone_in_expectation(self):
        sparse = random_chordal(60, 0.1, seed=8)
        dense = random_chordal(60, 0.9, seed=8)
        assert dense.num_edges >= sparse.num_edges

    def test_connected(self):
        from repro.graph.bfs import connected_components

        g = random_chordal(30, 0.3, seed=9)
        assert connected_components(g)[0] == 1  # every v links to some r < v

    def test_trivial_sizes(self):
        assert random_chordal(0, 0.5, seed=1).num_vertices == 0
        assert random_chordal(1, 0.5, seed=1).num_edges == 0

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(2, 30), density=st.floats(0, 1), seed=st.integers(0, 100))
    def test_property_chordal(self, n, density, seed):
        assert is_chordal(random_chordal(n, density, seed=seed))


class TestIntervalGraph:
    def test_chordal(self):
        for seed in range(4):
            assert is_chordal(interval_graph(35, seed=seed))

    def test_long_intervals_dense(self):
        short = interval_graph(30, max_length=0.01, seed=3)
        long = interval_graph(30, max_length=0.9, seed=3)
        assert long.num_edges > short.num_edges

    def test_trivial(self):
        assert interval_graph(0, seed=1).num_vertices == 0

    def test_bad_length(self):
        with pytest.raises(ValueError):
            interval_graph(5, max_length=0.0)


class TestTreewidth:
    def test_clique(self):
        assert chordal_treewidth(complete_graph(5)) == 4

    def test_tree(self):
        assert chordal_treewidth(path_graph(6)) == 1

    def test_edgeless(self):
        assert chordal_treewidth(build_graph(4, [])) == 0

    def test_empty(self):
        assert chordal_treewidth(build_graph(0, [])) == -1

    def test_rejects_non_chordal(self):
        with pytest.raises(NotChordalError):
            chordal_treewidth(cycle_graph(4))

    def test_decomposition_width_consistent(self):
        g = ktree(12, 3, seed=1)
        bags, edges, width = tree_decomposition(g)
        assert width == 3
        assert len(edges) == len(bags) - 1

    def test_decomposition_covers_edges(self):
        g = random_chordal(20, 0.4, seed=2)
        bags, _edges, _w = tree_decomposition(g)
        bag_sets = [set(b) for b in bags]
        for u, v in g.iter_edges():
            assert any(u in b and v in b for b in bag_sets)

    def test_upper_bound_exact_on_chordal_with_peo(self):
        g = ktree(14, 2, seed=3)
        assert treewidth_upper_bound(g, mcs_peo(g)) == 2

    def test_upper_bound_on_cycle(self):
        # any triangulation of a cycle has treewidth 2
        assert treewidth_upper_bound(cycle_graph(8), np.arange(8)) == 2
