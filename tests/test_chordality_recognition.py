"""Tests for chordality recognition and hole extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chordality.recognition import find_hole, is_chordal
from repro.graph.builder import build_graph
from repro.graph.generators.classic import (
    barbell_graph,
    binary_tree,
    complete_graph,
    cycle_graph,
    grid_graph,
    ladder_graph,
    path_graph,
    star_graph,
    wheel_graph,
)
from tests.conftest import random_graph_from_data, to_networkx


CHORDAL_EXAMPLES = [
    path_graph(7),
    star_graph(5),
    complete_graph(6),
    binary_tree(3),
    cycle_graph(3),
    barbell_graph(4, 2),
    build_graph(0, []),
    build_graph(3, []),
]

NON_CHORDAL_EXAMPLES = [
    cycle_graph(4),
    cycle_graph(7),
    grid_graph(2, 2),
    grid_graph(3, 3),
    ladder_graph(3),
    wheel_graph(5),
]


class TestIsChordal:
    @pytest.mark.parametrize("g", CHORDAL_EXAMPLES, ids=lambda g: repr(g))
    def test_chordal_examples(self, g):
        assert is_chordal(g)

    @pytest.mark.parametrize("g", NON_CHORDAL_EXAMPLES, ids=lambda g: repr(g))
    def test_non_chordal_examples(self, g):
        assert not is_chordal(g)

    def test_matches_networkx(self, zoo_graph):
        import networkx as nx

        assert is_chordal(zoo_graph) == nx.is_chordal(to_networkx(zoo_graph))

    def test_disjoint_mix(self):
        # chordal component + hole component => not chordal
        g = build_graph(8, [(0, 1), (1, 2), (4, 5), (5, 6), (6, 7), (7, 4)])
        assert not is_chordal(g)


class TestFindHole:
    @pytest.mark.parametrize("g", NON_CHORDAL_EXAMPLES, ids=lambda g: repr(g))
    def test_hole_found_and_valid(self, g):
        hole = find_hole(g)
        assert hole is not None
        k = len(hole)
        assert k >= 4
        # consecutive vertices adjacent, all others non-adjacent
        for i in range(k):
            for j in range(i + 1, k):
                expected = (j - i == 1) or (i == 0 and j == k - 1)
                assert g.has_edge(hole[i], hole[j]) == expected, (hole, i, j)

    @pytest.mark.parametrize("g", CHORDAL_EXAMPLES, ids=lambda g: repr(g))
    def test_no_hole_in_chordal(self, g):
        assert find_hole(g) is None


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_recognition_matches_networkx_random(data):
    """Property: our MCS+PEO recogniser agrees with networkx everywhere."""
    import networkx as nx

    n = data.draw(st.integers(1, 9))
    bits = data.draw(
        st.lists(st.booleans(), min_size=n * (n - 1) // 2, max_size=n * (n - 1) // 2)
    )
    g = random_graph_from_data(n, bits)
    assert is_chordal(g) == nx.is_chordal(to_networkx(g))


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_hole_exists_iff_not_chordal(data):
    n = data.draw(st.integers(4, 9))
    bits = data.draw(
        st.lists(st.booleans(), min_size=n * (n - 1) // 2, max_size=n * (n - 1) // 2)
    )
    g = random_graph_from_data(n, bits)
    assert (find_hole(g) is None) == is_chordal(g)
