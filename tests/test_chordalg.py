"""Tests for the chordal-graph application algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chordalg.cliques import max_clique, maximal_cliques
from repro.chordalg.cliquetree import clique_tree
from repro.chordalg.coloring import chordal_coloring, greedy_coloring, verify_coloring
from repro.chordalg.elimination import elimination_fill_edges, fill_in
from repro.chordalg.independent_set import max_independent_set
from repro.chordality.mcs import mcs_peo
from repro.core.extract import extract_maximal_chordal_subgraph
from repro.errors import NotChordalError
from repro.graph.builder import build_graph
from repro.graph.generators.classic import (
    binary_tree,
    complete_graph,
    cycle_graph,
    disjoint_cliques,
    path_graph,
    star_graph,
)
from tests.conftest import random_graph_from_data, to_networkx


def random_chordal(data, max_n=9):
    n = data.draw(st.integers(2, max_n))
    bits = data.draw(
        st.lists(st.booleans(), min_size=n * (n - 1) // 2, max_size=n * (n - 1) // 2)
    )
    g = random_graph_from_data(n, bits)
    return extract_maximal_chordal_subgraph(g).subgraph


class TestMaxClique:
    def test_complete(self):
        assert max_clique(complete_graph(5)) == [0, 1, 2, 3, 4]

    def test_path(self):
        assert len(max_clique(path_graph(5))) == 2

    def test_empty(self):
        assert max_clique(build_graph(0, [])) == []

    def test_edgeless(self):
        assert len(max_clique(build_graph(3, []))) == 1

    def test_rejects_non_chordal(self):
        with pytest.raises(NotChordalError):
            max_clique(cycle_graph(5))

    def test_result_is_clique(self):
        g = disjoint_cliques(2, 4)
        clique = max_clique(g)
        for i, u in enumerate(clique):
            for v in clique[i + 1:]:
                assert g.has_edge(u, v)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_matches_networkx(self, data):
        import networkx as nx

        sub = random_chordal(data)
        best = max((len(c) for c in nx.find_cliques(to_networkx(sub))), default=0)
        assert len(max_clique(sub)) == best


class TestMaximalCliques:
    def test_complete(self):
        assert maximal_cliques(complete_graph(4)) == [[0, 1, 2, 3]]

    def test_path_edges(self):
        assert sorted(maximal_cliques(path_graph(3))) == [[0, 1], [1, 2]]

    def test_star(self):
        cliques = sorted(maximal_cliques(star_graph(3)))
        assert cliques == [[0, 1], [0, 2], [0, 3]]

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_matches_networkx(self, data):
        import networkx as nx

        sub = random_chordal(data)
        ours = {tuple(c) for c in maximal_cliques(sub)}
        theirs = {tuple(sorted(c)) for c in nx.find_cliques(to_networkx(sub))}
        assert ours == theirs


class TestColoring:
    def test_optimal_on_clique(self):
        colors, k = chordal_coloring(complete_graph(5))
        assert k == 5
        assert verify_coloring(complete_graph(5), colors)

    def test_two_colors_on_tree(self):
        g = binary_tree(3)
        colors, k = chordal_coloring(g)
        assert k == 2
        assert verify_coloring(g, colors)

    def test_chromatic_equals_clique_number(self, zoo_graph):
        sub = extract_maximal_chordal_subgraph(zoo_graph).subgraph
        _, k = chordal_coloring(sub)
        assert k == max(len(max_clique(sub)), 0) or sub.num_vertices == 0

    def test_rejects_non_chordal(self):
        with pytest.raises(NotChordalError):
            chordal_coloring(cycle_graph(5))

    def test_empty(self):
        colors, k = chordal_coloring(build_graph(0, []))
        assert k == 0 and colors.size == 0

    def test_greedy_any_order_valid(self):
        g = cycle_graph(6)
        colors = greedy_coloring(g, np.arange(6))
        assert verify_coloring(g, colors)

    def test_greedy_bad_order(self):
        with pytest.raises(ValueError):
            greedy_coloring(path_graph(3), np.array([0, 1]))

    def test_verify_rejects_conflicts(self):
        g = path_graph(3)
        assert not verify_coloring(g, np.array([0, 0, 1]))
        assert not verify_coloring(g, np.array([0, 1]))


class TestIndependentSet:
    def test_clique_gives_one(self):
        assert len(max_independent_set(complete_graph(6))) == 1

    def test_path_alternation(self):
        assert len(max_independent_set(path_graph(5))) == 3

    def test_star_leaves(self):
        mis = max_independent_set(star_graph(4))
        assert mis == [1, 2, 3, 4]

    def test_result_is_independent(self, zoo_graph):
        sub = extract_maximal_chordal_subgraph(zoo_graph).subgraph
        mis = max_independent_set(sub)
        for i, u in enumerate(mis):
            for v in mis[i + 1:]:
                assert not sub.has_edge(u, v)

    def test_rejects_non_chordal(self):
        with pytest.raises(NotChordalError):
            max_independent_set(cycle_graph(4))

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_maximum_vs_bruteforce(self, data):
        import networkx as nx

        sub = random_chordal(data, max_n=8)
        best = max(
            (len(c) for c in nx.find_cliques(nx.complement(to_networkx(sub)))),
            default=0,
        )
        assert len(max_independent_set(sub)) == best


class TestCliqueTree:
    def test_tree_size(self):
        g = path_graph(4)
        cliques, edges = clique_tree(g)
        assert len(cliques) == 3
        assert len(edges) == 2

    def test_single_clique(self):
        cliques, edges = clique_tree(complete_graph(4))
        assert len(cliques) == 1 and edges == []

    def test_junction_property(self, zoo_graph):
        """Cliques containing any vertex form a connected subtree."""
        import networkx as nx

        sub = extract_maximal_chordal_subgraph(zoo_graph).subgraph
        cliques, edges = clique_tree(sub)
        T = nx.Graph()
        T.add_nodes_from(range(len(cliques)))
        T.add_edges_from(edges)
        for v in range(sub.num_vertices):
            containing = [i for i, c in enumerate(cliques) if v in c]
            if len(containing) > 1:
                assert nx.is_connected(T.subgraph(containing)), (v, containing)

    def test_rejects_non_chordal(self):
        with pytest.raises(NotChordalError):
            clique_tree(cycle_graph(4))


class TestElimination:
    def test_peo_zero_fill(self, zoo_graph):
        sub = extract_maximal_chordal_subgraph(zoo_graph).subgraph
        assert fill_in(sub, mcs_peo(sub)) == 0

    def test_cycle_natural_order_fills(self):
        g = cycle_graph(5)
        assert fill_in(g, np.arange(5)) > 0

    def test_fill_edges_are_new(self):
        g = cycle_graph(6)
        fill = elimination_fill_edges(g, np.arange(6))
        for u, v in fill:
            assert not g.has_edge(u, v)

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            fill_in(path_graph(3), np.array([0, 0, 1]))
        with pytest.raises(ValueError):
            fill_in(path_graph(3), np.array([0, 1]))

    def test_fill_plus_graph_chordal(self):
        """Eliminating along any order triangulates the graph."""
        from repro.chordality.recognition import is_chordal
        from repro.graph.ops import union_edges

        g = cycle_graph(7)
        fill = elimination_fill_edges(g, np.arange(7))
        filled = union_edges(g, build_graph(7, fill))
        assert is_chordal(filled)
