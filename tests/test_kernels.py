"""Unit tests for the bulk NumPy kernels (repro.core.kernels).

Each kernel is checked against a straightforward per-vertex reference on
random inputs; the full vectorized engine is cross-checked against the
historical Python pair loop elsewhere (tests/test_engine_equivalence.py).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import (
    advance_parents,
    append_accepted,
    arena_offsets,
    build_arena_keys,
    initial_parents,
    lower_counts,
    subset_mask,
    subset_mask_live,
    vectorized_sync_max_chordal,
)
from repro.core.state import make_strategy
from repro.errors import ConvergenceError
from repro.graph.generators.classic import complete_graph, star_graph
from repro.graph.generators.random import gnp_random_graph
from repro.graph.generators.rmat import rmat_b


class TestLowerCounts:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_per_vertex_count(self, seed):
        g = gnp_random_graph(40, 0.2, seed=seed)
        lower = lower_counts(g.indptr, g.indices)
        for v in range(g.num_vertices):
            assert lower[v] == int(np.count_nonzero(g.neighbors(v) < v))

    def test_unsorted_adjacency(self):
        g = rmat_b(6, seed=1).shuffled(np.random.default_rng(0))
        assert np.array_equal(
            lower_counts(g.indptr, g.indices),
            lower_counts(
                g.with_sorted_adjacency().indptr, g.with_sorted_adjacency().indices
            ),
        )

    def test_empty(self):
        from repro.graph.builder import build_graph

        g = build_graph(3, [])
        assert np.array_equal(lower_counts(g.indptr, g.indices), np.zeros(3))

    def test_matches_strategy_lower_counts(self):
        g = gnp_random_graph(30, 0.3, seed=7)
        for variant in ("optimized", "unoptimized"):
            strategy = make_strategy(g, variant)
            assert np.array_equal(
                strategy.lower_count, lower_counts(g.indptr, g.indices)
            )


class TestInitialParents:
    @pytest.mark.parametrize("seed", range(4))
    def test_smallest_lower_neighbor(self, seed):
        g = gnp_random_graph(30, 0.25, seed=seed)
        lower = lower_counts(g.indptr, g.indices)
        lp = initial_parents(g.indptr, g.indices, lower)
        for w in range(g.num_vertices):
            below = g.neighbors(w)[g.neighbors(w) < w]
            assert lp[w] == (int(below.min()) if below.size else -1)

    def test_matches_strategy_init(self):
        g = rmat_b(6, seed=3).shuffled(np.random.default_rng(1))
        sorted_lp = make_strategy(g, "optimized").initial_parents()
        unsorted_lp = make_strategy(g, "unoptimized").initial_parents()
        assert np.array_equal(sorted_lp, unsorted_lp)


class TestArenaKeys:
    def _random_arena(self, seed):
        rng = np.random.default_rng(seed)
        n = 12
        lower = rng.integers(0, 5, size=n)
        offsets = arena_offsets(lower)
        arena = np.full(int(offsets[-1]), -1, dtype=np.int64)
        counts = np.array([rng.integers(0, c + 1) for c in lower], dtype=np.int64)
        for v in range(n):
            fill = np.sort(rng.choice(n, size=int(counts[v]), replace=False))
            arena[offsets[v] : offsets[v] + counts[v]] = fill
        return n, offsets, arena, counts

    @pytest.mark.parametrize("seed", range(5))
    def test_keys_sorted_and_complete(self, seed):
        n, offsets, arena, counts = self._random_arena(seed)
        keys = build_arena_keys(arena, offsets, counts, n)
        assert keys.size == counts.sum()
        assert bool(np.all(np.diff(keys) > 0))  # strictly increasing
        expected = [
            v * n + int(e)
            for v in range(n)
            for e in arena[offsets[v] : offsets[v] + counts[v]]
        ]
        assert keys.tolist() == expected

    def test_out_buffer_prefix(self):
        n, offsets, arena, counts = self._random_arena(0)
        scratch = np.full(int(offsets[-1]), 123, dtype=np.int64)
        keys = build_arena_keys(arena, offsets, counts, n, out=scratch)
        assert keys.base is scratch
        assert np.array_equal(keys, build_arena_keys(arena, offsets, counts, n))

    def test_empty_counts(self):
        n, offsets, arena, counts = self._random_arena(1)
        counts[:] = 0
        assert build_arena_keys(arena, offsets, counts, n).size == 0


class TestSubsetMask:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_set_semantics(self, seed):
        rng = np.random.default_rng(seed)
        n = 14
        lower = rng.integers(0, 6, size=n)
        offsets = arena_offsets(lower)
        arena = np.full(int(offsets[-1]), -1, dtype=np.int64)
        counts = np.array([rng.integers(0, c + 1) for c in lower], dtype=np.int64)
        sets = []
        for v in range(n):
            fill = np.sort(rng.choice(n, size=int(counts[v]), replace=False))
            arena[offsets[v] : offsets[v] + counts[v]] = fill
            sets.append(set(fill.tolist()))
        pairs = rng.integers(0, n, size=(20, 2))
        ws, vs = pairs[:, 0].astype(np.int64), pairs[:, 1].astype(np.int64)
        keys = build_arena_keys(arena, offsets, counts, n)
        ok = subset_mask(keys, arena, offsets, counts, ws, vs, n)
        for i in range(ws.size):
            assert bool(ok[i]) == (sets[ws[i]] <= sets[vs[i]]), (ws[i], vs[i])

    def test_empty_queries(self):
        counts = np.zeros(3, dtype=np.int64)
        offsets = arena_offsets(counts)
        arena = np.empty(0, dtype=np.int64)
        keys = build_arena_keys(arena, offsets, counts, 3)
        ws = vs = np.empty(0, dtype=np.int64)
        assert subset_mask(keys, arena, offsets, counts, ws, vs, 3).size == 0


class TestSubsetMaskLive:
    """The live-arena probe variant used by the asynchronous process
    engine: no precompiled key array, prefixes frozen per parent at call
    time.  With quiescent state it must agree with plain set semantics
    (and hence with the snapshot kernel)."""

    @staticmethod
    def _random_arena(rng, n):
        lower = rng.integers(0, 6, size=n)
        offsets = arena_offsets(lower)
        arena = np.full(int(offsets[-1]), -1, dtype=np.int64)
        counts = np.array([rng.integers(0, c + 1) for c in lower], dtype=np.int64)
        sets = []
        for v in range(n):
            fill = np.sort(rng.choice(n, size=int(counts[v]), replace=False))
            arena[offsets[v] : offsets[v] + counts[v]] = fill
            sets.append(set(fill.tolist()))
        return offsets, arena, counts, sets

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_set_semantics(self, seed):
        rng = np.random.default_rng(seed)
        n = 14
        offsets, arena, counts, sets = self._random_arena(rng, n)
        pairs = rng.integers(0, n, size=(20, 2))
        ws, vs = pairs[:, 0].astype(np.int64), pairs[:, 1].astype(np.int64)
        ok = subset_mask_live(arena, offsets, counts, ws, vs, n)
        for i in range(ws.size):
            assert bool(ok[i]) == (sets[ws[i]] <= sets[vs[i]]), (ws[i], vs[i])

    @pytest.mark.parametrize("seed", range(4))
    def test_agrees_with_snapshot_kernel_on_quiescent_state(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = 12
        offsets, arena, counts, _ = self._random_arena(rng, n)
        pairs = rng.integers(0, n, size=(25, 2))
        ws, vs = pairs[:, 0].astype(np.int64), pairs[:, 1].astype(np.int64)
        keys = build_arena_keys(arena, offsets, counts, n)
        snap = subset_mask(keys, arena, offsets, counts, ws, vs, n)
        live = subset_mask_live(arena, offsets, counts, ws, vs, n)
        assert np.array_equal(snap, live)

    def test_empty_queries(self):
        counts = np.zeros(3, dtype=np.int64)
        offsets = arena_offsets(counts)
        arena = np.empty(0, dtype=np.int64)
        ws = vs = np.empty(0, dtype=np.int64)
        assert subset_mask_live(arena, offsets, counts, ws, vs, 3).size == 0

    def test_concurrent_growth_beyond_frozen_prefix_is_invisible(self):
        """Elements appended past the frozen prefix (sorted, hence larger
        than its bound) must not change the verdict — the reject-only
        race argument of the async engine, checked deterministically."""
        lower = np.array([0, 1, 2, 3], dtype=np.int64)
        offsets = arena_offsets(lower)
        arena = np.full(int(offsets[-1]), -1, dtype=np.int64)
        # C[3] = {0}; C[2] = {0} frozen, with slot for a later {1} append.
        arena[offsets[3]] = 0
        arena[offsets[2]] = 0
        counts = np.array([0, 0, 1, 1], dtype=np.int64)
        ws = np.array([3], dtype=np.int64)
        vs = np.array([2], dtype=np.int64)
        before = subset_mask_live(arena, offsets, counts, ws, vs, 4)
        arena[offsets[2] + 1] = 1  # concurrent append: slot first ...
        after_slot = subset_mask_live(arena, offsets, counts, ws, vs, 4)
        counts[2] = 2  # ... count bump second
        after_bump = subset_mask_live(arena, offsets, counts, ws, vs, 4)
        assert before.tolist() == after_slot.tolist() == after_bump.tolist() == [True]


class TestAppendAdvance:
    def test_append_keeps_runs_sorted(self):
        lower = np.array([0, 1, 2, 3], dtype=np.int64)
        offsets = arena_offsets(lower)
        arena = np.full(int(offsets[-1]), -1, dtype=np.int64)
        counts = np.zeros(4, dtype=np.int64)
        ws = np.array([1, 2, 3], dtype=np.int64)
        vs = np.array([0, 0, 0], dtype=np.int64)
        ok = np.array([True, False, True])
        v_ok, w_ok = append_accepted(arena, offsets, counts, ws, vs, ok)
        assert w_ok.tolist() == [1, 3] and v_ok.tolist() == [0, 0]
        assert counts.tolist() == [0, 1, 0, 1]
        ok2 = np.array([False, True, True])
        append_accepted(arena, offsets, counts, ws, np.array([0, 1, 2]), ok2)
        assert arena[offsets[3] : offsets[3] + 2].tolist() == [0, 2]  # sorted

    def test_advance_walks_sorted_parents(self):
        g = complete_graph(4).with_sorted_adjacency()
        lower = lower_counts(g.indptr, g.indices)
        cursor = np.zeros(4, dtype=np.int64)
        lp = initial_parents(g.indptr, g.indices, lower)
        assert lp.tolist() == [-1, 0, 0, 0]
        ws = np.array([1, 2, 3], dtype=np.int64)
        advance_parents(g.indptr, g.indices, lower, cursor, lp, ws)
        assert lp.tolist() == [-1, -1, 1, 1]
        advance_parents(g.indptr, g.indices, lower, cursor, lp, ws[1:])
        assert lp.tolist() == [-1, -1, -1, 2]


class TestVectorizedEngine:
    def test_star_and_clique(self):
        edges, qs = vectorized_sync_max_chordal(star_graph(5))
        assert edges.shape[0] == 5 and len(qs) == 1
        edges, qs = vectorized_sync_max_chordal(complete_graph(5))
        assert edges.shape[0] == 10 and len(qs) == 4

    def test_bad_variant(self):
        with pytest.raises(ValueError, match="variant"):
            vectorized_sync_max_chordal(star_graph(3), variant="bogus")

    def test_iteration_budget(self):
        with pytest.raises(ConvergenceError):
            vectorized_sync_max_chordal(complete_graph(8), max_iterations=2)

    def test_unsorted_input(self):
        g = rmat_b(6, seed=2)
        shuffled = g.shuffled(np.random.default_rng(3))
        a, qa = vectorized_sync_max_chordal(g)
        b, qb = vectorized_sync_max_chordal(shuffled)
        assert np.array_equal(a, b) and qa == qb
