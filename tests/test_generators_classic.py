"""Tests for the deterministic graph families."""

import pytest

from repro.chordality.recognition import is_chordal
from repro.graph.bfs import connected_components
from repro.graph.generators.classic import (
    barbell_graph,
    binary_tree,
    complete_graph,
    cycle_graph,
    disjoint_cliques,
    grid_graph,
    ladder_graph,
    path_graph,
    star_graph,
    wheel_graph,
)


class TestPathAndCycle:
    def test_path_counts(self):
        g = path_graph(6)
        assert g.num_vertices == 6 and g.num_edges == 5

    def test_path_degrees(self):
        g = path_graph(4)
        assert sorted(g.degrees().tolist()) == [1, 1, 2, 2]

    def test_path_trivial_sizes(self):
        assert path_graph(0).num_vertices == 0
        assert path_graph(1).num_edges == 0

    def test_path_chordal(self):
        assert is_chordal(path_graph(9))

    def test_cycle_counts(self):
        g = cycle_graph(7)
        assert g.num_vertices == 7 and g.num_edges == 7

    def test_cycle_2_regular(self):
        assert set(cycle_graph(5).degrees().tolist()) == {2}

    def test_cycle_minimum_size(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_triangle_chordal_larger_not(self):
        assert is_chordal(cycle_graph(3))
        assert not is_chordal(cycle_graph(4))
        assert not is_chordal(cycle_graph(9))


class TestCliquesAndStars:
    def test_complete_edge_count(self):
        assert complete_graph(6).num_edges == 15

    def test_complete_chordal(self):
        assert is_chordal(complete_graph(8))

    def test_star_structure(self):
        g = star_graph(5)
        assert g.degree(0) == 5
        assert g.num_edges == 5

    def test_star_chordal(self):
        assert is_chordal(star_graph(10))

    def test_disjoint_cliques_components(self):
        g = disjoint_cliques(4, 3)
        assert connected_components(g)[0] == 4
        assert g.num_edges == 4 * 3

    def test_disjoint_cliques_chordal(self):
        assert is_chordal(disjoint_cliques(3, 5))


class TestGridsTreesEtc:
    def test_grid_counts(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4

    def test_grid_not_chordal(self):
        assert not is_chordal(grid_graph(2, 2))

    def test_one_dim_grid_is_path(self):
        assert grid_graph(1, 5) == path_graph(5)

    def test_binary_tree_counts(self):
        g = binary_tree(3)
        assert g.num_vertices == 15
        assert g.num_edges == 14

    def test_binary_tree_chordal(self):
        assert is_chordal(binary_tree(4))

    def test_ladder_counts(self):
        g = ladder_graph(4)
        assert g.num_vertices == 8
        assert g.num_edges == 3 + 3 + 4

    def test_ladder_not_chordal(self):
        assert not is_chordal(ladder_graph(3))

    def test_wheel_counts(self):
        g = wheel_graph(5)
        assert g.num_vertices == 6
        assert g.num_edges == 10

    def test_wheel3_is_k4(self):
        assert wheel_graph(3) == complete_graph(4)

    def test_wheel_large_not_chordal(self):
        assert not is_chordal(wheel_graph(5))

    def test_barbell_structure(self):
        g = barbell_graph(4, 2)
        assert connected_components(g)[0] == 1
        assert g.num_edges == 6 + 6 + 2

    def test_barbell_chordal(self):
        # two cliques joined by a path have no long chordless cycles
        assert is_chordal(barbell_graph(5, 3))
