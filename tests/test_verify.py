"""Unit tests for :mod:`repro.chordality.verify` (verify_extraction).

The certifier is the trust anchor for every any-valid (asynchronous)
extraction, so its own failure modes are pinned here: each broken-input
shape must come back as a diagnosing report — never a raise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chordality.verify import VerificationReport, verify_extraction
from repro.core.extract import extract_maximal_chordal_subgraph
from repro.graph.builder import build_graph
from repro.graph.generators.classic import cycle_graph
from repro.graph.generators.random import gnp_random_graph


@pytest.fixture
def graph():
    return gnp_random_graph(20, 0.3, seed=5)


class TestAcceptedShapes:
    def test_accepts_chordal_result(self, graph):
        result = extract_maximal_chordal_subgraph(graph, maximalize=True)
        report = verify_extraction(graph, result)
        assert report.ok and report.chordal and report.maximal
        assert "chordal + maximal" in str(report)

    def test_accepts_edge_array_and_subgraph(self, graph):
        result = extract_maximal_chordal_subgraph(graph, maximalize=True)
        assert verify_extraction(graph, result.edges).ok
        assert verify_extraction(graph, result.subgraph).ok

    def test_check_maximal_false_skips_certificate(self, graph):
        result = extract_maximal_chordal_subgraph(graph)
        report = verify_extraction(graph, result, check_maximal=False)
        assert report.ok and report.maximal is None
        assert "maximal" not in str(report)

    def test_vertex_count_mismatch_on_subgraph_raises(self, graph):
        with pytest.raises(ValueError, match="vertex sets"):
            verify_extraction(graph, build_graph(3, []))


class TestDiagnosedFailures:
    def test_non_chordal_output_reports_hole(self):
        square = cycle_graph(4)
        report = verify_extraction(square, square.edge_array())
        assert not report.ok and not report.chordal
        assert report.hole is not None and len(report.hole) >= 4
        assert "hole" in str(report)

    def test_invented_edge_reported_not_raised(self, graph):
        report = verify_extraction(
            graph,
            np.array([[0, 0], [0, graph.num_vertices], [-1, 3]], dtype=np.int64),
            check_maximal=False,
        )
        assert not report.ok and not report.edges_valid
        assert (0, 0) in report.invented_edges
        assert (0, graph.num_vertices) in report.invented_edges
        assert (-1, 3) in report.invented_edges
        assert "invents" in str(report)

    def test_edge_absent_from_input_reported(self):
        g = build_graph(4, [(0, 1), (2, 3)])
        report = verify_extraction(
            g, np.array([[0, 2]], dtype=np.int64), check_maximal=False
        )
        assert not report.edges_valid and (0, 2) in report.invented_edges

    def test_non_maximal_output_reports_addable(self):
        g = build_graph(3, [(0, 1), (1, 2), (0, 2)])
        report = verify_extraction(g, np.array([[0, 1]], dtype=np.int64))
        assert report.chordal and report.maximal is False
        assert report.addable  # e.g. (0, 2) or (1, 2)
        assert "not maximal" in str(report)

    def test_invalid_output_cannot_be_maximal(self):
        square = cycle_graph(4)
        report = verify_extraction(square, square.edge_array(), check_maximal=True)
        assert report.maximal is False  # not even a valid chordal subgraph

    def test_raise_if_invalid(self):
        square = cycle_graph(4)
        report = verify_extraction(square, square.edge_array())
        with pytest.raises(AssertionError, match="hole"):
            report.raise_if_invalid()
        ok = VerificationReport(edges_valid=True, chordal=True, maximal=True)
        ok.raise_if_invalid()  # no-op


def _spanning_forest(g):
    """Lexicographic-greedy spanning forest of ``g`` (chordal, and far
    from a maximal chordal subgraph on any dense-enough input)."""
    parent = list(range(g.num_vertices))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    rows = []
    for u, v in g.edge_array():
        ru, rv = find(int(u)), find(int(v))
        if ru != rv:
            parent[ru] = rv
            rows.append((int(u), int(v)))
    return np.asarray(rows, dtype=np.int64).reshape(-1, 2)


class TestDeterministicReports:
    def test_counterexamples_reproduce_across_runs(self):
        """Failure reports must name the same counterexamples on every
        run: the maximality scan iterates ``missing_edges`` in
        lexicographic order and the addability BFS expands neighbors in
        ascending vertex order, so a pasted failure message replays."""
        from repro.chordality.maximality import missing_edges
        from repro.graph.builder import from_edge_array

        for seed in range(6):
            g = gnp_random_graph(24, 0.3, seed=seed)
            # A deliberately non-maximal chordal subgraph: the spanning
            # forest (forests are chordal; at this density far from maximal).
            partial = _spanning_forest(g)
            reports = [
                verify_extraction(g, partial, max_counterexamples=5)
                for _ in range(3)
            ]
            first = reports[0]
            assert first.maximal is False
            for other in reports[1:]:
                assert other.addable == first.addable, f"seed={seed}"
                assert other.invented_edges == first.invented_edges
            # And the candidate order itself is the documented one.
            sub = from_edge_array(g.num_vertices, partial)
            cand = missing_edges(g, sub)
            assert cand == sorted(cand), f"seed={seed}"

    def test_addable_scans_agree_between_fast_and_oracle(self):
        """The deterministic fast scan and the rebuild-and-recognise
        oracle walk the same candidate order, so their outputs are
        comparable element-for-element."""
        from repro.chordality.maximality import addable_edges, addable_edges_slow
        from repro.graph.builder import from_edge_array

        g = gnp_random_graph(18, 0.35, seed=7)
        partial = _spanning_forest(g)
        sub = from_edge_array(g.num_vertices, partial)
        assert addable_edges(g, sub) == addable_edges_slow(g, sub)


class TestDegenerate:
    def test_empty_graph_empty_output(self):
        g = build_graph(0, [])
        report = verify_extraction(g, np.empty((0, 2), dtype=np.int64))
        assert report.ok

    def test_isolated_vertices(self):
        g = build_graph(5, [])
        assert verify_extraction(g, np.empty((0, 2), dtype=np.int64)).ok
