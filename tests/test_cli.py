"""Tests for the unified ``repro`` CLI (:mod:`repro.cli`).

In-process ``main(argv)`` calls cover the subcommand surface; one
subprocess test exercises the real ``python -m repro generate | extract``
pipe the README advertises.
"""

import io
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.extract import extract_maximal_chordal_subgraph
from repro.graph.generators.rmat import rmat_b, rmat_er
from repro.graph.io import load_graph, read_edgelist, save_graph, write_mtx


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_extract_defaults(self):
        args = build_parser().parse_args(["extract", "g.mtx"])
        assert args.engine == "superstep"
        assert args.schedule is None
        assert args.output == "-"

    def test_bad_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["extract", "g.mtx", "--engine", "gpu"])

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_engine_choices_derived_from_registry(self, capsys):
        """--engine choices and help text come from the engine registry:
        a freshly registered engine is accepted without touching cli.py."""
        from repro.core.engines import (
            EngineSpec,
            register_engine,
            unregister_engine,
        )

        spec = EngineSpec(
            name="clidemo",
            run_fn=lambda graph, config, pool: (
                np.empty((0, 2), dtype=np.int64),
                [],
                None,
            ),
            description="cli registry probe",
        )
        register_engine(spec)
        try:
            args = build_parser().parse_args(
                ["extract", "g.mtx", "--engine", "clidemo"]
            )
            assert args.engine == "clidemo"
            with pytest.raises(SystemExit):
                build_parser().parse_args(["extract", "-h"])
            # argparse reflows help text, so compare wrap-insensitively.
            help_text = " ".join(capsys.readouterr().out.split())
            assert "cli registry probe" in help_text
        finally:
            unregister_engine("clidemo")
        with pytest.raises(SystemExit):
            build_parser().parse_args(["extract", "g.mtx", "--engine", "clidemo"])

    def test_generate_families_listed(self):
        args = build_parser().parse_args(["generate", "rmat-b", "--scale", "9"])
        assert args.family == "rmat-b" and args.scale == 9

    def test_experiments_remainder_forwarded(self):
        args = build_parser().parse_args(["experiments", "table1", "--scales", "8"])
        assert args.rest == ["table1", "--scales", "8"]


class TestGenerate:
    def test_to_file_deterministic(self, tmp_path):
        out = tmp_path / "g.mtx"
        assert main(["generate", "rmat-er", "--scale", "7", "--seed", "3",
                     "-o", str(out)]) == 0
        assert load_graph(out) == rmat_er(7, seed=3)

    def test_to_stdout_edgelist(self, capsys):
        assert main(["generate", "gnp", "--n", "12", "--p", "0.3", "--seed", "1"]) == 0
        captured = capsys.readouterr().out
        g = read_edgelist(io.StringIO(captured))
        assert g.num_vertices == 12

    @pytest.mark.parametrize("family", ["gnm", "ba", "ktree", "partial-ktree",
                                        "random-chordal", "interval"])
    def test_every_family_runs(self, family, tmp_path):
        out = tmp_path / "g.txt"
        assert main(["generate", family, "--n", "16", "--seed", "2",
                     "-o", str(out)]) == 0
        assert load_graph(out).num_vertices > 0

    def test_stdout_honors_format(self, capsys):
        assert main(["generate", "gnp", "--n", "10", "--p", "0.3",
                     "--seed", "1", "--format", "mtx"]) == 0
        assert capsys.readouterr().out.startswith("%%MatrixMarket")

    def test_stdout_npz_rejected(self, capsys):
        assert main(["generate", "gnp", "--n", "10", "--format", "npz"]) == 2
        assert "stdout" in capsys.readouterr().err


class TestExtract:
    def test_stdout_matches_api(self, tmp_path, capsys):
        g = rmat_b(7, seed=5)
        src = tmp_path / "g.mtx"
        write_mtx(g, src)
        assert main(["extract", str(src), "--quiet"]) == 0
        out_graph = read_edgelist(io.StringIO(capsys.readouterr().out))
        expected = extract_maximal_chordal_subgraph(g)
        assert np.array_equal(out_graph.edge_array(), expected.edges)

    def test_process_engine_bit_identical_to_api(self, tmp_path):
        """Acceptance: repro extract --engine process on an .mtx file
        produces edges bit-identical to the in-process API."""
        g = rmat_er(7, seed=11)
        src = tmp_path / "g.mtx"
        write_mtx(g, src)
        out = tmp_path / "chordal.txt"
        assert main(["extract", str(src), "--engine", "process",
                     "--num-workers", "2", "-o", str(out), "--quiet"]) == 0
        expected = extract_maximal_chordal_subgraph(
            g, engine="process", schedule="synchronous", num_workers=2
        )
        assert np.array_equal(load_graph(out).edge_array(), expected.edges)

    def test_stdin_dash(self, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO("0 1\n1 2\n0 2\n2 3\n"))
        assert main(["extract", "-", "--quiet"]) == 0
        out_graph = read_edgelist(io.StringIO(capsys.readouterr().out))
        assert out_graph.num_edges >= 3

    def test_stdin_honors_input_format(self, capsys, monkeypatch):
        g = rmat_er(6, seed=9)
        buf = io.StringIO()
        write_mtx(g, buf)
        monkeypatch.setattr("sys.stdin", io.StringIO(buf.getvalue()))
        assert main(["extract", "-", "--input-format", "mtx", "--quiet"]) == 0
        out_graph = read_edgelist(io.StringIO(capsys.readouterr().out))
        expected = extract_maximal_chordal_subgraph(g)
        assert np.array_equal(out_graph.edge_array(), expected.edges)

    def test_stdin_npz_rejected(self, capsys):
        assert main(["extract", "-", "--input-format", "npz"]) == 2
        assert "stdin" in capsys.readouterr().err

    def test_stdout_honors_output_format(self, tmp_path, capsys):
        src = tmp_path / "g.txt"
        save_graph(rmat_er(6, seed=1), src)
        assert main(["extract", str(src), "--output-format", "mtx",
                     "--quiet"]) == 0
        assert capsys.readouterr().out.startswith("%%MatrixMarket")

    def test_stdout_npz_rejected(self, tmp_path, capsys):
        src = tmp_path / "g.txt"
        save_graph(rmat_er(6, seed=1), src)
        assert main(["extract", str(src), "--output-format", "npz"]) == 2
        assert "stdout" in capsys.readouterr().err

    def test_process_async_round_trip(self, tmp_path, capsys):
        """Acceptance: repro extract --engine process --schedule
        asynchronous round-trips through a file and --verify certifies
        the (nondeterministic) output as a maximal chordal subgraph."""
        from repro.chordality.verify import verify_extraction

        g = rmat_er(7, seed=11)
        src = tmp_path / "g.mtx"
        write_mtx(g, src)
        out = tmp_path / "chordal.txt"
        assert main(["extract", str(src), "--engine", "process",
                     "--schedule", "asynchronous", "--num-workers", "4",
                     "--maximalize", "--verify", "-o", str(out)]) == 0
        err = capsys.readouterr().err
        assert "verified=chordal,maximal" in err
        report = verify_extraction(g, load_graph(out).edge_array())
        assert report.ok, report

    def test_process_async_batch_shares_pool(self, tmp_path):
        from repro.chordality.verify import verify_extraction

        inputs = []
        for i in range(3):
            path = tmp_path / f"g{i}.txt"
            save_graph(rmat_er(6, seed=i), path)
            inputs.append(str(path))
        out_dir = tmp_path / "out"
        assert main(["extract", *inputs, "--out-dir", str(out_dir),
                     "--engine", "process", "--schedule", "asynchronous",
                     "--num-workers", "2", "--quiet"]) == 0
        for i in range(3):
            sub = load_graph(out_dir / f"g{i}.chordal.txt")
            report = verify_extraction(
                rmat_er(6, seed=i), sub.edge_array(), check_maximal=False
            )
            assert report.ok, (i, str(report))

    def test_verify_flag_certifies_sync_output(self, tmp_path, capsys):
        src = tmp_path / "g.txt"
        save_graph(rmat_er(6, seed=1), src)
        assert main(["extract", str(src), "--verify",
                     "-o", str(tmp_path / "o.txt")]) == 0
        assert "verified=chordal" in capsys.readouterr().err

    def test_unknown_schedule_exits_nonzero_one_line(self, capsys):
        """An unknown --schedule must exit non-zero with a one-line
        parser error, never a traceback."""
        with pytest.raises(SystemExit) as exc:
            main(["extract", "g.mtx", "--schedule", "bogus"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "Traceback" not in err

    def test_out_dir_name_collision_rejected(self, tmp_path, capsys):
        a, b = tmp_path / "g.mtx", tmp_path / "g.edges"
        save_graph(rmat_er(6, seed=1), a)
        save_graph(rmat_er(6, seed=2), b)
        assert main(["extract", str(a), str(b),
                     "--out-dir", str(tmp_path / "out")]) == 2
        assert "map to" in capsys.readouterr().err

    def test_multiple_inputs_need_out_dir(self, tmp_path, capsys):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        save_graph(rmat_er(6, seed=1), a)
        save_graph(rmat_er(6, seed=2), b)
        assert main(["extract", str(a), str(b)]) == 2
        assert "--out-dir" in capsys.readouterr().err

    def test_batch_out_dir_shares_pool(self, tmp_path):
        inputs = []
        for i in range(3):
            path = tmp_path / f"g{i}.txt"
            save_graph(rmat_er(6, seed=i), path)
            inputs.append(str(path))
        out_dir = tmp_path / "out"
        assert main(["extract", *inputs, "--out-dir", str(out_dir),
                     "--engine", "process", "--num-workers", "2",
                     "--quiet"]) == 0
        for i in range(3):
            result = load_graph(out_dir / f"g{i}.chordal.txt")
            expected = extract_maximal_chordal_subgraph(
                rmat_er(6, seed=i), engine="process", schedule="synchronous",
                num_workers=2,
            )
            assert np.array_equal(result.edge_array(), expected.edges)

    def test_stats_line_on_stderr(self, tmp_path, capsys):
        src = tmp_path / "g.txt"
        save_graph(rmat_er(6, seed=1), src)
        assert main(["extract", str(src), "-o", str(tmp_path / "o.txt")]) == 0
        err = capsys.readouterr().err
        assert "chordal=" in err and "engine=superstep" in err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["extract", str(tmp_path / "nope.mtx")]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.mtx"
        bad.write_text("this is not\na matrix market file\n")
        assert main(["extract", str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestVerify:
    def _write_pair(self, tmp_path, maximalize):
        g = rmat_er(7, seed=3)
        src = tmp_path / "g.mtx"
        save_graph(g, str(src))
        out = tmp_path / "chordal.txt"
        argv = ["extract", str(src), "-o", str(out), "-q"]
        if maximalize:
            argv.insert(2, "--maximalize")
        assert main(argv) == 0
        return g, src, out

    def test_valid_maximalized_output_passes(self, tmp_path, capsys):
        _, src, out = self._write_pair(tmp_path, maximalize=True)
        assert main(["verify", str(src), str(out)]) == 0
        err = capsys.readouterr().err
        assert "valid extraction (chordal + maximal)" in err

    def test_chordal_only_skips_maximality(self, tmp_path, capsys):
        """Un-maximalized Algorithm 1 output may have a small gap; the
        --chordal-only mode mirrors bare `repro extract --verify`."""
        _, src, out = self._write_pair(tmp_path, maximalize=False)
        assert main(["verify", str(src), str(out), "--chordal-only"]) == 0
        assert "valid extraction (chordal)" in capsys.readouterr().err

    def test_non_chordal_subgraph_exits_3(self, tmp_path, capsys):
        g, src, _ = self._write_pair(tmp_path, maximalize=True)
        # The input graph is its own (non-chordal) "extraction".
        assert main(["verify", str(src), str(src)]) == 3
        assert "verification failed" in capsys.readouterr().err

    def test_invented_edges_exit_3(self, tmp_path, capsys):
        src = tmp_path / "path.txt"
        src.write_text("0 1\n1 2\n")  # path graph: no 0-2 edge
        fake = tmp_path / "fake.txt"
        fake.write_text("0 1\n1 2\n0 2\n")  # claims an edge the input lacks
        assert main(["verify", str(src), str(fake)]) == 3
        err = capsys.readouterr().err
        assert "verification failed" in err and "invents edges" in err

    def test_double_stdin_rejected(self, capsys):
        assert main(["verify", "-", "-"]) == 2
        assert "stdin" in capsys.readouterr().err

    def test_stdin_graph(self, tmp_path, monkeypatch, capsys):
        g, src, out = self._write_pair(tmp_path, maximalize=True)
        buf = io.StringIO()
        write_mtx(g, buf)
        monkeypatch.setattr(sys, "stdin", io.StringIO(buf.getvalue()))
        assert main(
            ["verify", "-", str(out), "--input-format", "mtx", "-q"]
        ) == 0

    def test_quiet_suppresses_verdict(self, tmp_path, capsys):
        _, src, out = self._write_pair(tmp_path, maximalize=True)
        assert main(["verify", str(src), str(out), "-q"]) == 0
        assert capsys.readouterr().err == ""

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["verify", str(tmp_path / "a.mtx"), str(tmp_path / "b.txt")]) == 2
        assert "error" in capsys.readouterr().err


class TestBench:
    def test_missing_checkout_reports_error(self, monkeypatch, capsys, tmp_path):
        import repro.cli as cli

        monkeypatch.setattr(cli, "_repo_root", lambda: tmp_path)
        assert main(["bench"]) == 2
        assert "source checkout" in capsys.readouterr().err

    @pytest.mark.slow
    def test_regression_guard_runs(self):
        assert main(["bench"]) == 0

    def test_record_choice_parsing(self):
        parser = build_parser()
        assert parser.parse_args(["bench"]).record is None
        assert parser.parse_args(["bench", "--record"]).record == "kernels"
        for choice in ("kernels", "batch", "async", "quality", "service", "all"):
            assert parser.parse_args(["bench", "--record", choice]).record == choice
        with pytest.raises(SystemExit):
            parser.parse_args(["bench", "--record", "gpu"])

    def test_conflicting_record_flags_error(self, capsys):
        assert main(["bench", "--record", "kernels", "--record-async"]) == 2
        err = capsys.readouterr().err
        assert "conflicting record flags" in err
        assert "--record-async is deprecated" in err
        assert main(["bench", "--record-batch", "--record-async"]) == 2
        assert "conflicting record flags" in capsys.readouterr().err

    def test_deprecated_aliases_map_to_choices(self, monkeypatch, capsys):
        import repro.cli as cli

        recorded = []

        class FakeModule:
            def __init__(self, name):
                self.name = name

            def record(self):
                recorded.append(self.name)

        monkeypatch.setattr(cli, "_load_bench_module", FakeModule)
        assert main(["bench", "--record-batch"]) == 0
        assert recorded == ["record_batch_baseline"]
        assert "--record-batch is deprecated" in capsys.readouterr().err
        recorded.clear()
        assert main(["bench", "--record-async"]) == 0
        assert recorded == ["bench_async_process"]

    def test_record_all_runs_every_recorder(self, monkeypatch):
        import repro.cli as cli

        recorded = []

        class FakeModule:
            def __init__(self, name):
                self.name = name

            def record(self):
                recorded.append(self.name)

        monkeypatch.setattr(cli, "_load_bench_module", FakeModule)
        assert main(["bench", "--record", "all"]) == 0
        assert recorded == [
            "record_baseline",
            "record_batch_baseline",
            "bench_async_process",
            "bench_quality",
            "bench_service",
            "bench_incremental",
            "bench_sharded",
        ]


class TestPipe:
    def test_generate_extract_pipe_subprocess(self, tmp_path):
        """`python -m repro generate | python -m repro extract -` end to end."""
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        generate = subprocess.run(
            [sys.executable, "-m", "repro", "generate", "rmat-er",
             "--scale", "6", "--seed", "1"],
            capture_output=True, text=True, env=env, cwd=root, timeout=120,
        )
        assert generate.returncode == 0, generate.stderr
        extract = subprocess.run(
            [sys.executable, "-m", "repro", "extract", "-", "--quiet"],
            input=generate.stdout, capture_output=True, text=True, env=env,
            cwd=root, timeout=120,
        )
        assert extract.returncode == 0, extract.stderr
        piped = read_edgelist(io.StringIO(extract.stdout))
        expected = extract_maximal_chordal_subgraph(rmat_er(6, seed=1))
        assert np.array_equal(piped.edge_array(), expected.edges)


class TestExtractServerVerifyParity:
    """``repro extract --server --verify`` must mirror the local exit-code
    contract: a daemon-side VERIFY_FAILED is rc=3 with the counterexample
    report on stderr, not a traceback or a generic rc=2."""

    def _start_server(self, sock):
        from repro.service import ReproServer, ServiceConfig

        return ReproServer(
            ServiceConfig(
                socket_path=sock, num_pools=1, num_workers=1,
                barrier_timeout=30.0,
            )
        )

    def test_server_verify_pass_in_process(self, tmp_path, capsys):
        from repro.service import ReproServer  # noqa: F401 - import guard

        sock = str(tmp_path / "vp.sock")
        source = str(tmp_path / "g.mtx")
        save_graph(rmat_er(6, seed=5), source)
        with self._start_server(sock):
            rc = main(
                ["extract", source, "--server", sock, "--verify",
                 "--maximalize", "-o", str(tmp_path / "out.txt")]
            )
        assert rc == 0
        assert "verified=chordal,maximal" in capsys.readouterr().err

    def test_server_verify_failure_exits_3_subprocess(self, tmp_path):
        """Real CLI subprocess against a daemon whose verifier is rigged
        to fail: the client must exit 3 and relay the report."""
        from repro.chordality.verify import VerificationReport

        sock = str(tmp_path / "vf.sock")
        source = str(tmp_path / "g.mtx")
        save_graph(rmat_er(6, seed=5), source)
        server = self._start_server(sock)
        # Rig the daemon (which lives in THIS process): every verification
        # reports a fake hole, as a genuinely buggy engine would.
        server._verify_failure = lambda *a, **k: __import__(
            "repro.service.protocol", fromlist=["error_response"]
        ).error_response(
            "VERIFY_FAILED",
            str(
                VerificationReport(
                    edges_valid=True, chordal=False, maximal=None,
                    hole=[0, 1, 2, 3],
                )
            ),
        )
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        with server:
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "extract", source,
                 "--server", sock, "--verify"],
                capture_output=True, text=True, env=env, cwd=root, timeout=120,
            )
        assert proc.returncode == 3, (proc.returncode, proc.stderr)
        assert "verification failed" in proc.stderr
        assert "hole" in proc.stderr  # the counterexample made it across


class TestMutate:
    def _edgelist(self, tmp_path, graph, name="g.txt"):
        path = tmp_path / name
        save_graph(graph, str(path))
        return str(path)

    def test_mutate_round_trip(self, tmp_path, capsys):
        from repro.chordality.verify import verify_extraction
        from repro.graph.io import load_graph as _load

        graph = rmat_er(6, seed=9)
        gpath = self._edgelist(tmp_path, graph)
        mpath = tmp_path / "muts.txt"
        u, v = (int(x) for x in graph.edge_array()[0])
        mpath.write_text(
            "# one delete, one fresh insert\n"
            f"delete {u} {v}\n"
            f"insert {u} {v}\n"
        )
        out = tmp_path / "chordal.txt"
        rc = main(
            ["mutate", gpath, str(mpath), "-o", str(out), "--verify"]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "mutations=2" in err and "verified=chordal,maximal" in err
        edges = _load(str(out)).edge_array()
        report = verify_extraction(graph, edges, check_maximal=True)
        assert report.ok, report

    def test_mutate_from_stdin_ops(self, tmp_path, capsys, monkeypatch):
        graph = rmat_er(5, seed=3)
        gpath = self._edgelist(tmp_path, graph)
        u, v = (int(x) for x in graph.edge_array()[0])
        monkeypatch.setattr("sys.stdin", io.StringIO(f"- {u} {v}\n+ {u} {v}\n"))
        assert main(["mutate", gpath, "-", "-o", str(tmp_path / "o.txt")]) == 0
        assert "mutations=2" in capsys.readouterr().err

    def test_mutate_bad_op_exits_2_with_location(self, tmp_path, capsys):
        gpath = self._edgelist(tmp_path, rmat_er(5, seed=3))
        mpath = tmp_path / "muts.txt"
        mpath.write_text("insert 0 1 2\n")
        assert main(["mutate", gpath, str(mpath)]) == 2
        err = capsys.readouterr().err
        assert "muts.txt:1" in err and "expected 'OP U V'" in err

    def test_mutate_double_stdin_rejected(self, capsys):
        assert main(["mutate", "-", "-"]) == 2
        assert "stdin" in capsys.readouterr().err

    def test_mutate_invalid_mutation_exits_2(self, tmp_path, capsys):
        graph = rmat_er(5, seed=3)
        gpath = self._edgelist(tmp_path, graph)
        mpath = tmp_path / "muts.txt"
        u, v = (int(x) for x in graph.edge_array()[0])
        mpath.write_text(f"insert {u} {v}\n")  # already present
        assert main(["mutate", gpath, str(mpath)]) == 2
        assert "already an edge" in capsys.readouterr().err


class TestShard:
    """The out-of-core surface: `repro shard plan|run|stitch` and
    `repro extract --sharded` (see tests/test_sharded.py for the
    subsystem's property sweep)."""

    def _write_graph(self, tmp_path, seed=3):
        g = rmat_er(7, seed=seed)
        src = tmp_path / "g.txt"
        save_graph(g, src)
        return g, str(src)

    def test_plan_run_stitch_pipeline(self, tmp_path, capsys):
        g, src = self._write_graph(tmp_path)
        spill = str(tmp_path / "spill")
        out = tmp_path / "chordal.txt"
        assert main(["shard", "plan", src, "--shards", "3",
                     "--spill-dir", spill]) == 0
        assert "boundary_pairs=" in capsys.readouterr().err
        assert main(["shard", "run", "--spill-dir", spill, "--verify"]) == 0
        assert "verified" in capsys.readouterr().err
        assert main(["shard", "stitch", "--spill-dir", spill, "--certify",
                     "-o", str(out)]) == 0
        assert "certified=chordal" in capsys.readouterr().err
        # The written subgraph passes the standalone verifier (chordal;
        # maximality over the whole graph is boundary-certified only).
        assert main(["verify", src, str(out), "--chordal-only",
                     "--quiet"]) == 0

    def test_extract_sharded_matches_stepwise(self, tmp_path, capsys):
        _g, src = self._write_graph(tmp_path, seed=8)
        out1 = tmp_path / "one.txt"
        out2 = tmp_path / "two.txt"
        assert main(["extract", src, "--sharded", "--shards", "3",
                     "--spill-dir", str(tmp_path / "s1"), "-o", str(out1),
                     "--verify", "--quiet"]) == 0
        spill = str(tmp_path / "s2")
        assert main(["shard", "plan", src, "--shards", "3",
                     "--spill-dir", spill, "-q"]) == 0
        assert main(["shard", "run", "--spill-dir", spill, "-q"]) == 0
        assert main(["shard", "stitch", "--spill-dir", spill,
                     "-o", str(out2), "-q"]) == 0
        capsys.readouterr()
        assert out1.read_text() == out2.read_text()

    def test_extract_sharded_resumes_from_cache(self, tmp_path, capsys):
        _g, src = self._write_graph(tmp_path)
        spill = str(tmp_path / "spill")
        args = ["extract", src, "--sharded", "--shards", "2",
                "--spill-dir", spill, "-o", str(tmp_path / "out.txt")]
        assert main(args) == 0
        assert "(cached 0)" in capsys.readouterr().err
        assert main(args) == 0
        assert "(cached 2)" in capsys.readouterr().err

    def test_run_single_shard(self, tmp_path, capsys):
        _g, src = self._write_graph(tmp_path)
        spill = str(tmp_path / "spill")
        assert main(["shard", "plan", src, "--spill-dir", spill, "-q"]) == 0
        assert main(["shard", "run", "--spill-dir", spill,
                     "--shard", "1"]) == 0
        err = capsys.readouterr().err
        assert "shard 1:" in err and "shard 0:" not in err

    def test_stitch_before_run_errors(self, tmp_path, capsys):
        _g, src = self._write_graph(tmp_path)
        spill = str(tmp_path / "spill")
        assert main(["shard", "plan", src, "--spill-dir", spill, "-q"]) == 0
        assert main(["shard", "stitch", "--spill-dir", spill]) == 2
        assert "repro shard run" in capsys.readouterr().err

    def test_run_without_plan_errors(self, tmp_path, capsys):
        assert main(["shard", "run", "--spill-dir", str(tmp_path)]) == 2
        assert "repro shard plan" in capsys.readouterr().err

    def test_sharded_flag_validation(self, tmp_path, capsys):
        _g, src = self._write_graph(tmp_path)
        # --shards/--spill-dir without --sharded
        assert main(["extract", src, "--shards", "8"]) == 2
        assert "--sharded" in capsys.readouterr().err
        # --sharded without --spill-dir
        assert main(["extract", src, "--sharded"]) == 2
        assert "--spill-dir" in capsys.readouterr().err
        # --sharded with stdin
        assert main(["extract", "-", "--sharded",
                     "--spill-dir", str(tmp_path / "s")]) == 2
        assert "file input" in capsys.readouterr().err
        # --sharded with --server
        assert main(["extract", src, "--sharded",
                     "--spill-dir", str(tmp_path / "s"),
                     "--server", "/tmp/nope.sock"]) == 2
        assert "exclusive" in capsys.readouterr().err

    def test_sharded_record_choice(self):
        parser = build_parser()
        args = parser.parse_args(["bench", "--record", "sharded"])
        assert args.record == "sharded"
