"""Adversarial stress coverage for the threaded engine's benign-race path.

``repro.core.threaded`` (asynchronous schedule) deliberately races: threads
sweep live shared state, children migrate between partitions mid-iteration,
and stale queue entries are skipped by the LP check.  The paper's proofs
say every interleaving still yields a valid chordal subgraph inside the
iteration budget — this file hammers that claim with thread counts well
above the core count (maximal preemption on CPython) on small dense graphs
(maximal contention per vertex).

A smoke slice runs in tier-1; the full sweep is marked ``stress``
(``--run-stress``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chordality.recognition import is_chordal
from repro.core.superstep import superstep_max_chordal
from repro.core.threaded import threaded_max_chordal
from repro.graph.csr import CSRGraph
from repro.graph.generators.classic import complete_graph
from repro.graph.generators.random import gnp_random_graph
from repro.graph.generators.rmat import rmat_b
from repro.graph.ops import edge_subgraph


def _dense_zoo(seed: int) -> list[CSRGraph]:
    return [
        gnp_random_graph(24, 0.5, seed=seed),
        gnp_random_graph(40, 0.3, seed=seed),
        rmat_b(6, seed=seed),
    ]


def _check_async_run(graph: CSRGraph, num_threads: int, seed: int) -> None:
    edges, queue_sizes = threaded_max_chordal(
        graph, num_threads=num_threads, schedule="asynchronous"
    )
    tag = (num_threads, seed)
    # No duplicate edges: canonical set size equals the row count.
    canon = {(min(int(u), int(v)), max(int(u), int(v))) for u, v in edges}
    assert len(canon) == edges.shape[0], tag
    # Every row is a real (parent < child) edge of G.
    if edges.size:
        assert bool(np.all(edges[:, 0] < edges[:, 1])), tag
        assert canon <= graph.edge_set(), tag
    # The output is chordal for every interleaving (Theorem 1).
    assert is_chordal(edge_subgraph(graph, edges)), tag
    # Iteration budget: |queue_sizes| within the paper's max_degree + 2
    # bound (threaded_max_chordal would have raised ConvergenceError past
    # it; assert the recorded profile agrees).
    assert 0 < len(queue_sizes) <= graph.max_degree() + 2, tag
    assert all(q > 0 for q in queue_sizes), tag


@pytest.mark.parametrize("seed", (0, 1, 2, 3))
def test_async_smoke_8_threads(seed):
    for graph in _dense_zoo(seed):
        _check_async_run(graph, num_threads=8, seed=seed)


@pytest.mark.parametrize("threads", (8, 16))
def test_sync_schedule_immune_to_oversubscription(threads):
    """Snapshot semantics must hold at thread counts far above the cores."""
    graph = gnp_random_graph(32, 0.4, seed=9)
    serial, qs, _ = superstep_max_chordal(graph, schedule="synchronous")
    def canon_rows(edges: np.ndarray) -> np.ndarray:
        order = np.lexsort((edges[:, 1], edges[:, 0]))
        return edges[order]

    for _ in range(3):
        edges, tqs = threaded_max_chordal(
            graph, num_threads=threads, schedule="synchronous"
        )
        assert np.array_equal(canon_rows(edges), canon_rows(serial))
        assert tqs == qs


@pytest.mark.stress
@pytest.mark.parametrize("threads", (8, 12, 16))
@pytest.mark.parametrize("seed", tuple(range(12)))
def test_async_stress_sweep(threads, seed):
    for graph in _dense_zoo(seed):
        _check_async_run(graph, num_threads=threads, seed=seed)


@pytest.mark.stress
def test_async_repeated_interleavings_on_clique_core():
    """K16 forces every vertex through the same parent chain; repeat runs
    to sample many interleavings of the hand-off race."""
    graph = complete_graph(16)
    expected = graph.num_edges  # a clique is chordal: nothing may be dropped
    for run in range(20):
        edges, _ = threaded_max_chordal(graph, num_threads=16)
        assert edges.shape[0] == expected, run
