"""Adversarial stress coverage for the racing engines' benign-race paths.

``repro.core.threaded`` (asynchronous schedule) deliberately races: threads
sweep live shared state, children migrate between partitions mid-iteration,
and stale queue entries are skipped by the LP check.  The paper's proofs
say every interleaving still yields a valid chordal subgraph inside the
iteration budget — this file hammers that claim with thread counts well
above the core count (maximal preemption on CPython) on small dense graphs
(maximal contention per vertex).

The asynchronous **process** engine races across address spaces instead of
threads, so its adversary is worker *churn*: a worker SIGKILLed mid-sweep
(the OOM-killer scenario) can wedge ``multiprocessing`` barrier state
beyond any ``wait(timeout)``.  ``TestProcessAsyncWorkerChurn`` extends the
PR-2 barrier-agent coverage to the live sweep: the coordinator must
surface a clean ``RuntimeError`` in bounded time and release the shared
segment — never hang, never return a half-swept edge set.

A smoke slice runs in tier-1; the full sweeps are marked ``stress``
(``--run-stress``) and ``async_stress`` (``--run-async-stress``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chordality.recognition import is_chordal
from repro.core.superstep import superstep_max_chordal
from repro.core.threaded import threaded_max_chordal
from repro.graph.csr import CSRGraph
from repro.graph.generators.classic import complete_graph
from repro.graph.generators.random import gnp_random_graph
from repro.graph.generators.rmat import rmat_b
from repro.graph.ops import edge_subgraph


def _dense_zoo(seed: int) -> list[CSRGraph]:
    return [
        gnp_random_graph(24, 0.5, seed=seed),
        gnp_random_graph(40, 0.3, seed=seed),
        rmat_b(6, seed=seed),
    ]


def _check_async_run(graph: CSRGraph, num_threads: int, seed: int) -> None:
    edges, queue_sizes = threaded_max_chordal(
        graph, num_threads=num_threads, schedule="asynchronous"
    )
    tag = (num_threads, seed)
    # No duplicate edges: canonical set size equals the row count.
    canon = {(min(int(u), int(v)), max(int(u), int(v))) for u, v in edges}
    assert len(canon) == edges.shape[0], tag
    # Every row is a real (parent < child) edge of G.
    if edges.size:
        assert bool(np.all(edges[:, 0] < edges[:, 1])), tag
        assert canon <= graph.edge_set(), tag
    # The output is chordal for every interleaving (Theorem 1).
    assert is_chordal(edge_subgraph(graph, edges)), tag
    # Iteration budget: |queue_sizes| within the paper's max_degree + 2
    # bound (threaded_max_chordal would have raised ConvergenceError past
    # it; assert the recorded profile agrees).
    assert 0 < len(queue_sizes) <= graph.max_degree() + 2, tag
    assert all(q > 0 for q in queue_sizes), tag


@pytest.mark.parametrize("seed", (0, 1, 2, 3))
def test_async_smoke_8_threads(seed):
    for graph in _dense_zoo(seed):
        _check_async_run(graph, num_threads=8, seed=seed)


@pytest.mark.parametrize("threads", (8, 16))
def test_sync_schedule_immune_to_oversubscription(threads):
    """Snapshot semantics must hold at thread counts far above the cores."""
    graph = gnp_random_graph(32, 0.4, seed=9)
    serial, qs, _ = superstep_max_chordal(graph, schedule="synchronous")
    def canon_rows(edges: np.ndarray) -> np.ndarray:
        order = np.lexsort((edges[:, 1], edges[:, 0]))
        return edges[order]

    for _ in range(3):
        edges, tqs = threaded_max_chordal(
            graph, num_threads=threads, schedule="synchronous"
        )
        assert np.array_equal(canon_rows(edges), canon_rows(serial))
        assert tqs == qs


@pytest.mark.stress
@pytest.mark.parametrize("threads", (8, 12, 16))
@pytest.mark.parametrize("seed", tuple(range(12)))
def test_async_stress_sweep(threads, seed):
    for graph in _dense_zoo(seed):
        _check_async_run(graph, num_threads=threads, seed=seed)


@pytest.mark.stress
def test_async_repeated_interleavings_on_clique_core():
    """K16 forces every vertex through the same parent chain; repeat runs
    to sample many interleavings of the hand-off race."""
    graph = complete_graph(16)
    expected = graph.num_edges  # a clique is chordal: nothing may be dropped
    for run in range(20):
        edges, _ = threaded_max_chordal(graph, num_threads=16)
        assert edges.shape[0] == expected, run


class TestProcessAsyncWorkerChurn:
    """Worker churn against the asynchronous process engine: the barrier-
    agent path (PR 2) must reclaim the segment and raise cleanly."""

    @pytest.mark.async_stress
    def test_dead_worker_fails_async_extract_cleanly(self):
        """A worker that died while the pool was idle: the next
        asynchronous extraction must raise a bounded, descriptive error
        (not hang on the wedged barrier) and self-close the pool.

        Bounded-but-slow (worker reaping pays fixed join timeouts), so
        gated behind ``--run-async-stress`` like the PR-2 sync variant is
        behind ``--run-slow``."""
        import os
        import signal
        import time

        from repro.core.procpool import ProcessPool
        from repro.graph.generators.rmat import rmat_er

        g = rmat_er(7, seed=3)
        pool = ProcessPool(g, num_workers=2, barrier_timeout=0.5)
        pool.extract(schedule="asynchronous")  # team warm and healthy
        os.kill(pool._procs[0].pid, signal.SIGKILL)
        time.sleep(0.1)
        start = time.perf_counter()
        with pytest.raises(RuntimeError, match="barrier"):
            pool.extract(schedule="asynchronous")
        # 2 * barrier_timeout + 5s queue slack + worker reaping.
        assert time.perf_counter() - start < 20.0
        assert pool._closed  # segment released, pool self-closed

    @pytest.mark.async_stress
    def test_sigkill_mid_async_sweep_detected(self):
        """SIGKILL a worker while the live sweep is actually in flight
        (epoch counters confirm rounds are progressing), driving the
        extraction from a helper thread so the kill lands mid-run."""
        import os
        import signal
        import threading
        import time

        from repro.core.procpool import ProcessPool
        from repro.graph.generators.rmat import rmat_er

        g = rmat_er(12, seed=1)
        pool = ProcessPool(g, num_workers=4, barrier_timeout=1.0)
        pool.extract(schedule="asynchronous")  # warm-up: team + arena hot
        outcome: dict = {}

        def drive() -> None:
            try:
                outcome["result"] = pool.extract(schedule="asynchronous")
            except RuntimeError as exc:
                outcome["error"] = exc

        t = threading.Thread(target=drive)
        t.start()
        time.sleep(0.05)
        os.kill(pool._procs[0].pid, signal.SIGKILL)
        t.join(timeout=30.0)
        assert not t.is_alive(), "coordinator hung after SIGKILL mid-sweep"
        if "error" in outcome:
            assert "barrier" in str(outcome["error"])
            assert pool._closed
        else:
            # The sweep outran the kill — the run must then be complete
            # and valid, and the *next* extraction must fail cleanly.
            from repro.chordality.verify import verify_extraction

            edges, _ = outcome["result"]
            assert verify_extraction(g, edges, check_maximal=False).ok
            with pytest.raises(RuntimeError, match="barrier"):
                pool.extract(schedule="asynchronous")
            assert pool._closed

    @pytest.mark.async_stress
    @pytest.mark.parametrize("victim", (0, 1, 2))
    def test_churn_sweep_every_victim_position(self, victim):
        """Kill each worker rank in turn; every churn must end in the same
        clean error + released segment, and a *fresh* pool must then
        produce a valid extraction (no cross-pool poisoning via leaked
        segments)."""
        import os
        import signal
        import time

        from repro.chordality.verify import verify_extraction
        from repro.core.procpool import ProcessPool
        from repro.graph.generators.rmat import rmat_er

        g = rmat_er(8, seed=victim)
        pool = ProcessPool(g, num_workers=3, barrier_timeout=0.5)
        pool.extract(schedule="asynchronous")
        os.kill(pool._procs[victim].pid, signal.SIGKILL)
        time.sleep(0.1)
        with pytest.raises(RuntimeError, match="barrier"):
            pool.extract(schedule="asynchronous")
        assert pool._closed
        with ProcessPool(g, num_workers=3) as fresh:
            edges, _ = fresh.extract(schedule="asynchronous")
            assert verify_extraction(g, edges, check_maximal=False).ok
