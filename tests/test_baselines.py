"""Tests for the Dearing, distributed, spanning-forest baselines and msgpass."""

import numpy as np
import pytest

from repro.baselines.dearing import dearing_max_chordal
from repro.baselines.distributed import distributed_nearly_chordal
from repro.baselines.msgpass import Network
from repro.baselines.spanning import spanning_forest_edges
from repro.chordality.maximality import assert_valid_extraction, is_maximal_chordal_subgraph
from repro.chordality.recognition import is_chordal
from repro.core.extract import extract_maximal_chordal_subgraph
from repro.graph.bfs import connected_components
from repro.graph.builder import build_graph
from repro.graph.generators.classic import complete_graph, cycle_graph, path_graph
from repro.graph.generators.rmat import rmat_g
from repro.graph.ops import edge_subgraph


class TestDearing:
    def test_certified_maximal_on_zoo(self, zoo_graph):
        edges = dearing_max_chordal(zoo_graph)
        sub = edge_subgraph(zoo_graph, edges)
        assert_valid_extraction(zoo_graph, sub)

    def test_clique_keeps_all(self):
        assert dearing_max_chordal(complete_graph(6)).shape[0] == 15

    def test_cycle_drops_one(self):
        assert dearing_max_chordal(cycle_graph(8)).shape[0] == 7

    def test_empty(self):
        assert dearing_max_chordal(build_graph(0, [])).shape == (0, 2)

    def test_edgeless(self):
        assert dearing_max_chordal(build_graph(4, [])).shape == (0, 2)

    def test_start_vertex_honored(self):
        g = path_graph(5)
        edges = dearing_max_chordal(g, start=2)
        assert edges.shape[0] == 4  # path fully chordal regardless of start

    def test_start_out_of_range(self):
        with pytest.raises(ValueError):
            dearing_max_chordal(path_graph(3), start=9)

    def test_deterministic(self):
        g = rmat_g(8, seed=5)
        assert np.array_equal(dearing_max_chordal(g), dearing_max_chordal(g))

    def test_typically_beats_alg1_edge_count(self):
        """Max-label selection tends to keep more edges than fixed-id
        Algorithm 1 (cf. maximality_gap experiment)."""
        g = rmat_g(9, seed=5)
        dearing = dearing_max_chordal(g).shape[0]
        alg1 = extract_maximal_chordal_subgraph(g).num_chordal_edges
        assert dearing >= alg1


class TestDistributed:
    def test_single_part_is_dearing(self):
        g = rmat_g(8, seed=7)
        d = distributed_nearly_chordal(g, 1)
        assert d.border_edges == 0
        assert d.chordal
        assert is_maximal_chordal_subgraph(g, edge_subgraph(g, d.edges))

    def test_triangle_rule_breaks_chordality(self):
        """The paper's motivation: border edges admit long cycles."""
        g = rmat_g(10, seed=11)
        d = distributed_nearly_chordal(g, 4)
        assert d.border_edges > 0
        assert d.accepted_border_edges > 0
        assert not d.chordal

    def test_repair_mode_stays_chordal(self):
        g = rmat_g(9, seed=11)
        d = distributed_nearly_chordal(g, 4, repair=True)
        assert d.chordal
        assert is_chordal(edge_subgraph(g, d.edges))

    def test_border_grows_with_parts(self):
        g = rmat_g(9, seed=3)
        borders = [distributed_nearly_chordal(g, p).border_edges for p in (2, 4, 8)]
        assert borders[0] < borders[-1]

    def test_random_partition(self):
        g = rmat_g(8, seed=3)
        d = distributed_nearly_chordal(g, 4, strategy="random", seed=1)
        assert d.border_edges > 0

    def test_bad_strategy(self):
        with pytest.raises(ValueError):
            distributed_nearly_chordal(path_graph(4), 2, strategy="metis")

    def test_bad_parts(self):
        with pytest.raises(ValueError):
            distributed_nearly_chordal(path_graph(4), 0)

    def test_message_accounting(self):
        g = rmat_g(8, seed=3)
        d = distributed_nearly_chordal(g, 4)
        assert d.stats.messages >= d.border_edges
        assert d.stats.by_tag.get("border", 0) == d.border_edges


class TestSpanningForest:
    def test_tree_count(self, zoo_graph):
        edges = spanning_forest_edges(zoo_graph)
        ncomp, _ = connected_components(zoo_graph)
        assert edges.shape[0] == zoo_graph.num_vertices - ncomp

    def test_forest_is_chordal_and_spanning(self, zoo_graph):
        edges = spanning_forest_edges(zoo_graph)
        sub = edge_subgraph(zoo_graph, edges)
        assert is_chordal(sub)
        assert connected_components(sub)[0] == connected_components(zoo_graph)[0]

    def test_empty(self):
        assert spanning_forest_edges(build_graph(0, [])).shape == (0, 2)

    def test_fewer_edges_than_alg1(self):
        g = rmat_g(9, seed=5)
        forest = spanning_forest_edges(g).shape[0]
        alg1 = extract_maximal_chordal_subgraph(g).num_chordal_edges
        assert forest < alg1


class TestNetwork:
    def test_exchange_required_for_delivery(self):
        net = Network(2)
        net.send(1, "tag", [1, 2, 3])
        assert net.recv_all(1, "tag") == []  # not delivered before barrier
        net.exchange()
        assert net.recv_all(1, "tag") == [[1, 2, 3]]

    def test_delivery_and_drain(self):
        net = Network(3)
        net.send(2, "x", [10])
        net.send(2, "x", [20, 30])
        net.exchange()
        msgs = net.recv_all(2, "x")
        assert msgs == [[10], [20, 30]]
        assert net.recv_all(2, "x") == []

    def test_stats(self):
        net = Network(2)
        net.send(0, "a", [1, 2])
        net.send(1, "b", [3])
        assert net.stats.messages == 2
        assert net.stats.items == 3
        assert net.stats.by_tag == {"a": 1, "b": 1}

    def test_rank_validation(self):
        net = Network(2)
        with pytest.raises(ValueError):
            net.send(5, "t", [])
        with pytest.raises(ValueError):
            net.recv_all(-1, "t")
        with pytest.raises(ValueError):
            Network(0)
