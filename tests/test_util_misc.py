"""Tests for rng, timing, and validation helpers."""

import numpy as np
import pytest

from repro.util.rng import make_rng, spawn_rngs
from repro.util.timing import Timer, format_seconds
from repro.util.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability_vector,
)


class TestRng:
    def test_same_seed_same_stream(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_spawn_count(self):
        assert len(spawn_rngs(7, 5)) == 5

    def test_spawn_independent_streams(self):
        a, b = spawn_rngs(7, 2)
        assert a.random() != b.random()

    def test_spawn_deterministic(self):
        first = [g.random() for g in spawn_rngs(7, 3)]
        second = [g.random() for g in spawn_rngs(7, 3)]
        assert first == second

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestTimer:
    def test_measures_nonnegative(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0

    def test_format_ranges(self):
        assert format_seconds(5e-7).endswith("ns")
        assert format_seconds(5e-5).endswith("us")
        assert format_seconds(5e-2).endswith("ms")
        assert format_seconds(5.0).endswith(" s")
        assert format_seconds(300.0).endswith("min")

    def test_format_negative_raises(self):
        with pytest.raises(ValueError):
            format_seconds(-1.0)


class TestValidation:
    def test_positive_ok(self):
        check_positive("x", 1)

    def test_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_nonnegative_ok(self):
        check_nonnegative("x", 0)

    def test_nonnegative_rejects(self):
        with pytest.raises(ValueError):
            check_nonnegative("x", -1)

    def test_in_range_ok(self):
        check_in_range("x", 0.5, 0.0, 1.0)

    def test_in_range_rejects(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.5, 0.0, 1.0)

    def test_probability_vector_ok(self):
        out = check_probability_vector("p", [0.25, 0.25, 0.25, 0.25], length=4)
        assert out.sum() == pytest.approx(1.0)

    def test_probability_vector_bad_sum(self):
        with pytest.raises(ValueError, match="sum"):
            check_probability_vector("p", [0.5, 0.4])

    def test_probability_vector_bad_length(self):
        with pytest.raises(ValueError, match="shape"):
            check_probability_vector("p", [0.5, 0.5], length=4)

    def test_probability_vector_negative_entry(self):
        with pytest.raises(ValueError):
            check_probability_vector("p", [-0.5, 1.5])
