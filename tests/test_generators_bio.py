"""Tests for the synthetic gene-correlation networks."""

import numpy as np
import pytest

from repro.analysis.clustering import clustering_by_degree
from repro.graph.generators.bio import (
    GSE5140_UNT,
    BioNetworkParams,
    bio_network,
    correlation_network,
    synthetic_expression,
)


class TestExpressionPipeline:
    def test_expression_shape(self):
        expr, modules = synthetic_expression(100, 12, 5, seed=1)
        assert expr.shape == (100, 12)
        assert modules.shape == (100,)

    def test_background_genes_exist(self):
        _, modules = synthetic_expression(200, 10, 4, seed=2)
        assert (modules == -1).sum() > 0

    def test_module_ids_in_range(self):
        _, modules = synthetic_expression(150, 10, 6, seed=3)
        assert modules.max() < 6 and modules.min() >= -1

    def test_determinism(self):
        a, _ = synthetic_expression(50, 8, 3, seed=4)
        b, _ = synthetic_expression(50, 8, 3, seed=4)
        assert np.array_equal(a, b)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            synthetic_expression(0, 5, 2)
        with pytest.raises(ValueError):
            synthetic_expression(10, 5, 2, module_strength=1.5)

    def test_correlation_network_links_modules(self):
        expr, modules = synthetic_expression(
            300, 40, 4, module_strength=0.995, seed=5
        )
        g = correlation_network(expr, threshold=0.9)
        # edges should overwhelmingly connect same-module gene pairs
        edges = g.edge_array()
        assert edges.shape[0] > 0
        same = modules[edges[:, 0]] == modules[edges[:, 1]]
        in_module = modules[edges[:, 0]] >= 0
        assert (same & in_module).mean() > 0.9

    def test_correlation_threshold_monotone(self):
        expr, _ = synthetic_expression(150, 30, 3, seed=6)
        loose = correlation_network(expr, threshold=0.8)
        tight = correlation_network(expr, threshold=0.95)
        assert tight.num_edges <= loose.num_edges

    def test_constant_gene_isolated(self):
        expr = np.vstack([np.ones(10), np.random.default_rng(0).random((5, 10))])
        g = correlation_network(expr, threshold=0.9)
        assert g.degree(0) == 0

    def test_blockwise_matches_direct(self):
        expr, _ = synthetic_expression(120, 20, 3, seed=7)
        a = correlation_network(expr, threshold=0.9, block_size=16)
        b = correlation_network(expr, threshold=0.9, block_size=4096)
        assert a == b

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            correlation_network(np.ones((3, 4)), threshold=2.0)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            correlation_network(np.ones(5))


class TestBioNetwork:
    @pytest.fixture(scope="class")
    def net(self):
        return bio_network(GSE5140_UNT.scaled(1 / 32), seed=11)

    def test_size_close_to_target(self, net):
        params = GSE5140_UNT.scaled(1 / 32)
        assert net.num_vertices == params.num_vertices
        # Aggressively scaled replicas undershoot (module pair counts cap
        # the absorbable budget); full-size replicas land within ~2%.
        assert 0.4 * params.num_edges < net.num_edges < 1.6 * params.num_edges

    def test_determinism(self):
        p = GSE5140_UNT.scaled(1 / 64)
        assert bio_network(p, seed=3) == bio_network(p, seed=3)

    def test_hubs_avoid_hubs(self, net):
        """Paper: "two hubs are unlikely to be connected".

        Note Newman's degree-correlation coefficient is still positive
        here (module homophily dominates, as in real co-expression
        networks); the paper's operational criterion is hub-hub edge
        scarcity, which we measure directly.
        """
        params = GSE5140_UNT.scaled(1 / 32)
        degs = net.degrees()
        threshold = max(np.quantile(degs[degs > 0], 0.995), params.hub_degree_min)
        hubs = set(np.flatnonzero(degs >= threshold).tolist())
        assert hubs, "test needs at least one hub"
        edges = net.edge_array()
        hub_hub = sum(1 for u, v in edges if int(u) in hubs and int(v) in hubs)
        hub_any = sum(1 for u, v in edges if int(u) in hubs or int(v) in hubs)
        assert hub_hub <= 0.05 * max(hub_any, 1)

    def test_clustering_decays_with_degree(self, net):
        """Paper Fig 2c: high clustering at low degree, low at high degree."""
        profile = clustering_by_degree(net)
        lows = [c for d, c, cnt in profile if 3 <= d <= 30 and cnt >= 3]
        highs = [c for d, c, cnt in profile if d >= 60]
        assert lows and max(lows) > 0.3
        if highs:
            assert np.mean(highs) < np.mean(lows)

    def test_degree_one_satellites_exist(self, net):
        assert (net.degrees() == 1).sum() > 0.02 * net.num_vertices

    def test_params_validation(self):
        with pytest.raises(ValueError):
            BioNetworkParams(0, 10)
        with pytest.raises(ValueError):
            BioNetworkParams(100, 200, small_module_range=(2, 10))
        with pytest.raises(ValueError):
            BioNetworkParams(100, 200, large_module_range=(50, 10))
        with pytest.raises(ValueError):
            BioNetworkParams(100, 200, hub_degree_min=90, hub_degree_max=50)

    def test_scaled_reduces_size(self):
        small = GSE5140_UNT.scaled(0.1)
        assert small.num_vertices < GSE5140_UNT.num_vertices
        assert small.num_edges < GSE5140_UNT.num_edges

    def test_scaled_validates_fraction(self):
        with pytest.raises(ValueError):
            GSE5140_UNT.scaled(2.0)

    def test_infeasible_params_raise(self):
        with pytest.raises(ValueError, match="hub_fraction"):
            bio_network(BioNetworkParams(20, 40, leaf_fraction=0.9, hub_fraction=0.2), seed=1)
