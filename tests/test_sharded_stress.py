"""Memory-capped proof that out-of-core extraction fits where the
in-memory path cannot (``sharded_stress`` marker — see tests/README.md).

The acceptance claim of :mod:`repro.shard` is *never materialise the
full graph*.  This suite proves it with ``resource.setrlimit``: a child
process measures its own post-import address space, caps itself at that
baseline plus ``CAP_DELTA_MB``, then runs one of two arms on the same
scale-``SCALE`` RMAT-ER input (16x the scale-14 edge count the in-memory
engines are comfortable with):

* **memory arm** — ``load_graph`` + one in-memory extraction.  Text
  parsing plus CSR construction alone peak several hundred MB above the
  cap, so the arm must die with ``MemoryError`` (exit ``EXIT_EXCEEDED``);
  any other failure mode fails the test — the proof is specifically
  that *memory* is what stops the in-memory path;
* **sharded arm** — the full ``plan -> run -> stitch`` pipeline with
  per-shard ``verify_extraction``, then ``is_chordal`` on the stitched
  result and the sampled boundary certificates, all under the same cap.

The floor check runs in the *parent* (computing
``maximal_chordal_floor`` needs the full CSR, which the capped child
must never build): the child only reports its stitched edge count.

Both children set ``MALLOC_ARENA_MAX=1`` so glibc's per-thread arena
preallocation (64 MB of address space each) cannot add machine-dependent
noise to either side of the comparison.

Deterministic (seeded graph, no timing assertions), so CI runs it as a
BLOCKING job; locally:

    PYTHONPATH=src python -m pytest -q --run-sharded-stress \
        tests/test_sharded_stress.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.chordality.quality import maximal_chordal_floor
from repro.graph.generators.rmat import rmat_er
from repro.graph.io import save_graph

pytestmark = pytest.mark.sharded_stress

#: RMAT-ER scale of the shared input: 2^18 vertices, ~2.1M edges — 16x
#: the scale-14 edge count (the ISSUE's ">= 10x" bar).
SCALE = 18
GRAPH_SEED = 1
NUM_SHARDS = 32

#: Address-space budget over the child's own post-import baseline.  The
#: sharded pipeline peaks ~260 MB over baseline at this scale; the
#: in-memory load alone needs ~550 MB — the cap sits between with
#: >100 MB of margin on each side.
CAP_DELTA_MB = 448

#: Child exit code for "the cap stopped me" (distinct from pytest's own
#: failure codes so a crash cannot masquerade as the expected outcome).
EXIT_EXCEEDED = 17

_HARNESS = r"""
import json
import resource
import sys

import numpy as np  # the baseline must include numpy's footprint

mode, input_path, spill_dir, cap_delta_mb, num_shards = (
    sys.argv[1],
    sys.argv[2],
    sys.argv[3],
    int(sys.argv[4]),
    int(sys.argv[5]),
)

from repro.chordality.recognition import is_chordal
from repro.core.config import ExtractionConfig
from repro.core.session import Extractor
from repro.graph.io import load_graph
from repro.shard import (
    build_plan,
    run_shards,
    sampled_boundary_report,
    stitch_shards,
)


def vm_kb(field):
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith(field):
                return int(line.split()[1])
    raise RuntimeError(f"{field} not in /proc/self/status")


baseline_kb = vm_kb("VmSize")
cap_bytes = (baseline_kb + cap_delta_mb * 1024) * 1024
resource.setrlimit(resource.RLIMIT_AS, (cap_bytes, cap_bytes))

try:
    if mode == "memory":
        graph = load_graph(input_path)
        with Extractor(maximalize=False) as session:
            result = session.extract(graph)
        print(json.dumps({"chordal_edges": int(result.edges.shape[0])}))
    else:
        config = ExtractionConfig(maximalize=True, num_threads=4)
        plan, _reused = build_plan(input_path, num_shards, spill_dir)
        stats = run_shards(plan, config=config, verify=True)
        result = stitch_shards(plan, config=config)
        report = sampled_boundary_report(result, samples=32)
        print(
            json.dumps(
                {
                    "chordal_edges": result.num_chordal_edges,
                    "boundary_edges": result.boundary_edges,
                    "admitted_boundary": result.admitted_boundary,
                    "rounds": result.rounds,
                    "all_shards_verified": all(s.verified for s in stats),
                    "stitched_chordal": is_chordal(result.subgraph()),
                    "boundary_sample_ok": bool(report["ok"]),
                    "peak_delta_mb": (vm_kb("VmPeak") - baseline_kb) // 1024,
                }
            )
        )
except MemoryError:
    print(f"MEMORY_EXCEEDED cap_delta_mb={cap_delta_mb}", flush=True)
    sys.exit(17)
"""


@pytest.fixture(scope="module")
def snap_input(tmp_path_factory):
    """The shared scale-``SCALE`` SNAP file plus its certified floor."""
    root = tmp_path_factory.mktemp("sharded-stress")
    graph = rmat_er(SCALE, seed=GRAPH_SEED)
    path = root / f"rmat_er_{SCALE}.txt"
    save_graph(graph, path, format="snap")
    floor = maximal_chordal_floor(graph)
    return {"path": path, "floor": floor, "num_edges": graph.num_edges}


def _run_arm(mode: str, input_path, spill_dir) -> subprocess.CompletedProcess:
    env = os.environ.copy()
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.path.join(root, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["MALLOC_ARENA_MAX"] = "1"
    return subprocess.run(
        [
            sys.executable,
            "-c",
            _HARNESS,
            mode,
            str(input_path),
            str(spill_dir),
            str(CAP_DELTA_MB),
            str(NUM_SHARDS),
        ],
        capture_output=True,
        text=True,
        timeout=900,
        env=env,
    )


def test_in_memory_path_exceeds_cap(snap_input, tmp_path):
    """The in-memory path must die on MemoryError under the cap — if it
    ever *fits*, the cap no longer proves anything and must be lowered."""
    proc = _run_arm("memory", snap_input["path"], tmp_path / "unused")
    assert proc.returncode == EXIT_EXCEEDED, (
        f"in-memory arm exited {proc.returncode} (expected {EXIT_EXCEEDED} "
        f"= MemoryError under the +{CAP_DELTA_MB} MB cap); it either fits "
        "under the cap now (lower CAP_DELTA_MB — the proof is vacuous) or "
        f"crashed for a non-memory reason:\n{proc.stdout}\n{proc.stderr}"
    )
    assert "MEMORY_EXCEEDED" in proc.stdout


def test_sharded_path_completes_under_cap(snap_input, tmp_path):
    """The sharded pipeline must finish *and certify* under the exact cap
    that kills the in-memory path: every shard verified, stitched result
    chordal, sampled boundary certificates clean, certified floor met."""
    proc = _run_arm("sharded", snap_input["path"], tmp_path / "spill")
    assert proc.returncode == 0, (
        f"sharded arm failed under the +{CAP_DELTA_MB} MB cap (exit "
        f"{proc.returncode}); replay: python -c <harness> sharded "
        f"{snap_input['path']} <spill-dir> {CAP_DELTA_MB} {NUM_SHARDS}\n"
        f"{proc.stdout}\n{proc.stderr}"
    )
    report = json.loads(proc.stdout.strip().splitlines()[-1])
    assert report["all_shards_verified"], report
    assert report["stitched_chordal"], (
        f"stitched scale-{SCALE} result is not chordal; replay: repro "
        f"shard stitch --certify on the spill dir\n{report}"
    )
    assert report["boundary_sample_ok"], report
    assert report["chordal_edges"] >= snap_input["floor"], (
        f"stitched result retains {report['chordal_edges']} edges, below "
        f"the certified maximal-chordal floor {snap_input['floor']} for "
        f"rmat_er({SCALE}, seed={GRAPH_SEED}) — a correctness bug in the "
        "sharded pipeline, not a capacity limit"
    )
    assert report["boundary_edges"] > 0 and report["admitted_boundary"] > 0
