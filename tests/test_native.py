"""Tests for the compiled (nogil) kernel backend and the native engine.

Coverage is split by what each piece needs from the host:

* **Fallback semantics** (no marker — runs on every host): the ``native``
  engine must work and match the NumPy engines even when the compiled
  backend cannot be resolved; ``REPRO_NATIVE=0`` forces that branch on a
  host that *does* have a toolchain, and a mocked-out compiler lookup
  exercises the true no-compiler resolution path.
* **Compiled-path assertions** (``@pytest.mark.native`` — auto-skipped
  with the resolution detail as the reason): bit-identity of the
  compiled synchronous rows, verified asynchronous output, the
  ``kernel_path`` surfacing, and the executor's capability flags.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro.chordality.verify import verify_extraction
from repro.core.config import ExtractionConfig
from repro.core.engines import get_engine
from repro.core.extract import extract_maximal_chordal_subgraph
from repro.core.native import DISABLE_ENV, native_status
from repro.core.native.build import resolve
from repro.core.runtime import (
    LocalState,
    NativeThreadTeamExecutor,
    SerialExecutor,
    drive,
)
from repro.graph.builder import build_graph
from repro.graph.generators.classic import complete_graph, star_graph
from repro.graph.generators.random import gnp_random_graph
from repro.graph.generators.rmat import rmat_b, rmat_er, rmat_g

GRAPHS = {
    "rmat_er": lambda: rmat_er(8, seed=3),
    "rmat_g": lambda: rmat_g(7, seed=5),
    "rmat_b": lambda: rmat_b(7, seed=1),
    "gnp": lambda: gnp_random_graph(60, 0.12, seed=9),
}


@pytest.fixture
def native_env():
    """A MonkeyPatch whose undo happens *before* the backend memo is
    restored (the builtin ``monkeypatch`` fixture undoes too late: the
    re-resolution would still see the patched environment)."""
    mp = pytest.MonkeyPatch()
    yield mp
    mp.undo()
    resolve(force=True)


class TestFallbackSemantics:
    """The native engine with the compiled backend forced off.

    These run on every host (tier-1 with or without a toolchain): they
    prove the acceptance criterion that tier-1 passes unchanged when no
    extension can be built.
    """

    def test_disabled_env_reports_reason(self, native_env):
        native_env.setenv(DISABLE_ENV, "0")
        status = native_status(force=True)
        assert not status.available
        assert f"disabled via {DISABLE_ENV}" in status.detail

    def test_no_compiler_branch(self, native_env, tmp_path):
        """Force the real no-compiler resolution path: an empty artifact
        cache and a compiler lookup that finds nothing."""
        pytest.importorskip("cffi")
        native_env.delenv(DISABLE_ENV, raising=False)
        native_env.delenv("CC", raising=False)
        native_env.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "empty"))
        native_env.setattr(shutil, "which", lambda _cmd: None)
        status = native_status(force=True)
        assert not status.available
        assert "no C compiler found" in status.detail

    def test_engine_works_and_matches_with_backend_disabled(self, native_env):
        native_env.setenv(DISABLE_ENV, "0")
        resolve(force=True)
        graph = GRAPHS["rmat_er"]()
        spec = get_engine("native")
        base = extract_maximal_chordal_subgraph(graph, schedule="synchronous")
        cfg = ExtractionConfig(
            engine="native", schedule="synchronous", num_threads=3
        )
        edges, qs, _ = spec.run(graph, cfg)
        assert np.array_equal(np.sort(edges, axis=0), np.sort(base.edges, axis=0))
        # The asynchronous fallback runs the NumPy live rounds on the
        # thread team; its output is any-valid, so certify it.
        edges_a, _, _ = spec.run(
            graph, ExtractionConfig(engine="native", schedule="asynchronous")
        )
        assert verify_extraction(graph, edges_a, check_maximal=False).ok

    def test_executor_flags_in_fallback(self, native_env):
        native_env.setenv(DISABLE_ENV, "0")
        resolve(force=True)
        with NativeThreadTeamExecutor(2) as executor:
            assert executor.live_rounds
            assert executor.needs_keys  # NumPy sync bodies read the key array
            assert executor.kernel_path == "numpy"

    def test_kernel_path_reported_numpy_when_disabled(self, native_env):
        native_env.setenv(DISABLE_ENV, "0")
        resolve(force=True)
        r = extract_maximal_chordal_subgraph(
            GRAPHS["rmat_b"](), engine="native", schedule="synchronous"
        )
        assert r.kernel_path == "numpy"


@pytest.mark.native
class TestCompiledPath:
    """Assertions that only hold when the compiled backend resolved."""

    def test_status_names_the_artifact(self):
        status = native_status()
        assert status.available
        assert "_repro_native_" in status.detail

    def test_executor_flags(self):
        with NativeThreadTeamExecutor(2) as executor:
            assert executor.live_rounds
            assert not executor.needs_keys  # C probes arena runs directly
            assert executor.kernel_path == "native"

    @pytest.mark.parametrize("threads", (1, 2, 5))
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_sync_bit_identical_across_widths(self, name, threads):
        """Acceptance criterion: compiled synchronous rows are
        bit-identical to the superstep driver at every thread count."""
        graph = GRAPHS[name]()
        base_edges, base_qs, _ = drive(
            LocalState(graph), SerialExecutor(), schedule="synchronous"
        )
        with NativeThreadTeamExecutor(threads) as executor:
            edges, qs, _ = drive(
                LocalState(graph, threads, edge_claims=True),
                executor,
                schedule="synchronous",
            )
        assert np.array_equal(edges, base_edges), (name, threads)
        assert qs == base_qs, (name, threads)

    @pytest.mark.parametrize("threads", (1, 2, 4))
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_async_output_verifies(self, name, threads):
        """Compiled live rounds are any-valid: every run must certify as
        a chordal subgraph (claim accounting is enforced by the driver)."""
        graph = GRAPHS[name]()
        with NativeThreadTeamExecutor(threads) as executor:
            edges, qs, _ = drive(
                LocalState(graph, threads, edge_claims=True),
                executor,
                schedule="asynchronous",
            )
        report = verify_extraction(graph, edges, check_maximal=False)
        assert report.ok, (name, threads, report)
        assert len(qs) <= graph.max_degree() + 2

    def test_degenerate_graphs(self):
        for g in (
            build_graph(0, []),
            build_graph(4, []),
            build_graph(2, [(0, 1)]),
            complete_graph(6),
            star_graph(5),
        ):
            for schedule in ("synchronous", "asynchronous"):
                r = extract_maximal_chordal_subgraph(
                    g, engine="native", schedule=schedule, num_threads=3
                )
                assert verify_extraction(g, r, check_maximal=False).ok

    def test_kernel_path_surfaces_native(self):
        r = extract_maximal_chordal_subgraph(
            GRAPHS["rmat_er"](), engine="native", schedule="synchronous"
        )
        assert r.kernel_path == "native"
        base = extract_maximal_chordal_subgraph(
            GRAPHS["rmat_er"](), engine="superstep"
        )
        assert base.kernel_path == "numpy"

    def test_engine_capability_flag(self):
        assert get_engine("native").supports_native
        assert not get_engine("superstep").supports_native
        assert get_engine("native").is_deterministic("synchronous")
        assert not get_engine("native").is_deterministic("asynchronous")

    def test_clique_iteration_law_native(self):
        """k-clique needs exactly k-1 synchronous rounds — same schedule
        law as every other pairing, now through the compiled bodies."""
        for k in (3, 5, 8):
            with NativeThreadTeamExecutor(2) as executor:
                _, qs, _ = drive(
                    LocalState(complete_graph(k), 2, edge_claims=True),
                    executor,
                    schedule="synchronous",
                )
            assert len(qs) == k - 1
