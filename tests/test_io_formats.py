"""Tests for the dataset-ingestion formats: MatrixMarket, gzip, SNAP,
auto-detection and the load/save dispatchers (PR 2 batch pipeline)."""

import gzip
import io

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.builder import build_graph, compact_labels
from repro.graph.generators.rmat import rmat_er, rmat_g
from repro.graph.io import (
    FORMATS,
    detect_format,
    load_graph,
    read_edgelist,
    read_mtx,
    read_snap,
    save_graph,
    write_edgelist,
    write_metis,
    write_mtx,
)


@pytest.fixture
def sample():
    # Vertex 5 is isolated — formats must preserve it.
    return build_graph(6, [(0, 1), (1, 2), (3, 4)])


class TestMtx:
    def test_roundtrip_file(self, sample, tmp_path):
        path = tmp_path / "g.mtx"
        write_mtx(sample, path)
        assert read_mtx(path) == sample

    def test_roundtrip_stream(self, sample):
        buf = io.StringIO()
        write_mtx(sample, buf)
        buf.seek(0)
        assert read_mtx(buf) == sample

    def test_rmat_roundtrip(self, tmp_path):
        g = rmat_g(7, seed=9)
        path = tmp_path / "rmat.mtx"
        write_mtx(g, path)
        assert read_mtx(path) == g

    def test_writer_emits_pattern_symmetric_lower_triangle(self, sample):
        buf = io.StringIO()
        write_mtx(sample, buf)
        lines = [ln for ln in buf.getvalue().splitlines() if not ln.startswith("%")]
        assert lines[0] == "6 6 3"
        for line in lines[1:]:
            row, col = map(int, line.split())
            assert row > col  # symmetric storage: lower triangle, 1-based

    def test_real_field_weights_ignored(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% weighted adjacency\n"
            "3 3 2\n"
            "1 2 0.5\n"
            "3 1 -2.25\n"
        )
        g = read_mtx(io.StringIO(text))
        assert g.edge_set() == {(0, 1), (0, 2)}

    def test_general_symmetry_mirrored_entries_collapse(self):
        text = (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "3 3 3\n1 2\n2 1\n2 3\n"
        )
        g = read_mtx(io.StringIO(text))
        assert g.edge_set() == {(0, 1), (1, 2)}

    def test_diagonal_dropped(self):
        text = "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 2\n2 2\n2 1\n"
        g = read_mtx(io.StringIO(text))
        assert g.edge_set() == {(0, 1)}

    def test_pattern_file_with_weight_columns_accepted(self):
        text = (
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 2\n2 1 1.0\n3 2 1.0\n"
        )
        assert read_mtx(io.StringIO(text)).edge_set() == {(0, 1), (1, 2)}

    def test_truncated_weighted_file_rejected(self):
        # Declares 'integer' (3 tokens/entry) but carries exactly 2 per
        # entry — a truncated download, not a pattern file in disguise.
        text = (
            "%%MatrixMarket matrix coordinate integer symmetric\n"
            "3 3 3\n2 1 1\n3 1 1\n"
        )
        with pytest.raises(GraphFormatError, match="declares"):
            read_mtx(io.StringIO(text))

    @pytest.mark.parametrize(
        "text, match",
        [
            ("not a banner\n1 1 0\n", "banner"),
            ("%%MatrixMarket matrix array real general\n2 2\n", "coordinate"),
            ("%%MatrixMarket matrix coordinate complex symmetric\n1 1 0\n", "field"),
            ("%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n", "symmetry"),
            ("%%MatrixMarket matrix coordinate real general\n2 3 1\n1 2 1.0\n", "square"),
            ("%%MatrixMarket matrix coordinate pattern symmetric\n", "size line"),
            ("%%MatrixMarket matrix coordinate pattern symmetric\n2 2 2\n1 2\n", "declares"),
            ("%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 5\n", "range"),
            ("%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 x\n", "token"),
        ],
    )
    def test_malformed_rejected(self, text, match):
        with pytest.raises(GraphFormatError, match=match):
            read_mtx(io.StringIO(text))


class TestGzip:
    def test_edgelist_gz_roundtrip(self, sample, tmp_path):
        path = tmp_path / "g.txt.gz"
        write_edgelist(sample, path)
        with gzip.open(path, "rb") as fh:  # really compressed, not renamed
            assert fh.read(10).startswith(b"# vertices")
        assert read_edgelist(path) == sample

    def test_mtx_gz_roundtrip(self, sample, tmp_path):
        path = tmp_path / "g.mtx.gz"
        write_mtx(sample, path)
        assert read_mtx(path) == sample

    def test_load_save_graph_gz(self, tmp_path):
        g = rmat_er(7, seed=2)
        path = tmp_path / "g.txt.gz"
        save_graph(g, path)
        assert load_graph(path) == g


class TestSnap:
    TEXT = (
        "# Directed graph (each unordered pair of nodes is saved once)\n"
        "# Example SNAP-style dump\n"
        "# Nodes: 3 Edges: 3\n"
        "# FromNodeId\tToNodeId\n"
        "100\t7\n"
        "205\t100\n"
        "7\t205\n"
    )

    def test_noncontiguous_ids_compacted(self):
        g, labels = read_snap(io.StringIO(self.TEXT))
        assert g.num_vertices == 3
        assert list(labels) == [7, 100, 205]
        # labels[new] = old: edge (100, 7) becomes (1, 0), etc.
        assert g.edge_set() == {(0, 1), (0, 2), (1, 2)}

    def test_duplicate_and_reverse_edges_collapse(self):
        g, _ = read_snap(io.StringIO("5 9\n9 5\n5 9\n"))
        assert g.num_edges == 1

    def test_empty(self):
        g, labels = read_snap(io.StringIO("# nothing\n"))
        assert g.num_vertices == 0 and labels.size == 0

    def test_odd_token_count_rejected(self):
        with pytest.raises(GraphFormatError, match="even number"):
            read_snap(io.StringIO("1 2\n3\n"))

    def test_non_integer_ids_rejected(self):
        with pytest.raises(GraphFormatError, match="integers"):
            read_snap(io.StringIO("1.5 2\n"))

    def test_file_roundtrip_via_load_graph(self, tmp_path):
        path = tmp_path / "g.snap"
        path.write_text(self.TEXT)
        assert load_graph(path).num_edges == 3


class TestCompactLabels:
    def test_negative_and_sparse_ids(self):
        k, relabeled, labels = compact_labels(np.array([[-5, 3], [3, 999]]))
        assert k == 3
        assert list(labels) == [-5, 3, 999]
        assert relabeled.tolist() == [[0, 1], [1, 2]]

    def test_empty(self):
        k, relabeled, labels = compact_labels(np.empty((0, 2), dtype=np.int64))
        assert k == 0 and relabeled.shape == (0, 2) and labels.size == 0


class TestDetectFormat:
    @pytest.mark.parametrize(
        "name, fmt",
        [
            ("a.mtx", "mtx"),
            ("a.mm", "mtx"),
            ("a.npz", "npz"),
            ("a.metis", "metis"),
            ("a.graph", "metis"),
            ("a.snap", "snap"),
            ("a.edges", "edgelist"),
            ("a.el", "edgelist"),
            ("a.mtx.gz", "mtx"),
            ("a.edges.gz", "edgelist"),
        ],
    )
    def test_by_extension(self, name, fmt):
        assert detect_format(name) == fmt

    def test_txt_is_sniffed_not_assumed(self, tmp_path):
        """Real SNAP dumps ship as .txt — the generic extension must go
        through content sniffing so sparse-id files hit the snap reader."""
        ours = tmp_path / "ours.txt"
        write_edgelist(rmat_er(6, seed=1), ours)
        assert detect_format(ours) == "edgelist"
        snap = tmp_path / "ca-GrQc.txt"
        snap.write_text("# Undirected graph: ca-GrQc\n5 1000000000\n")
        assert detect_format(snap) == "snap"
        assert load_graph(snap).num_vertices == 2  # compacted, not max_id+1

    def test_txt_gz_sniffed_through_gzip(self, tmp_path):
        g = rmat_er(6, seed=1)
        path = tmp_path / "g.txt.gz"
        write_edgelist(g, path)
        assert detect_format(path) == "edgelist"
        assert load_graph(path) == g

    def test_sniff_mtx_banner(self, tmp_path):
        path = tmp_path / "noext"
        write_mtx(rmat_er(6, seed=1), path)
        assert detect_format(path) == "mtx"

    def test_sniff_edgelist_header(self, tmp_path):
        path = tmp_path / "noext"
        write_edgelist(rmat_er(6, seed=1), path)
        assert detect_format(path) == "edgelist"

    def test_sniff_metis_comment(self, tmp_path):
        buf = io.StringIO()
        write_metis(rmat_er(6, seed=1), buf)
        path = tmp_path / "noext"
        path.write_text("% metis file\n" + buf.getvalue())
        assert detect_format(path) == "metis"

    def test_sniff_snap_comment(self, tmp_path):
        path = tmp_path / "noext"
        path.write_text(TestSnap.TEXT)
        assert detect_format(path) == "snap"

    def test_sniff_npz_magic(self, tmp_path):
        path = tmp_path / "noext"
        save_graph(rmat_er(6, seed=1), tmp_path / "g.npz")
        (tmp_path / "g.npz").rename(path)
        assert detect_format(path) == "npz"

    def test_unknown_rejected(self, tmp_path):
        path = tmp_path / "noext"
        path.write_text("a b c d\n")
        with pytest.raises(GraphFormatError, match="detect"):
            detect_format(path)

    def test_binary_junk_raises_graph_format_error(self, tmp_path):
        path = tmp_path / "noext"
        path.write_bytes(b"\x89PNG\r\n\x1a\n" + bytes(range(256)))
        with pytest.raises(GraphFormatError, match="sniff"):
            detect_format(path)

    def test_missing_file_raises_graph_format_error(self, tmp_path):
        with pytest.raises(GraphFormatError, match="sniff"):
            detect_format(tmp_path / "missing")

    def test_strip_format_extension(self):
        from repro.graph.io import strip_format_extension

        assert strip_format_extension("ca-GrQc.txt.gz") == "ca-GrQc"
        assert strip_format_extension("g.mtx") == "g"
        assert strip_format_extension("g.unknown") == "g.unknown"


class TestLoadSaveGraph:
    @pytest.mark.parametrize("ext", ["txt", "mtx", "metis", "npz", "txt.gz", "mtx.gz"])
    def test_roundtrip_every_format(self, ext, tmp_path):
        g = rmat_g(7, seed=5)
        path = tmp_path / f"g.{ext}"
        save_graph(g, path)
        assert load_graph(path) == g

    def test_explicit_format_overrides_extension(self, sample, tmp_path):
        path = tmp_path / "weird.dat"
        save_graph(sample, path, format="mtx")
        assert load_graph(path, format="mtx") == sample

    def test_unknown_format_rejected(self, sample, tmp_path):
        with pytest.raises(GraphFormatError, match="unknown graph format"):
            save_graph(sample, tmp_path / "g.txt", format="dot")
        with pytest.raises(GraphFormatError, match="unknown graph format"):
            load_graph(tmp_path / "missing.txt", format="dot")

    def test_formats_tuple_is_public_contract(self):
        assert set(FORMATS) == {"edgelist", "mtx", "metis", "npz", "snap"}
