#!/usr/bin/env python
"""Quickstart for the extraction service: `repro serve` + ServiceClient.

Starts the daemon as a real subprocess on a unix socket, then walks the
client workflow end to end:

1. extract over the wire on the warm worker pool (``engine=process``);
2. repeat the identical request and observe the content-hash result
   cache answering without touching the pool;
3. request server-side verification (``verify=True``) on a maximalized
   extraction — the response is certified chordal *and* maximal;
4. read the live ``stats`` counters;
5. shut down gracefully with SIGTERM and confirm the daemon drains,
   exits 0, and unlinks its socket.

Every step is asserted, so this file doubles as the CI smoke test for
the service stack:

    PYTHONPATH=src python examples/service_quickstart.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro import rmat_b, verify_extraction
from repro.service import ServiceClient


def wait_for_socket(path: str, proc: subprocess.Popen, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return
        if proc.poll() is not None:
            raise SystemExit(f"repro serve exited early with rc={proc.returncode}")
        time.sleep(0.05)
    raise SystemExit(f"repro serve did not create {path} within {timeout}s")


def main() -> None:
    tmp = tempfile.mkdtemp(prefix="repro-svc-")
    sock = str(Path(tmp) / "repro.sock")
    env = {**os.environ, "PYTHONPATH": "src"}
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", sock,
            "--num-workers", "2",
        ],
        env=env,
    )
    try:
        wait_for_socket(sock, server)
        graph = rmat_b(8, seed=11)
        with ServiceClient(socket_path=sock) as client:
            assert client.ping()["ok"]

            # 1. first extraction runs on the server's warm pool
            first = client.extract(graph, config={"engine": "process"})
            assert not first.cached and first.served_by == "pool"
            print(f"pool    : {first.num_edges} chordal edges "
                  f"in {first.num_iterations} iterations")

            # 2. identical request -> content-hash cache, bit-identical
            again = client.extract(graph, config={"engine": "process"})
            assert again.cached and again.served_by == "cache"
            assert (again.edges == first.edges).all()
            print(f"cache   : {again.num_edges} edges (hit, no dispatch)")

            # 3. server-side verification of a maximalized extraction
            certified = client.extract(
                graph,
                config={"engine": "process", "maximalize": True},
                verify=True,
            )
            assert certified.verified
            report = verify_extraction(graph, certified.edges)
            assert report.ok, str(report)
            print(f"verified: {certified.num_edges} edges — {report}")

            # 4. live counters
            stats = client.stats()
            assert stats["cache_hits"] >= 1
            assert stats["pool_dispatches"] >= 2
            print(f"stats   : {stats['requests']} requests, "
                  f"{stats['cache_hits']} cache hits, "
                  f"{stats['pool_dispatches']} pool dispatches")

        # 5. graceful drain on SIGTERM
        server.send_signal(signal.SIGTERM)
        rc = server.wait(timeout=30.0)
        assert rc == 0, f"repro serve exited rc={rc} on SIGTERM"
        assert not os.path.exists(sock), "socket not unlinked on shutdown"
        print("shutdown: drained, rc=0, socket unlinked")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


if __name__ == "__main__":
    main()
