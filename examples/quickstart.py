#!/usr/bin/env python
"""Quickstart: extract and verify a maximal chordal subgraph.

Generates one of the paper's R-MAT test graphs, runs Algorithm 1 in all
registered engines, verifies the output with the chordality oracle,
prints the statistics the paper reports (chordal-edge fraction,
iteration profile), demonstrates the session API (``ExtractionConfig``
+ ``Extractor`` streaming a batch through one worker pool), and
finishes with the file-based CLI workflow (``repro generate`` / ``repro
extract`` on a MatrixMarket file).

Run:
    python examples/quickstart.py [--scale 10] [--verify]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    ExtractionConfig,
    Extractor,
    extract_maximal_chordal_subgraph,
    is_chordal,
    rmat_b,
)
from repro.chordality import assert_valid_extraction
from repro.util.timing import Timer, format_seconds


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=10, help="R-MAT scale (|V|=2^scale)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--verify",
        action="store_true",
        help="additionally certify maximality (slower; runs the completion pass)",
    )
    args = parser.parse_args()

    print(f"Generating RMAT-B({args.scale}) ...")
    graph = rmat_b(args.scale, seed=args.seed)
    print(f"  {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"max degree {graph.max_degree()}")

    # --- the one-liner most users need -----------------------------------
    with Timer() as t:
        result = extract_maximal_chordal_subgraph(graph)
    print(f"\nAlgorithm 1 (serial superstep engine): {format_seconds(t.elapsed)}")
    print(f"  chordal edges : {result.num_chordal_edges} "
          f"({100 * result.chordal_fraction:.1f}% of |E|)")
    print(f"  iterations    : {result.num_iterations}")
    print(f"  queue profile : {result.queue_sizes[:8]}"
          f"{' ...' if result.num_iterations > 8 else ''}")
    assert is_chordal(result.subgraph), "Theorem 1 violated?!"

    # --- all engines agree on validity ------------------------------------
    # The asynchronous schedule is any-valid: the process engine's
    # live-parallel sweep may return a different — but equally valid —
    # edge set than the serial engines.  Engines come from the registry
    # (repro.core.engines), so a third-party register_engine() call
    # would show up in this sweep automatically.
    from repro import engine_names

    print("\nCross-engine check (asynchronous schedule):")
    for engine in engine_names():
        r = extract_maximal_chordal_subgraph(
            graph, engine=engine, num_threads=4, num_workers=4
        )
        marker = "ok" if is_chordal(r.subgraph) else "FAIL"
        print(f"  {engine:10s}: {r.num_chordal_edges} edges, "
              f"{r.num_iterations} iterations [{marker}]")

    # --- the session API: many graphs, one config, one pool spawn ---------
    # ExtractionConfig validates every knob once; Extractor owns the
    # process pool for its whole lifetime, and stream() yields results
    # lazily — a million-graph batch never materialises a list.
    config = ExtractionConfig(engine="process", num_workers=4)
    print(f"\nSession API ({config.engine} engine, "
          f"schedule resolves to {config.resolved().schedule!r}):")
    with Extractor(config) as extractor, Timer() as t:
        for i, r in enumerate(extractor.stream(
                rmat_b(args.scale - 2, seed=s) for s in range(4))):
            print(f"  graph {i}: {r.num_chordal_edges} chordal edges "
                  f"({100 * r.chordal_fraction:.1f}%)")
    print(f"  4 extractions, one worker-team spawn: {format_seconds(t.elapsed)}")

    # --- deterministic equality between serial engines --------------------
    ref = extract_maximal_chordal_subgraph(graph, engine="reference")
    assert np.array_equal(result.edges, ref.edges), "engines diverged"
    print("  superstep == reference edge-for-edge")

    if args.verify:
        print("\nCertifying maximality (BFS renumber + completion pass) ...")
        certified = extract_maximal_chordal_subgraph(
            graph, renumber="bfs", maximalize=True
        )
        assert_valid_extraction(graph, certified.subgraph)
        print(f"  certified maximal; completion pass added "
              f"{certified.maximality_gap} edges the raw algorithm missed "
              f"(the paper's Theorem 2 gap)")

    # --- the same workflow through graph files and the CLI ----------------
    # `repro generate` writes any supported format (here MatrixMarket),
    # `repro extract` reads it back and emits the chordal edge list; with
    # the same family/seed/engine the file round-trip is bit-identical to
    # the in-process API call above.
    import tempfile
    from pathlib import Path

    from repro.cli import main as repro_cli
    from repro.graph.io import load_graph

    print("\nCLI walkthrough (file in -> chordal edge list out):")
    with tempfile.TemporaryDirectory() as tmp:
        graph_path = str(Path(tmp) / "demo.mtx")
        chordal_path = str(Path(tmp) / "demo.chordal.txt")
        print(f"  $ repro generate rmat-b --scale {args.scale} "
              f"--seed {args.seed} -o demo.mtx")
        repro_cli(["generate", "rmat-b", "--scale", str(args.scale),
                   "--seed", str(args.seed), "-o", graph_path])
        print("  $ repro extract demo.mtx -o demo.chordal.txt")
        repro_cli(["extract", graph_path, "-o", chordal_path, "--quiet"])
        from_file = load_graph(chordal_path)
        assert np.array_equal(from_file.edge_array(), result.edges)
        print(f"  -> {from_file.num_edges} chordal edges, "
              "bit-identical to the API result")
        print("  (batches share one worker pool: "
              "repro extract *.mtx --out-dir out/ --engine process)")


if __name__ == "__main__":
    main()
