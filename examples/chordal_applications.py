#!/usr/bin/env python
"""NP-hard problems made tractable on the extracted chordal subgraph.

The paper's introduction motivates maximal chordal subgraphs as a proxy
domain where NP-hard combinatorial problems become polynomial.  This
example makes that concrete on an R-MAT graph:

* maximum clique of the chordal subgraph  -> clique (lower bound) of G;
* optimal coloring of the chordal subgraph -> seed ordering for a greedy
  coloring of G (an upper bound on chi(G));
* maximum independent set of the subgraph -> independent set of... note:
  an independent set of a *subgraph* is NOT one of G; we verify against G
  and repair greedily, showing where the proxy needs care;
* zero-fill elimination order of the subgraph -> fill-reducing ordering
  for G viewed as a sparse matrix (the preconditioning use case).

Run:
    python examples/chordal_applications.py [--scale 10]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import extract_maximal_chordal_subgraph, rmat_g
from repro.chordalg import (
    chordal_coloring,
    fill_in,
    greedy_coloring,
    max_clique,
    max_independent_set,
    verify_coloring,
)
from repro.chordality import mcs_peo


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=10)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    graph = rmat_g(args.scale, seed=args.seed)
    print(f"RMAT-G({args.scale}): {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")

    result = extract_maximal_chordal_subgraph(graph, renumber="bfs")
    sub = result.subgraph
    print(f"maximal chordal subgraph: {result.num_chordal_edges} edges "
          f"({100 * result.chordal_fraction:.1f}%)\n")

    # --- maximum clique (polynomial on chordal; NP-hard on G) ----------
    clique = max_clique(sub)
    for i, u in enumerate(clique):
        for v in clique[i + 1:]:
            assert graph.has_edge(u, v)  # subgraph cliques are G cliques
    print(f"max clique of subgraph          : {len(clique)} vertices {clique[:8]}"
          f"{'...' if len(clique) > 8 else ''}")
    print(f"  -> certified clique lower bound for omega(G): {len(clique)}")

    # --- chromatic number -----------------------------------------------
    colors, k = chordal_coloring(sub)
    assert verify_coloring(sub, colors)
    print(f"optimal coloring of subgraph    : {k} colors (= subgraph clique number)")
    order = np.argsort(colors, kind="stable").astype(np.int64)
    g_colors = greedy_coloring(graph, order)
    assert verify_coloring(graph, g_colors)
    k_g = int(g_colors.max()) + 1
    baseline = greedy_coloring(graph, np.arange(graph.num_vertices))
    print(f"greedy coloring of G seeded by it: {k_g} colors "
          f"(natural-order greedy: {int(baseline.max()) + 1})")

    # --- independent set ---------------------------------------------------
    mis = max_independent_set(sub)
    conflicts = sum(
        1 for i, u in enumerate(mis) for v in mis[i + 1:] if graph.has_edge(u, v)
    )
    keep: list[int] = []
    for u in mis:  # greedy repair against G
        if all(not graph.has_edge(u, v) for v in keep):
            keep.append(u)
    print(f"max independent set of subgraph : {len(mis)} vertices "
          f"({conflicts} pairs conflict in G; greedy repair keeps {len(keep)})")

    # --- fill-reducing ordering (preconditioner use case) -----------------
    peo = mcs_peo(sub)
    natural = np.arange(graph.num_vertices)
    fill_peo = fill_in(graph, peo)
    fill_nat = fill_in(graph, natural)
    assert fill_in(sub, peo) == 0  # zero fill on the chordal skeleton
    print(f"\nsymbolic elimination fill-in on G (sparse-matrix view):")
    print(f"  natural order            : {fill_nat} fill edges")
    print(f"  chordal-subgraph PEO     : {fill_peo} fill edges "
          f"({100 * (1 - fill_peo / max(fill_nat, 1)):.0f}% reduction)")
    print("\nThe chordal subgraph's elimination order is zero-fill on the "
          "subgraph and transfers most of that benefit to G — the "
          "ordering/preconditioning use case for chordal extraction.")


if __name__ == "__main__":
    main()
