#!/usr/bin/env python
"""Why the paper abandoned the distributed approach (Section II).

Compares three ways to extract (near-)chordal subgraphs:

1. the prior distributed algorithm (partition + local Dearing + border-
   edge triangle rule, over a simulated message-passing layer) — fast in
   principle but only *nearly* chordal, with communication growing in the
   border-edge count;
2. the paper's multithreaded Algorithm 1 — exactly chordal, shared-memory;
3. serial Dearing — exactly maximal, but inherently sequential.

Run:
    python examples/distributed_vs_multithreaded.py [--scale 10] [--parts 2 4 8]
"""

from __future__ import annotations

import argparse

from repro import extract_maximal_chordal_subgraph, is_chordal, rmat_g
from repro.baselines import dearing_max_chordal, distributed_nearly_chordal
from repro.chordality import find_hole
from repro.graph.ops import edge_subgraph


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=10)
    parser.add_argument("--parts", type=int, nargs="+", default=[2, 4, 8])
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    graph = rmat_g(args.scale, seed=args.seed)
    print(f"RMAT-G({args.scale}): {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges\n")

    print("distributed baseline (partition + border triangle rule):")
    print(f"{'parts':>6} {'border':>8} {'accepted':>9} {'edges':>7} "
          f"{'chordal?':>9} {'messages':>9}")
    for p in args.parts:
        d = distributed_nearly_chordal(graph, p, seed=args.seed)
        print(f"{p:>6} {d.border_edges:>8} {d.accepted_border_edges:>9} "
              f"{d.num_edges:>7} {str(d.chordal):>9} {d.stats.messages:>9}")
        if not d.chordal:
            hole = find_hole(edge_subgraph(graph, d.edges))
            if hole:
                print(f"       example chordless cycle admitted: {hole}")

    print("\nrepaired distributed variant (certified-addable border edges):")
    for p in args.parts:
        d = distributed_nearly_chordal(graph, p, repair=True, seed=args.seed)
        print(f"  parts={p}: {d.num_edges} edges, chordal={d.chordal}")

    print("\npaper's multithreaded Algorithm 1 (this library):")
    result = extract_maximal_chordal_subgraph(graph)
    print(f"  {result.num_chordal_edges} edges in {result.num_iterations} "
          f"iterations, chordal={is_chordal(result.subgraph)}")

    print("\nserial Dearing (certified maximal, inherently sequential):")
    edges = dearing_max_chordal(graph)
    print(f"  {edges.shape[0]} edges, chordal="
          f"{is_chordal(edge_subgraph(graph, edges))}")

    print("\nTakeaway: the distributed triangle rule leaks chordless cycles "
          "and its traffic grows with the border (hard-to-partition graphs "
          "suffer most); Algorithm 1 keeps exact chordality with only "
          "shared-memory synchronisation — the paper's core argument.")


if __name__ == "__main__":
    main()
