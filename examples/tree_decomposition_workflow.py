#!/usr/bin/env python
"""Tree decompositions from extracted chordal subgraphs.

Chordal graphs are exactly the graphs whose clique tree is an optimal
tree decomposition — the structure behind junction-tree inference,
sparse Cholesky supernodes, and bounded-treewidth dynamic programming.
This example shows the end-to-end workflow on a bounded-treewidth input:

1. generate a partial k-tree (treewidth <= k by construction);
2. extract its maximal chordal subgraph with Algorithm 1;
3. build the clique tree / tree decomposition of the subgraph;
4. triangulate the *original* graph along the subgraph's elimination
   order and compare the resulting treewidth bound against the natural
   order — the ordering payoff the paper's introduction gestures at.

Run:
    python examples/tree_decomposition_workflow.py [--n 60] [--k 4]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import extract_maximal_chordal_subgraph
from repro.chordalg import chordal_treewidth, tree_decomposition, treewidth_upper_bound
from repro.chordality import mcs_peo
from repro.graph.generators import partial_ktree


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=60)
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--keep", type=float, default=0.75)
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args()

    graph = partial_ktree(args.n, args.k, args.keep, seed=args.seed)
    print(f"partial {args.k}-tree: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges (true treewidth <= {args.k})\n")

    result = extract_maximal_chordal_subgraph(graph, renumber="bfs", maximalize=True)
    sub = result.subgraph
    print(f"maximal chordal subgraph: {result.num_chordal_edges} edges "
          f"({100 * result.chordal_fraction:.0f}% of |E|), "
          f"completion pass added {result.maximality_gap}")

    bags, tree_edges, width = tree_decomposition(sub)
    print(f"clique tree of the subgraph: {len(bags)} bags, "
          f"{len(tree_edges)} tree edges, width {width}")
    sizes = sorted((len(b) for b in bags), reverse=True)
    print(f"  largest bags: {sizes[:5]}")
    assert width == chordal_treewidth(sub)

    peo = mcs_peo(sub)
    natural = np.arange(graph.num_vertices)
    bound_peo = treewidth_upper_bound(graph, peo)
    bound_nat = treewidth_upper_bound(graph, natural)
    bound_own = treewidth_upper_bound(graph, mcs_peo(graph))
    print(f"\ntreewidth bounds for the ORIGINAL graph (true <= {args.k}):")
    print(f"  natural order triangulation     : {bound_nat}")
    print(f"  chordal-subgraph PEO            : {bound_peo}")
    print(f"  MCS directly on the graph       : {bound_own}")
    print("\nThe subgraph's perfect elimination order carries its zero-fill "
          "structure back to the host graph, tightening the triangulation "
          "the way a fill-reducing ordering would.")


if __name__ == "__main__":
    main()
