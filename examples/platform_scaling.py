#!/usr/bin/env python
"""Replaying the paper's platform study (Figures 4-6, Table II).

Runs the instrumented algorithm on an R-MAT graph of your chosen scale,
replays the measured work trace on the calibrated Cray XMT and AMD
Opteron models, and prints the scaling curves and speedup rows the paper
reports.  The XMT/Opteron numbers are *modeled* (DESIGN.md §3: the
threaded engine is GIL-bound), but the final section is **measured**: the
``engine="process"`` worker team runs the synchronous schedule over
shared memory on this host's real cores, next to the literal reference
engine it is compared against (the seed implementation style; the
historical Python pair loop was absorbed into the unified runtime).
Representative run on the recording container (1 core, RMAT-ER scale
14): seed-style loop 0.25 s → bulk kernels 0.04 s → process@4 0.054 s, a
4.6x measured speedup from vectorization alone; on a multi-core host the
worker sweep descends further.  (``benchmarks/bench_scaling.py`` prints
the full curve.)

Run:
    python examples/platform_scaling.py [--kind RMAT-B] [--scale 12]
"""

from __future__ import annotations

import argparse

from repro import extract_maximal_chordal_subgraph
from repro.experiments.scaling_measured import measure_engines
from repro.experiments.testsuite import rmat_spec, build_graph_cached
from repro.machine import CrayXMTModel, OpteronModel, speedup_curve
from repro.util.timing import format_seconds

XMT_SWEEP = [1, 2, 4, 8, 16, 32, 64, 128]
AMD_SWEEP = [1, 2, 4, 8, 16, 32]
MEASURED_SWEEP = [1, 2, 4]


def measured_scaling(graph, workers=MEASURED_SWEEP) -> None:
    """Wall-clock of the process engine on this host (synchronous schedule).

    Every configuration below returns the identical edge set — the
    snapshot semantics make worker count invisible — so the only thing
    that varies is time.  Delegates to the one measurement protocol
    (``repro.experiments.scaling_measured.measure_engines``) shared with
    ``benchmarks/bench_scaling.py`` and the registered experiment.
    """
    print("--- measured on this host: engine='process' (synchronous) ---")
    m = measure_engines(graph, workers=workers)
    print(f"reference engine (seed)  : {format_seconds(m['reference'])}")
    print(f"vectorized kernel engine : {format_seconds(m['kernels'])} "
          f"({m['speedup']['kernels']:.1f}x vs reference)")
    for w in workers:
        print(f"process engine, {w} worker(s): "
              f"{format_seconds(m['process'][w])} "
              f"({m['speedup'][f'process@{w}']:.1f}x vs reference)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kind", default="RMAT-B",
                        choices=["RMAT-ER", "RMAT-G", "RMAT-B"])
    parser.add_argument("--scale", type=int, default=12)
    parser.add_argument("--seed", type=int, default=20120910)
    parser.add_argument("--measured-workers", nargs="+", type=int,
                        default=MEASURED_SWEEP,
                        help="worker sweep for the measured process-engine "
                             "section (0 to skip)")
    args = parser.parse_args()

    graph = build_graph_cached(rmat_spec(args.kind, args.scale, args.seed))
    print(f"{args.kind}({args.scale}): {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges\n")

    xmt = CrayXMTModel()
    amd = OpteronModel()

    for variant in ("unoptimized", "optimized"):
        result = extract_maximal_chordal_subgraph(
            graph, variant=variant, collect_trace=True
        )
        trace = result.trace
        print(f"--- variant: {variant} "
              f"({trace.num_iterations} iterations, "
              f"{trace.total_work:.0f} ops, "
              f"critical path {trace.total_critical_path:.0f} ops) ---")
        header = f"{'procs':>6} | {'XMT time':>12} | {'AMD time':>12}"
        print(header)
        print("-" * len(header))
        for p in XMT_SWEEP:
            t_x = xmt.simulate(trace, p).total_seconds
            t_a = (
                format_seconds(amd.simulate(trace, p).total_seconds)
                if p <= max(AMD_SWEEP)
                else "-"
            )
            print(f"{p:>6} | {format_seconds(t_x):>12} | {t_a:>12}")
        s_x = speedup_curve(xmt, trace, [128])[128]
        s_a = speedup_curve(amd, trace, [32])[32]
        print(f"speedup: XMT@128 = {s_x:.1f}x   AMD@32 = {s_a:.1f}x "
              f"(paper Table II analogues)\n")

    workers = [w for w in args.measured_workers if w > 0]
    if workers:
        measured_scaling(graph, workers)


if __name__ == "__main__":
    main()
