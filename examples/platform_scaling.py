#!/usr/bin/env python
"""Replaying the paper's platform study (Figures 4-6, Table II).

Runs the instrumented algorithm on an R-MAT graph of your chosen scale,
replays the measured work trace on the calibrated Cray XMT and AMD
Opteron models, and prints the scaling curves and speedup rows the paper
reports.  See DESIGN.md §3 for why timing is modeled rather than
measured (single-core host + CPython GIL).

Run:
    python examples/platform_scaling.py [--kind RMAT-B] [--scale 12]
"""

from __future__ import annotations

import argparse

from repro import extract_maximal_chordal_subgraph
from repro.experiments.testsuite import rmat_spec, build_graph_cached
from repro.machine import CrayXMTModel, OpteronModel, speedup_curve
from repro.util.timing import format_seconds

XMT_SWEEP = [1, 2, 4, 8, 16, 32, 64, 128]
AMD_SWEEP = [1, 2, 4, 8, 16, 32]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kind", default="RMAT-B",
                        choices=["RMAT-ER", "RMAT-G", "RMAT-B"])
    parser.add_argument("--scale", type=int, default=12)
    parser.add_argument("--seed", type=int, default=20120910)
    args = parser.parse_args()

    graph = build_graph_cached(rmat_spec(args.kind, args.scale, args.seed))
    print(f"{args.kind}({args.scale}): {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges\n")

    xmt = CrayXMTModel()
    amd = OpteronModel()

    for variant in ("unoptimized", "optimized"):
        result = extract_maximal_chordal_subgraph(
            graph, variant=variant, collect_trace=True
        )
        trace = result.trace
        print(f"--- variant: {variant} "
              f"({trace.num_iterations} iterations, "
              f"{trace.total_work:.0f} ops, "
              f"critical path {trace.total_critical_path:.0f} ops) ---")
        header = f"{'procs':>6} | {'XMT time':>12} | {'AMD time':>12}"
        print(header)
        print("-" * len(header))
        for p in XMT_SWEEP:
            t_x = xmt.simulate(trace, p).total_seconds
            t_a = (
                format_seconds(amd.simulate(trace, p).total_seconds)
                if p <= max(AMD_SWEEP)
                else "-"
            )
            print(f"{p:>6} | {format_seconds(t_x):>12} | {t_a:>12}")
        s_x = speedup_curve(xmt, trace, [128])[128]
        s_a = speedup_curve(amd, trace, [32])[32]
        print(f"speedup: XMT@128 = {s_x:.1f}x   AMD@32 = {s_a:.1f}x "
              f"(paper Table II analogues)\n")


if __name__ == "__main__":
    main()
