#!/usr/bin/env python
"""Gene-correlation network sampling (the paper's motivating application).

Reproduces the paper's biological workflow end to end:

1. synthesise a microarray expression matrix with planted co-expressed
   gene modules (stand-in for GEO GSE5140/GSE17072 — no network access);
2. build the correlation network exactly as the paper describes
   (connect gene pairs with |Pearson rho| >= 0.95);
3. extract the maximal chordal subgraph as a *sampling* of the network
   (references [4], [5] of the paper);
4. show the sample preserves module structure while discarding most
   edges, and compare against the spanning-forest baseline.

Run:
    python examples/gene_network_sampling.py [--genes 800] [--samples 60]
"""

from __future__ import annotations

import argparse


from repro import extract_maximal_chordal_subgraph
from repro.analysis import average_clustering, degree_stats
from repro.baselines import spanning_forest_edges
from repro.graph.generators import correlation_network, synthetic_expression
from repro.graph.ops import edge_subgraph


def module_edge_fraction(graph, modules) -> float:
    """Fraction of edges joining genes of the same planted module."""
    edges = graph.edge_array()
    if edges.shape[0] == 0:
        return 0.0
    same = (modules[edges[:, 0]] == modules[edges[:, 1]]) & (modules[edges[:, 0]] >= 0)
    return float(same.mean())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--genes", type=int, default=800)
    parser.add_argument("--samples", type=int, default=60)
    parser.add_argument("--modules", type=int, default=12)
    parser.add_argument("--threshold", type=float, default=0.95)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"Synthesising expression: {args.genes} genes x {args.samples} arrays, "
          f"{args.modules} planted modules")
    expr, modules = synthetic_expression(
        args.genes, args.samples, args.modules, seed=args.seed
    )

    print(f"Building correlation network (|rho| >= {args.threshold}) ...")
    network = correlation_network(expr, threshold=args.threshold)
    stats = degree_stats(network)
    print(f"  {stats.num_vertices} genes, {stats.num_edges} correlation edges, "
          f"max degree {stats.max_degree}")
    print(f"  same-module edge fraction : {module_edge_fraction(network, modules):.3f}")
    print(f"  average clustering        : {average_clustering(network):.3f}")

    print("\nSampling with the maximal chordal subgraph (Algorithm 1) ...")
    result = extract_maximal_chordal_subgraph(network, renumber="bfs")
    sample = result.subgraph
    print(f"  kept {result.num_chordal_edges} / {network.num_edges} edges "
          f"({100 * result.chordal_fraction:.1f}%) in {result.num_iterations} iterations")
    print(f"  same-module edge fraction in sample: "
          f"{module_edge_fraction(sample, modules):.3f}")

    forest = edge_subgraph(network, spanning_forest_edges(network))
    print(f"\nSpanning-forest baseline keeps {forest.num_edges} edges "
          f"(same connectivity, no triangle structure):")
    print(f"  clustering: chordal sample {average_clustering(sample):.3f} "
          f"vs forest {average_clustering(forest):.3f}")
    print("\nThe chordal sample keeps the module co-membership signal and the "
          "local triangle structure that the forest destroys, at a fraction "
          "of the original edge count — the noise-reducing sampling use case "
          "from the paper's references [4][5].")


if __name__ == "__main__":
    main()
