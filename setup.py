"""Thin setup.py shim.

All real metadata lives in ``pyproject.toml`` ([project] table: name,
version, dependencies, the ``repro`` / ``repro-experiments`` console
scripts, pytest config).  This shim exists for fully-offline
environments: PEP 660 editable installs (``pip install -e .``) require
the ``wheel`` package for setuptools' ``bdist_wheel`` step, so where
``wheel`` is unavailable use the legacy develop path instead::

    pip install -e . --no-build-isolation   # needs wheel installed
    python setup.py develop                 # fully offline fallback

Both read the metadata from ``pyproject.toml`` and install the console
scripts.
"""

from setuptools import setup

setup()
