"""Thin setup.py shim.

The environment this repository targets can be fully offline; without the
``wheel`` package, PEP 660 editable installs (``pip install -e .``) fail in
setuptools' ``bdist_wheel`` step.  This shim enables the legacy editable
path::

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
