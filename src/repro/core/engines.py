"""Engine protocol and registry for the extraction engines.

The paper's contribution is *one* algorithm run under many execution
regimes, and this module is where those regimes become data: every engine
registers an :class:`EngineSpec` describing its capabilities — supported
schedules, which of them are deterministic, whether it can produce a
:class:`~repro.core.instrument.WorkTrace`, whether it runs on a
:class:`~repro.core.procpool.ProcessPool` — plus a ``run`` callable with a
uniform signature.  Dispatch, validation, error messages and the CLI's
``--engine`` / ``--schedule`` choices are all derived from the registry,
so a third-party engine registered with :func:`register_engine` plugs into
:class:`~repro.core.session.Extractor`, the legacy shims and ``repro
extract`` without touching any of them.

The legacy module-level tuples ``repro.core.extract.ENGINES`` /
``SCHEDULES`` are live views over this registry (see
:class:`RegistryView`).

Built-in engines
----------------
All four are pairings of the unified runtime's backends
(:mod:`repro.core.runtime`): one schedule driver over a StateBackend ×
ExecutorBackend choice.

``superstep``
    ``LocalState`` × ``SerialExecutor`` (vectorized kernels);
    deterministic under both schedules; collects work traces.
``threaded``
    ``LocalState`` × ``ThreadTeamExecutor`` — real threads with
    per-iteration barriers (GIL-bound); asynchronous output may differ
    run to run; collects work traces (its synchronous trace is identical
    to ``superstep``'s, the trace being a property of the schedule).
``native``
    ``LocalState(edge_claims=True)`` × ``NativeThreadTeamExecutor`` —
    the same thread team dispatching the *compiled* round bodies
    (:mod:`repro.core.native`), which release the GIL: genuinely
    parallel threads over shared arrays with no fork, segment or
    barrier-agent machinery.  Falls back to the NumPy bodies (same
    results, GIL-bound) when no compiled backend is available
    (``supports_native`` flags the capability; availability is a
    runtime question — ``repro --version`` reports it).
``process``
    ``SharedSegmentState`` × ``ProcessTeamExecutor`` — worker processes
    over shared memory, real core-level speedup; runs on a reusable
    :class:`~repro.core.procpool.ProcessPool` (``supports_pool``);
    synchronous output is bit-identical to ``superstep`` for any worker
    count.
``reference``
    Literal pseudocode transcription; deterministic under both
    schedules; the readable spec (kept loop-for-loop with the paper, so
    deliberately *not* rewritten over the runtime).

One engine implements a *different algorithm* (``algorithm="maxchord"``
rather than the paper's ``"algorithm1"``):

``weighted``
    Serial weighted MAXCHORD (Dearing–Shier–Warner) with weight-greedy
    completion (:mod:`repro.core.weighted`); the only engine with
    ``supports_weights`` — quality-directed, synchronous-only,
    deterministic.  Cross-engine equivalence sweeps filter on
    ``algorithm`` (different algorithms legitimately produce different
    maximal chordal subgraphs of the same graph).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.instrument import WorkTrace
from repro.core.procpool import ProcessPool
from repro.core.reference import reference_max_chordal
from repro.core.runtime import (
    LocalState,
    NativeThreadTeamExecutor,
    SerialExecutor,
    ThreadTeamExecutor,
    backend_run_fn,
)
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (type hints only)
    from repro.core.config import ExtractionConfig

__all__ = [
    "Engine",
    "EngineSpec",
    "RegistryView",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "engine_names",
    "schedule_names",
    "registered_engines",
]

#: Canonical schedule ordering for derived views (matches the historical
#: ``SCHEDULES`` tuple; registry-introduced schedules sort after these).
_CANONICAL_SCHEDULES = ("asynchronous", "synchronous")


@runtime_checkable
class Engine(Protocol):
    """What the dispatcher needs from an engine.

    Any object with these attributes and a :meth:`run` method can be
    handed to :func:`register_engine`; :class:`EngineSpec` is the
    dataclass the built-in engines use.
    """

    name: str
    description: str
    schedules: tuple[str, ...]
    default_schedule: str
    deterministic_schedules: tuple[str, ...]
    supports_trace: bool
    supports_pool: bool

    def run(
        self,
        graph: CSRGraph,
        config: "ExtractionConfig",
        pool: ProcessPool | None = None,
    ) -> tuple[np.ndarray, list[int], WorkTrace | None]:
        """Run one extraction; return ``(edges, queue_sizes, trace)``."""
        ...  # pragma: no cover - protocol stub


@dataclass(frozen=True)
class EngineSpec:
    """Capability record + run callable for one registered engine.

    Attributes
    ----------
    name:
        Registry key (the public ``engine=`` value).
    run_fn:
        ``(graph, config, pool) -> (edges, queue_sizes, trace | None)``
        with the graph already BFS-renumbered when requested; the
        session layer owns renumber/stitch/maximalize/canonicalisation.
    description:
        One line for ``--engine`` help and API docs.
    schedules:
        Schedules this engine accepts (requesting another one is a
        :class:`~repro.errors.ConfigError` naming this tuple).
    default_schedule:
        What ``ExtractionConfig(schedule=None)`` resolves to — the
        engine's natural schedule (``synchronous`` for ``process``,
        whose deterministic outputs make batches reproducible;
        ``asynchronous`` elsewhere, matching the paper).
    deterministic_schedules:
        Schedules under which the edge set is bit-reproducible across
        runs and thread/worker counts.
    supports_trace:
        Whether ``collect_trace=True`` is accepted.
    supports_pool:
        Whether extraction runs on (and can reuse) a
        :class:`~repro.core.procpool.ProcessPool`.
    supports_native:
        Whether the engine dispatches the compiled nogil round bodies
        (:mod:`repro.core.native`) when they are available.  This is a
        *capability* flag: whether the compiled path actually runs on a
        given host is a runtime question, answered by
        :func:`repro.core.native.native_status` and surfaced as
        ``kernel_path`` on :class:`~repro.core.session.ChordalResult`.
    supports_weights:
        Whether the engine consumes per-edge weights
        (:func:`repro.graph.weights.attach_edge_weights`).  Extracting
        from a weighted graph with a non-weight-aware engine is a
        :class:`~repro.errors.ConfigError` (weights would be silently
        ignored otherwise).
    algorithm:
        Which extraction algorithm the engine implements —
        ``"algorithm1"`` (the paper's) or ``"maxchord"``
        (Dearing–Shier–Warner).  Engines sharing an algorithm are
        expected to agree bit-for-bit under deterministic schedules;
        engines with different algorithms only share the
        maximal-chordal-subgraph contract.

    ``supports_weights`` and ``algorithm`` are optional for plain
    Protocol-conforming engine objects; consumers read them with
    ``getattr(engine, "supports_weights", False)`` /
    ``getattr(engine, "algorithm", "algorithm1")``.
    """

    name: str
    run_fn: Callable[..., tuple[np.ndarray, list[int], WorkTrace | None]] = field(
        repr=False
    )
    description: str = ""
    schedules: tuple[str, ...] = _CANONICAL_SCHEDULES
    default_schedule: str = "asynchronous"
    deterministic_schedules: tuple[str, ...] = ()
    supports_trace: bool = False
    supports_pool: bool = False
    supports_native: bool = False
    supports_weights: bool = False
    algorithm: str = "algorithm1"

    def __post_init__(self) -> None:
        _check_engine_invariants(self)

    def is_deterministic(self, schedule: str) -> bool:
        """Whether ``schedule`` yields bit-reproducible edge sets."""
        return schedule in self.deterministic_schedules

    def run(
        self,
        graph: CSRGraph,
        config: "ExtractionConfig",
        pool: ProcessPool | None = None,
    ) -> tuple[np.ndarray, list[int], WorkTrace | None]:
        return self.run_fn(graph, config, pool)


def _check_engine_invariants(engine: Engine) -> None:
    """Reject inconsistent capability declarations with a ConfigError.

    Shared by :meth:`EngineSpec.__post_init__` (fail-fast at
    construction) and :func:`register_engine` (so plain
    Protocol-conforming objects are held to the same contract at
    registration time, not at some distant extract-time resolution).
    """
    name = getattr(engine, "name", None)
    if not name or not isinstance(name, str):
        raise ConfigError(f"engine name must be a non-empty string, got {name!r}")
    missing = [
        attr
        for attr in (
            "description",
            "schedules",
            "default_schedule",
            "deterministic_schedules",
            "supports_trace",
            "supports_pool",
        )
        if not hasattr(engine, attr)
    ]
    if missing:
        raise ConfigError(
            f"engine {name!r} is missing required Engine-protocol "
            f"attribute(s) {missing}"
        )
    if not callable(getattr(engine, "run", None)):
        raise ConfigError(
            f"engine {name!r} must have a callable run(graph, config, pool)"
        )
    schedules = tuple(engine.schedules)
    if not schedules:
        raise ConfigError(f"engine {name!r} must support at least one schedule")
    if engine.default_schedule not in schedules:
        raise ConfigError(
            f"engine {name!r}: default_schedule {engine.default_schedule!r} "
            f"is not among its schedules {schedules}"
        )
    unknown = set(engine.deterministic_schedules) - set(schedules)
    if unknown:
        raise ConfigError(
            f"engine {name!r}: deterministic_schedules {sorted(unknown)} "
            f"not among its schedules {schedules}"
        )


_REGISTRY: dict[str, Engine] = {}


def register_engine(engine: Engine, *, replace: bool = False) -> Engine:
    """Add ``engine`` to the registry (and return it).

    Registered engines immediately appear in :func:`engine_names`, the
    derived ``ENGINES``/``SCHEDULES`` views, `repro extract --engine`
    choices, and become valid ``ExtractionConfig.engine`` values.  Pass
    ``replace=True`` to swap an existing registration (e.g. to wrap a
    built-in engine); otherwise duplicate names raise
    :class:`~repro.errors.ConfigError`.
    """
    _check_engine_invariants(engine)
    if engine.name in _REGISTRY and not replace:
        raise ConfigError(
            f"engine {engine.name!r} is already registered; "
            "pass replace=True to override it"
        )
    _REGISTRY[engine.name] = engine
    return engine


def unregister_engine(name: str) -> None:
    """Remove ``name`` from the registry (ConfigError if absent)."""
    if name not in _REGISTRY:
        raise ConfigError(f"unknown engine {name!r}; expected one of {engine_names()}")
    del _REGISTRY[name]


def get_engine(name: str) -> Engine:
    """Look up a registered engine by name.

    Raises
    ------
    ConfigError
        Listing the registered engine names — the error message is
        derived from the registry, so it stays correct as engines come
        and go.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown engine {name!r}; expected one of {engine_names()}"
        ) from None


def engine_names() -> tuple[str, ...]:
    """Registered engine names, in registration order."""
    return tuple(_REGISTRY)


def registered_engines() -> tuple[Engine, ...]:
    """The registered engine objects, in registration order."""
    return tuple(_REGISTRY.values())


def schedule_names() -> tuple[str, ...]:
    """Every schedule some registered engine supports.

    Canonical schedules keep their historical order; schedules
    introduced by third-party engines follow in first-seen order.
    """
    seen: set[str] = set()
    for engine in _REGISTRY.values():
        seen.update(engine.schedules)
    names = [s for s in _CANONICAL_SCHEDULES if s in seen]
    for engine in _REGISTRY.values():
        names.extend(s for s in engine.schedules if s not in names)
    return tuple(names)


class RegistryView(Sequence):
    """Immutable, *live* tuple-like view over a registry-derived tuple.

    ``repro.core.extract.ENGINES`` / ``SCHEDULES`` are instances: they
    compare, iterate, index and ``in``-test like the historical tuples,
    but re-read the registry on every access so engines registered after
    import show up (argparse ``choices=`` included).
    """

    __slots__ = ("_source",)

    def __init__(self, source: Callable[[], tuple[str, ...]]) -> None:
        self._source = source

    def __getitem__(self, index):
        return self._source()[index]

    def __len__(self) -> int:
        return len(self._source())

    def __contains__(self, item: object) -> bool:
        return item in self._source()

    def __iter__(self):
        return iter(self._source())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RegistryView):
            return self._source() == other._source()
        if isinstance(other, (tuple, list)):
            return self._source() == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._source())

    def __repr__(self) -> str:
        return repr(self._source())


# ---------------------------------------------------------------------------
# Built-in engine registrations.  ``run_fn`` receives the (possibly
# renumbered) work graph plus the *resolved* ExtractionConfig; resource
# ownership (pool lifecycle) lives in repro.core.session.
#
# The in-process engines are pure backend pairings over the unified
# runtime (:mod:`repro.core.runtime`): a StateBackend factory plus an
# ExecutorBackend factory, glued by ``backend_run_fn``.  The process
# engine pairs SharedSegmentState with ProcessTeamExecutor through the
# pool the session supplies (the pool owns the segment/team lifecycle).

_run_superstep = backend_run_fn(
    lambda graph, num_slices, config: LocalState(graph, num_slices),
    lambda config: SerialExecutor(),
)

_run_threaded = backend_run_fn(
    lambda graph, num_slices, config: LocalState(graph, num_slices),
    lambda config: ThreadTeamExecutor(config.num_threads),
)

# edge_claims=True: the native pairing runs the asynchronous schedule as
# lock-free live rounds in process, so the local state carries real
# edge-claim words (the sweep-based engines never read them).
_run_native = backend_run_fn(
    lambda graph, num_slices, config: LocalState(graph, num_slices, edge_claims=True),
    lambda config: NativeThreadTeamExecutor(config.num_threads),
)


def _run_process(graph, config, pool):
    # The dispatcher always supplies the pool for supports_pool engines
    # (Extractor._ensure_pool sized it with config.num_workers); variant
    # is validated config-side and does not change the pooled kernels'
    # edge sets (see process_max_chordal).
    edges, queue_sizes = pool.extract(
        graph, schedule=config.schedule, max_iterations=config.max_iterations
    )
    return edges, queue_sizes, None


def _run_reference(graph, config, pool):
    # The reference engine has no Opt/Unopt cost asymmetry; the two
    # variants differ only in cost, so the edge set is identical.
    edges, queue_sizes = reference_max_chordal(
        graph, schedule=config.schedule, max_iterations=config.max_iterations
    )
    return edges, queue_sizes, None


def _run_weighted(graph, config, pool):
    # Best-of portfolio over weighted/unweighted MAXCHORD and Algorithm 1,
    # all weight-greedily completed; contains the unweighted pipeline's
    # exact edge set, so retained weight dominates it by construction.
    # Import deferred to keep the registry import-light and cycle-free.
    from repro.core.weighted import weighted_portfolio

    edges, queue_sizes = weighted_portfolio(graph)
    return edges, queue_sizes, None


register_engine(
    EngineSpec(
        name="superstep",
        run_fn=_run_superstep,
        description="serial bulk-array engine, vectorized kernels (default)",
        deterministic_schedules=("asynchronous", "synchronous"),
        supports_trace=True,
    )
)
register_engine(
    EngineSpec(
        name="threaded",
        run_fn=_run_threaded,
        description="real thread team with per-iteration barriers (GIL-bound)",
        deterministic_schedules=("synchronous",),
        supports_trace=True,
    )
)
register_engine(
    EngineSpec(
        name="native",
        run_fn=_run_native,
        description="compiled nogil round bodies on a real thread team "
        "(NumPy fallback when no toolchain)",
        deterministic_schedules=("synchronous",),
        supports_native=True,
    )
)
register_engine(
    EngineSpec(
        name="process",
        run_fn=_run_process,
        description="worker processes over shared memory (real multi-core speedup)",
        default_schedule="synchronous",
        deterministic_schedules=("synchronous",),
        supports_pool=True,
    )
)
register_engine(
    EngineSpec(
        name="reference",
        run_fn=_run_reference,
        description="literal pseudocode transcription (the readable spec)",
        deterministic_schedules=("asynchronous", "synchronous"),
    )
)
register_engine(
    EngineSpec(
        name="weighted",
        run_fn=_run_weighted,
        description="weight-greedy MAXCHORD portfolio, maximises retained weight",
        schedules=("synchronous",),
        default_schedule="synchronous",
        deterministic_schedules=("synchronous",),
        supports_weights=True,
        algorithm="maxchord",
    )
)
