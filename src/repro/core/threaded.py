"""Multithreaded engine for Algorithm 1 (real ``threading`` threads).

Faithful to the paper's execution shape: per outer iteration, the queue Q1
is partitioned across a persistent thread team, every thread serves the
children of its queue vertices, and an implicit barrier (the team join)
separates iterations.

Two schedules, mirroring :mod:`repro.core.superstep`:

* ``"asynchronous"`` (default, paper-matching) — threads sweep their Q1
  partition in ascending order over *live* shared state.  A vertex whose
  next parent belongs to another thread's partition may be served again in
  the same iteration if that thread has not passed the parent yet — the
  same benign race the Cray XMT implementation exhibits.  Output is a
  valid maximal chordal subgraph for every interleaving (paper's proofs),
  but the edge set and iteration count may vary run to run, exactly like
  the real platform.

* ``"synchronous"`` — barrier-snapshot semantics; bit-identical to the
  serial synchronous engine regardless of thread count or timing.

Correctness relies on the unique-writer discipline documented in
:mod:`repro.core.state`: at any instant each vertex ``w`` has one current
LP, and only the thread serving that LP touches ``counts[w]``,
``cursor[w]``, ``lp[w]`` and ``w``'s arena slice; the LP hand-off is
sequenced by the CPython GIL (and would be a release/acquire pair in a
native port).  Chordal edges accumulate in per-thread lists merged after
the run, so no shared append ordering is needed.

On CPython the GIL serialises bytecode, so this engine demonstrates and
*tests* the concurrency structure rather than producing speedup; the
speedup experiments replay the work trace on the machine models
(DESIGN.md §3).
"""

from __future__ import annotations

import numpy as np

from repro.core.state import ChordalState, make_strategy
from repro.errors import ConfigError, ConvergenceError
from repro.graph.csr import CSRGraph
from repro.parallel.partition import balanced_chunks
from repro.parallel.runtime import ThreadTeam

__all__ = ["threaded_max_chordal"]


def threaded_max_chordal(
    graph: CSRGraph,
    *,
    num_threads: int = 4,
    variant: str = "optimized",
    schedule: str = "asynchronous",
    max_iterations: int | None = None,
) -> tuple[np.ndarray, list[int]]:
    """Extract the maximal chordal edge set with a real thread team.

    Returns ``(edges, queue_sizes)``.  With ``schedule="synchronous"`` the
    edge set equals the serial synchronous engine's bit-for-bit; with
    ``"asynchronous"`` it is a valid maximal chordal edge set that may
    differ across runs (as on the paper's hardware).
    """
    if num_threads < 1:
        raise ConfigError(f"num_threads must be >= 1, got {num_threads}")
    if schedule == "asynchronous":
        return _run_async(graph, num_threads, variant, max_iterations)
    if schedule == "synchronous":
        return _run_sync(graph, num_threads, variant, max_iterations)
    raise ConfigError(
        f"schedule must be 'asynchronous' or 'synchronous', got {schedule!r}"
    )


def _run_async(
    graph: CSRGraph,
    num_threads: int,
    variant: str,
    max_iterations: int | None,
) -> tuple[np.ndarray, list[int]]:
    strategy = make_strategy(graph, variant)
    state = ChordalState(strategy)
    n = graph.num_vertices
    degrees = strategy.graph.degrees()
    lp = state.lp
    counts = state.counts

    children: list[list[int]] = [[] for _ in range(n)]
    q1: list[int] = []
    for w in range(n):
        v = int(lp[w])
        if v >= 0:
            children[v].append(w)
    q1 = sorted({int(lp[w]) for w in range(n) if lp[w] >= 0})

    queue_sizes: list[int] = []
    limit = max_iterations if max_iterations is not None else graph.max_degree() + 2
    local_edges: list[list[tuple[int, int]]] = [[] for _ in range(num_threads)]
    next_q_parts: list[set[int]] = [set() for _ in range(num_threads)]

    with ThreadTeam(num_threads) as team:
        while q1:
            queue_sizes.append(len(q1))
            if len(queue_sizes) > limit:
                raise ConvergenceError(
                    f"exceeded iteration budget {limit} (queue={len(q1)}); "
                    "this indicates an internal bug"
                )
            # Partition Q1 contiguously, weighted by expected service cost
            # (child count proxied by degree).
            weights = np.asarray([degrees[v] + 1 for v in q1], dtype=np.float64)
            chunk_of = balanced_chunks(weights, num_threads)
            q1_list = q1

            def task(tid: int) -> None:
                start, stop = chunk_of[tid]
                out = local_edges[tid]
                q2 = next_q_parts[tid]
                for qi in range(start, stop):
                    v = q1_list[qi]
                    kids = children[v]
                    i = 0
                    # len(kids) re-read each step: other threads may append
                    # while we sweep (a child arriving at v mid-turn).
                    while i < len(kids):
                        w = kids[i]
                        i += 1
                        if int(lp[w]) != v:
                            continue  # stale entry (served twice elsewhere)
                        ok, _cost = state.subset_test(w, v, int(counts[v]))
                        if ok:
                            state.append_chordal(w, v)
                            out.append((v, w))
                        state.advance(w)
                        x = int(lp[w])
                        if x >= 0:
                            children[x].append(w)
                            q2.add(x)
                    # NOTE: children[v] is deliberately *not* cleared —
                    # another thread may append a late child after this
                    # sweep ends; the entry survives for the next iteration
                    # (v re-enters the queue via that thread's Q2) and
                    # already-served entries are skipped by the LP check.

            team.run(task)
            merged: set[int] = set()
            for part in next_q_parts:
                merged |= part
                part.clear()
            q1 = sorted(merged)

    for out in local_edges:
        for v, w in out:
            state.record_edge(v, w)
    return state.edge_array(), queue_sizes


def _run_sync(
    graph: CSRGraph,
    num_threads: int,
    variant: str,
    max_iterations: int | None,
) -> tuple[np.ndarray, list[int]]:
    strategy = make_strategy(graph, variant)
    state = ChordalState(strategy)
    degrees = strategy.graph.degrees()

    queue_sizes: list[int] = []
    limit = max_iterations if max_iterations is not None else graph.max_degree() + 2
    local_edges: list[list[tuple[int, int]]] = [[] for _ in range(num_threads)]

    with ThreadTeam(num_threads) as team:
        while True:
            active = state.active_vertices()
            if active.size == 0:
                break
            if len(queue_sizes) >= limit:
                raise ConvergenceError(
                    f"exceeded iteration budget {limit} with {active.size} "
                    "active vertices; this indicates an internal bug"
                )
            parents = state.lp[active].copy()
            queue_sizes.append(int(np.unique(parents).size))
            snapshot = state.counts.copy()
            # Weight slices by child degree: the Unopt advance is O(deg(w))
            # and subset tests grow with set sizes which correlate with deg.
            chunk_of = balanced_chunks(degrees[active].astype(np.float64) + 1.0, num_threads)
            active_list = active.tolist()
            parent_list = parents.tolist()

            def task(tid: int) -> None:
                start, stop = chunk_of[tid]
                out = local_edges[tid]
                for i in range(start, stop):
                    w = active_list[i]
                    v = parent_list[i]
                    ok, _cost = state.subset_test(w, v, int(snapshot[v]))
                    if ok:
                        state.append_chordal(w, v)
                        out.append((v, w))
                    state.advance(w)

            team.run(task)

    # Merge per-thread edge lists deterministically (thread id order).
    for out in local_edges:
        for v, w in out:
            state.record_edge(v, w)
    return state.edge_array(), queue_sizes
