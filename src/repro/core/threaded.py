"""Multithreaded engine for Algorithm 1 (real ``threading`` threads).

Faithful to the paper's execution shape: per outer iteration, the queue Q1
is partitioned across a persistent thread team, every thread serves the
children of its queue vertices, and an implicit barrier (the team join)
separates iterations.  Since the unified-runtime refactor this module is
a thin pairing of the shared schedule driver with local state and a
thread-team executor:

    drive(LocalState(graph, num_threads), ThreadTeamExecutor(num_threads))

Two schedules, with the same semantics as :mod:`repro.core.superstep`:

* ``"asynchronous"`` (default, paper-matching) — threads sweep their Q1
  partition in ascending order over *live* shared state.  A vertex whose
  next parent belongs to another thread's partition may be served again in
  the same iteration if that thread has not passed the parent yet — the
  same benign race the Cray XMT implementation exhibits.  Output is a
  valid maximal chordal subgraph for every interleaving (paper's proofs),
  but the edge set and iteration count may vary run to run, exactly like
  the real platform.

* ``"synchronous"`` — barrier-snapshot semantics over the bulk kernels;
  bit-identical to the serial synchronous engine regardless of thread
  count or timing (and its driver-reconstructed work trace is identical
  to the serial engine's).

Correctness relies on the unique-writer discipline: at any instant each
vertex ``w`` has one current LP, and only the thread serving that LP
touches ``counts[w]``, ``cursor[w]``, ``lp[w]`` and ``w``'s arena slice;
the LP hand-off is sequenced by the CPython GIL (and would be a
release/acquire pair in a native port).  Chordal edges accumulate in
per-thread lists merged after the run, so no shared append ordering is
needed.

On CPython the GIL serialises bytecode, so this engine demonstrates and
*tests* the concurrency structure rather than producing speedup; the
speedup experiments replay the work trace on the machine models
(DESIGN.md §3).
"""

from __future__ import annotations

import numpy as np

from repro.core.runtime import LocalState, ThreadTeamExecutor, drive
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph

__all__ = ["threaded_max_chordal"]


def threaded_max_chordal(
    graph: CSRGraph,
    *,
    num_threads: int = 4,
    variant: str = "optimized",
    schedule: str = "asynchronous",
    max_iterations: int | None = None,
) -> tuple[np.ndarray, list[int]]:
    """Extract the maximal chordal edge set with a real thread team.

    Returns ``(edges, queue_sizes)``.  With ``schedule="synchronous"`` the
    edge set equals the serial synchronous engine's bit-for-bit; with
    ``"asynchronous"`` it is a valid maximal chordal edge set that may
    differ across runs (as on the paper's hardware).  Work traces are
    available through the session API (``collect_trace=True`` with
    ``engine="threaded"``), which calls the runtime driver directly.
    """
    if num_threads < 1:
        raise ConfigError(f"num_threads must be >= 1, got {num_threads}")
    with ThreadTeamExecutor(num_threads) as executor:
        edges, queue_sizes, _ = drive(
            LocalState(graph, num_threads),
            executor,
            schedule=schedule,
            variant=variant,
            max_iterations=max_iterations,
        )
    return edges, queue_sizes
