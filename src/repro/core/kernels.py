"""Vectorized NumPy kernels for the barrier-synchronous schedule.

The serial synchronous engine in :mod:`repro.core.superstep` services one
``(w, lp(w))`` pair at a time from a Python loop.  Under snapshot semantics
every pair in a superstep is independent, so the whole superstep can be
reformulated as a handful of bulk array operations over *all* active
vertices at once.  This module is that reformulation; it is the hot path of
the synchronous superstep engine (``collect_trace=False``) and the compute
body each worker of the ``process`` engine executes on its shared-memory
slice.

The kernels operate on the canonical flat data layout of
:mod:`repro.core.runtime.layout`:

* ``offsets`` / ``arena`` / ``counts`` — per-vertex chordal sets ``C[v]``
  stored as sorted runs in one flat arena (``C[v]`` is
  ``arena[offsets[v] : offsets[v] + counts[v]]``).
* ``lp`` / ``cursor`` — current lowest parent and number of consumed
  parents per vertex.

The one non-obvious trick is the **global key array** that replaces the
per-pair subset test.  Because every ``C[v]`` is sorted and vertex blocks
are laid out in increasing-``v`` order, the compressed sequence

    ``key(v, e) = v * n + e``   for every element ``e`` of every ``C[v]``

is *globally* strictly increasing.  Membership of element ``e`` in ``C[v]``
is then a single ``searchsorted`` probe of one flat sorted array, which
NumPy can batch over every element of every active vertex's ``C[w]`` in one
call — no per-vertex Python work at all.  This is the vectorized analogue
of the paper's "ordered chordal set" observation: sortedness is what makes
the subset test batchable.

All kernels are pure functions over arrays (no object state), so the
process engine can apply them directly to ``multiprocessing.shared_memory``
views.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError
from repro.graph.csr import CSRGraph

__all__ = [
    "lower_counts",
    "initial_parents",
    "arena_offsets",
    "build_arena_keys",
    "subset_mask",
    "subset_mask_live",
    "append_accepted",
    "advance_parents",
    "assemble_edges",
    "vectorized_sync_max_chordal",
]


def lower_counts(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Per-vertex count of neighbors with a smaller id (parent capacity).

    Works for sorted and unsorted adjacency alike; replaces the O(n)
    Python loop the parent strategies used to run.
    """
    n = indptr.size - 1
    if indices.size == 0:
        return np.zeros(n, dtype=np.int64)
    owner = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    return np.bincount(owner[indices < owner], minlength=n).astype(np.int64)


def initial_parents(
    indptr: np.ndarray, sorted_indices: np.ndarray, lower: np.ndarray
) -> np.ndarray:
    """Algorithm 1 lines 4-10: each vertex's first (smallest) lower neighbor.

    Requires *sorted* adjacency: the first slot of a vertex's slice is its
    smallest neighbor, which is a parent exactly when ``lower[w] > 0``.
    """
    n = indptr.size - 1
    lp = np.full(n, -1, dtype=np.int64)
    has = lower > 0
    lp[has] = sorted_indices[indptr[:-1][has]]
    return lp


def arena_offsets(lower: np.ndarray) -> np.ndarray:
    """Arena layout: vertex ``v`` owns capacity ``lower[v]`` at ``offsets[v]``."""
    offsets = np.zeros(lower.size + 1, dtype=np.int64)
    np.cumsum(lower, out=offsets[1:])
    return offsets


def build_arena_keys(
    arena: np.ndarray,
    offsets: np.ndarray,
    counts: np.ndarray,
    n: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Compress the filled arena slots into one sorted key array.

    Returns the strictly increasing array ``[v * n + e for v ascending,
    e in C[v] ascending]`` over the snapshot ``counts``.  When ``out`` is
    given (the process engine's shared scratch, capacity = arena size) the
    keys are written into its prefix and that prefix is returned.
    """
    total = int(counts.sum())
    if out is None:
        out = np.empty(total, dtype=np.int64)
    if total == 0:
        return out[:0]
    owner = np.repeat(np.arange(n, dtype=np.int64), counts)
    starts = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    out[:total] = owner * n + arena[offsets[owner] + within]
    return out[:total]


def subset_mask(
    keys: np.ndarray,
    arena: np.ndarray,
    offsets: np.ndarray,
    counts: np.ndarray,
    ws: np.ndarray,
    vs: np.ndarray,
    n: int,
) -> np.ndarray:
    """Bulk line 15: ``ok[i]`` iff ``C[ws[i]]`` ⊆ ``C[vs[i]]``.

    ``counts`` is the barrier snapshot bounding both sides; ``keys`` must
    be the compressed key array built from the same snapshot.  The cardinality
    filter (``|C[w]| > |C[v]|`` can never be a subset, elements being
    distinct) prunes most rejections before any probe is issued.
    """
    cw = counts[ws]
    ok = cw <= counts[vs]
    cand = np.flatnonzero(ok & (cw > 0))
    if cand.size == 0:
        return ok
    cwc = cw[cand]
    total = int(cwc.sum())
    seg = np.repeat(cand, cwc)
    starts = np.cumsum(cwc) - cwc
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, cwc)
    elems = arena[offsets[ws[seg]] + within]
    qkeys = vs[seg] * n + elems
    pos = np.searchsorted(keys, qkeys)
    # cand is non-empty => some C[v] is non-empty => keys is non-empty.
    found = (pos < keys.size) & (keys[np.minimum(pos, keys.size - 1)] == qkeys)
    ok[seg[~found]] = False
    return ok


def subset_mask_live(
    arena: np.ndarray,
    offsets: np.ndarray,
    counts: np.ndarray,
    ws: np.ndarray,
    vs: np.ndarray,
    n: int,
) -> np.ndarray:
    """Live-arena variant of :func:`subset_mask` for the asynchronous sweep.

    ``ok[i]`` iff ``C[ws[i]]`` is a subset of the prefix of ``C[vs[i]]``
    *published at call time*: there is no barrier snapshot, so ``counts``
    is the live shared array that other workers are appending to while
    this call runs.  Each distinct parent's prefix length is gathered
    exactly once up front and every probe is bounded by that freeze, so
    the test is evaluated against one consistent (if instantly stale)
    prefix per parent.

    Why a concurrent append can never flip an answer the wrong way:

    * arena runs are append-only within a run and every slot is written
      before its ``counts`` word is bumped, so a gathered prefix length
      ``k`` always covers ``k`` fully-written, sorted elements;
    * elements appended after the gather are strictly larger than the
      frozen prefix's bound (parents arrive in increasing id order), so
      missing them can only *reject* an edge the barrier-free schedule
      was allowed to reject anyway — never admit a chord-violating one.

    ``ws`` must be owned by the calling worker (its ``counts`` / arena
    runs are stable during the call); ``vs`` may be mutating freely.
    """
    cw = counts[ws].copy()
    # One gather per *distinct* parent: all pairs sharing a parent probe
    # the same frozen prefix, and the key array below is built from the
    # same lengths the cardinality filter uses.
    upar, inv = np.unique(vs, return_inverse=True)
    kpar = counts[upar].copy()
    kv = kpar[inv]
    ok = cw <= kv
    cand = np.flatnonzero(ok & (cw > 0))
    if cand.size == 0:
        return ok
    # Compressed sorted key array over the frozen parent prefixes of the
    # parents that still have a live pair after the cardinality filter
    # (the async analogue of build_arena_keys, restricted to the parents
    # this slice actually probes).
    sel = np.unique(inv[cand])
    upar = upar[sel]
    kpar = kpar[sel]
    total_k = int(kpar.sum())
    pwhich = np.repeat(np.arange(upar.size, dtype=np.int64), kpar)
    pstarts = np.cumsum(kpar) - kpar
    pwithin = np.arange(total_k, dtype=np.int64) - np.repeat(pstarts, kpar)
    keys = upar[pwhich] * n + arena[offsets[upar[pwhich]] + pwithin]
    cwc = cw[cand]
    total = int(cwc.sum())
    seg = np.repeat(cand, cwc)
    starts = np.cumsum(cwc) - cwc
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, cwc)
    elems = arena[offsets[ws[seg]] + within]
    qkeys = vs[seg] * n + elems
    pos = np.searchsorted(keys, qkeys)
    found = (pos < keys.size) & (keys[np.minimum(pos, keys.size - 1)] == qkeys)
    ok[seg[~found]] = False
    return ok


def append_accepted(
    arena: np.ndarray,
    offsets: np.ndarray,
    counts: np.ndarray,
    ws: np.ndarray,
    vs: np.ndarray,
    ok: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Bulk lines 16-17: ``C[w] += {v}`` for accepted pairs; returns them.

    ``ws`` entries are distinct (one service per vertex per superstep), so
    the scatter writes below have unique targets.  Parents arrive in
    increasing order, so each run stays sorted.  ``counts`` here is the
    *live* array (== the snapshot at superstep start in the serial driver;
    a separate view of the same shared block in the process engine).
    """
    w_ok = ws[ok]
    v_ok = vs[ok]
    arena[offsets[w_ok] + counts[w_ok]] = v_ok
    counts[w_ok] += 1
    return v_ok, w_ok


def advance_parents(
    indptr: np.ndarray,
    sorted_indices: np.ndarray,
    lower: np.ndarray,
    cursor: np.ndarray,
    lp: np.ndarray,
    ws: np.ndarray,
) -> None:
    """Bulk lines 18-20: every serviced vertex moves to its next parent.

    With sorted adjacency the parents of ``w`` are exactly the first
    ``lower[w]`` slots of its slice, so the advance is one gather.
    """
    cursor[ws] += 1
    cur = cursor[ws]
    nxt = np.full(ws.size, -1, dtype=np.int64)
    has = cur < lower[ws]
    sel = ws[has]
    nxt[has] = sorted_indices[indptr[sel] + cur[has]]
    lp[ws] = nxt


def assemble_edges(chunks: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
    """Concatenate per-superstep ``(parents, children)`` chunks into the
    ``(k, 2)`` edge array — shared by the serial and process drivers so
    their bit-identical contract is structural, not coincidental."""
    if not chunks:
        return np.empty((0, 2), dtype=np.int64)
    return np.column_stack(
        (
            np.concatenate([c[0] for c in chunks]),
            np.concatenate([c[1] for c in chunks]),
        )
    ).astype(np.int64, copy=False)


def vectorized_sync_max_chordal(
    graph: CSRGraph,
    *,
    variant: str = "optimized",
    max_iterations: int | None = None,
) -> tuple[np.ndarray, list[int]]:
    """Synchronous-schedule Algorithm 1, one bulk superstep at a time.

    Produces exactly the edge rows and queue sizes of the Python-loop
    synchronous engine (same (parent, child) rows in the same order) —
    the loop engine services active vertices in ascending id order, and so
    does the compressed active array here.

    ``variant`` is accepted for API symmetry: Opt and Unopt visit the same
    parents in the same order (only their *cost* differs — see
    :mod:`repro.core.state`), and the vectorized path does no cost
    accounting, so both variants run on a sorted adjacency copy.
    """
    if variant not in ("optimized", "unoptimized"):
        raise ValueError(
            f"unknown variant {variant!r}; expected 'optimized' or 'unoptimized'"
        )
    g = graph if graph.sorted_adjacency else graph.with_sorted_adjacency()
    n = g.num_vertices
    indptr = g.indptr
    indices = g.indices
    lower = lower_counts(indptr, indices)
    offsets = arena_offsets(lower)
    arena = np.full(int(offsets[-1]), -1, dtype=np.int64)
    counts = np.zeros(n, dtype=np.int64)
    cursor = np.zeros(n, dtype=np.int64)
    lp = initial_parents(indptr, indices, lower)

    queue_sizes: list[int] = []
    chunks: list[tuple[np.ndarray, np.ndarray]] = []
    limit = max_iterations if max_iterations is not None else g.max_degree() + 2

    while True:
        active = np.flatnonzero(lp >= 0)
        if active.size == 0:
            break
        if len(queue_sizes) >= limit:
            raise ConvergenceError(
                f"exceeded iteration budget {limit} with {active.size} active "
                "vertices; this indicates an internal bug"
            )
        parents = lp[active]
        queue_sizes.append(int(np.unique(parents).size))
        keys = build_arena_keys(arena, offsets, counts, n)
        ok = subset_mask(keys, arena, offsets, counts, active, parents, n)
        chunks.append(append_accepted(arena, offsets, counts, active, parents, ok))
        advance_parents(indptr, indices, lower, cursor, lp, active)

    return assemble_edges(chunks), queue_sizes
