"""Incremental re-extraction for dynamic graphs: :class:`IncrementalExtractor`.

The paper extracts a maximal chordal subgraph of a *static* graph; the
serving path (ROADMAP item 5) sees the same graph mutate between
requests.  Re-running Algorithm 1 from scratch on every edge flip wastes
almost all of its work: a single mutation only perturbs the chordal
subgraph locally.  This module keeps the extraction state — the retained
chordal edge set as an adjacency-set mirror of the engines' ``LocalState``,
plus the rejected-candidate pool — alive across calls and maintains the
library-wide invariant

    ``H`` is a **maximal chordal subgraph** of the current graph ``G``

after every mutation, built on the same certified addability criterion
as the completion pass (:mod:`repro.core.maximalize`): ``H + uv`` is
chordal iff ``u`` and ``v`` are disconnected in ``H − (N_H(u) ∩ N_H(v))``.

Locality arguments (why the incremental steps are sound)
--------------------------------------------------------
Every rejected candidate caches a **witness path**: the ``u``–``v`` path
through ``H − (N_H(u) ∩ N_H(v))`` its addability BFS found.  The witness
is a standing certificate of unaddability, and the two mutation kinds
interact with it asymmetrically:

* **Edge additions to H** (a retained insert, or a re-offer acceptance
  of edge ``pq``) never remove witness edges, and they change ``N_H(x)``
  only for ``x ∈ {p, q}`` — so only candidates *incident to* ``p`` or
  ``q`` can flip to addable (their banned set can grow); all other
  witnesses stay valid.  Each acceptance therefore re-offers exactly the
  rejected candidates incident to its endpoints, recursively.
* **Edge removals from H** (deleting a retained edge, or a hole-repair
  eviction) only *shrink* banned sets — which can never disconnect — so
  a candidate can flip to addable only when a removed edge lies **on its
  witness path**.  Deletions re-test exactly the candidates indexed
  under the removed edges (plus the evicted edges themselves, which join
  the pool).
* Deleting a *non-retained* edge is O(1): the candidate pool shrinks,
  ``H`` is untouched, no witness references it (witnesses are H-paths).

When deleting a retained edge ``uv`` breaks chordality, every new hole
was chorded by ``uv`` in ``H`` — the repair loop
(:func:`~repro.chordality.recognition.find_hole` + deterministic edge
eviction) is anchored at the deletion site.  ``full_rebuild_threshold``
is the escape hatch: a deletion whose repair evicts more than this many
retained edges abandons local patching and re-runs the full driver
(:class:`~repro.core.session.Extractor`) on the current graph.

Quality guards: after every mutation the result can be certified with
:func:`repro.chordality.verify.verify_extraction` and must meet the
certified floor :func:`repro.chordality.quality.maximal_chordal_floor`
(the property suite in ``tests/test_incremental.py`` does exactly that);
``benchmarks/bench_incremental.py`` records the updates/sec advantage
over full re-extraction into the guarded ``BENCH_incremental.json``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

from repro.chordality.recognition import find_hole, is_chordal
from repro.core.config import ExtractionConfig
from repro.core.session import ChordalResult, Extractor
from repro.errors import ConfigError
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph

__all__ = ["IncrementalExtractor"]

#: Mutation-op spellings accepted by :meth:`IncrementalExtractor.apply_batch`.
INSERT_OPS = ("insert", "+")
DELETE_OPS = ("delete", "-")


def _avoiding_path(
    adj: list[set[int]], u: int, v: int
) -> list[int] | None:
    """Deterministic BFS for a ``u``–``v`` path in
    ``adj − (N(u) ∩ N(v))``; returns the vertex path ``[u, …, v]``, or
    ``None`` when the endpoints are disconnected — i.e. the edge is
    addable.  Mirrors :func:`repro.chordality.maximality.edge_addable`
    (which returns only the boolean)."""
    banned = adj[u] & adj[v]
    parent = {u: u}
    queue = deque([u])
    while queue:
        x = queue.popleft()
        for y in sorted(adj[x]):  # ascending order: deterministic paths
            if y == v:
                path = [v, x]
                while path[-1] != u:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            if y in banned or y in parent:
                continue
            parent[y] = x
            queue.append(y)
    return None


class IncrementalExtractor:
    """Maintain a maximal chordal subgraph of a mutating graph.

    Parameters
    ----------
    graph:
        The initial (unweighted) graph.  The vertex set is fixed for the
        session; mutations are edge-level.
    config:
        Regime for the initial extraction and for full rebuilds;
        ``maximalize`` is forced on (the incremental invariant *is*
        maximality).  Default: ``ExtractionConfig(maximalize=True)``.
    full_rebuild_threshold:
        When one deletion's hole repair evicts more than this many
        retained edges, fall back to a fresh full extraction instead of
        local patching.  ``None`` disables the fallback.

    Notes
    -----
    Fully deterministic: for a given ``(graph, mutation sequence)`` the
    retained edge set is bit-identical run to run (candidates are always
    offered in ``(u, v)`` lexicographic order, acceptances re-offer
    incident candidates FIFO, witness BFS visits neighbors ascending).
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        config: ExtractionConfig | None = None,
        full_rebuild_threshold: int | None = 64,
    ) -> None:
        if graph.has_weights:
            raise ConfigError(
                "IncrementalExtractor does not support weighted graphs; "
                "strip weights with graph.without_weights()"
            )
        if full_rebuild_threshold is not None and full_rebuild_threshold < 0:
            raise ConfigError(
                f"full_rebuild_threshold must be >= 0 or None, "
                f"got {full_rebuild_threshold}"
            )
        if config is None:
            config = ExtractionConfig(maximalize=True)
        elif not config.maximalize:
            # Maximality is the invariant being maintained; a non-maximal
            # seed would certify nothing.
            config = config.replace(maximalize=True)
        self._config = config
        self.full_rebuild_threshold = full_rebuild_threshold
        self._n = graph.num_vertices
        self._graph_adj: list[set[int]] = [
            set(int(x) for x in graph.neighbors(v)) for v in range(self._n)
        ]
        self._chordal_adj: list[set[int]] = [set() for _ in range(self._n)]
        self._rejected: set[tuple[int, int]] = set()
        # Incident index of the rejected pool (per endpoint).
        self._rej_inc: list[set[tuple[int, int]]] = [set() for _ in range(self._n)]
        # Witness certificates: candidate -> H-edges of its avoiding
        # path, and the inverted index H-edge -> candidates whose
        # witness uses it (the deletion re-test set).
        self._witness: dict[tuple[int, int], tuple[tuple[int, int], ...]] = {}
        self._witness_inc: dict[tuple[int, int], set[tuple[int, int]]] = {}
        self._graph_cache: CSRGraph | None = graph
        self.stats: dict[str, int] = {
            "inserts": 0,
            "deletes": 0,
            "retained_inserts": 0,
            "rejected_inserts": 0,
            "reoffer_accepts": 0,
            "repair_evictions": 0,
            "full_rebuilds": 0,
            "witness_retests": 0,
        }
        self._seed_from(self._extract_full(graph))

    # -- public surface -------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        """Edge count of the *current* graph ``G``."""
        return sum(len(nbrs) for nbrs in self._graph_adj) // 2

    @property
    def num_chordal_edges(self) -> int:
        """Edge count of the retained chordal subgraph ``H``."""
        return sum(len(nbrs) for nbrs in self._chordal_adj) // 2

    @property
    def graph(self) -> CSRGraph:
        """The current graph ``G`` as an immutable CSR snapshot (cached
        until the next mutation)."""
        if self._graph_cache is None:
            self._graph_cache = from_edge_array(
                self._n, self._edge_array(self._graph_adj)
            )
        return self._graph_cache

    @property
    def edges(self) -> np.ndarray:
        """The retained chordal edge set, canonical ``(k, 2)`` int64
        (``u < v`` rows in lexicographic order)."""
        return self._edge_array(self._chordal_adj)

    def insert_edge(self, u: int, v: int) -> bool:
        """Add edge ``(u, v)`` to the graph; returns True when it was
        retained in the chordal subgraph.

        Raises ``ValueError`` on a self-loop, an out-of-range endpoint,
        or an edge already present.
        """
        u, v = self._pair(u, v)
        if v in self._graph_adj[u]:
            raise ValueError(f"({u}, {v}) is already an edge of the graph")
        self._graph_adj[u].add(v)
        self._graph_adj[v].add(u)
        self._graph_cache = None
        self.stats["inserts"] += 1
        path = _avoiding_path(self._chordal_adj, u, v)
        if path is None:
            self._retain(u, v)
            self.stats["retained_inserts"] += 1
            # H grew: only rejected candidates incident to u or v can
            # have flipped to addable (module docstring).
            self.stats["reoffer_accepts"] += self._offer(
                self._rej_inc[u] | self._rej_inc[v]
            )
            return True
        self._reject(u, v)
        self._set_witness((u, v), path)
        self.stats["rejected_inserts"] += 1
        return False

    def delete_edge(self, u: int, v: int) -> None:
        """Remove edge ``(u, v)`` from the graph, repairing the retained
        subgraph locally (or via a full rebuild past the threshold).

        Raises ``ValueError`` when ``(u, v)`` is not a current edge.
        """
        u, v = self._pair(u, v)
        if v not in self._graph_adj[u]:
            raise ValueError(f"({u}, {v}) is not an edge of the graph")
        self.stats["deletes"] += 1
        self._graph_cache = None
        self._graph_adj[u].discard(v)
        self._graph_adj[v].discard(u)
        if v not in self._chordal_adj[u]:
            # Non-retained edge: the candidate pool shrinks, H untouched,
            # and no witness references a non-H edge.
            self._unreject(u, v)
            return
        # Retained edge: drop it, repair chordality, then re-offer
        # exactly the candidates whose witness used a removed edge.
        self._chordal_adj[u].discard(v)
        self._chordal_adj[v].discard(u)
        removed: list[tuple[int, int]] = [(u, v)]
        if not self._repair_holes(removed):  # threshold exceeded
            self.stats["full_rebuilds"] += 1
            self._seed_from(self._extract_full(self.graph))
            return
        self.stats["repair_evictions"] += len(removed) - 1
        affected: set[tuple[int, int]] = set(removed[1:])  # evicted edges
        for edge in removed:
            affected |= self._witness_inc.pop(edge, set())
        affected &= self._rejected
        self.stats["witness_retests"] += len(affected)
        self.stats["reoffer_accepts"] += self._offer(affected)

    def apply_batch(
        self, mutations: Iterable[tuple[str, int, int]]
    ) -> dict[str, int]:
        """Apply ``(op, u, v)`` mutations in order (``op`` is ``"insert"``
        / ``"+"`` or ``"delete"`` / ``"-"``); returns per-batch counts
        ``{"applied", "inserted", "retained", "deleted"}``.
        """
        applied = inserted = retained = deleted = 0
        for index, row in enumerate(mutations):
            try:
                op, u, v = row
            except (TypeError, ValueError):
                raise ValueError(
                    f"mutation #{index} must be an (op, u, v) triple, "
                    f"got {row!r}"
                ) from None
            if op in INSERT_OPS:
                inserted += 1
                retained += bool(self.insert_edge(u, v))
            elif op in DELETE_OPS:
                deleted += 1
                self.delete_edge(u, v)
            else:
                raise ValueError(
                    f"mutation #{index}: unknown op {op!r} (expected one of "
                    f"{INSERT_OPS + DELETE_OPS})"
                )
            applied += 1
        return {
            "applied": applied,
            "inserted": inserted,
            "retained": retained,
            "deleted": deleted,
        }

    def result(self) -> ChordalResult:
        """The current extraction as a :class:`ChordalResult` (canonical
        edges, ``engine="incremental"``) against a CSR snapshot of the
        current graph."""
        return ChordalResult(
            edges=self.edges,
            queue_sizes=[],
            variant=self._config.variant,
            engine="incremental",
            graph=self.graph,
            schedule="incremental",
        )

    # -- internals ------------------------------------------------------

    def _pair(self, u: int, v: int) -> tuple[int, int]:
        u, v = int(u), int(v)
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise ValueError(
                f"edge ({u}, {v}) out of range for {self._n} vertices"
            )
        if u == v:
            raise ValueError(f"self-loop ({u}, {u}) is not a valid edge")
        return (u, v) if u < v else (v, u)

    def _retain(self, u: int, v: int) -> None:
        self._chordal_adj[u].add(v)
        self._chordal_adj[v].add(u)

    def _reject(self, u: int, v: int) -> None:
        edge = (u, v)
        self._rejected.add(edge)
        self._rej_inc[u].add(edge)
        self._rej_inc[v].add(edge)

    def _unreject(self, u: int, v: int) -> None:
        edge = (u, v)
        self._rejected.discard(edge)
        self._rej_inc[u].discard(edge)
        self._rej_inc[v].discard(edge)
        self._clear_witness(edge)

    def _set_witness(
        self, candidate: tuple[int, int], path: list[int]
    ) -> None:
        self._clear_witness(candidate)
        path_edges = tuple(
            (path[i], path[i + 1]) if path[i] < path[i + 1]
            else (path[i + 1], path[i])
            for i in range(len(path) - 1)
        )
        self._witness[candidate] = path_edges
        for edge in path_edges:
            self._witness_inc.setdefault(edge, set()).add(candidate)

    def _clear_witness(self, candidate: tuple[int, int]) -> None:
        for edge in self._witness.pop(candidate, ()):
            holders = self._witness_inc.get(edge)
            if holders is not None:
                holders.discard(candidate)
                if not holders:
                    del self._witness_inc[edge]

    def _offer(self, candidates: Iterable[tuple[int, int]]) -> int:
        """Greedily offer rejected candidates to ``H`` in deterministic
        lexicographic order; each acceptance re-offers the rejected
        candidates incident to its endpoints (FIFO worklist).  Rejected
        offers record a fresh witness.  Returns the acceptance count."""
        queue = deque(sorted(candidates))
        accepted = 0
        while queue:
            edge = queue.popleft()
            if edge not in self._rejected:
                continue  # accepted earlier on this worklist
            a, b = edge
            path = _avoiding_path(self._chordal_adj, a, b)
            if path is None:
                self._unreject(a, b)
                self._retain(a, b)
                accepted += 1
                queue.extend(sorted(self._rej_inc[a] | self._rej_inc[b]))
            else:
                self._set_witness(edge, path)
        return accepted

    def _evict(
        self, victim: tuple[int, int], removed: list[tuple[int, int]]
    ) -> None:
        self._chordal_adj[victim[0]].discard(victim[1])
        self._chordal_adj[victim[1]].discard(victim[0])
        self._reject(*victim)
        removed.append(victim)

    def _broken_pair(self, p: int, q: int) -> tuple[int, int] | None:
        """The lexicographically smallest non-adjacent pair in
        ``N_H(p) ∩ N_H(q)``, or None when the common neighborhood is a
        clique."""
        common = sorted(self._chordal_adj[p] & self._chordal_adj[q])
        for i, x in enumerate(common):
            adj_x = self._chordal_adj[x]
            for y in common[i + 1 :]:
                if y not in adj_x:
                    return (x, y)
        return None

    def _repair_holes(self, removed: list[tuple[int, int]]) -> bool:
        """Evict retained edges until ``H`` is chordal again, appending
        each eviction to ``removed``.  Returns False when the eviction
        count exceeds ``full_rebuild_threshold``.

        The workhorse is a sharpening of Ibarra's removability criterion
        (fully dynamic chordal graphs): after deleting ``pq`` from a
        *chordal* graph, **every** hole is a 4-hole ``p-x-q-y`` with
        ``x, y`` a non-adjacent pair in ``N(p) ∩ N(q)``.  (A longer hole
        would contain ``p`` and ``q`` with ``pq`` as its only chord in
        the pre-deletion graph, and the sub-cycle it closes through
        ``pq`` would be a chordless ≥4-cycle of the chordal original.)
        A worklist over removed-edge endpoint pairs therefore fixes the
        damage directly: evict one of the four cycle edges, requeue both
        pairs.  The victim is the wing edge whose endpoints share the
        smallest common neighborhood (ties lexicographic) — the choice
        that tends to stop, not feed, the eviction cascade.

        When the worklist finishes without evicting anything the end
        state is chordal *by the lemma* — no check needed.  Otherwise
        intermediate states were not chordal and the lemma alone does
        not certify the composition, so an O(n + m) MCS pass
        (:func:`is_chordal`) verifies; only on the rare failure does the
        expensive hole *locator* (:func:`find_hole`) run to restart the
        worklist at a surviving longer hole.
        """
        evicted = 0
        worklist = deque(removed)
        while True:
            while worklist:
                p, q = worklist[0]
                broken = self._broken_pair(p, q)
                if broken is None:
                    worklist.popleft()
                    continue
                x, y = broken
                wings = sorted(
                    (min(a, b), max(a, b))
                    for a, b in ((p, x), (x, q), (p, y), (y, q))
                )
                victim = min(
                    wings,
                    key=lambda e: (
                        len(self._chordal_adj[e[0]] & self._chordal_adj[e[1]]),
                        e,
                    ),
                )
                self._evict(victim, removed)
                worklist.append(victim)
                evicted += 1
                if (
                    self.full_rebuild_threshold is not None
                    and evicted > self.full_rebuild_threshold
                ):
                    return False
            if evicted == 0:
                return True  # certified chordal by the 4-hole lemma
            snapshot = from_edge_array(
                self._n, self._edge_array(self._chordal_adj)
            )
            if is_chordal(snapshot):
                return True
            hole = find_hole(snapshot)
            k = len(hole)
            victim = min(
                (min(hole[i], hole[(i + 1) % k]), max(hole[i], hole[(i + 1) % k]))
                for i in range(k)
            )
            self._evict(victim, removed)
            worklist.append(victim)
            evicted += 1
            if (
                self.full_rebuild_threshold is not None
                and evicted > self.full_rebuild_threshold
            ):
                return False

    def _extract_full(self, graph: CSRGraph) -> np.ndarray:
        with Extractor(self._config) as extractor:
            return extractor.extract(graph).edges

    def _seed_from(self, chordal_edges: np.ndarray) -> None:
        """Reset ``H``, the candidate pool, and every witness from a
        full extraction."""
        for v in range(self._n):
            self._chordal_adj[v].clear()
            self._rej_inc[v].clear()
        self._rejected.clear()
        self._witness.clear()
        self._witness_inc.clear()
        for u, v in np.asarray(chordal_edges, dtype=np.int64).reshape(-1, 2):
            self._retain(int(min(u, v)), int(max(u, v)))
        for u in range(self._n):
            for v in self._graph_adj[u]:
                if v > u and v not in self._chordal_adj[u]:
                    self._reject(u, v)
        for edge in sorted(self._rejected):
            path = _avoiding_path(self._chordal_adj, *edge)
            if path is None:
                # The seed extraction was not maximal here (possible when
                # a custom engine under-maximalizes): adopt the edge.
                self._unreject(*edge)
                self._retain(*edge)
            else:
                self._set_witness(edge, path)

    @staticmethod
    def _edge_array(adj: list[set[int]]) -> np.ndarray:
        rows = [(u, v) for u in range(len(adj)) for v in adj[u] if v > u]
        if not rows:
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(sorted(rows), dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IncrementalExtractor(n={self._n}, m={self.num_edges}, "
            f"chordal={self.num_chordal_edges}, "
            f"rejected={len(self._rejected)})"
        )
