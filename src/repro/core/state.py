"""Shared state of Algorithm 1: lowest parents, chordal-neighbor arena.

Data layout (paper's "Data structures" box, adapted to 0-based ids):

* ``lp[w]``        — current lowest parent of ``w`` (``-1`` = none; paper
  uses 0 with 1-based ids).
* ``cursor[w]``    — how many parents of ``w`` have been consumed; with
  sorted adjacency the parents of ``w`` are exactly the prefix of its
  adjacency slice below ``w``, so the cursor indexes that prefix directly.
* chordal sets ``C[w]`` — flat arena with per-vertex capacity equal to the
  number of lower neighbors (every chordal neighbor of ``w`` is a former
  lowest parent, hence a lower neighbor).  Parents are consumed in
  increasing id order, so each ``C[w]`` is *automatically sorted* — the
  property the paper exploits to make the subset test linear ("we exploit
  the fact that the chordal edge set of a vertex automatically gets built
  in an orderly manner").  Python ``set`` mirrors give O(|small|) subset
  tests; the sorted arena supplies the prefix bound that makes the test
  race-free under snapshot semantics.

Parent-advance strategies:

* :class:`SortedParentStrategy` — the paper's **optimized** variant.
  Requires sorted adjacency; next parent is a cursor bump, O(1).
* :class:`UnsortedParentStrategy` — the paper's **unoptimized** variant.
  Each advance rescans the (unsorted) adjacency slice for the smallest
  neighbor greater than the current parent and below ``w``: O(deg(w)).

Both strategies visit the same parents in the same (increasing) order, so
the chordal edge set is independent of the strategy — only cost differs.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import initial_parents, lower_counts
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph

__all__ = [
    "ChordalState",
    "SortedParentStrategy",
    "UnsortedParentStrategy",
    "make_strategy",
]


class SortedParentStrategy:
    """O(1) parent advance over sorted adjacency (paper's *Opt*).

    The sort itself (when the input arrives unsorted) happens here, in the
    constructor; the paper likewise excludes sorting from reported times.
    """

    name = "optimized"

    def __init__(self, graph: CSRGraph) -> None:
        if not graph.sorted_adjacency:
            graph = graph.with_sorted_adjacency()
        self.graph = graph
        # lower_count[w] = number of neighbors with id < w (parent capacity)
        self.lower_count = lower_counts(graph.indptr, graph.indices)

    def parent_at(self, w: int, cursor: int) -> tuple[int, int]:
        """(parent id or -1, advance cost in ops) for the given cursor."""
        if cursor >= self.lower_count[w]:
            return -1, 1
        return int(self.graph.indices[self.graph.indptr[w] + cursor]), 1

    def initial_parents(self) -> np.ndarray:
        """Lowest parent of every vertex at once (Algorithm 1 lines 4-10)."""
        return initial_parents(self.graph.indptr, self.graph.indices, self.lower_count)


class UnsortedParentStrategy:
    """O(deg) parent advance by scanning unsorted adjacency (paper's *Unopt*).

    Stateful: tracks the last consumed parent per vertex as the scan lower
    bound.  ``parent_at`` must therefore be called exactly once per
    (vertex, cursor) step — the engines guarantee this.
    """

    name = "unoptimized"

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        self.lower_count = lower_counts(graph.indptr, graph.indices)
        self._prev = np.full(graph.num_vertices, -1, dtype=np.int64)

    def parent_at(self, w: int, cursor: int) -> tuple[int, int]:
        """Scan for the smallest neighbor in (prev_parent, w); cost = deg(w).

        The scan itself is vectorised (NumPy mask + min) so high-degree
        vertices don't stall the Python engine; the *charged* cost is the
        full adjacency length, which is what the paper's unoptimized
        implementation pays.
        """
        g = self.graph
        lo, hi = int(g.indptr[w]), int(g.indptr[w + 1])
        row = g.indices[lo:hi]
        prev = int(self._prev[w])
        candidates = row[(row > prev) & (row < w)]
        if candidates.size == 0:
            return -1, hi - lo
        best = int(candidates.min())
        self._prev[w] = best
        return best, hi - lo

    def initial_parents(self) -> np.ndarray:
        """Lowest parent of every vertex at once (Algorithm 1 lines 4-10).

        Vectorized min-over-lower-neighbors; primes the scan bounds exactly
        as per-vertex ``parent_at(w, 0)`` calls would.
        """
        g = self.graph
        n = g.num_vertices
        lp = np.full(n, n, dtype=np.int64)
        if g.indices.size:
            owner = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.indptr))
            mask = g.indices < owner
            np.minimum.at(lp, owner[mask], g.indices[mask].astype(np.int64))
        lp[lp == n] = -1
        has = lp >= 0
        self._prev[has] = lp[has]
        return lp

    def reset(self) -> None:
        """Rewind the scan bounds (for reuse of the strategy across runs)."""
        self._prev.fill(-1)


def make_strategy(graph: CSRGraph, variant: str):
    """Factory: ``"optimized"`` or ``"unoptimized"`` parent strategy."""
    if variant == "optimized":
        return SortedParentStrategy(graph)
    if variant == "unoptimized":
        return UnsortedParentStrategy(graph)
    raise ConfigError(f"unknown variant {variant!r}; expected 'optimized' or 'unoptimized'")


class ChordalState:
    """Mutable per-run state shared by the serial and threaded engines.

    Thread-safety contract (what makes the lock-free threaded engine
    correct, DESIGN.md §5): per iteration, each vertex ``w`` has exactly
    one current LP, so ``counts[w]``, ``cursor[w]``, ``lp[w]`` and the
    arena slice of ``w`` each have a *unique writer*.  Readers of another
    vertex's chordal set always bound their view by the barrier-time
    prefix length, so concurrent appends are invisible to them.
    """

    __slots__ = (
        "n",
        "lp",
        "cursor",
        "offsets",
        "arena",
        "counts",
        "strategy",
        "sets",
        "edges_u",
        "edges_v",
    )

    def __init__(self, strategy) -> None:
        graph = strategy.graph
        n = graph.num_vertices
        self.n = n
        self.strategy = strategy
        lower = strategy.lower_count
        self.offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lower, out=self.offsets[1:])
        self.arena = np.full(int(self.offsets[-1]), -1, dtype=np.int64)
        self.counts = np.zeros(n, dtype=np.int64)
        self.cursor = np.zeros(n, dtype=np.int64)
        self.sets: list[set[int]] = [set() for _ in range(n)]
        self.edges_u: list[int] = []
        self.edges_v: list[int] = []
        # Initialisation (Algorithm 1 lines 4-10): every vertex with at
        # least one lower neighbor points at its lowest parent.
        self.lp = strategy.initial_parents()

    # ------------------------------------------------------------------
    def chordal_set(self, v: int) -> np.ndarray:
        """Current chordal-neighbor set C[v] (sorted, live view)."""
        off = self.offsets[v]
        return self.arena[off:off + self.counts[v]]

    def subset_test(self, w: int, v: int, prefix_len: int) -> tuple[bool, int]:
        """Line 15: is ``C[w]`` a subset of the barrier-time prefix of ``C[v]``?

        Returns ``(result, abstract cost)`` where cost is
        ``min(|C[w]|, prefix) + 1`` — the paper's "linear in the size of the
        smallest set".

        Race-freedom: membership is probed against the *live* set of ``v``
        but bounded by ``arena[off_v + prefix_len - 1]``; any element
        appended to ``C[v]`` after the barrier is strictly larger than that
        bound (parents arrive in increasing order), so it can never flip
        the outcome.
        """
        cw_len = int(self.counts[w])
        cost = min(cw_len, prefix_len) + 1
        if cw_len > prefix_len:
            return False, 1
        if cw_len == 0:
            return True, 1
        off_w = self.offsets[w]
        cw_view = self.arena[off_w:off_w + cw_len]
        bound = self.arena[self.offsets[v] + prefix_len - 1]
        if cw_view[cw_len - 1] > bound:
            return False, cost
        if not self.sets[v].issuperset(cw_view.tolist()):
            return False, cost
        return True, cost

    def append_chordal(self, w: int, v: int) -> None:
        """C[w] <- C[w] ∪ {v} (line 16).  EC bookkeeping is separate so the
        threaded engine can keep per-thread edge lists."""
        off = self.offsets[w] + self.counts[w]
        self.arena[off] = v
        self.sets[w].add(v)
        self.counts[w] += 1

    def record_edge(self, v: int, w: int) -> None:
        """EC <- EC ∪ {(v, w)} (line 17) into the shared edge list."""
        self.edges_u.append(v)
        self.edges_v.append(w)

    def advance(self, w: int) -> int:
        """Move ``w`` to its next lowest parent (lines 18-20).

        Returns the advance cost in abstract ops (1 for Opt, deg(w) for
        Unopt) for the work trace.
        """
        self.cursor[w] += 1
        parent, cost = self.strategy.parent_at(w, int(self.cursor[w]))
        self.lp[w] = parent
        return cost

    def active_vertices(self) -> np.ndarray:
        """Vertices that still have a lowest parent to compare against."""
        return np.flatnonzero(self.lp >= 0)

    def edge_array(self) -> np.ndarray:
        """The chordal edge set EC as a ``(k, 2)`` array of (parent, child)."""
        if not self.edges_u:
            return np.empty((0, 2), dtype=np.int64)
        return np.column_stack(
            (np.asarray(self.edges_u, dtype=np.int64), np.asarray(self.edges_v, dtype=np.int64))
        )
