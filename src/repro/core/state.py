"""Parent-advance strategies of Algorithm 1 (the paper's Opt/Unopt pair).

The algorithm's *data* — lowest parents, cursors, the flat chordal-set
arena — lives in the canonical array schema of
:mod:`repro.core.runtime.layout` (one layout for local arrays and
shared-memory segments alike; the historical ``ChordalState`` object was
absorbed into :class:`repro.core.runtime.state.LocalState` when the
engines were unified over one schedule driver).  What remains here is the
paper's cost model for *finding the next parent*:

* :class:`SortedParentStrategy` — the paper's **optimized** variant.
  Requires sorted adjacency; next parent is a cursor bump, O(1).
* :class:`UnsortedParentStrategy` — the paper's **unoptimized** variant.
  Each advance rescans the (unsorted) adjacency slice for the smallest
  neighbor greater than the current parent and below ``w``: O(deg(w)).

Both strategies visit the same parents in the same (increasing) order, so
the chordal edge set is independent of the strategy — only cost differs,
which is exactly what the work traces charge
(:func:`repro.core.runtime.driver.drive` charges 1 op per Opt advance and
``deg(w)`` per Unopt advance, matching :meth:`parent_at`'s reported
costs).
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import initial_parents, lower_counts
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph

__all__ = [
    "SortedParentStrategy",
    "UnsortedParentStrategy",
    "make_strategy",
]


class SortedParentStrategy:
    """O(1) parent advance over sorted adjacency (paper's *Opt*).

    The sort itself (when the input arrives unsorted) happens here, in the
    constructor; the paper likewise excludes sorting from reported times.
    """

    name = "optimized"

    def __init__(self, graph: CSRGraph) -> None:
        if not graph.sorted_adjacency:
            graph = graph.with_sorted_adjacency()
        self.graph = graph
        # lower_count[w] = number of neighbors with id < w (parent capacity)
        self.lower_count = lower_counts(graph.indptr, graph.indices)

    def parent_at(self, w: int, cursor: int) -> tuple[int, int]:
        """(parent id or -1, advance cost in ops) for the given cursor."""
        if cursor >= self.lower_count[w]:
            return -1, 1
        return int(self.graph.indices[self.graph.indptr[w] + cursor]), 1

    def initial_parents(self) -> np.ndarray:
        """Lowest parent of every vertex at once (Algorithm 1 lines 4-10)."""
        return initial_parents(self.graph.indptr, self.graph.indices, self.lower_count)


class UnsortedParentStrategy:
    """O(deg) parent advance by scanning unsorted adjacency (paper's *Unopt*).

    Stateful: tracks the last consumed parent per vertex as the scan lower
    bound.  ``parent_at`` must therefore be called exactly once per
    (vertex, cursor) step.
    """

    name = "unoptimized"

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        self.lower_count = lower_counts(graph.indptr, graph.indices)
        self._prev = np.full(graph.num_vertices, -1, dtype=np.int64)

    def parent_at(self, w: int, cursor: int) -> tuple[int, int]:
        """Scan for the smallest neighbor in (prev_parent, w); cost = deg(w).

        The scan itself is vectorised (NumPy mask + min) so high-degree
        vertices don't stall a Python caller; the *charged* cost is the
        full adjacency length, which is what the paper's unoptimized
        implementation pays.
        """
        g = self.graph
        lo, hi = int(g.indptr[w]), int(g.indptr[w + 1])
        row = g.indices[lo:hi]
        prev = int(self._prev[w])
        candidates = row[(row > prev) & (row < w)]
        if candidates.size == 0:
            return -1, hi - lo
        best = int(candidates.min())
        self._prev[w] = best
        return best, hi - lo

    def initial_parents(self) -> np.ndarray:
        """Lowest parent of every vertex at once (Algorithm 1 lines 4-10).

        Vectorized min-over-lower-neighbors; primes the scan bounds exactly
        as per-vertex ``parent_at(w, 0)`` calls would.
        """
        g = self.graph
        n = g.num_vertices
        lp = np.full(n, n, dtype=np.int64)
        if g.indices.size:
            owner = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.indptr))
            mask = g.indices < owner
            np.minimum.at(lp, owner[mask], g.indices[mask].astype(np.int64))
        lp[lp == n] = -1
        has = lp >= 0
        self._prev[has] = lp[has]
        return lp

    def reset(self) -> None:
        """Rewind the scan bounds (for reuse of the strategy across runs)."""
        self._prev.fill(-1)


def make_strategy(graph: CSRGraph, variant: str):
    """Factory: ``"optimized"`` or ``"unoptimized"`` parent strategy."""
    if variant == "optimized":
        return SortedParentStrategy(graph)
    if variant == "unoptimized":
        return UnsortedParentStrategy(graph)
    raise ConfigError(f"unknown variant {variant!r}; expected 'optimized' or 'unoptimized'")
