"""Slice-body wrappers over the compiled kernels.

These have the exact ``(tid, arrays)`` signature of
:func:`repro.core.runtime.rounds.run_sync_slice` /
:func:`~repro.core.runtime.rounds.run_async_slice`, so the
:class:`~repro.core.runtime.executors.NativeThreadTeamExecutor` swaps
them in without the driver noticing.  Each call hands the C function raw
pointers into the canonical schema arrays — the same buffers whether
they are :class:`~repro.core.runtime.state.LocalState` NumPy arrays or
:class:`~repro.core.runtime.state.SharedSegmentState` shared-memory
views — and cffi releases the GIL for the duration of the C call, which
is what lets a thread team run slices genuinely in parallel.

Equivalence to the NumPy bodies (the determinism contract):

* **sync** — membership of ``e`` in the snapshot prefix of ``C[v]`` via
  binary search over ``arena[offsets[v] : offsets[v]+snapshot[v]]`` is
  exactly the ``searchsorted`` probe of the global key array restricted
  to block ``v`` (``key(v, e) = v*n + e`` only matches within the
  block), so the ok mask, appends and parent advances are identical
  element-for-element — the C path just never materialises the key
  array (the driver skips building it, see ``needs_keys``).
* **async** — the per-*pair* acquire-load of the parent's prefix length
  replaces the NumPy per-*slice* freeze; both are admissible schedules
  of the same nondeterministic algorithm (a published prefix is
  immutable and ``C[w]`` is slice-owned), and every output is certified
  by ``verify_extraction`` + the driver's claim accounting.
"""

from __future__ import annotations

import numpy as np

from repro.core.native.build import resolve
from repro.core.runtime.layout import (
    EDGE_ACCEPTED,
    EDGE_REJECTED,
    EDGE_UNDECIDED,
)
from repro.errors import ReproError

__all__ = [
    "NativeUnavailableError",
    "native_round_body",
    "native_run_sync_slice",
    "native_run_async_slice",
]

_I64 = np.dtype(np.int64)
_U8 = np.dtype(np.uint8)

#: Schema arrays handed to the C bodies, in cast order.
_INT_ARRAYS = (
    "active",
    "parents",
    "arena",
    "offsets",
    "snapshot",
    "counts",
    "indptr",
    "indices",
    "lower",
    "cursor",
    "lp",
    "edge_state",
)


class NativeUnavailableError(ReproError):
    """The compiled backend was required but could not be resolved."""


def _module():
    status, module = resolve()
    if module is None:
        raise NativeUnavailableError(
            f"native kernel backend unavailable: {status.detail}"
        )
    return module


#: id(arrays-dict) -> (strong refs to every array handed to C, pointer
#: dict).  A hit requires each schema entry to be the *same ndarray
#: object* as the cached one; the held references keep those objects
#: alive, so id() reuse after GC is impossible and a remapped segment
#: (fresh view objects) misses and rebuilds.  An ndarray's buffer cannot
#: move while referenced (in-place resize refuses when references
#: exist), so object identity implies pointer validity — and the
#: identity probe is far cheaper than re-deriving thirteen addresses.
_ptr_cache: dict[int, tuple[dict[str, np.ndarray], dict[str, object]]] = {}

_ALL_ARRAYS = _INT_ARRAYS + ("ok",)


def _pointers(ffi, a: dict[str, np.ndarray]) -> dict[str, object]:
    key = id(a)
    hit = _ptr_cache.get(key)
    if hit is not None:
        cached, ptrs = hit
        if all(a[name] is cached[name] for name in _ALL_ARRAYS):
            return ptrs
    ptrs = {}
    for name in _INT_ARRAYS:
        arr = a[name]
        if arr.dtype != _I64 or not arr.flags["C_CONTIGUOUS"]:
            raise TypeError(
                f"native kernels need contiguous int64 schema arrays; "
                f"{name!r} is {arr.dtype}"
            )
        ptrs[name] = ffi.cast("int64_t *", arr.ctypes.data)
    ok = a["ok"]
    if ok.dtype != _U8 or not ok.flags["C_CONTIGUOUS"]:
        raise TypeError(f"native kernels need a contiguous uint8 'ok' array, got {ok.dtype}")
    ptrs["ok"] = ffi.cast("uint8_t *", ok.ctypes.data)
    if len(_ptr_cache) > 64:  # transient LocalStates; keep the cache bounded
        _ptr_cache.clear()
    _ptr_cache[key] = ({name: a[name] for name in _ALL_ARRAYS}, ptrs)
    return ptrs


def native_run_sync_slice(tid: int, a: dict[str, np.ndarray]) -> None:
    """Compiled :func:`~repro.core.runtime.rounds.run_sync_slice`."""
    module = _module()
    cuts = a["cuts"]
    start, stop = int(cuts[tid]), int(cuts[tid + 1])
    if start >= stop:
        return
    p = _pointers(module.ffi, a)
    module.lib.repro_sync_slice(
        start,
        stop,
        p["active"],
        p["parents"],
        p["arena"],
        p["offsets"],
        p["snapshot"],
        p["counts"],
        p["indptr"],
        p["indices"],
        p["lower"],
        p["cursor"],
        p["lp"],
        p["ok"],
    )


def native_run_async_slice(tid: int, a: dict[str, np.ndarray]) -> None:
    """Compiled :func:`~repro.core.runtime.rounds.run_async_slice`."""
    module = _module()
    if not a["edge_state"].size:
        raise ReproError(
            "asynchronous live rounds need edge-claim words; build the state "
            "with LocalState(graph, edge_claims=True) (or a SharedSegmentState)"
        )
    cuts = a["cuts"]
    start, stop = int(cuts[tid]), int(cuts[tid + 1])
    if start >= stop:
        return
    p = _pointers(module.ffi, a)
    module.lib.repro_async_slice(
        start,
        stop,
        p["active"],
        p["parents"],
        p["arena"],
        p["offsets"],
        p["counts"],
        p["indptr"],
        p["indices"],
        p["lower"],
        p["cursor"],
        p["lp"],
        p["edge_state"],
        EDGE_UNDECIDED,
        EDGE_ACCEPTED,
        EDGE_REJECTED,
        p["ok"],
    )


def native_round_body(schedule: str):
    """The compiled slice function for ``schedule`` (mirror of
    :func:`repro.core.runtime.rounds.round_body`)."""
    return (
        native_run_async_slice if schedule == "asynchronous" else native_run_sync_slice
    )
