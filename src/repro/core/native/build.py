"""Build-and-cache machinery for the compiled round bodies.

The C translation of :mod:`repro.core.runtime.rounds` lives here as a
source string and is compiled **once** per (source, interpreter) digest
via cffi's out-of-line API mode into a cached ``.so`` under
``~/.cache/repro-native`` (override with :data:`CACHE_ENV`).  Later
imports just ``dlopen`` the cached artifact — no compiler needed after
the first build, and CI caches the directory between steps.

Resolution never raises: :func:`resolve` returns a
:class:`NativeStatus` whose ``detail`` names exactly *why* the backend
is unavailable — the three distinct failure modes callers report are

* ``cffi is not installed`` — the optional build dependency is absent;
* ``no C compiler found`` — nothing to build with (the tier-1 fallback
  path on toolchain-less hosts);
* ``build failed: ...`` — a toolchain exists but compilation broke.

plus the explicit opt-out ``REPRO_NATIVE=0`` (how the test suite forces
the fallback branch on a host that *does* have a compiler).

Why C at all: the round bodies are memory-bound pointer-chasing loops
(per-pair binary searches over sorted arena runs), the shape where a
compiled inner loop beats further NumPy batching.  The C functions take
raw pointers into the *same* canonical schema arrays
(:mod:`repro.core.runtime.layout`) — LocalState NumPy buffers and
SharedSegmentState views alike, zero copies — and cffi releases the GIL
around every call, so a thread team running them is genuinely parallel.
"""

from __future__ import annotations

import hashlib
import importlib.util
import io
import os
import shutil
import sys
from contextlib import redirect_stderr, redirect_stdout
from dataclasses import dataclass
from pathlib import Path

__all__ = ["NativeStatus", "resolve", "DISABLE_ENV", "CACHE_ENV"]

#: Set to 0/off/no/false to force the NumPy fallback (tested branch).
DISABLE_ENV = "REPRO_NATIVE"

#: Overrides the compiled-artifact cache directory.
CACHE_ENV = "REPRO_NATIVE_CACHE"

#: Declarations cffi exposes as ``lib.*`` (no compiler extensions here;
#: the atomics stay inside :data:`SOURCE`).
CDEF = """
void repro_sync_slice(
    int64_t start, int64_t stop,
    const int64_t *active, const int64_t *parents,
    int64_t *arena, const int64_t *offsets,
    const int64_t *snapshot, int64_t *counts,
    const int64_t *indptr, const int64_t *indices, const int64_t *lower,
    int64_t *cursor, int64_t *lp, uint8_t *ok);
void repro_async_slice(
    int64_t start, int64_t stop,
    const int64_t *active, const int64_t *parents,
    int64_t *arena, const int64_t *offsets,
    int64_t *counts,
    const int64_t *indptr, const int64_t *indices, const int64_t *lower,
    int64_t *cursor, int64_t *lp,
    int64_t *edge_state,
    int64_t undecided, int64_t accepted, int64_t rejected,
    uint8_t *ok);
"""

#: The C translation of rounds.run_sync_slice / run_async_slice.  Kept
#: semantically line-for-line with the NumPy kernels so the synchronous
#: output is bit-identical (same ok mask, same appends, same advances);
#: see repro/core/native/bodies.py for the equivalence argument.
SOURCE = r"""
#include <stdint.h>

/* 1 iff every element of child[0:cw] occurs in parent[0:cv].  Both runs
   are sorted ascending (the ordered-chordal-set invariant), so each
   element is one binary search -- and because child is sorted too, each
   search resumes past the previous hit.  Membership here is exactly the
   searchsorted key probe of kernels.subset_mask restricted to block v
   (key(v,e) = v*n + e only collides inside v's block). */
static int repro_is_subset(const int64_t *child, int64_t cw,
                           const int64_t *parent, int64_t cv)
{
    int64_t lo = 0;
    for (int64_t i = 0; i < cw; i++) {
        int64_t x = child[i];
        int64_t hi = cv;
        while (lo < hi) {
            int64_t mid = lo + ((hi - lo) >> 1);
            if (parent[mid] < x) lo = mid + 1; else hi = mid;
        }
        if (lo >= cv || parent[lo] != x) return 0;
        lo++;
    }
    return 1;
}

/* One slice of one synchronous superstep: subset test against the
   barrier snapshot, append on accept, advance to the next parent.
   Active targets are distinct within a round, so no word is written by
   two slices and no atomics are needed (unique-writer discipline). */
void repro_sync_slice(
    int64_t start, int64_t stop,
    const int64_t *active, const int64_t *parents,
    int64_t *arena, const int64_t *offsets,
    const int64_t *snapshot, int64_t *counts,
    const int64_t *indptr, const int64_t *indices, const int64_t *lower,
    int64_t *cursor, int64_t *lp, uint8_t *ok)
{
    for (int64_t i = start; i < stop; i++) {
        int64_t w = active[i];
        int64_t v = parents[i];
        int64_t cw = snapshot[w];
        int acc = (cw <= snapshot[v]);
        if (acc && cw > 0)
            acc = repro_is_subset(arena + offsets[w], cw,
                                  arena + offsets[v], snapshot[v]);
        ok[i] = (uint8_t)acc;
        if (acc) {
            arena[offsets[w] + counts[w]] = v;
            counts[w] += 1;
        }
        int64_t c = cursor[w] + 1;
        cursor[w] = c;
        lp[w] = (c < lower[w]) ? indices[indptr[w] + c] : -1;
    }
}

/* One slice of one asynchronous live round.  No snapshot: the parent's
   prefix length is acquire-loaded at probe time, pairing with the
   release store after the arena append below, so a gathered length k
   always covers k fully written sorted elements (the append-before-
   count-bump publication order of kernels.append_accepted, upgraded
   from TSO-argument to real fences).  Reading a fresher prefix than the
   NumPy per-slice freeze is still an admissible schedule of the same
   nondeterministic algorithm: the prefix is immutable once published
   and C[w] is owned by this slice.  Each arc is claimed exactly once
   through a real compare-and-swap on its edge-state word (the hardware
   counterpart of parallel.atomics.bulk_compare_and_set). */
void repro_async_slice(
    int64_t start, int64_t stop,
    const int64_t *active, const int64_t *parents,
    int64_t *arena, const int64_t *offsets,
    int64_t *counts,
    const int64_t *indptr, const int64_t *indices, const int64_t *lower,
    int64_t *cursor, int64_t *lp,
    int64_t *edge_state,
    int64_t undecided, int64_t accepted, int64_t rejected,
    uint8_t *ok)
{
    for (int64_t i = start; i < stop; i++) {
        int64_t w = active[i];
        int64_t v = parents[i];
        int64_t cw = counts[w];  /* owned by this slice: plain load */
        int64_t kv = __atomic_load_n(&counts[v], __ATOMIC_ACQUIRE);
        int acc = (cw <= kv);
        if (acc && cw > 0)
            acc = repro_is_subset(arena + offsets[w], cw,
                                  arena + offsets[v], kv);
        int64_t arc = offsets[w] + cursor[w];
        int64_t expect = undecided;
        int won = __atomic_compare_exchange_n(
            &edge_state[arc], &expect, acc ? accepted : rejected,
            0, __ATOMIC_ACQ_REL, __ATOMIC_ACQUIRE);
        acc = acc && won;
        ok[i] = (uint8_t)acc;
        if (acc) {
            arena[offsets[w] + cw] = v;
            __atomic_store_n(&counts[w], cw + 1, __ATOMIC_RELEASE);
        }
        int64_t c = cursor[w] + 1;
        cursor[w] = c;
        lp[w] = (c < lower[w]) ? indices[indptr[w] + c] : -1;
    }
}
"""


@dataclass(frozen=True)
class NativeStatus:
    """Outcome of one backend resolution attempt.

    ``detail`` is human-readable and *specific*: which cached artifact
    was loaded, or exactly why the backend is unavailable (no cffi / no
    compiler / build failure / explicit disable) — the test suite's
    ``native`` marker reports it verbatim as the skip reason.
    """

    available: bool
    detail: str


def _digest() -> str:
    """Content hash keying the cached artifact: C source + interpreter."""
    h = hashlib.sha256()
    h.update(CDEF.encode())
    h.update(SOURCE.encode())
    h.update(sys.implementation.cache_tag.encode())
    return h.hexdigest()[:16]


def _module_name() -> str:
    return f"_repro_native_{_digest()}"


def _cache_dir() -> Path:
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-native"


def _find_cached(cache: Path, name: str) -> Path | None:
    if not cache.is_dir():
        return None
    hits = sorted(cache.glob(f"{name}*.so"))
    return hits[-1] if hits else None


def _find_compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _build(cache: Path, name: str) -> Path:
    """Compile the extension into ``cache`` and return the .so path.

    Builds in a per-pid scratch directory and publishes with an atomic
    rename, so concurrent first-builds (parallel test sessions) cannot
    observe each other's half-written artifacts.
    """
    import cffi

    cache.mkdir(parents=True, exist_ok=True)
    scratch = cache / f"build-{os.getpid()}"
    ffi = cffi.FFI()
    ffi.cdef(CDEF)
    ffi.set_source(name, SOURCE, extra_compile_args=["-O3"])
    noise = io.StringIO()  # distutils chatter; surfaced only on failure
    try:
        with redirect_stdout(noise), redirect_stderr(noise):
            built = Path(ffi.compile(tmpdir=str(scratch)))
        final = cache / built.name
        os.replace(built, final)
    except Exception as exc:
        tail = noise.getvalue().strip().splitlines()[-3:]
        suffix = f" [{' | '.join(tail)}]" if tail else ""
        raise RuntimeError(f"{exc}{suffix}") from exc
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return final


def _load(so_path: Path, name: str):
    spec = importlib.util.spec_from_file_location(name, so_path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


#: Memoised resolution: (status, extension module | None).
_resolved: tuple[NativeStatus, object | None] | None = None


def resolve(force: bool = False) -> tuple[NativeStatus, object | None]:
    """Resolve the native backend, building the extension if needed.

    Memoised after the first call (``force=True`` re-resolves, e.g.
    after the test suite flips :data:`DISABLE_ENV`).  Never raises: an
    unavailable backend is a ``NativeStatus(False, reason)``.
    """
    global _resolved
    if _resolved is None or force:
        _resolved = _resolve()
    return _resolved


def _resolve() -> tuple[NativeStatus, object | None]:
    flag = os.environ.get(DISABLE_ENV, "").strip().lower()
    if flag in ("0", "off", "no", "false"):
        return NativeStatus(False, f"disabled via {DISABLE_ENV}={flag}"), None
    try:
        import cffi  # noqa: F401 - probe for the optional build dep
    except ImportError:
        return NativeStatus(False, "cffi is not installed (pip install cffi)"), None
    name = _module_name()
    cache = _cache_dir()
    so_path = _find_cached(cache, name)
    built = False
    if so_path is None:
        compiler = _find_compiler()
        if compiler is None:
            return (
                NativeStatus(
                    False, "no C compiler found (looked for $CC, cc, gcc, clang)"
                ),
                None,
            )
        try:
            so_path = _build(cache, name)
        except Exception as exc:
            return NativeStatus(False, f"build failed: {exc}"), None
        built = True
    try:
        module = _load(so_path, name)
    except Exception as exc:
        return (
            NativeStatus(
                False,
                f"loading the cached extension failed: {exc} "
                f"(delete {so_path} to force a rebuild)",
            ),
            None,
        )
    verb = "built" if built else "cached"
    return NativeStatus(True, f"{verb} {so_path.name}"), module
