"""Native (compiled, nogil) kernel backend for the unified runtime.

The paper's headline claim is multithreaded scaling on shared memory;
CPython's GIL forced this reproduction's true-parallel path through
worker *processes* (fork + shared segment + barrier protocol).  This
package closes that gap: the round bodies of
:mod:`repro.core.runtime.rounds` translated to C, compiled once via cffi
into a cached ``.so`` (:mod:`~repro.core.native.build`), and exposed as
drop-in slice functions (:mod:`~repro.core.native.bodies`) that operate
on the canonical schema arrays in place and release the GIL — so the
``native`` engine (:mod:`repro.core.engines`) runs a plain thread team
genuinely in parallel: no segment remap protocol, no barrier agent, no
worker reaping.

Everything degrades cleanly: when no toolchain (or no cffi) is present,
:func:`native_available` is ``False`` with a specific reason in
:func:`native_status`, and the ``native`` engine transparently runs the
NumPy round bodies instead — same results, GIL-bound speed.  Tier-1
passes either way.
"""

from repro.core.native.bodies import (
    NativeUnavailableError,
    native_round_body,
    native_run_async_slice,
    native_run_sync_slice,
)
from repro.core.native.build import CACHE_ENV, DISABLE_ENV, NativeStatus, resolve

__all__ = [
    "CACHE_ENV",
    "DISABLE_ENV",
    "NativeStatus",
    "NativeUnavailableError",
    "native_available",
    "native_status",
    "native_round_body",
    "native_run_sync_slice",
    "native_run_async_slice",
]


def native_status(force: bool = False) -> NativeStatus:
    """Availability + human-readable detail (builds on first call).

    ``detail`` distinguishes the failure modes callers report: missing
    cffi, no C compiler, a failed build, or an explicit
    ``REPRO_NATIVE=0`` opt-out.  Pass ``force=True`` to re-resolve after
    changing the environment.
    """
    return resolve(force)[0]


def native_available() -> bool:
    """Whether the compiled backend is loaded (builds on first call)."""
    return resolve()[0].available
