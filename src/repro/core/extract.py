"""Public entry points: :func:`extract_maximal_chordal_subgraph` and the
batch pipeline :func:`extract_many`.

The single-graph entry point dispatches between the reference,
serial-superstep, threaded and process-parallel engines, optionally
BFS-renumbers the input first (the paper's recipe for guaranteeing a
connected — hence provably maximal — chordal subgraph on connected
inputs), optionally stitches disconnected output components, and returns a
:class:`ChordalResult` bundling the edge set with run metadata.

:func:`extract_many` runs a sequence of graphs through the same knobs,
amortising the expensive part of the ``process`` engine — worker spawn and
shared-segment setup — across the whole batch by holding one rebindable
:class:`~repro.core.procpool.ProcessPool` (see ``benchmarks/BENCH_batch
.json`` for the measured batch-vs-per-call throughput gap).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.core.connect import stitch_components
from repro.core.instrument import CostModelParams, WorkTrace
from repro.core.maximalize import maximalize_chordal_edges
from repro.core.procpool import ProcessPool, process_max_chordal
from repro.core.reference import reference_max_chordal
from repro.core.superstep import superstep_max_chordal
from repro.core.threaded import threaded_max_chordal
from repro.graph.bfs import bfs_renumber
from repro.graph.csr import CSRGraph
from repro.graph.ops import edge_subgraph

__all__ = [
    "ChordalResult",
    "extract_maximal_chordal_subgraph",
    "extract_many",
    "VARIANTS",
    "ENGINES",
    "SCHEDULES",
]

#: Parent-advance variants (the paper's Opt / Unopt pair).
VARIANTS = ("optimized", "unoptimized")

#: Execution engines.
ENGINES = ("superstep", "threaded", "process", "reference")

#: Intra-iteration schedules (see repro.core.reference docs).
SCHEDULES = ("asynchronous", "synchronous")


@dataclass
class ChordalResult:
    """Result of one maximal-chordal-subgraph extraction.

    Attributes
    ----------
    edges:
        Chordal edge set ``EC`` as an ``(k, 2)`` array, canonicalised to
        ``u < v`` rows in lexicographic order (engine-independent).
    queue_sizes:
        ``|Q1|`` per iteration — the paper's parallelism profile (Fig 7).
    num_iterations:
        Number of supersteps executed.
    variant / engine:
        How the extraction was run.
    trace:
        Work trace for the machine models (``None`` unless requested).
    graph:
        The input graph the edges refer to (original ids, even when
        BFS renumbering was applied internally).
    """

    edges: np.ndarray
    queue_sizes: list[int]
    variant: str
    engine: str
    graph: CSRGraph
    schedule: str = "asynchronous"
    trace: WorkTrace | None = None
    renumbered: bool = False
    stitched_bridges: int = 0
    maximality_gap: int = 0
    _subgraph: CSRGraph | None = field(default=None, repr=False)

    @property
    def num_iterations(self) -> int:
        return len(self.queue_sizes)

    @property
    def num_chordal_edges(self) -> int:
        return int(self.edges.shape[0])

    @property
    def chordal_fraction(self) -> float:
        """|EC| / |E| — the statistic the paper reports in Section V."""
        m = self.graph.num_edges
        return self.num_chordal_edges / m if m else 1.0

    @property
    def subgraph(self) -> CSRGraph:
        """The chordal subgraph ``G' = (V, EC)`` (built lazily, cached)."""
        if self._subgraph is None:
            self._subgraph = edge_subgraph(self.graph, self.edges)
        return self._subgraph


def _canonical_edges(edges: np.ndarray) -> np.ndarray:
    """Normalise rows to (min, max) and sort lexicographically."""
    e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if e.size == 0:
        return e
    lo = np.minimum(e[:, 0], e[:, 1])
    hi = np.maximum(e[:, 0], e[:, 1])
    order = np.lexsort((hi, lo))
    return np.column_stack((lo[order], hi[order]))


def extract_maximal_chordal_subgraph(
    graph: CSRGraph,
    *,
    engine: str = "superstep",
    variant: str = "optimized",
    schedule: str = "asynchronous",
    num_threads: int = 4,
    num_workers: int = 4,
    renumber: str | None = None,
    stitch: bool = False,
    maximalize: bool = False,
    collect_trace: bool = False,
    cost_params: CostModelParams | None = None,
    max_iterations: int | None = None,
    pool: ProcessPool | None = None,
) -> ChordalResult:
    """Extract a maximal chordal subgraph with Algorithm 1.

    Parameters
    ----------
    graph:
        Input graph (any :class:`~repro.graph.csr.CSRGraph`).
    engine:
        ``"superstep"`` (serial array engine, default), ``"threaded"``
        (real thread team; GIL-bound), ``"process"`` (worker-process team
        over shared memory — the only engine with real core-level
        speedup; both schedules) or ``"reference"`` (literal
        pseudocode).
    variant:
        ``"optimized"`` (sorted adjacency) or ``"unoptimized"``.
    schedule:
        ``"asynchronous"`` (default) serialises each iteration as an
        ascending live sweep — the paper-matching execution whose
        iteration counts reproduce Figure 7 (~3 iterations on R-MAT, ~10
        on the gene networks).  ``"synchronous"`` uses barrier-snapshot
        semantics (one parent per vertex per superstep) — deterministic
        across engines and thread/worker counts, with iteration count
        equal to the maximum lower-degree; under it the ``process``
        engine returns edge sets bit-identical to ``engine="superstep"``.
        Under ``"asynchronous"`` the ``process`` engine runs the paper's
        live-state sweep true-parallel: any run yields a valid chordal
        edge set (certify with
        :func:`repro.chordality.verify_extraction`), but the edge set is
        not bit-reproducible across runs or worker counts.
    num_threads:
        Thread-team size for the threaded engine.
    num_workers:
        Worker-process count for the process engine.
    renumber:
        ``"bfs"`` renumbers vertices in BFS order before extraction and
        maps the edge set back — on connected inputs this guarantees the
        output is connected and therefore maximal (Theorem 2 + corollary).
        ``None`` (default) runs on the ids as given, like the paper's
        experiments.
    stitch:
        Join disconnected output components with single bridges (paper's
        component-combination corollary).
    maximalize:
        Run the serial completion pass that re-offers every rejected edge,
        guaranteeing a *certified* maximal result.  Needed because the
        paper's Theorem 2 overclaims — Algorithm 1 alone can leave a few
        addable edges behind (see ``repro.core.maximalize``).  The number
        of edges the pass added is reported as ``result.maximality_gap``.
    collect_trace:
        Capture the work trace for the machine models (superstep engine
        only).
    cost_params / max_iterations:
        Forwarded to the engine.
    pool:
        An open :class:`~repro.core.procpool.ProcessPool` to run on
        (``engine="process"`` only).  The pool is rebound to this graph
        and left open, so repeated calls share one worker team instead of
        spawning one per call — :func:`extract_many` manages this
        automatically.

    Returns
    -------
    :class:`ChordalResult`
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
    if schedule not in SCHEDULES:
        raise ValueError(f"unknown schedule {schedule!r}; expected one of {SCHEDULES}")
    if renumber not in (None, "bfs"):
        raise ValueError(f"renumber must be None or 'bfs', got {renumber!r}")
    if collect_trace and engine != "superstep":
        raise ValueError("collect_trace requires engine='superstep'")
    if pool is not None and engine != "process":
        raise ValueError("pool= is only meaningful with engine='process'")

    work_graph = graph
    old_of_new: np.ndarray | None = None
    if renumber == "bfs":
        work_graph, new_of_old = bfs_renumber(graph)
        old_of_new = np.empty_like(new_of_old)
        old_of_new[new_of_old] = np.arange(new_of_old.size)

    trace: WorkTrace | None = None
    if engine == "superstep":
        edges, queue_sizes, trace = superstep_max_chordal(
            work_graph,
            variant=variant,
            schedule=schedule,
            collect_trace=collect_trace,
            cost_params=cost_params,
            max_iterations=max_iterations,
        )
    elif engine == "threaded":
        edges, queue_sizes = threaded_max_chordal(
            work_graph,
            num_threads=num_threads,
            variant=variant,
            schedule=schedule,
            max_iterations=max_iterations,
        )
    elif engine == "process":
        if pool is not None:
            edges, queue_sizes = pool.extract(
                work_graph, schedule=schedule, max_iterations=max_iterations
            )
        else:
            edges, queue_sizes = process_max_chordal(
                work_graph,
                num_workers=num_workers,
                variant=variant,
                schedule=schedule,
                max_iterations=max_iterations,
            )
    else:
        # The reference engine has no Opt/Unopt cost asymmetry; the two
        # variants differ only in cost, so the edge set is identical.
        edges, queue_sizes = reference_max_chordal(
            work_graph, schedule=schedule, max_iterations=max_iterations
        )

    if old_of_new is not None and edges.size:
        edges = np.column_stack((old_of_new[edges[:, 0]], old_of_new[edges[:, 1]]))

    stitched = 0
    if stitch:
        before = edges.shape[0]
        edges = stitch_components(graph, edges)
        stitched = edges.shape[0] - before

    gap = 0
    if maximalize:
        edges, gap = maximalize_chordal_edges(graph, edges)

    return ChordalResult(
        edges=_canonical_edges(edges),
        queue_sizes=queue_sizes,
        variant=variant,
        engine=engine,
        graph=graph,
        schedule=schedule,
        trace=trace,
        renumbered=renumber == "bfs",
        stitched_bridges=stitched,
        maximality_gap=gap,
    )


def extract_many(
    graphs: Iterable[CSRGraph],
    *,
    engine: str = "superstep",
    variant: str = "optimized",
    schedule: str | None = None,
    num_threads: int = 4,
    num_workers: int = 4,
    renumber: str | None = None,
    stitch: bool = False,
    maximalize: bool = False,
    max_iterations: int | None = None,
    pool: ProcessPool | None = None,
) -> list[ChordalResult]:
    """Extract maximal chordal subgraphs from a batch of graphs.

    Semantically equivalent to calling
    :func:`extract_maximal_chordal_subgraph` once per graph with the same
    keyword arguments — every result is bit-identical to its single-call
    counterpart — but with the per-call setup amortised: for
    ``engine="process"`` one persistent
    :class:`~repro.core.procpool.ProcessPool` (worker team + shared-memory
    arena) is spawned up front, rebound to each graph in turn, and torn
    down once at the end.  ``benchmarks/record_batch_baseline.py`` records
    the resulting throughput gap as ``BENCH_batch.json``.

    Parameters
    ----------
    graphs:
        Any iterable of :class:`~repro.graph.csr.CSRGraph` (consumed
        lazily, but all results are materialised into the returned list).
    schedule:
        ``None`` (default) picks the engine's natural batch schedule:
        ``"synchronous"`` for the process engine (deterministic outputs —
        every result stays bit-identical to its single-call counterpart),
        ``"asynchronous"`` otherwise.  Pass ``"asynchronous"`` explicitly
        to run the process engine's live-state sweep over the batch.
    pool:
        An existing open pool to reuse (``engine="process"`` only); the
        caller keeps ownership and must close it.  With ``pool=None`` a
        temporary pool is created and closed internally.
    engine / variant / num_threads / num_workers / renumber / stitch /
    maximalize / max_iterations:
        As in :func:`extract_maximal_chordal_subgraph`, applied to every
        graph.

    Returns
    -------
    list of :class:`ChordalResult`, in input order.
    """
    if pool is not None and engine != "process":
        raise ValueError("pool= is only meaningful with engine='process'")
    if schedule is None:
        schedule = "synchronous" if engine == "process" else "asynchronous"
    own_pool = engine == "process" and pool is None
    if own_pool:
        pool = ProcessPool(num_workers=num_workers)
    try:
        return [
            extract_maximal_chordal_subgraph(
                g,
                engine=engine,
                variant=variant,
                schedule=schedule,
                num_threads=num_threads,
                num_workers=num_workers,
                renumber=renumber,
                stitch=stitch,
                maximalize=maximalize,
                max_iterations=max_iterations,
                pool=pool if engine == "process" else None,
            )
            for g in graphs
        ]
    finally:
        if own_pool:
            pool.close()
