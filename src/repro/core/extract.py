"""Legacy keyword entry points, now thin shims over the session API.

The primary API lives one layer down and is what new code should use:

* :class:`repro.core.config.ExtractionConfig` — every knob, captured and
  validated once against the engine registry;
* :class:`repro.core.session.Extractor` — the session object owning the
  execution resources (one :class:`~repro.core.procpool.ProcessPool`
  spawn for any number of extractions), with ``.extract()``,
  ``.extract_many()`` and the lazy ``.stream()`` generator;
* :mod:`repro.core.engines` — the registry third-party engines plug into
  (:func:`~repro.core.engines.register_engine`).

:func:`extract_maximal_chordal_subgraph` and :func:`extract_many` keep
the original keyword signatures by constructing a one-call session, so
their outputs are bit-identical to driving :class:`Extractor` directly;
``ENGINES`` / ``SCHEDULES`` are live views derived from the registry.
Argument errors raise :class:`~repro.errors.ConfigError`, a subclass of
the ``ValueError`` these functions historically raised.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.config import VARIANTS, ExtractionConfig
from repro.core.engines import RegistryView, engine_names, schedule_names
from repro.core.instrument import CostModelParams
from repro.core.procpool import ProcessPool
from repro.core.session import ChordalResult, Extractor
from repro.graph.csr import CSRGraph

__all__ = [
    "ChordalResult",
    "extract_maximal_chordal_subgraph",
    "extract_many",
    "VARIANTS",
    "ENGINES",
    "SCHEDULES",
]

#: Execution engines — live view over the registry
#: (:func:`repro.core.engines.register_engine` extends it).
ENGINES = RegistryView(engine_names)

#: Intra-iteration schedules — live view over the registry.
SCHEDULES = RegistryView(schedule_names)


def extract_maximal_chordal_subgraph(
    graph: CSRGraph,
    *,
    engine: str = "superstep",
    variant: str = "optimized",
    schedule: str | None = "asynchronous",
    num_threads: int = 4,
    num_workers: int | None = None,
    renumber: str | None = None,
    stitch: bool = False,
    maximalize: bool = False,
    collect_trace: bool = False,
    cost_params: CostModelParams | None = None,
    max_iterations: int | None = None,
    pool: ProcessPool | None = None,
) -> ChordalResult:
    """Extract a maximal chordal subgraph with Algorithm 1.

    Equivalent to ``Extractor(ExtractionConfig(...), pool=pool)
    .extract(graph)`` with a session per call; hold an
    :class:`~repro.core.session.Extractor` instead when extracting more
    than one graph with the process engine (one worker-team spawn for
    the whole session).

    Parameters
    ----------
    graph:
        Input graph (any :class:`~repro.graph.csr.CSRGraph`).
    engine:
        ``"superstep"`` (serial array engine, default), ``"threaded"``
        (real thread team; GIL-bound), ``"process"`` (worker-process team
        over shared memory — the only engine with real core-level
        speedup; both schedules) or ``"reference"`` (literal
        pseudocode).  Any engine added via
        :func:`repro.core.engines.register_engine` is accepted too.
    variant:
        ``"optimized"`` (sorted adjacency) or ``"unoptimized"``.
    schedule:
        ``"asynchronous"`` (default) serialises each iteration as an
        ascending live sweep — the paper-matching execution whose
        iteration counts reproduce Figure 7 (~3 iterations on R-MAT, ~10
        on the gene networks).  ``"synchronous"`` uses barrier-snapshot
        semantics (one parent per vertex per superstep) — deterministic
        across engines and thread/worker counts, with iteration count
        equal to the maximum lower-degree; under it the ``process``
        engine returns edge sets bit-identical to ``engine="superstep"``.
        Under ``"asynchronous"`` the ``process`` engine runs the paper's
        live-state sweep true-parallel: any run yields a valid chordal
        edge set (certify with
        :func:`repro.chordality.verify_extraction`), but the edge set is
        not bit-reproducible across runs or worker counts.  ``None`` is
        also accepted and resolves to the engine's *registered* default
        schedule — ``synchronous`` for ``process``, ``asynchronous``
        otherwise, exactly like :func:`extract_many` and
        ``ExtractionConfig(schedule=None)``; note this differs from this
        function's own keyword default for the process engine
        (historically ``None`` was rejected here).
    num_threads:
        Thread-team size for the threaded engine.
    num_workers:
        Worker-process count for the process engine (default 4 —
        explicitly ``None`` means "the pool's size" when ``pool=`` is
        given; an explicit count conflicting with the pool raises
        :class:`~repro.errors.ConfigError`).
    renumber:
        ``"bfs"`` renumbers vertices in BFS order before extraction and
        maps the edge set back — on connected inputs this guarantees the
        output is connected and therefore maximal (Theorem 2 + corollary).
        ``None`` (default) runs on the ids as given, like the paper's
        experiments.
    stitch:
        Join disconnected output components with single bridges (paper's
        component-combination corollary).
    maximalize:
        Run the serial completion pass that re-offers every rejected edge,
        guaranteeing a *certified* maximal result.  Needed because the
        paper's Theorem 2 overclaims — Algorithm 1 alone can leave a few
        addable edges behind (see ``repro.core.maximalize``).  The number
        of edges the pass added is reported as ``result.maximality_gap``.
    collect_trace:
        Capture the work trace for the machine models (``supports_trace``
        engines only — of the built-ins, ``superstep`` and ``threaded``;
        their synchronous traces are identical, the trace being a
        property of the schedule).
    cost_params / max_iterations:
        Forwarded to the engine.
    pool:
        An open :class:`~repro.core.procpool.ProcessPool` to run on
        (pool-capable engines only).  The pool is rebound to this graph
        and left open, so repeated calls share one worker team instead of
        spawning one per call — :class:`~repro.core.session.Extractor`
        and :func:`extract_many` manage this automatically.

    Returns
    -------
    :class:`ChordalResult`
    """
    config = ExtractionConfig(
        engine=engine,
        variant=variant,
        schedule=schedule,
        num_threads=num_threads,
        num_workers=num_workers,
        renumber=renumber,
        stitch=stitch,
        maximalize=maximalize,
        collect_trace=collect_trace,
        cost_params=cost_params,
        max_iterations=max_iterations,
    )
    with Extractor(config, pool=pool) as extractor:
        return extractor.extract(graph)


def extract_many(
    graphs: Iterable[CSRGraph],
    *,
    engine: str = "superstep",
    variant: str = "optimized",
    schedule: str | None = None,
    num_threads: int = 4,
    num_workers: int | None = None,
    renumber: str | None = None,
    stitch: bool = False,
    maximalize: bool = False,
    max_iterations: int | None = None,
    pool: ProcessPool | None = None,
) -> list[ChordalResult]:
    """Extract maximal chordal subgraphs from a batch of graphs.

    Equivalent to ``Extractor(ExtractionConfig(...), pool=pool)
    .extract_many(graphs)`` — every result is bit-identical to its
    single-call counterpart — with the per-call setup amortised: for
    ``engine="process"`` one persistent
    :class:`~repro.core.procpool.ProcessPool` (worker team + shared-memory
    arena) is spawned up front, rebound to each graph in turn, and torn
    down once at the end.  ``benchmarks/record_batch_baseline.py`` records
    the resulting throughput gap as ``BENCH_batch.json``.  For lazy
    results (no materialised list), use
    :meth:`~repro.core.session.Extractor.stream`.

    Parameters
    ----------
    graphs:
        Any iterable of :class:`~repro.graph.csr.CSRGraph` (consumed
        lazily, but all results are materialised into the returned list).
    schedule:
        ``None`` (default) picks the engine's registered
        ``default_schedule``: ``"synchronous"`` for the process engine
        (deterministic outputs — every result stays bit-identical to its
        single-call counterpart), ``"asynchronous"`` otherwise.  Pass
        ``"asynchronous"`` explicitly to run the process engine's
        live-state sweep over the batch.
    pool:
        An existing open pool to reuse (pool-capable engines only); the
        caller keeps ownership and must close it.  With ``pool=None`` a
        temporary pool is created and closed internally.
    engine / variant / num_threads / num_workers / renumber / stitch /
    maximalize / max_iterations:
        As in :func:`extract_maximal_chordal_subgraph`, applied to every
        graph.

    Returns
    -------
    list of :class:`ChordalResult`, in input order.
    """
    config = ExtractionConfig(
        engine=engine,
        variant=variant,
        schedule=schedule,
        num_threads=num_threads,
        num_workers=num_workers,
        renumber=renumber,
        stitch=stitch,
        maximalize=maximalize,
        max_iterations=max_iterations,
    )
    with Extractor(config, pool=pool) as extractor:
        return extractor.extract_many(graphs)
