"""The session API: :class:`Extractor` and :class:`ChordalResult`.

An :class:`Extractor` binds one validated
:class:`~repro.core.config.ExtractionConfig` to owned execution resources
— for the process engine, one persistent
:class:`~repro.core.procpool.ProcessPool` spawned lazily on first use and
reused for every subsequent extraction — and exposes the three ways to
run it:

* :meth:`Extractor.extract` — one graph, one :class:`ChordalResult`;
* :meth:`Extractor.extract_many` — a batch, materialised in input order;
* :meth:`Extractor.stream` — a lazy generator yielding each result as it
  finishes, so a million-graph batch never materialises a list (and the
  input iterable itself is consumed one graph at a time).

Use it as a context manager (or call :meth:`Extractor.close`) so the
worker team is torn down deterministically::

    with Extractor(ExtractionConfig(engine="process", num_workers=4)) as ex:
        for result in ex.stream(graphs):          # one pool spawn total
            print(result.num_chordal_edges)

The legacy functions ``extract_maximal_chordal_subgraph`` /
``extract_many`` (:mod:`repro.core.extract`) are thin shims that create a
one-call session, so their outputs are bit-identical to going through
:class:`Extractor` directly.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.config import ExtractionConfig
from repro.core.connect import stitch_components
from repro.core.engines import registered_engines
from repro.core.instrument import WorkTrace
from repro.core.maximalize import maximalize_chordal_edges
from repro.core.procpool import ProcessPool
from repro.errors import ConfigError, SessionClosedError
from repro.graph.bfs import bfs_renumber
from repro.graph.csr import CSRGraph
from repro.graph.ops import edge_subgraph
from repro.graph.weights import attach_edge_weights, edge_weight_mapping
from repro.graph.weights import retained_weight as _edge_set_weight

__all__ = ["ChordalResult", "Extractor"]


@dataclass
class ChordalResult:
    """Result of one maximal-chordal-subgraph extraction.

    Attributes
    ----------
    edges:
        Chordal edge set ``EC`` as an ``(k, 2)`` array, canonicalised to
        ``u < v`` rows in lexicographic order (engine-independent).
    queue_sizes:
        ``|Q1|`` per iteration — the paper's parallelism profile (Fig 7).
    num_iterations:
        Number of supersteps executed.
    variant / engine:
        How the extraction was run.
    trace:
        Work trace for the machine models (``None`` unless requested).
    graph:
        The input graph the edges refer to (original ids, even when
        BFS renumbering was applied internally).
    kernel_path:
        Which round bodies actually ran: ``"native"`` when a
        ``supports_native`` engine resolved the compiled backend,
        ``"numpy"`` otherwise (including the fallback inside a native
        engine on a toolchain-less host).
    """

    edges: np.ndarray
    queue_sizes: list[int]
    variant: str
    engine: str
    graph: CSRGraph
    schedule: str = "asynchronous"
    trace: WorkTrace | None = None
    renumbered: bool = False
    stitched_bridges: int = 0
    maximality_gap: int = 0
    kernel_path: str = "numpy"
    _subgraph: CSRGraph | None = field(default=None, repr=False)

    @property
    def num_iterations(self) -> int:
        return len(self.queue_sizes)

    @property
    def num_chordal_edges(self) -> int:
        return int(self.edges.shape[0])

    @property
    def chordal_fraction(self) -> float:
        """|EC| / |E| — the statistic the paper reports in Section V."""
        m = self.graph.num_edges
        return self.num_chordal_edges / m if m else 1.0

    @property
    def subgraph(self) -> CSRGraph:
        """The chordal subgraph ``G' = (V, EC)`` (built lazily, cached)."""
        if self._subgraph is None:
            self._subgraph = edge_subgraph(self.graph, self.edges)
        return self._subgraph

    @property
    def total_weight(self) -> float:
        """Total edge weight of the *input* graph (edge count when
        unweighted, so weighted and unweighted runs are comparable)."""
        return float(self.graph.total_weight)

    @property
    def retained_weight(self) -> float:
        """Total weight of the retained chordal edge set ``EC``."""
        return _edge_set_weight(self.graph, self.edges)

    @property
    def weight_fraction(self) -> float:
        """``retained_weight / total_weight`` — the weighted analogue of
        :attr:`chordal_fraction` (1.0 on an edgeless / zero-weight graph)."""
        total = self.total_weight
        return self.retained_weight / total if total else 1.0


def _canonical_edges(edges: np.ndarray) -> np.ndarray:
    """Normalise rows to (min, max) and sort lexicographically."""
    e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if e.size == 0:
        return e
    lo = np.minimum(e[:, 0], e[:, 1])
    hi = np.maximum(e[:, 0], e[:, 1])
    order = np.lexsort((hi, lo))
    return np.column_stack((lo[order], hi[order]))


class Extractor:
    """Reusable extraction session: one config, one set of resources.

    Parameters
    ----------
    config:
        The regime to run; ``None`` means ``ExtractionConfig()``.
    pool:
        An open caller-owned :class:`~repro.core.procpool.ProcessPool`
        to run on (pool-capable engines only).  The caller keeps
        ownership: :meth:`close` leaves it open.  Without one, a
        pool-capable engine lazily spawns a pool sized
        ``config.num_workers`` on first use, owned (and closed) by this
        session — N extractions cost one worker-team spawn.
    **overrides:
        Convenience: ``Extractor(engine="process", num_workers=2)`` is
        ``Extractor(ExtractionConfig(engine="process", num_workers=2))``;
        with ``config`` given, overrides are applied on top via
        :meth:`ExtractionConfig.replace`.

    Raises
    ------
    ConfigError
        On any invalid field, a pool with a pool-incapable engine, or a
        ``num_workers`` conflicting with the supplied pool's size — all
        at construction time, before any resource is spawned.
    """

    def __init__(
        self,
        config: ExtractionConfig | None = None,
        *,
        pool: ProcessPool | None = None,
        **overrides: Any,
    ) -> None:
        if config is None:
            config = ExtractionConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.config = config.resolved(pool)
        self._spec = self.config.engine_spec
        self._external_pool = pool
        self._own_pool: ProcessPool | None = None
        self._closed = False

    @property
    def pool(self) -> ProcessPool | None:
        """The pool this session runs on (``None`` until one exists)."""
        return self._external_pool if self._external_pool is not None else self._own_pool

    def _ensure_pool(self) -> ProcessPool:
        if self._external_pool is not None:
            return self._external_pool
        if self._own_pool is None:
            self._own_pool = ProcessPool(num_workers=self.config.num_workers)
        return self._own_pool

    def extract(self, graph: CSRGraph) -> ChordalResult:
        """Run one extraction under this session's config."""
        if self._closed:
            raise SessionClosedError("Extractor is closed")
        cfg = self.config
        if graph.has_weights and not getattr(self._spec, "supports_weights", False):
            capable = tuple(
                e.name
                for e in registered_engines()
                if getattr(e, "supports_weights", False)
            )
            raise ConfigError(
                f"graph carries edge weights but engine {cfg.engine!r} is not "
                f"weight-aware (weights would be silently ignored); use a "
                f"weight-capable engine {capable} or strip them with "
                f"graph.without_weights()"
            )
        pool = self._ensure_pool() if self._spec.supports_pool else None

        work_graph = graph
        old_of_new: np.ndarray | None = None
        if cfg.renumber == "bfs":
            work_graph, new_of_old = bfs_renumber(graph)
            old_of_new = np.empty_like(new_of_old)
            old_of_new[new_of_old] = np.arange(new_of_old.size)
            if graph.has_weights:
                # bfs_renumber rebuilds the CSR without weights; re-express
                # the weight map in renumbered ids so the engine sees them.
                work_graph = attach_edge_weights(
                    work_graph,
                    {
                        (int(new_of_old[u]), int(new_of_old[v])): w
                        for (u, v), w in edge_weight_mapping(graph).items()
                    },
                )

        edges, queue_sizes, trace = self._spec.run(work_graph, cfg, pool)

        kernel_path = "numpy"
        if getattr(self._spec, "supports_native", False):
            from repro.core.native import native_available

            kernel_path = "native" if native_available() else "numpy"

        if old_of_new is not None and edges.size:
            edges = np.column_stack((old_of_new[edges[:, 0]], old_of_new[edges[:, 1]]))

        stitched = 0
        if cfg.stitch:
            before = edges.shape[0]
            edges = stitch_components(graph, edges)
            stitched = edges.shape[0] - before

        gap = 0
        if cfg.maximalize:
            weights = edge_weight_mapping(graph) if graph.has_weights else None
            edges, gap = maximalize_chordal_edges(graph, edges, weights=weights)

        return ChordalResult(
            edges=_canonical_edges(edges),
            queue_sizes=queue_sizes,
            variant=cfg.variant,
            engine=cfg.engine,
            graph=graph,
            schedule=cfg.schedule,
            trace=trace,
            renumbered=cfg.renumber == "bfs",
            stitched_bridges=stitched,
            maximality_gap=gap,
            kernel_path=kernel_path,
        )

    def extract_many(self, graphs: Iterable[CSRGraph]) -> list[ChordalResult]:
        """Extract every graph, materialised as a list in input order."""
        return list(self.stream(graphs))

    def stream(self, graphs: Iterable[CSRGraph]) -> Iterator[ChordalResult]:
        """Lazily extract ``graphs``, yielding each result as it finishes.

        Pulls one graph at a time from the iterable, so arbitrarily
        large (even unbounded) inputs run in O(one graph) memory and the
        first result is available before later inputs are generated.

        Closing the session (or its caller-supplied pool) while the
        generator is mid-iteration makes the next ``next()`` raise
        :class:`~repro.errors.SessionClosedError` — a clean
        :class:`~repro.errors.ReproError`, never a half-torn-down
        ``AttributeError`` from inside the pool machinery.
        """
        for graph in graphs:
            if self._closed:
                raise SessionClosedError(
                    "Extractor was closed while a stream() generator was "
                    "mid-iteration; create a new session to keep extracting"
                )
            yield self.extract(graph)

    def close(self) -> None:
        """Release owned resources (idempotent).

        Closes the session-owned pool, if one was spawned; a caller-
        supplied pool is left open.  Further :meth:`extract` calls raise
        ``RuntimeError``.
        """
        if self._closed:
            return
        self._closed = True
        if self._own_pool is not None:
            try:
                self._own_pool.close()
            finally:
                self._own_pool = None

    def __enter__(self) -> "Extractor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Extractor({self.config!r}, {state})"
