"""Component stitching — the constructive corollary of Theorem 2.

When the chordal edge set ``EC`` induces a disconnected subgraph, the paper
prescribes: number the components, then join each pair of *successively*
numbered components with **one** edge of the original graph whose endpoints
lie across them ("(1 and 2), (2 and 3), (3 and 4), but not (4 and 1)").
Joining only successive pairs with single edges adds no cycles, so the
result stays chordal.

Note the paper's procedure assumes a joining edge exists for each
successive pair; when the original graph is itself disconnected that can
fail, so we generalise minimally: successive components with no connecting
edge in ``G`` are simply left separate (the result is then stitched per
connected component of ``G``, which is the best possible).
"""

from __future__ import annotations

import numpy as np

from repro.graph.bfs import connected_components
from repro.graph.csr import CSRGraph
from repro.graph.ops import edge_subgraph

__all__ = ["stitch_components"]


def stitch_components(graph: CSRGraph, chordal_edges: np.ndarray) -> np.ndarray:
    """Augment ``chordal_edges`` with bridges joining successive components.

    Parameters
    ----------
    graph:
        The original graph ``G``.
    chordal_edges:
        ``(k, 2)`` chordal edge set produced by Algorithm 1.

    Returns
    -------
    ``(k + b, 2)`` edge array — the input edges plus at most one bridge per
    successive component pair.  Chordality is preserved (bridges are cut
    edges of the result).
    """
    sub = edge_subgraph(graph, chordal_edges)
    num_comp, labels = connected_components(sub)
    if num_comp <= 1:
        return np.asarray(chordal_edges, dtype=np.int64).reshape(-1, 2)

    # Collect candidate cross-component edges of G, indexed by the
    # (lower, higher) component pair they connect.
    bridge_for: dict[tuple[int, int], tuple[int, int]] = {}
    for u, v in graph.edge_array():
        cu, cv = int(labels[u]), int(labels[v])
        if cu == cv:
            continue
        key = (min(cu, cv), max(cu, cv))
        if key not in bridge_for:
            bridge_for[key] = (int(u), int(v))

    bridges: list[tuple[int, int]] = []
    for c in range(num_comp - 1):
        edge = bridge_for.get((c, c + 1))
        if edge is not None:
            bridges.append(edge)

    base = np.asarray(chordal_edges, dtype=np.int64).reshape(-1, 2)
    if not bridges:
        return base
    return np.vstack((base, np.asarray(bridges, dtype=np.int64)))
