"""`ExtractionConfig` — every extraction knob, captured and validated once.

The pre-session API spread fifteen keyword arguments (and their
validation, engine dispatch and schedule defaults) across
``extract_maximal_chordal_subgraph``, ``extract_many`` and the CLI, each
with its own hand-rolled checks — the batch path even flipped the default
schedule per engine while the single-call path did not.  This module is
the single source of truth instead: a frozen dataclass whose
``__post_init__`` validates every field against the engine registry
(:mod:`repro.core.engines`) and whose :meth:`ExtractionConfig.resolved`
fills the engine-dependent defaults *explicitly* — one rule for single
calls, batches, streams and the CLI alike.

All validation failures raise :class:`~repro.errors.ConfigError`, which
subclasses both :class:`~repro.errors.ReproError` (catch one library base
class) and ``ValueError`` (what the legacy shims raised).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.engines import Engine, get_engine, registered_engines, schedule_names
from repro.core.instrument import CostModelParams
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.procpool import ProcessPool

__all__ = ["ExtractionConfig", "VARIANTS", "DEFAULT_NUM_THREADS", "DEFAULT_NUM_WORKERS"]

#: Parent-advance variants (the paper's Opt / Unopt pair).
VARIANTS = ("optimized", "unoptimized")

#: Thread-team size the threaded engine uses when none is given.
DEFAULT_NUM_THREADS = 4

#: Worker-process count the process engine uses when none is given.
DEFAULT_NUM_WORKERS = 4


@dataclass(frozen=True)
class ExtractionConfig:
    """Immutable, validated description of one extraction regime.

    Construct it once, hand it to :class:`~repro.core.session.Extractor`
    (or many of them), and every graph extracted under it runs the same
    regime.  Construction validates every field against the engine
    registry and raises :class:`~repro.errors.ConfigError` on the first
    problem; a constructed config is therefore always runnable.

    Attributes
    ----------
    engine:
        Registered engine name (see
        :func:`repro.core.engines.engine_names`; built-ins:
        ``superstep``, ``threaded``, ``process``, ``reference``, and the
        weight-aware ``weighted`` MAXCHORD portfolio).  Engines declare a
        ``supports_weights`` capability; handing a graph that carries
        edge weights (``graph.has_weights``) to an engine without it is a
        :class:`~repro.errors.ConfigError` at extraction time — weights
        are never silently ignored.  Strip them with
        ``graph.without_weights()`` to run an unweighted engine.
    variant:
        ``"optimized"`` (sorted adjacency) or ``"unoptimized"``.
    schedule:
        ``"asynchronous"``, ``"synchronous"``, or ``None`` (default) for
        the engine's declared ``default_schedule`` — ``synchronous`` for
        the process engine (deterministic outputs), ``asynchronous``
        elsewhere.  The engine must support the requested schedule.
    num_threads:
        Thread-team size (threaded engine).
    num_workers:
        Worker-process count (process engine); ``None`` resolves to the
        bound pool's size, else :data:`DEFAULT_NUM_WORKERS`.  Giving
        both an explicit count and a conflicting pool is a
        :class:`~repro.errors.ConfigError` (it used to be silently
        ignored).
    renumber:
        ``"bfs"`` renumbers vertices in BFS order before extraction and
        maps the edge set back — on connected inputs this guarantees a
        connected, hence provably maximal, output (Theorem 2 +
        corollary).  ``None`` runs on the ids as given.
    stitch:
        Join disconnected output components with single bridges.
    maximalize:
        Run the serial completion pass that re-offers every rejected
        edge (certified maximal output; the added-edge count is reported
        as ``result.maximality_gap``).
    collect_trace:
        Capture the work trace for the machine models (requires an
        engine with the ``supports_trace`` capability).
    cost_params / max_iterations:
        Forwarded to the engine.
    """

    engine: str = "superstep"
    variant: str = "optimized"
    schedule: str | None = None
    num_threads: int = DEFAULT_NUM_THREADS
    num_workers: int | None = None
    renumber: str | None = None
    stitch: bool = False
    maximalize: bool = False
    collect_trace: bool = False
    cost_params: CostModelParams | None = None
    max_iterations: int | None = None

    def __post_init__(self) -> None:
        spec = get_engine(self.engine)  # ConfigError on unknown engine
        if self.variant not in VARIANTS:
            raise ConfigError(
                f"unknown variant {self.variant!r}; expected one of {VARIANTS}"
            )
        if self.schedule is not None:
            known = schedule_names()
            if self.schedule not in known:
                raise ConfigError(
                    f"unknown schedule {self.schedule!r}; expected one of {known}"
                )
            if self.schedule not in spec.schedules:
                raise ConfigError(
                    f"engine {self.engine!r} does not support schedule "
                    f"{self.schedule!r}; it supports {spec.schedules}"
                )
        if self.renumber not in (None, "bfs"):
            raise ConfigError(
                f"renumber must be None or 'bfs', got {self.renumber!r}"
            )
        if self.collect_trace and not spec.supports_trace:
            traced = tuple(
                e.name for e in registered_engines() if e.supports_trace
            )
            raise ConfigError(
                f"collect_trace requires an engine with the supports_trace "
                f"capability ({traced}); engine {self.engine!r} has none"
            )
        if self.num_threads < 1:
            raise ConfigError(f"num_threads must be >= 1, got {self.num_threads}")
        if self.num_workers is not None and self.num_workers < 1:
            raise ConfigError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ConfigError(
                f"max_iterations must be None or >= 1, got {self.max_iterations}"
            )

    @property
    def engine_spec(self) -> Engine:
        """The registered engine this config runs on."""
        return get_engine(self.engine)

    @property
    def deterministic(self) -> bool:
        """Whether this regime's edge sets are bit-reproducible.

        ``False`` for an unresolved ``schedule=None`` only if the
        engine's default schedule is nondeterministic.
        """
        spec = self.engine_spec
        schedule = self.schedule or spec.default_schedule
        return spec.is_deterministic(schedule)

    def replace(self, **changes: Any) -> "ExtractionConfig":
        """A copy with ``changes`` applied (re-validated on construction)."""
        return dataclasses.replace(self, **changes)

    def resolved(self, pool: "ProcessPool | None" = None) -> "ExtractionConfig":
        """Fill every engine-dependent default explicitly.

        * ``schedule=None`` becomes the engine's ``default_schedule`` —
          the *one* rule shared by single-call, batch, stream and CLI
          paths (the pre-session API resolved this differently in
          ``extract_many`` than in the single-call function).
        * ``num_workers=None`` becomes ``pool.num_workers`` when a pool
          is supplied, else :data:`DEFAULT_NUM_WORKERS`.

        Raises
        ------
        ConfigError
            If ``pool`` is given but the engine lacks the
            ``supports_pool`` capability, or an explicit ``num_workers``
            conflicts with ``pool.num_workers`` (previously silently
            ignored).
        """
        spec = self.engine_spec
        changes: dict[str, Any] = {}
        if self.schedule is None:
            changes["schedule"] = spec.default_schedule
        if pool is not None:
            if not spec.supports_pool:
                pooled = tuple(
                    e.name for e in registered_engines() if e.supports_pool
                )
                raise ConfigError(
                    f"pool= is only meaningful with a pool-capable engine "
                    f"({pooled}); got engine {self.engine!r}"
                )
            if (
                self.num_workers is not None
                and self.num_workers != pool.num_workers
            ):
                raise ConfigError(
                    f"num_workers={self.num_workers} conflicts with the "
                    f"supplied pool's {pool.num_workers} workers; drop "
                    "num_workers or pass a matching pool"
                )
            changes["num_workers"] = pool.num_workers
        elif self.num_workers is None:
            changes["num_workers"] = DEFAULT_NUM_WORKERS
        return self.replace(**changes) if changes else self
