"""The paper's contribution: multithreaded maximal chordal subgraph extraction.

Algorithm 1 of the paper, in four interchangeable engines that all produce
*identical* chordal edge sets under the canonical snapshot-per-superstep
semantics (see DESIGN.md §5):

* :mod:`repro.core.reference` — literal pure-Python transcription of the
  pseudocode (dicts and sets; the readable spec).
* :mod:`repro.core.superstep` — array-based serial engine with the paper's
  *optimized* (sorted adjacency) and *unoptimized* (scan) parent strategies.
* :mod:`repro.core.threaded` — real ``threading`` engine with a persistent
  thread team and per-iteration barriers (GIL-bound; demonstrates the
  concurrency structure).
* :mod:`repro.core.procpool` — worker-*process* engine over shared memory,
  executing the bulk kernels of :mod:`repro.core.kernels` with real
  core-level parallelism (both schedules).

The public face is the session API:

* :class:`repro.core.config.ExtractionConfig` — every knob, validated once;
* :mod:`repro.core.engines` — the engine registry (capability flags,
  :func:`~repro.core.engines.register_engine` for third-party engines);
* :class:`repro.core.session.Extractor` — session object owning the pool
  lifecycle, with ``.extract()`` / ``.extract_many()`` / ``.stream()``;
* :func:`repro.core.extract.extract_maximal_chordal_subgraph` /
  :func:`~repro.core.extract.extract_many` — the legacy one-call shims.
"""

from repro.core.config import ExtractionConfig, VARIANTS
from repro.core.engines import (
    Engine,
    EngineSpec,
    engine_names,
    get_engine,
    register_engine,
    registered_engines,
    schedule_names,
    unregister_engine,
)
from repro.core.extract import (
    ChordalResult,
    extract_maximal_chordal_subgraph,
    extract_many,
    ENGINES,
    SCHEDULES,
)
from repro.core.session import Extractor
from repro.core.maximalize import maximalize_chordal_edges
from repro.core.procpool import ProcessPool, process_max_chordal
from repro.core.reference import reference_max_chordal
from repro.core.superstep import superstep_max_chordal
from repro.core.threaded import threaded_max_chordal
from repro.core.connect import stitch_components
from repro.core.instrument import WorkTrace, IterationTrace, CostModelParams

__all__ = [
    "ChordalResult",
    "ExtractionConfig",
    "Extractor",
    "Engine",
    "EngineSpec",
    "register_engine",
    "unregister_engine",
    "registered_engines",
    "get_engine",
    "engine_names",
    "schedule_names",
    "extract_maximal_chordal_subgraph",
    "extract_many",
    "maximalize_chordal_edges",
    "VARIANTS",
    "ENGINES",
    "SCHEDULES",
    "reference_max_chordal",
    "superstep_max_chordal",
    "threaded_max_chordal",
    "process_max_chordal",
    "ProcessPool",
    "stitch_components",
    "WorkTrace",
    "IterationTrace",
    "CostModelParams",
]
