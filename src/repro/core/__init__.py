"""The paper's contribution: multithreaded maximal chordal subgraph extraction.

Algorithm 1 of the paper, in four interchangeable engines that all produce
*identical* chordal edge sets under the canonical snapshot-per-superstep
semantics (see DESIGN.md §5):

* :mod:`repro.core.reference` — literal pure-Python transcription of the
  pseudocode (dicts and sets; the readable spec).
* :mod:`repro.core.superstep` — array-based serial engine with the paper's
  *optimized* (sorted adjacency) and *unoptimized* (scan) parent strategies.
* :mod:`repro.core.threaded` — real ``threading`` engine with a persistent
  thread team and per-iteration barriers (GIL-bound; demonstrates the
  concurrency structure).
* :mod:`repro.core.procpool` — worker-*process* engine over shared memory,
  executing the bulk kernels of :mod:`repro.core.kernels` with real
  core-level parallelism (synchronous schedule only).
* :func:`repro.core.extract.extract_maximal_chordal_subgraph` — the public
  entry point dispatching between them.
"""

from repro.core.extract import (
    ChordalResult,
    extract_maximal_chordal_subgraph,
    extract_many,
    VARIANTS,
    ENGINES,
    SCHEDULES,
)
from repro.core.maximalize import maximalize_chordal_edges
from repro.core.procpool import ProcessPool, process_max_chordal
from repro.core.reference import reference_max_chordal
from repro.core.superstep import superstep_max_chordal
from repro.core.threaded import threaded_max_chordal
from repro.core.connect import stitch_components
from repro.core.instrument import WorkTrace, IterationTrace, CostModelParams

__all__ = [
    "ChordalResult",
    "extract_maximal_chordal_subgraph",
    "extract_many",
    "maximalize_chordal_edges",
    "VARIANTS",
    "ENGINES",
    "SCHEDULES",
    "reference_max_chordal",
    "superstep_max_chordal",
    "threaded_max_chordal",
    "process_max_chordal",
    "ProcessPool",
    "stitch_components",
    "WorkTrace",
    "IterationTrace",
    "CostModelParams",
]
