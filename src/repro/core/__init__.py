"""The paper's contribution: multithreaded maximal chordal subgraph extraction.

Algorithm 1 of the paper, in four interchangeable engines that all produce
*identical* chordal edge sets under the canonical snapshot-per-superstep
semantics (see DESIGN.md §5).  The schedule loop itself is implemented
once, in the unified runtime (:mod:`repro.core.runtime`: one driver over
pluggable StateBackend × ExecutorBackend pairings); the engine modules
are the thin pairings:

* :mod:`repro.core.reference` — literal pure-Python transcription of the
  pseudocode (dicts and sets; the readable spec — deliberately not
  runtime-based).
* :mod:`repro.core.superstep` — ``LocalState`` × ``SerialExecutor``: the
  serial array engine with the paper's *optimized* / *unoptimized*
  parent-advance cost models.
* :mod:`repro.core.threaded` — ``LocalState`` × ``ThreadTeamExecutor``:
  real ``threading`` threads with per-iteration barriers (GIL-bound;
  demonstrates the concurrency structure).
* :mod:`repro.core.procpool` — ``SharedSegmentState`` ×
  ``ProcessTeamExecutor``: worker *processes* over shared memory,
  executing the bulk kernels of :mod:`repro.core.kernels` with real
  core-level parallelism (both schedules).

The public face is the session API:

* :class:`repro.core.config.ExtractionConfig` — every knob, validated once;
* :mod:`repro.core.engines` — the engine registry (capability flags,
  :func:`~repro.core.engines.register_engine` for third-party engines);
* :class:`repro.core.session.Extractor` — session object owning the pool
  lifecycle, with ``.extract()`` / ``.extract_many()`` / ``.stream()``;
* :func:`repro.core.extract.extract_maximal_chordal_subgraph` /
  :func:`~repro.core.extract.extract_many` — the legacy one-call shims.
"""

from repro.core.config import ExtractionConfig, VARIANTS
from repro.core.engines import (
    Engine,
    EngineSpec,
    engine_names,
    get_engine,
    register_engine,
    registered_engines,
    schedule_names,
    unregister_engine,
)
from repro.core.extract import (
    ChordalResult,
    extract_maximal_chordal_subgraph,
    extract_many,
    ENGINES,
    SCHEDULES,
)
from repro.core.session import Extractor
from repro.core.incremental import IncrementalExtractor
from repro.core.maximalize import maximalize_chordal_edges
from repro.core.procpool import ProcessPool, process_max_chordal
from repro.core.reference import reference_max_chordal
from repro.core.superstep import superstep_max_chordal
from repro.core.threaded import threaded_max_chordal
from repro.core.connect import stitch_components
from repro.core.instrument import WorkTrace, IterationTrace, CostModelParams
from repro.core.runtime import (
    LocalState,
    ProcessTeamExecutor,
    SerialExecutor,
    SharedSegmentState,
    ThreadTeamExecutor,
    backend_run_fn,
    drive,
)

__all__ = [
    "ChordalResult",
    "ExtractionConfig",
    "Extractor",
    "IncrementalExtractor",
    "Engine",
    "EngineSpec",
    "register_engine",
    "unregister_engine",
    "registered_engines",
    "get_engine",
    "engine_names",
    "schedule_names",
    "extract_maximal_chordal_subgraph",
    "extract_many",
    "maximalize_chordal_edges",
    "VARIANTS",
    "ENGINES",
    "SCHEDULES",
    "reference_max_chordal",
    "superstep_max_chordal",
    "threaded_max_chordal",
    "process_max_chordal",
    "ProcessPool",
    "stitch_components",
    "WorkTrace",
    "IterationTrace",
    "CostModelParams",
    "drive",
    "backend_run_fn",
    "LocalState",
    "SharedSegmentState",
    "SerialExecutor",
    "ThreadTeamExecutor",
    "ProcessTeamExecutor",
]
