"""State backends: where Algorithm 1's arrays live.

A *state backend* owns one instance of the canonical array schema
(:func:`~repro.core.runtime.layout.build_spec`) plus the per-run reset
logic.  The schedule driver (:mod:`repro.core.runtime.driver`) and the
round bodies (:mod:`repro.core.runtime.rounds`) are written against this
interface only, so the same loop runs on either backend:

* :class:`LocalState` — plain NumPy arrays in the calling process; pairs
  with the serial and thread-team executors (``superstep`` and
  ``threaded`` engines).
* :class:`SharedSegmentState` — the same schema carved out of one
  ``multiprocessing.shared_memory`` segment
  (:class:`~repro.parallel.shm.SharedArrayBlock`), capacity-sized and
  rebindable across graphs; pairs with the process-team executor (the
  ``process`` engine / :class:`~repro.core.procpool.ProcessPool`).

Both expose the same lp / cursor / arena / edge-claim words, so a
backend-generic driver round cannot tell them apart.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import arena_offsets, initial_parents, lower_counts
from repro.core.runtime.layout import (
    CTRL_N,
    CTRL_SCHEDULE,
    EDGE_ACCEPTED,
    EDGE_UNDECIDED,
    SCHED_ASYNC,
    SCHED_SYNC,
    build_spec,
)
from repro.graph.csr import CSRGraph
from repro.parallel.shm import SharedArrayBlock, layout_size

__all__ = ["StateBackend", "LocalState", "SharedSegmentState"]


class StateBackend:
    """Shared behaviour of the two array-schema owners.

    Subclasses populate :attr:`arrays` (the schema dict) and the bound-
    graph metadata (:attr:`n`, :attr:`nnz`, :attr:`arena_used`,
    :attr:`max_degree`); everything the driver needs on top is defined
    here once.
    """

    arrays: dict[str, np.ndarray]
    n: int = 0
    nnz: int = 0
    arena_used: int = 0
    max_degree: int = 0
    _sets: list[set[int]] | None = None

    @property
    def trivial(self) -> bool:
        """No vertex can have a parent — every schedule returns no edges."""
        return self.n == 0 or self.arena_used == 0

    def degrees(self) -> np.ndarray:
        """Per-vertex degree of the bound graph (trace weights/costs)."""
        return np.diff(self.arrays["indptr"][: self.n + 1])

    def set_mirrors(self) -> list[set[int]]:
        """Per-vertex Python-set mirrors of the chordal sets.

        The asynchronous sweep's per-pair subset test is O(|small set|)
        against these (the historical ``ChordalState`` trick, kept for
        the scalar sweep).  They live in the *driving* process regardless
        of where the arrays do — the sweep only ever runs on in-process
        executors — and are rebuilt lazily per run by :meth:`reset`.
        """
        if self._sets is None:
            self._sets = [set() for _ in range(self.n)]
        return self._sets

    def reset(self, schedule: str) -> None:
        """Per-run initialisation (Algorithm 1 lines 2-10).

        Zeroes the chordal sets and cursors, points every vertex at its
        lowest parent, and rewinds the edge-claim words (asynchronous
        schedule, backends that carry them — the in-process sweep never
        reads claims, so :class:`LocalState` keeps a size-0 stub).
        """
        a = self.arrays
        n = self.n
        a["counts"][:n] = 0
        a["cursor"][:n] = 0
        a["lp"][:n] = initial_parents(
            a["indptr"][: n + 1], a["indices"][: self.nnz], a["lower"][:n]
        )
        is_async = schedule == "asynchronous"
        if is_async and a["edge_state"].size:
            a["edge_state"][: self.arena_used] = EDGE_UNDECIDED
        a["control"][CTRL_SCHEDULE] = SCHED_ASYNC if is_async else SCHED_SYNC
        self._sets = None

    def verify_async_accounting(self, num_edges: int) -> None:
        """Post-run invariant of the asynchronous live rounds.

        Every reported edge corresponds to exactly one won ACCEPTED claim
        and one arena append.  A mismatch means the lock-free discipline
        was violated somewhere.
        """
        a = self.arrays
        claimed = int(
            np.count_nonzero(a["edge_state"][: self.arena_used] == EDGE_ACCEPTED)
        )
        appended = int(a["counts"][: self.n].sum())
        if not (claimed == appended == num_edges):
            raise RuntimeError(
                "asynchronous claim accounting diverged: "
                f"{claimed} accepted claims, {appended} arena appends, "
                f"{num_edges} reported edges"
            )


class LocalState(StateBackend):
    """The array schema as ordinary NumPy arrays, bound to one graph.

    Graph CSR arrays are aliased (not copied) when their dtype already
    matches the schema.  ``num_slices`` sizes the ``cuts`` / ``epochs``
    scratch for the widest executor this state will be driven by.
    """

    def __init__(
        self, graph: CSRGraph, num_slices: int = 1, *, edge_claims: bool = False
    ) -> None:
        g = graph if graph.sorted_adjacency else graph.with_sorted_adjacency()
        self.graph = g
        n = g.num_vertices
        indices = np.ascontiguousarray(g.indices, dtype=np.int64)
        lower = lower_counts(g.indptr, indices)
        offsets = arena_offsets(lower)
        self.n = n
        self.nnz = int(indices.size)
        self.arena_used = int(offsets[-1])
        self.max_degree = g.max_degree()
        spec = build_spec(n, self.nnz, self.arena_used, max(1, num_slices))
        # Graph arrays are aliased below, not allocated.  The edge-claim
        # words default to a size-0 stub (the in-process sweep — the
        # historical asynchronous path of a local state — never reads
        # claims); ``edge_claims=True`` allocates the full claim array
        # for executors that run asynchronous *live rounds* in process
        # (the native thread team).
        aliased = ("indptr", "indices", "lower", "offsets", "edge_state")
        self.arrays = {
            name: np.zeros(shape, dtype=dtype)
            for name, (dtype, shape) in spec.items()
            if name not in aliased
        }
        self.arrays["indptr"] = g.indptr
        self.arrays["indices"] = indices
        self.arrays["lower"] = lower
        self.arrays["offsets"] = offsets
        self.arrays["edge_state"] = np.zeros(
            self.arena_used if edge_claims else 0, dtype=np.int64
        )
        self.arrays["control"][CTRL_N] = n


class SharedSegmentState(StateBackend):
    """The array schema inside one shared-memory segment.

    Capacity-sized: the segment is laid out for ``caps = (n_cap, nnz_cap,
    arena_cap)`` rather than one graph's exact sizes, with the bound
    graph's live sizes published through the control block.  Graphs that
    fit the capacities rebind with zero reallocation; :meth:`grow`
    implements the two growth paths (in-place remap when the
    over-allocated segment still fits the new layout, geometric segment
    reallocation otherwise).  The worker-team lifecycle that reacts to
    those paths lives in :class:`~repro.core.procpool.ProcessPool`.
    """

    def __init__(self, num_slices: int, headroom: float = 1.5) -> None:
        self.num_slices = num_slices
        self.headroom = max(1.0, headroom)
        self.block: SharedArrayBlock | None = None
        self.caps: tuple[int, int, int] = (0, 0, 0)
        self.generation = 0

    @property
    def arrays(self) -> dict[str, np.ndarray]:
        return self.block.arrays

    def fits(self, n: int, nnz: int, cap: int) -> bool:
        """Whether an (n, nnz, cap) graph fits the current capacities."""
        n_cap, nnz_cap, arena_cap = self.caps
        return n <= n_cap and nnz <= nnz_cap and cap <= arena_cap

    def plan_growth(self, n: int, nnz: int, cap: int) -> tuple[int, int, int]:
        """Capacities a segment must have to hold an (n, nnz, cap) graph.

        Geometric growth keeps a batch of increasing graphs to O(log)
        reallocations; caps never shrink (high-water mark), so
        alternating graph shapes settle into the zero-churn fast path
        instead of remapping every bind.
        """
        n_cap, nnz_cap, arena_cap = self.caps
        if self.block is None:
            return (n, nnz, cap)
        return (
            n_cap if n <= n_cap else max(n, 2 * n_cap),
            nnz_cap if nnz <= nnz_cap else max(nnz, 2 * nnz_cap),
            arena_cap if cap <= arena_cap else max(cap, 2 * arena_cap),
        )

    def can_remap(self, new_caps: tuple[int, int, int]) -> bool:
        """Whether the existing segment fits a ``new_caps`` layout in place."""
        return self.block is not None and self.block.fits(
            build_spec(*new_caps, self.num_slices)
        )

    def remap(self, new_caps: tuple[int, int, int]) -> None:
        """In-place growth: same segment, new layout, bumped generation
        (attached workers remap at their next round)."""
        self.block.remap(build_spec(*new_caps, self.num_slices))
        self.caps = new_caps
        self.generation += 1
        self.publish_layout()

    def reallocate(self, new_caps: tuple[int, int, int]) -> None:
        """Replace the segment with a fresh, headroom-padded one.

        The caller must detach/stop anything attached to the old segment
        *before* calling this (the old segment is released here).
        """
        spec = build_spec(*new_caps, self.num_slices)
        self.release()
        self.block = SharedArrayBlock.create(
            spec, size=int(layout_size(spec) * self.headroom)
        )
        self.caps = new_caps
        self.generation += 1
        self.publish_layout()

    def publish_layout(self) -> None:
        """Write the generation + capacities workers remap against."""
        from repro.core.runtime.layout import (
            CTRL_ARENA_CAP,
            CTRL_GEN,
            CTRL_N_CAP,
            CTRL_NNZ_CAP,
        )

        ctrl = self.arrays["control"]
        ctrl[CTRL_GEN] = self.generation
        ctrl[CTRL_N_CAP] = self.caps[0]
        ctrl[CTRL_NNZ_CAP] = self.caps[1]
        ctrl[CTRL_ARENA_CAP] = self.caps[2]

    def bind_graph(
        self,
        g: CSRGraph,
        lower: np.ndarray,
        offsets: np.ndarray,
    ) -> None:
        """Load a (sorted-adjacency) graph into the segment's live region."""
        n = g.num_vertices
        self.n = n
        self.nnz = int(g.indices.size)
        self.arena_used = int(offsets[-1])
        self.max_degree = g.max_degree()
        a = self.arrays
        a["indptr"][: n + 1] = g.indptr
        a["indices"][: self.nnz] = g.indices
        a["lower"][:n] = lower
        a["offsets"][: n + 1] = offsets
        a["control"][CTRL_N] = n

    def release(self) -> None:
        """Close and unlink the segment (idempotent)."""
        if self.block is not None:
            self.block.close()
            self.block.unlink()
            self.block = None
