"""Round bodies: one executor slice's share of one barrier round.

These are the compute kernels of the unified runtime — pure functions
over the array schema of :mod:`repro.core.runtime.layout`, so the same
code runs on local NumPy arrays (serial / thread-team executors) and on
``multiprocessing.shared_memory`` views (process-team workers).

Both bodies assume the driver has already published the round: ``active``
/ ``parents`` hold the vertices to serve, ``cuts`` the slice boundaries,
and the control block the live-region sizes (see
:mod:`repro.core.runtime.driver`).
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import (
    advance_parents,
    append_accepted,
    subset_mask,
    subset_mask_live,
)
from repro.core.runtime.layout import (
    CTRL_N,
    CTRL_NKEYS,
    EDGE_ACCEPTED,
    EDGE_REJECTED,
    EDGE_UNDECIDED,
)
from repro.parallel.atomics import bulk_compare_and_set

__all__ = ["run_sync_slice", "run_async_slice", "round_body"]


def run_sync_slice(tid: int, a: dict[str, np.ndarray]) -> None:
    """One slice's share of one synchronous superstep (pure kernel calls).

    All arrays are capacity-sized; per-vertex indexing (``ws`` / ``vs``
    are ids of the bound graph) and the ``nkeys`` prefix keep every access
    inside the bound graph's live region.  Subset tests run against the
    barrier snapshot, so the accepted edge set is independent of slice
    count and timing — the determinism contract of the synchronous
    schedule.
    """
    ctrl = a["control"]
    n = int(ctrl[CTRL_N])
    nkeys = int(ctrl[CTRL_NKEYS])
    cuts = a["cuts"]
    start, stop = int(cuts[tid]), int(cuts[tid + 1])
    if start >= stop:
        return
    ws = a["active"][start:stop]
    vs = a["parents"][start:stop]
    ok = subset_mask(
        a["keys"][:nkeys], a["arena"], a["offsets"], a["snapshot"], ws, vs, n
    )
    a["ok"][start:stop] = ok
    append_accepted(a["arena"], a["offsets"], a["counts"], ws, vs, ok)
    advance_parents(a["indptr"], a["indices"], a["lower"], a["cursor"], a["lp"], ws)


def run_async_slice(tid: int, a: dict[str, np.ndarray]) -> None:
    """One slice's share of one asynchronous live round.

    Unlike :func:`run_sync_slice` there is no barrier snapshot: subset
    tests probe whatever prefix of each parent's chordal set other slices
    have published by probe time
    (:func:`~repro.core.kernels.subset_mask_live`), so the accepted edge
    set depends on slice timing.  Safety rests on the unique-writer
    discipline — this slice is the only mutator of its children's
    ``counts`` / ``cursor`` / ``lp`` words, arena runs and edge-claim
    words — plus the append-before-count-bump publication order inside
    :func:`~repro.core.kernels.append_accepted`.

    Each (child, parent) arc is claimed exactly once: its edge-state word
    flips UNDECIDED -> ACCEPTED/REJECTED via compare-and-set.  A lost
    claim (word already decided) drops the arc, so a double-serviced
    vertex can never append or report an edge twice — the conflict-
    resolution rule the live sweep needs in place of the barrier.
    """
    ctrl = a["control"]
    n = int(ctrl[CTRL_N])
    cuts = a["cuts"]
    start, stop = int(cuts[tid]), int(cuts[tid + 1])
    if start >= stop:
        return
    ws = a["active"][start:stop]
    vs = a["parents"][start:stop]
    offsets = a["offsets"]
    ok = subset_mask_live(a["arena"], offsets, a["counts"], ws, vs, n)
    arcs = offsets[ws] + a["cursor"][ws]
    decisions = np.where(ok, EDGE_ACCEPTED, EDGE_REJECTED)
    ok &= bulk_compare_and_set(a["edge_state"], arcs, EDGE_UNDECIDED, decisions)
    a["ok"][start:stop] = ok
    append_accepted(a["arena"], offsets, a["counts"], ws, vs, ok)
    advance_parents(a["indptr"], a["indices"], a["lower"], a["cursor"], a["lp"], ws)


def round_body(schedule: str):
    """The slice function for ``schedule`` (registry for executors/workers)."""
    return run_async_slice if schedule == "asynchronous" else run_sync_slice
