"""Unified extraction runtime: one schedule driver, pluggable backends.

The paper's algorithm is one loop run under many execution regimes.  This
package implements that loop **once** (:mod:`~repro.core.runtime.driver`)
and parameterizes it along two axes:

* **StateBackend** — where the algorithm's arrays live
  (:class:`LocalState` in-process, :class:`SharedSegmentState` in a
  shared-memory segment), both exposing the same canonical array schema
  (:mod:`~repro.core.runtime.layout`);
* **ExecutorBackend** — who runs each round's slices
  (:class:`SerialExecutor`, :class:`ThreadTeamExecutor`,
  :class:`NativeThreadTeamExecutor`, :class:`ProcessTeamExecutor`).

The built-in engines are thin pairings of these (see
:mod:`repro.core.engines`); a third-party backend is one new class plus a
:func:`backend_run_fn` registration — see the README's Architecture
section.
"""

from repro.core.runtime.driver import SCHEDULES, VARIANTS, backend_run_fn, drive
from repro.core.runtime.executors import (
    NativeThreadTeamExecutor,
    ProcessTeamExecutor,
    SerialExecutor,
    ThreadTeamExecutor,
    WorkerTeamError,
)
from repro.core.runtime.layout import build_spec
from repro.core.runtime.rounds import round_body, run_async_slice, run_sync_slice
from repro.core.runtime.state import LocalState, SharedSegmentState, StateBackend

__all__ = [
    "drive",
    "backend_run_fn",
    "SCHEDULES",
    "VARIANTS",
    "StateBackend",
    "LocalState",
    "SharedSegmentState",
    "SerialExecutor",
    "ThreadTeamExecutor",
    "NativeThreadTeamExecutor",
    "ProcessTeamExecutor",
    "WorkerTeamError",
    "build_spec",
    "round_body",
    "run_sync_slice",
    "run_async_slice",
]
