"""Canonical array layout shared by every state backend.

The unified runtime expresses Algorithm 1's state as one *named array
schema* — the same dictionary of NumPy arrays whether they live in local
process memory (:class:`~repro.core.runtime.state.LocalState`) or inside a
``multiprocessing.shared_memory`` segment
(:class:`~repro.core.runtime.state.SharedSegmentState`).  The round bodies
in :mod:`repro.core.runtime.rounds` and the schedule driver in
:mod:`repro.core.runtime.driver` only ever touch the schema, so one
implementation of the paper's loop serves every engine.

Schema entries (``{name: (dtype, shape)}``, see :func:`build_spec`):

* graph: ``indptr`` / ``indices`` (sorted CSR), ``lower`` (per-vertex
  lower-neighbor count), ``offsets`` (arena layout);
* algorithm state: ``lp`` / ``cursor`` / ``counts`` / ``arena`` — the
  paper's lowest parents, consumed-parent cursors and chordal sets;
* per-round scratch: ``active`` / ``parents`` / ``snapshot`` / ``keys`` /
  ``ok`` / ``cuts`` — the barrier snapshot and slice plumbing;
* concurrency words: ``edge_state`` claim words (asynchronous live
  rounds), ``epochs`` liveness counters, and the ``control`` block.

The ``control`` array is the first entry of every spec, so it sits at
offset 0 of a shared segment across remaps and is the one
layout-independent channel between a coordinator and its workers.
"""

from __future__ import annotations

__all__ = [
    "CTRL_CMD",
    "CTRL_NKEYS",
    "CTRL_ERROR",
    "CTRL_N",
    "CTRL_GEN",
    "CTRL_N_CAP",
    "CTRL_NNZ_CAP",
    "CTRL_ARENA_CAP",
    "CTRL_SCHEDULE",
    "CTRL_SLOTS",
    "CMD_RUN",
    "CMD_SHUTDOWN",
    "SCHED_SYNC",
    "SCHED_ASYNC",
    "EDGE_UNDECIDED",
    "EDGE_ACCEPTED",
    "EDGE_REJECTED",
    "build_spec",
]

# Control-block slots (int64 each).
CTRL_CMD = 0
CTRL_NKEYS = 1
CTRL_ERROR = 2
CTRL_N = 3
CTRL_GEN = 4
CTRL_N_CAP = 5
CTRL_NNZ_CAP = 6
CTRL_ARENA_CAP = 7
CTRL_SCHEDULE = 8
CTRL_SLOTS = 9

CMD_RUN = 0
CMD_SHUTDOWN = 1

SCHED_SYNC = 0
SCHED_ASYNC = 1

#: Edge-state claim words: one per (child, parent) arc, indexed by
#: ``offsets[w] + cursor`` (the arc's position in the child's lower-
#: neighbor prefix).  Flipped away from UNDECIDED exactly once.
EDGE_UNDECIDED = 0
EDGE_ACCEPTED = 1
EDGE_REJECTED = 2


def build_spec(
    n_cap: int, nnz_cap: int, arena_cap: int, num_slices: int
) -> dict[str, tuple[str, tuple[int, ...]]]:
    """Array schema with room for any graph of at most ``n_cap`` vertices,
    ``nnz_cap`` arcs and ``arena_cap`` arena slots (== undirected edges).
    The bound graph's actual sizes live in the control block; every array
    is used as a prefix.  ``num_slices`` is the executor's slice count
    (worker processes, threads, or 1 for the serial executor)."""
    return {
        "control": ("int64", (CTRL_SLOTS,)),
        "cuts": ("int64", (num_slices + 1,)),
        "indptr": ("int64", (n_cap + 1,)),
        "indices": ("int64", (nnz_cap,)),
        "lower": ("int64", (n_cap,)),
        "offsets": ("int64", (n_cap + 1,)),
        "arena": ("int64", (arena_cap,)),
        "keys": ("int64", (arena_cap,)),
        "counts": ("int64", (n_cap,)),
        "snapshot": ("int64", (n_cap,)),
        "cursor": ("int64", (n_cap,)),
        "lp": ("int64", (n_cap,)),
        "active": ("int64", (n_cap,)),
        "parents": ("int64", (n_cap,)),
        "edge_state": ("int64", (arena_cap,)),
        "epochs": ("int64", (num_slices,)),
        "ok": ("uint8", (n_cap,)),
    }
