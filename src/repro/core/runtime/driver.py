"""The schedule driver: Algorithm 1's loop, implemented once.

The paper describes *one* algorithm with two intra-iteration schedules;
this module is the one place the repo runs it.  :func:`drive` owns the
outer loop — active-set discovery, queue-size accounting, the iteration
budget, edge gathering, work-trace collection — and delegates each
round's compute to a (:class:`~repro.core.runtime.state.StateBackend`,
executor) pairing:

* ``schedule="synchronous"`` — barrier rounds against a frozen snapshot
  (:func:`~repro.core.runtime.rounds.run_sync_slice`).  Every subset test
  is evaluated against the same snapshot regardless of slice count or
  timing, so the edge set is **bit-identical** across every backend
  pairing — serial, thread team and process team all reproduce the same
  rows.
* ``schedule="asynchronous"`` on an in-process executor — the paper's
  maximal-progress sweep: ascending turns over a live children map, where
  a vertex whose next parent is a later queue member is served again
  within the same iteration.  Deterministic when serial (reproduces the
  paper's headline iteration counts: ~3 for R-MAT, k-1 for a k-clique);
  any-valid when thread-sliced (the platform's benign races).
* ``schedule="asynchronous"`` on a process team — or any executor that
  sets ``live_rounds = True``, like the native thread team — live
  barrier rounds: one service per vertex per round against whatever
  chordal-set prefixes other workers have published, with lock-free
  edge-claim words (:func:`~repro.core.runtime.rounds.run_async_slice`).
  Any-valid; certify with :func:`repro.chordality.verify_extraction`.

Work traces are a **driver** feature: for synchronous rounds the trace is
reconstructed from each round's snapshot in canonical ascending order, so
it is identical for every executor (the trace is a property of the
schedule, not of who ran it); for the asynchronous sweep events are
recorded at service time (under a lock when thread-sliced).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.instrument import CostModelParams, TraceBuilder, WorkTrace
from repro.core.kernels import assemble_edges, build_arena_keys
from repro.core.runtime.layout import CTRL_NKEYS
from repro.errors import ConfigError, ConvergenceError
from repro.parallel.partition import balanced_chunks

__all__ = ["drive", "backend_run_fn", "SCHEDULES", "VARIANTS"]

SCHEDULES = ("asynchronous", "synchronous")
VARIANTS = ("optimized", "unoptimized")


def drive(
    state,
    executor,
    *,
    schedule: str = "asynchronous",
    variant: str = "optimized",
    collect_trace: bool = False,
    cost_params: CostModelParams | None = None,
    max_iterations: int | None = None,
) -> tuple[np.ndarray, list[int], WorkTrace | None]:
    """Run one extraction; returns ``(edges, queue_sizes, trace)``.

    Parameters
    ----------
    state:
        A bound :class:`~repro.core.runtime.state.StateBackend`.
    executor:
        An executor backend (see :mod:`repro.core.runtime.executors`).
    schedule:
        ``"asynchronous"`` (paper-matching) or ``"synchronous"``.
    variant:
        ``"optimized"`` (O(1) parent advance) or ``"unoptimized"``
        (O(deg) advance).  Both visit the same parents in the same order,
        so the edge set is variant-independent — only trace costs differ.
    collect_trace:
        Record the per-LP-vertex work trace for the machine models.
        Supported by in-process executors (the live process rounds have
        no well-defined per-pair costs to charge).
    cost_params / max_iterations:
        Trace op weights; iteration safety bound (default
        ``max_degree + 2``).
    """
    if variant not in VARIANTS:
        raise ConfigError(
            f"unknown variant {variant!r}; expected 'optimized' or 'unoptimized'"
        )
    if schedule not in SCHEDULES:
        raise ConfigError(
            f"schedule must be 'asynchronous' or 'synchronous', got {schedule!r}"
        )
    builder = TraceBuilder(
        variant, state.n, state.nnz // 2, cost_params, enabled=collect_trace
    )
    if state.trivial:
        return (
            np.empty((0, 2), dtype=np.int64),
            [],
            builder.trace if collect_trace else None,
        )
    state.reset(schedule)
    limit = max_iterations if max_iterations is not None else state.max_degree + 2
    live_rounds = getattr(executor, "live_rounds", False)
    if schedule == "asynchronous" and executor.in_process and not live_rounds:
        if not hasattr(state, "set_mirrors"):
            raise ConfigError(
                "the asynchronous in-process sweep needs a state backend "
                "with set_mirrors() (StateBackend subclasses provide it); "
                f"got {type(state).__name__}"
            )
        return _drive_sweep(state, executor, variant, builder, limit)
    if collect_trace and schedule == "asynchronous":
        raise ConfigError(
            "collect_trace is not supported for asynchronous live rounds "
            "(process-team / native executors); use the sweep executors"
        )
    return _drive_rounds(state, executor, schedule, variant, builder, limit)


def backend_run_fn(state_factory, executor_factory):
    """Build an :class:`~repro.core.engines.EngineSpec` ``run_fn`` from a
    backend pairing.

    ``executor_factory(config)`` makes the executor;
    ``state_factory(graph, num_slices, config)`` makes the bound state.
    The returned callable has the registry's uniform ``(graph, config,
    pool)`` signature — this is the whole recipe for plugging a new
    in-process backend into :func:`~repro.core.engines.register_engine`.
    The executor only needs the documented five-method surface
    (``num_slices`` / ``in_process`` / ``run_round`` / ``map`` /
    ``close``); its ``close()`` is always called, even on failure.
    """

    def run_fn(graph, config, pool=None):
        executor = executor_factory(config)
        try:
            state = state_factory(graph, executor.num_slices, config)
            return drive(
                state,
                executor,
                schedule=config.schedule,
                variant=config.variant,
                collect_trace=config.collect_trace,
                cost_params=config.cost_params,
                max_iterations=config.max_iterations,
            )
        finally:
            executor.close()

    return run_fn


# ---------------------------------------------------------------------------
# Barrier rounds (synchronous everywhere; asynchronous on process teams)


def _drive_rounds(
    state, executor, schedule: str, variant: str, builder: TraceBuilder, limit: int
) -> tuple[np.ndarray, list[int], WorkTrace | None]:
    a = state.arrays
    n = state.n
    ctrl = a["control"]
    live = schedule == "asynchronous"
    if live and not a["edge_state"].size:
        raise ConfigError(
            "asynchronous live rounds need edge-claim words; build the "
            "state with LocalState(graph, edge_claims=True) (or a "
            "SharedSegmentState)"
        )
    num_slices = executor.num_slices
    degrees = state.degrees() if builder.enabled else None

    queue_sizes: list[int] = []
    chunks: list[tuple[np.ndarray, np.ndarray]] = []
    # Reused distinct-parent scatter mask; cleared per round by
    # un-setting exactly the entries the round set.
    pmask = np.zeros(n, dtype=bool)

    while True:
        active = np.flatnonzero(a["lp"][:n] >= 0)
        na = active.size
        if na == 0:
            break
        if len(queue_sizes) >= limit:
            raise ConvergenceError(
                f"exceeded iteration budget {limit} with {na} active "
                "vertices; this indicates an internal bug"
            )
        parents = a["lp"][:n][active]
        # |Q1| = number of distinct parents.  A scatter-mask count is
        # O(n + active) and beats np.unique's sort — at scale 14 the
        # unique() call alone cost more than the compiled round bodies.
        pmask[parents] = True
        queue_sizes.append(int(np.count_nonzero(pmask)))
        pmask[parents] = False
        a["active"][:na] = active
        a["parents"][:na] = parents
        if live:
            # No snapshot, no key compression: slices probe the live arena.
            nkeys = 0
        else:
            # Barrier: freeze this iteration's chordal-set prefix lengths
            # and compress the filled arena into the sorted key array —
            # unless the executor's bodies probe arena runs directly
            # (the compiled path advertises needs_keys=False).
            a["snapshot"][:n] = a["counts"][:n]
            if getattr(executor, "needs_keys", True):
                nkeys = build_arena_keys(
                    a["arena"], a["offsets"], a["snapshot"][:n], n, out=a["keys"]
                ).size
            else:
                nkeys = 0
        if num_slices == 1:
            a["cuts"][0] = 0
            a["cuts"][1] = na
        else:
            # Balance slices by expected service cost: subset tests probe
            # min(|C[w]|, prefix) elements, so the (snapshot) chordal-set
            # sizes plus a constant are the per-vertex proxy.
            sizes = a["snapshot" if not live else "counts"][:n]
            weights = sizes[active].astype(np.float64) + 1.0
            ranges = balanced_chunks(weights, num_slices)
            a["cuts"][:num_slices] = [r[0] for r in ranges]
            a["cuts"][num_slices] = ranges[-1][1]
        ctrl[CTRL_NKEYS] = nkeys
        executor.run_round(state, schedule)
        # uint8 -> bool is a free reinterpret; the mask is consumed by
        # the gathers below before the next round overwrites 'ok'.
        accepted = a["ok"][:na].view(bool)
        chunks.append((parents[accepted], active[accepted]))
        if builder.enabled:
            _record_sync_round(
                builder, degrees, a["snapshot"][:n], active, parents, accepted, variant
            )

    edges = assemble_edges(chunks)
    if live:
        state.verify_async_accounting(int(edges.shape[0]))
    return edges, queue_sizes, builder.trace if builder.enabled else None


def _record_sync_round(
    builder: TraceBuilder,
    degrees: np.ndarray,
    snapshot: np.ndarray,
    active: np.ndarray,
    parents: np.ndarray,
    accepted: np.ndarray,
    variant: str,
) -> None:
    """Feed one synchronous round to the trace builder in canonical order.

    Under snapshot semantics every (child, parent) service of a round is
    independent, so per-pair costs are exact functions of the snapshot:
    the subset test costs ``min(|C[w]|, |C[v]|) + 1`` comparisons (1 when
    the cardinality filter rejects or ``C[w]`` is empty) and the parent
    advance costs 1 (Opt) or ``deg(w)`` (Unopt).  Events are recorded in
    ascending active order — the canonical serialisation — so the trace
    is identical for every executor.
    """
    for v in np.unique(parents).tolist():
        builder.scan(v, int(degrees[v]))
    cw = snapshot[active]
    kp = snapshot[parents]
    test_cost = np.where((cw > kp) | (cw == 0), 1, cw + 1)
    if variant == "unoptimized":
        adv_cost = degrees[active]
    else:
        adv_cost = np.ones(active.size, dtype=np.int64)
    for v, w, tc, ac, ok in zip(
        parents.tolist(),
        active.tolist(),
        test_cost.tolist(),
        adv_cost.tolist(),
        accepted.tolist(),
    ):
        builder.service(v, w, tc, ac, ok)
    builder.flush()


# ---------------------------------------------------------------------------
# Maximal-progress sweep (asynchronous on in-process executors)


def _drive_sweep(
    state, executor, variant: str, builder: TraceBuilder, limit: int
) -> tuple[np.ndarray, list[int], WorkTrace | None]:
    a = state.arrays
    n = state.n
    lp = a["lp"]
    degrees = state.degrees()
    sets = state.set_mirrors()
    num_slices = executor.num_slices
    traced = builder.enabled
    # Single-slice sweeps own every turn: no stale children-map entries
    # can exist, no trace lock is needed, and served lists are cleared.
    exclusive = num_slices == 1
    lock = threading.Lock() if (traced and not exclusive) else None

    # children[v] = vertices whose current lowest parent is v.
    children: list[list[int]] = [[] for _ in range(n)]
    for w in range(n):
        v = int(lp[w])
        if v >= 0:
            children[v].append(w)
    q1: list[int] = sorted({int(lp[w]) for w in range(n) if lp[w] >= 0})

    queue_sizes: list[int] = []
    local_edges: list[list[tuple[int, int]]] = [[] for _ in range(num_slices)]
    next_parts: list[set[int]] = [set() for _ in range(num_slices)]

    while q1:
        queue_sizes.append(len(q1))
        if len(queue_sizes) > limit:
            raise ConvergenceError(
                f"exceeded iteration budget {limit} (queue={len(q1)}); "
                "this indicates an internal bug"
            )
        # Partition Q1 contiguously, weighted by expected service cost
        # (child count proxied by degree).
        chunk_of = balanced_chunks(degrees[q1].astype(np.float64) + 1.0, num_slices)
        q1_list = q1

        def sweep(tid: int) -> None:
            start, stop = chunk_of[tid]
            _serve_turns(
                state,
                q1_list,
                start,
                stop,
                children,
                sets,
                degrees,
                exclusive,
                variant == "unoptimized",
                local_edges[tid],
                next_parts[tid],
                builder if traced else None,
                lock,
            )

        executor.map(sweep)
        merged: set[int] = set()
        for part in next_parts:
            merged |= part
            part.clear()
        q1 = sorted(merged)
        if traced:
            builder.flush()

    # Merge per-slice edge lists deterministically (slice id order).
    rows = [pair for out in local_edges for pair in out]
    edges = (
        np.asarray(rows, dtype=np.int64).reshape(-1, 2)
        if rows
        else np.empty((0, 2), dtype=np.int64)
    )
    return edges, queue_sizes, builder.trace if traced else None


def _serve_turns(
    state,
    q1_list: list[int],
    start: int,
    stop: int,
    children: list[list[int]],
    sets: list[set[int]],
    degrees: np.ndarray,
    exclusive: bool,
    unopt: bool,
    out_edges: list[tuple[int, int]],
    next_q: set[int],
    builder: TraceBuilder | None,
    lock: threading.Lock | None,
) -> None:
    """One slice's turns of one sweep iteration (lines 13-22 per turn).

    Serves the children of each owned queue vertex against live state:
    the parent's chordal-set prefix is frozen once per turn (``C[v]``
    cannot change during its own turn when exclusive; when thread-sliced
    a concurrent append is invisible to the frozen prefix, which can only
    reject — the paper's benign race).  Each served child appends to its
    own chordal set, advances to its next parent, and re-enters the
    children map under it.
    """
    a = state.arrays
    arena = a["arena"]
    offsets = a["offsets"]
    counts = a["counts"]
    cursor = a["cursor"]
    lp = a["lp"]
    lower = a["lower"]
    indptr = a["indptr"]
    indices = a["indices"]

    for qi in range(start, stop):
        v = q1_list[qi]
        kids = children[v]
        if builder is not None:
            if lock is not None:
                with lock:
                    builder.scan(v, int(degrees[v]))
            else:
                builder.scan(v, int(degrees[v]))
        # Live prefix: frozen once per turn.  When exclusive, C[v] cannot
        # change during v's own turn (all of v's same-iteration gains
        # happen at its parents' earlier turns), so the freeze is exact.
        cv = int(counts[v])
        bound = int(arena[int(offsets[v]) + cv - 1]) if cv else -1
        set_v = sets[v]
        # len(kids) re-read each step: other slices may append while we
        # sweep (a child arriving at v mid-turn).
        i = 0
        while i < len(kids):
            w = kids[i]
            i += 1
            if not exclusive and int(lp[w]) != v:
                continue  # stale entry (served at an earlier turn elsewhere)
            # Line 15: is C[w] a subset of the frozen prefix of C[v]?
            # Cost is min(|C[w]|, prefix) + 1 — linear in the smallest
            # set thanks to the ordered chordal sets (1 when the
            # cardinality filter rejects or C[w] is empty).
            cw = int(counts[w])
            if cw > cv:
                ok = False
                tc = 1
            elif cw == 0:
                ok = True
                tc = 1
            else:
                off_w = int(offsets[w])
                cw_view = arena[off_w:off_w + cw]
                tc = cw + 1
                if int(cw_view[cw - 1]) > bound:
                    ok = False
                else:
                    ok = set_v.issuperset(cw_view.tolist())
            if ok:
                # Lines 16-17: C[w] += {v}; record (v, w).  Arena slot is
                # written before the count bump (ordered publication).
                arena[int(offsets[w]) + cw] = v
                sets[w].add(v)
                counts[w] = cw + 1
                out_edges.append((v, w))
            # Lines 18-20: advance w to its next lowest parent (sorted
            # adjacency: the parents of w are the first lower[w] slots).
            c = int(cursor[w]) + 1
            cursor[w] = c
            if c < int(lower[w]):
                x = int(indices[int(indptr[w]) + c])
            else:
                x = -1
            lp[w] = x
            if x >= 0:
                children[x].append(w)
                next_q.add(x)
            if builder is not None:
                ac = int(degrees[w]) if unopt else 1
                if lock is not None:
                    with lock:
                        builder.service(v, w, tc, ac, ok)
                else:
                    builder.service(v, w, tc, ac, ok)
        if exclusive:
            # No other slice can append a late child, so the served list
            # can be dropped; when thread-sliced the entries survive for
            # the next iteration and the lp check skips them.
            children[v] = []
