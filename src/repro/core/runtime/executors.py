"""Executor backends: who runs a round's slices.

An *executor backend* turns one round of the schedule driver into
slice-level work.  Three implementations cover the paper's execution
regimes; all expose the same two-method surface so the driver never
branches on the concrete type:

* ``run_round(state, schedule)`` — execute one published barrier round
  (the kernel bodies of :mod:`repro.core.runtime.rounds`) over every
  slice and return after the implicit barrier.
* ``map(body)`` — run an arbitrary in-process callable ``body(tid)`` on
  every slice (the asynchronous sweep's turn loop).  Only in-process
  executors support this; the process team's workers execute the fixed
  kernel repertoire selected through the shared control block instead.

:class:`SerialExecutor`
    One slice, the calling thread.  Pairs with
    :class:`~repro.core.runtime.state.LocalState` as the ``superstep``
    engine.
:class:`ThreadTeamExecutor`
    A persistent :class:`~repro.parallel.runtime.ThreadTeam` (GIL-bound;
    demonstrates the concurrency structure).  Pairs with ``LocalState``
    as the ``threaded`` engine.
:class:`NativeThreadTeamExecutor`
    The same thread team dispatching the *compiled* round bodies
    (:mod:`repro.core.native`), which release the GIL — genuinely
    parallel threads over shared arrays, the paper's execution model
    without fork/IPC.  Pairs with ``LocalState(edge_claims=True)`` as
    the ``native`` engine; falls back to the NumPy bodies (identical
    results, GIL-bound speed) when no compiled backend is available.
:class:`ProcessTeamExecutor`
    A persistent team of worker processes attached to one shared-memory
    segment, with the barrier-agent thread that keeps a SIGKILLed worker
    from wedging the coordinator.  Pairs with
    :class:`~repro.core.runtime.state.SharedSegmentState` as the
    ``process`` engine (see :class:`~repro.core.procpool.ProcessPool`).
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.core.runtime.layout import (
    CMD_RUN,
    CMD_SHUTDOWN,
    CTRL_ARENA_CAP,
    CTRL_CMD,
    CTRL_ERROR,
    CTRL_GEN,
    CTRL_N_CAP,
    CTRL_NNZ_CAP,
    CTRL_SCHEDULE,
    SCHED_ASYNC,
    build_spec,
)
from repro.core.runtime.rounds import round_body, run_async_slice, run_sync_slice
from repro.parallel.runtime import ThreadTeam
from repro.parallel.shm import SharedArrayBlock

__all__ = [
    "SerialExecutor",
    "ThreadTeamExecutor",
    "NativeThreadTeamExecutor",
    "ProcessTeamExecutor",
    "WorkerTeamError",
]


class WorkerTeamError(RuntimeError):
    """A worker team failed mid-round (dead worker, wedged barrier)."""


class SerialExecutor:
    """Single-slice executor running everything in the calling thread."""

    #: Round bodies and sweep turns run in the driver's own process.
    in_process = True
    num_slices = 1

    def run_round(self, state, schedule: str) -> None:
        round_body(schedule)(0, state.arrays)

    def map(self, body) -> None:
        body(0)

    def close(self) -> None:
        """Nothing to release (symmetry with the team executors)."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ThreadTeamExecutor:
    """Persistent thread team; one slice per thread, barrier per round."""

    in_process = True

    def __init__(self, num_threads: int) -> None:
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        self.num_slices = num_threads
        self._team: ThreadTeam | None = None

    def _ensure_team(self) -> ThreadTeam:
        if self._team is None:
            self._team = ThreadTeam(self.num_slices)
        return self._team

    def run_round(self, state, schedule: str) -> None:
        body = round_body(schedule)
        arrays = state.arrays
        self._ensure_team().run(lambda tid: body(tid, arrays))

    def map(self, body) -> None:
        self._ensure_team().run(body)

    def close(self) -> None:
        if self._team is not None:
            self._team.close()
            self._team = None

    def __enter__(self) -> "ThreadTeamExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NativeThreadTeamExecutor(ThreadTeamExecutor):
    """Thread team dispatching the compiled (GIL-releasing) round bodies.

    Structurally a :class:`ThreadTeamExecutor`; the differences are all
    about *what* runs per slice:

    * rounds call the C bodies of :mod:`repro.core.native`, which
      operate on the schema arrays in place and release the GIL, so the
      slices of a round execute concurrently on real cores;
    * ``live_rounds`` tells the driver to run the asynchronous schedule
      as lock-free live rounds (the process engine's regime — per-arc
      CAS claim words) instead of the in-process children-map sweep;
    * ``needs_keys`` is ``False`` on the compiled path: the C subset
      test binary-searches each parent's arena run directly, so the
      driver skips building the global key array every round.

    When the compiled backend is unavailable (no toolchain, no cffi,
    ``REPRO_NATIVE=0``), the executor transparently runs the NumPy round
    bodies instead — same edge sets (bit-identical under the synchronous
    schedule), GIL-bound speed — so the ``native`` engine always works.
    """

    #: Asynchronous schedule runs live rounds, not the children-map sweep.
    live_rounds = True

    def __init__(self, num_threads: int) -> None:
        super().__init__(num_threads)
        from repro.core.native import native_available, native_round_body

        self._native = native_available()
        self._native_body = native_round_body if self._native else None

    @property
    def needs_keys(self) -> bool:
        """The compiled subset test probes arena runs, not the key array."""
        return not self._native

    @property
    def kernel_path(self) -> str:
        """Which bodies this executor dispatches: ``native`` or ``numpy``."""
        return "native" if self._native else "numpy"

    def run_round(self, state, schedule: str) -> None:
        if not self._native:
            return super().run_round(state, schedule)
        body = self._native_body(schedule)
        arrays = state.arrays
        if self.num_slices == 1:
            # One slice owns the whole round: the barrier team would only
            # add handoff latency around a single GIL-releasing call.
            body(0, arrays)
            return
        self._ensure_team().run(lambda tid: body(tid, arrays))


# ---------------------------------------------------------------------------
# Process team


def _worker_main(tid, shm_name, caps, num_workers, start_barrier, done_barrier) -> None:
    """Worker loop: wait at the start barrier, remap if the coordinator
    published a new layout generation, run a slice, join the done barrier;
    repeat until the shutdown command (or the coordinator breaks the
    barriers — a quiet exit, the coordinator already raised)."""
    import signal
    import threading

    # A fork inherits the parent's Python signal handlers.  When the
    # embedding application handles SIGTERM/SIGINT (e.g. `repro serve`'s
    # graceful drain), an inherited handler would swallow the
    # coordinator's terminate() during reaping — the handler runs its
    # (meaningless, forked-copy) cleanup and the worker resumes its
    # barrier wait, leaving an unkillable orphan.  Workers take the
    # default dispositions instead: terminate() terminates.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)

    block = SharedArrayBlock.attach(shm_name, build_spec(*caps, num_workers))
    ctrl = block.arrays["control"]
    # Workers only read/write shared state between the two barriers, while
    # the coordinator waits — so the generation check below cannot race
    # with a coordinator-side remap.
    gen = -1
    try:
        while True:
            start_barrier.wait()
            if int(ctrl[CTRL_CMD]) == CMD_SHUTDOWN:
                return
            if int(ctrl[CTRL_GEN]) != gen:
                gen = int(ctrl[CTRL_GEN])
                block.remap(
                    build_spec(
                        int(ctrl[CTRL_N_CAP]),
                        int(ctrl[CTRL_NNZ_CAP]),
                        int(ctrl[CTRL_ARENA_CAP]),
                        num_workers,
                    )
                )
                ctrl = block.arrays["control"]
            run = (
                run_async_slice
                if int(ctrl[CTRL_SCHEDULE]) == SCHED_ASYNC
                else run_sync_slice
            )
            try:
                run(tid, block.arrays)
            except BaseException:  # noqa: BLE001 - flag forwarded to coordinator
                ctrl[CTRL_ERROR] = tid + 1
            # Publish liveness: the coordinator zeroed the epoch words
            # before releasing the start barrier and asserts every worker
            # reached this line (single aligned-word store per worker).
            block.arrays["epochs"][tid] += 1
            done_barrier.wait()
    except threading.BrokenBarrierError:
        return
    finally:
        block.close()


def _context():
    """Prefer fork (cheap, inherits nothing mutable we rely on); fall back
    to the platform default (spawn) — the worker protocol supports both."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else None)


def _barrier_agent(req, resp, start, done, timeout) -> None:
    """Coordinator-side barrier waiter (one daemon thread per team).

    ``multiprocessing`` barriers can block *unboundedly* — beyond any
    ``wait(timeout)`` — when a participant is killed while holding the
    barrier's internal condition state, so the coordinator's main thread
    must never wait on them directly.  It enqueues ``"superstep"`` (start
    + done barrier) or ``"shutdown"`` (start barrier only; workers exit
    before the done barrier) requests here and waits on ``resp`` with a
    real timeout; if this thread wedges, it is simply abandoned (daemon)
    and the team torn down.  ``None`` retires the agent.
    """
    while True:
        cmd = req.get()
        if cmd is None:
            return
        try:
            start.wait(timeout=timeout)
            if cmd == "superstep":
                done.wait(timeout=timeout)
            resp.put(None)
        except Exception as exc:  # BrokenBarrierError or timeout
            resp.put(exc)
            return


class ProcessTeamExecutor:
    """Persistent worker-process team over one shared segment.

    Spawning the executor starts the workers (attached to ``shm_name``
    with the ``caps`` layout) and the barrier agent.  Rounds are
    published through the shared control block — the workers' round
    repertoire is fixed (:mod:`repro.core.runtime.rounds`), selected per
    round by the schedule control word — so :meth:`map` (arbitrary
    Python bodies) is deliberately unsupported.
    """

    in_process = False

    def __init__(
        self,
        num_workers: int,
        shm_name: str,
        caps: tuple[int, int, int],
        barrier_timeout: float,
    ) -> None:
        import queue
        import threading

        self.num_slices = num_workers
        self.barrier_timeout = barrier_timeout
        ctx = _context()
        self._start = ctx.Barrier(num_workers + 1)
        self._done = ctx.Barrier(num_workers + 1)
        # The coordinator never touches the barriers directly: a worker
        # killed mid-wait (OOM killer, external SIGKILL) can leave the
        # barrier's internal condition state permanently unreleasable, and
        # Barrier.wait(timeout) does not bound that lock/drain phase.  A
        # per-team agent thread does the waiting instead; the coordinator
        # waits on the response queue with a real timeout and sacrifices
        # the (daemon) agent if the barrier state is wedged.
        self._agent_req: queue.Queue = queue.Queue()
        self._agent_resp: queue.Queue = queue.Queue()
        self._agent = threading.Thread(
            target=_barrier_agent,
            args=(
                self._agent_req,
                self._agent_resp,
                self._start,
                self._done,
                barrier_timeout,
            ),
            daemon=True,
            name="repro-procpool-barrier-agent",
        )
        self._agent.start()
        self.procs = [
            ctx.Process(
                target=_worker_main,
                args=(tid, shm_name, caps, num_workers, self._start, self._done),
                daemon=True,
                name=f"repro-procworker-{tid}",
            )
            for tid in range(num_workers)
        ]
        for p in self.procs:
            p.start()

    # ------------------------------------------------------------------
    def run_round(self, state, schedule: str) -> None:
        """Release the team into one published round and join the barrier.

        The driver has already written the round inputs (active set,
        cuts, snapshot/keys, control words); this publishes the RUN
        command, waits the round out through the barrier agent, and
        checks the two per-round invariants: no worker flagged an
        exception, and every worker bumped its epoch word exactly once
        (it actually swept its slice).
        """
        a = state.arrays
        ctrl = a["control"]
        a["epochs"][: self.num_slices] = 0
        ctrl[CTRL_CMD] = CMD_RUN
        ctrl[CTRL_ERROR] = 0
        self._superstep_barrier()
        if int(ctrl[CTRL_ERROR]) != 0:
            raise WorkerTeamError(
                f"worker {int(ctrl[CTRL_ERROR]) - 1} failed during a superstep"
            )
        lagging = np.flatnonzero(a["epochs"][: self.num_slices] != 1)
        if lagging.size:  # pragma: no cover - structural invariant
            raise WorkerTeamError(
                f"workers {lagging.tolist()} missed a round (epoch "
                "counter not bumped); the shared segment is inconsistent"
            )

    def map(self, body) -> None:
        raise NotImplementedError(
            "the process team runs the fixed kernel rounds published through "
            "the control block; arbitrary in-process bodies need the serial "
            "or thread-team executor"
        )

    def _superstep_barrier(self) -> None:
        import queue

        self._agent_req.put("superstep")
        try:
            # The agent's two waits are bounded by barrier_timeout each;
            # the slack covers queue latency.  Hitting Empty means the
            # barrier state itself is wedged (worker died holding it).
            failure = self._agent_resp.get(timeout=2 * self.barrier_timeout + 5.0)
        except queue.Empty:
            failure = RuntimeError(
                "superstep barrier deadlocked (a worker likely died while "
                "holding barrier state)"
            )
        if failure is not None:
            dead = [p.name for p in self.procs if not p.is_alive()]
            raise WorkerTeamError(
                f"process-engine superstep barrier failed ({failure!r}); "
                f"dead workers: {dead or 'none'}"
            ) from failure

    # ------------------------------------------------------------------
    @property
    def all_alive(self) -> bool:
        return all(p.pid is not None and p.is_alive() for p in self.procs)

    def close(self, ctrl: np.ndarray | None = None) -> None:
        """Stop the team (idempotent; best-effort reaping).

        With ``ctrl`` given and the whole team alive, workers are asked
        for a clean exit through the shutdown command + start barrier; a
        worker killed mid-wait leaves the barrier unreleasable, so dead
        or part-dead teams are reaped directly instead.  The barrier poke
        goes through the agent thread and is abandoned on timeout.
        """
        if not self.procs:
            return
        try:
            if ctrl is not None and self.all_alive:
                ctrl[CTRL_CMD] = CMD_SHUTDOWN
                self._agent_req.put("shutdown")
                self._agent_resp.get(timeout=10.0)
        except Exception:  # queue.Empty, or workers died under us; reap below
            pass
        self._agent_req.put(None)  # retire an idle agent (stuck one is daemon)
        for p in self.procs:
            try:
                if p.pid is None:  # Process.start() never ran
                    continue
                p.join(timeout=5.0)
                if p.is_alive():  # pragma: no cover - hard-kill safety net
                    p.terminate()
                    p.join(timeout=5.0)
            except Exception:  # pragma: no cover - reaping is best-effort
                pass
        self.procs = []
