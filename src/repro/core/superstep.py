"""Serial array-based engine for Algorithm 1 (both schedules).

This is the production single-process implementation of the paper's
algorithm and the one the instrumented experiments run (the work trace it
emits is hardware independent).  Since the unified-runtime refactor it is
the thinnest possible pairing of the shared schedule driver with local
backends:

    drive(LocalState(graph), SerialExecutor(), schedule=...)

Both deterministic serialisations described in
:mod:`repro.core.reference` are supported:

* ``"asynchronous"`` (default, paper-matching) — ascending maximal-
  progress sweep of Q1 with live state (the driver's children-map sweep,
  semantically identical to the paper's adjacency rescan but O(pairs)
  per iteration).  Reproduces the paper's headline iteration counts.

* ``"synchronous"`` — barrier semantics, one parent consumed per active
  vertex per superstep, executed through the bulk NumPy kernels of
  :mod:`repro.core.kernels`.  Bit-identical across every engine and
  worker count.

Cost structure per iteration matches the paper exactly (the driver
charges each LP vertex its adjacency scan and each served child one
subset test + parent advance + queue ops); see
:func:`repro.core.runtime.driver.drive`.
"""

from __future__ import annotations

import numpy as np

from repro.core.instrument import CostModelParams, WorkTrace
from repro.core.runtime import LocalState, SerialExecutor, drive
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph

__all__ = ["superstep_max_chordal"]


def superstep_max_chordal(
    graph: CSRGraph,
    *,
    variant: str = "optimized",
    schedule: str = "asynchronous",
    collect_trace: bool = False,
    cost_params: CostModelParams | None = None,
    max_iterations: int | None = None,
    use_kernels: bool | None = None,
) -> tuple[np.ndarray, list[int], WorkTrace | None]:
    """Extract the maximal chordal edge set.

    Parameters
    ----------
    graph:
        Input graph.
    variant:
        ``"optimized"`` (sorted adjacency, O(1) parent advance) or
        ``"unoptimized"`` (O(deg) advance) — the paper's Opt/Unopt pair.
        Both visit the same parents in the same order, so the edge set is
        identical; only trace costs differ.
    schedule:
        ``"asynchronous"`` (paper-matching, default) or ``"synchronous"``.
    collect_trace:
        Record the per-LP-vertex work trace for the machine models
        (adds bookkeeping overhead; off by default).
    cost_params:
        Op-count weights for the trace (defaults are fine).
    max_iterations:
        Safety bound, default ``max_degree + 2``.
    use_kernels:
        Deprecated no-op: the unified runtime always executes synchronous
        supersteps through the bulk kernels (the historical Python pair
        loop was deleted with the runtime refactor; traces are now
        reconstructed driver-side from the same rounds).  The historical
        error contract is kept: ``True`` is rejected together with
        ``collect_trace`` or the asynchronous schedule.

    Returns
    -------
    (edges, queue_sizes, trace):
        ``edges`` is the ``(k, 2)`` chordal edge array (parent, child);
        ``queue_sizes`` is |Q1| per iteration; ``trace`` is the
        :class:`WorkTrace` when requested, else ``None``.
    """
    if use_kernels and collect_trace:
        raise ConfigError("use_kernels=True is incompatible with collect_trace")
    if use_kernels and schedule == "asynchronous":
        raise ConfigError(
            "use_kernels=True requires schedule='synchronous'; the "
            "asynchronous sweep has no bulk-kernel form"
        )
    return drive(
        LocalState(graph),
        SerialExecutor(),
        schedule=schedule,
        variant=variant,
        collect_trace=collect_trace,
        cost_params=cost_params,
        max_iterations=max_iterations,
    )
