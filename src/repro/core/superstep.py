"""Serial array-based engine for Algorithm 1 (both schedules).

This is the production implementation of the paper's algorithm and the one
the instrumented experiments run (the work trace it emits is hardware
independent).  It supports the two deterministic serialisations described
in :mod:`repro.core.reference`:

* ``"asynchronous"`` (default, paper-matching) — ascending sweep of Q1
  with live state.  Implemented with a *children map* (``children[v]`` =
  vertices whose current LP is ``v``) instead of the paper's adjacency
  rescan, which is semantically identical (each vertex sits in exactly the
  list of its current LP) but costs O(pairs) instead of O(sum deg(Q1)) per
  iteration in Python.  The work trace still charges the adjacency-scan
  cost the paper's implementation pays.

* ``"synchronous"`` — barrier semantics, one parent consumed per active
  vertex per superstep.  When no work trace is requested this schedule
  runs on the bulk NumPy kernels of :mod:`repro.core.kernels` (identical
  edges and queue sizes, several times faster); the historical pair loop
  remains behind ``use_kernels=False`` and is the engine the traces are
  collected from.

Cost structure per iteration matches the paper exactly:

* every LP vertex in Q1 is charged its adjacency scan (``for all w in
  adj[v]``);
* every served child costs one subset test (= min set size, thanks to the
  ordered chordal sets) plus a parent advance (O(1) optimized / O(deg)
  unoptimized) plus constant queue ops.
"""

from __future__ import annotations

import numpy as np

from repro.core.instrument import CostModelParams, TraceBuilder, WorkTrace
from repro.core.kernels import vectorized_sync_max_chordal
from repro.core.state import ChordalState, make_strategy
from repro.errors import ConfigError, ConvergenceError
from repro.graph.csr import CSRGraph

__all__ = ["superstep_max_chordal"]


def superstep_max_chordal(
    graph: CSRGraph,
    *,
    variant: str = "optimized",
    schedule: str = "asynchronous",
    collect_trace: bool = False,
    cost_params: CostModelParams | None = None,
    max_iterations: int | None = None,
    use_kernels: bool | None = None,
) -> tuple[np.ndarray, list[int], WorkTrace | None]:
    """Extract the maximal chordal edge set.

    Parameters
    ----------
    graph:
        Input graph.
    variant:
        ``"optimized"`` (sorted adjacency, O(1) parent advance) or
        ``"unoptimized"`` (unsorted scan) — the paper's Opt/Unopt pair.
    schedule:
        ``"asynchronous"`` (paper-matching, default) or ``"synchronous"``.
    collect_trace:
        Record the per-LP-vertex work trace for the machine models
        (adds bookkeeping overhead; off by default).
    cost_params:
        Op-count weights for the trace (defaults are fine).
    max_iterations:
        Safety bound, default ``max_degree + 2``.
    use_kernels:
        Synchronous schedule only: run each superstep through the bulk
        NumPy kernels of :mod:`repro.core.kernels` instead of the Python
        pair loop.  ``None`` (default) auto-selects the kernels whenever no
        trace is requested (they produce identical edges and queue sizes,
        just much faster); ``False`` forces the historical loop engine
        (the benchmark baseline); ``True`` is incompatible with
        ``collect_trace`` (the kernels do no per-pair cost accounting).

    Returns
    -------
    (edges, queue_sizes, trace):
        ``edges`` is the ``(k, 2)`` chordal edge array (parent, child);
        ``queue_sizes`` is |Q1| per iteration; ``trace`` is the
        :class:`WorkTrace` when requested, else ``None``.
    """
    if use_kernels and collect_trace:
        raise ConfigError("use_kernels=True is incompatible with collect_trace")
    if use_kernels and schedule == "asynchronous":
        raise ConfigError(
            "use_kernels=True requires schedule='synchronous'; the "
            "asynchronous sweep has no bulk-kernel form"
        )
    if schedule == "asynchronous":
        return _run_async(
            graph, variant, collect_trace, cost_params, max_iterations
        )
    if schedule == "synchronous":
        if use_kernels or (use_kernels is None and not collect_trace):
            edges, queue_sizes = vectorized_sync_max_chordal(
                graph, variant=variant, max_iterations=max_iterations
            )
            return edges, queue_sizes, None
        return _run_sync(
            graph, variant, collect_trace, cost_params, max_iterations
        )
    raise ConfigError(
        f"schedule must be 'asynchronous' or 'synchronous', got {schedule!r}"
    )


def _run_async(
    graph: CSRGraph,
    variant: str,
    collect_trace: bool,
    cost_params: CostModelParams | None,
    max_iterations: int | None,
) -> tuple[np.ndarray, list[int], WorkTrace | None]:
    strategy = make_strategy(graph, variant)
    state = ChordalState(strategy)
    n = graph.num_vertices
    builder = TraceBuilder(variant, n, graph.num_edges, cost_params, enabled=collect_trace)
    degrees = strategy.graph.degrees()

    # children[v] = vertices whose current lowest parent is v.
    children: list[list[int]] = [[] for _ in range(n)]
    q1: set[int] = set()
    lp = state.lp
    for w in range(n):
        v = int(lp[w])
        if v >= 0:
            children[v].append(w)
            q1.add(v)

    counts = state.counts
    queue_sizes: list[int] = []
    limit = max_iterations if max_iterations is not None else graph.max_degree() + 2

    while q1:
        queue_sizes.append(len(q1))
        if len(queue_sizes) > limit:
            raise ConvergenceError(
                f"exceeded iteration budget {limit} (queue={len(q1)}); "
                "this indicates an internal bug"
            )
        q2: set[int] = set()
        for v in sorted(q1):
            if collect_trace:
                builder.scan(v, int(degrees[v]))
            kids = children[v]
            # Live prefix: C[v] cannot change during v's own turn (all of
            # v's same-iteration gains happen at its parents' earlier
            # turns), so reading counts[v] once here is exact.
            for w in kids:
                ok, test_cost = state.subset_test(w, v, int(counts[v]))
                if ok:
                    state.append_chordal(w, v)
                    state.record_edge(v, w)
                adv_cost = state.advance(w)
                x = int(lp[w])
                if x >= 0:
                    children[x].append(w)
                    q2.add(x)
                if collect_trace:
                    builder.service(v, w, test_cost, adv_cost, ok)
            children[v] = []
        if collect_trace:
            builder.flush()
        q1 = q2

    trace = builder.trace if collect_trace else None
    return state.edge_array(), queue_sizes, trace


def _run_sync(
    graph: CSRGraph,
    variant: str,
    collect_trace: bool,
    cost_params: CostModelParams | None,
    max_iterations: int | None,
) -> tuple[np.ndarray, list[int], WorkTrace | None]:
    strategy = make_strategy(graph, variant)
    state = ChordalState(strategy)
    n = graph.num_vertices
    builder = TraceBuilder(variant, n, graph.num_edges, cost_params, enabled=collect_trace)
    degrees = strategy.graph.degrees()

    queue_sizes: list[int] = []
    limit = max_iterations if max_iterations is not None else graph.max_degree() + 2

    while True:
        active = state.active_vertices()
        if active.size == 0:
            break
        if len(queue_sizes) >= limit:
            raise ConvergenceError(
                f"exceeded iteration budget {limit} with {active.size} active "
                "vertices; this indicates an internal bug"
            )
        # Barrier: freeze this iteration's parent assignments and chordal-
        # set prefix lengths.  Q1 is the set of distinct current LPs.
        parents = state.lp[active].copy()
        q1 = np.unique(parents)
        queue_sizes.append(int(q1.size))
        snapshot = state.counts.copy()

        if collect_trace:
            for v in q1.tolist():
                builder.scan(v, int(degrees[v]))

        for w, v in zip(active.tolist(), parents.tolist()):
            ok, test_cost = state.subset_test(w, v, int(snapshot[v]))
            if ok:
                state.append_chordal(w, v)
                state.record_edge(v, w)
            adv_cost = state.advance(w)
            if collect_trace:
                builder.service(v, w, test_cost, adv_cost, ok)
        if collect_trace:
            builder.flush()

    trace = builder.trace if collect_trace else None
    return state.edge_array(), queue_sizes, trace
