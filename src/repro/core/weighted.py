"""Weighted maximal chordal extraction (Dearing–Shier–Warner, weighted).

The paper's Algorithm 1 maximises nothing — it returns *a* maximal
chordal subgraph.  This module is the quality-directed serial
counterpart: a weighted variant of the MAXCHORD algorithm of Dearing,
Shier & Warner (1988) that biases the retained edge set toward maximum
total edge weight, exposed through the engine registry as
``engine="weighted"`` (see :mod:`repro.core.engines`).

Algorithm
---------
As in :func:`repro.baselines.dearing.dearing_max_chordal`, every
unselected vertex ``w`` carries a label ``L(w)`` — the set of selected
neighbors it may connect to while preserving chordality (``L(w)`` is
always a clique of the current subgraph, so accepting all of ``L(w)``'s
edges keeps the subgraph chordal).  The unweighted pass selects the
vertex with the *largest* label; the weighted pass selects the vertex
whose label has the largest **total edge weight** (chompack's
``maxchord`` is the bucketed form of the same idea), breaking ties by
label cardinality and then by smaller vertex id — so under uniform
positive (or all-zero) weights the selection order, and hence the edge
set, is *identical* to the unweighted baseline (pinned in
``tests/test_weighted_engine.py``).

Weight-directed selection preserves chordality (the label-clique
invariant is selection-order independent) but not the maximality proof
of Dearing et al., which leans on max-cardinality selection.  The pass
therefore finishes with the weight-greedy completion
(:func:`repro.core.maximalize.maximalize_chordal_edges` with heaviest-
first candidates), so the engine's contract is a **certified-maximal**,
weight-greedy chordal subgraph: ``verify_extraction(...,
check_maximal=True)`` passes on the raw engine output.

Portfolio floor
---------------
Greedy weight-directed selection is a heuristic and on some inputs a
*cardinality*-directed extraction followed by weight-greedy completion
retains more weight.  The engine (:func:`weighted_portfolio`) therefore
evaluates a small deterministic portfolio — the weighted pass, the
unweighted MAXCHORD pass, and the paper's Algorithm 1 under both
schedules, each closed by weight-greedy *and* plain completion — and
returns the heaviest candidate.  Because the portfolio contains the
exact edge set the unweighted pipeline (``engine="superstep"``,
``maximalize=True``) produces, the weighted engine retains **at least
as much weight as the unweighted extraction on every input, by
construction** — the invariant ``BENCH_quality.json`` guards.

Weights come from the graph (:func:`repro.graph.weights.
attach_edge_weights`); an unweighted graph runs under uniform weight 1.0
and degenerate weights (zero, negative) are legal preferences — see
:mod:`repro.graph.weights`.

Complexity: ``O(|E| * Δ)`` for the labelled pass (lazy max-heap) plus
one addability BFS per initially-rejected edge for the completion.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.baselines.dearing import dearing_max_chordal
from repro.core.maximalize import maximalize_chordal_edges
from repro.graph.csr import CSRGraph
from repro.graph.weights import edge_weight_mapping, retained_weight

__all__ = ["weighted_max_chordal", "weighted_portfolio"]


def weighted_max_chordal(
    graph: CSRGraph, start: int = 0, *, complete: bool = True
) -> tuple[np.ndarray, list[int]]:
    """Extract a maximal chordal edge set maximising retained weight greedily.

    Parameters
    ----------
    graph:
        Input graph; per-edge weights are read from
        :attr:`CSRGraph.arc_weights` (uniform 1.0 when absent).
    start:
        The initially selected vertex (ties thereafter break toward
        larger label weight, then larger label size, then smaller id —
        fully deterministic).
    complete:
        Run the weight-greedy completion pass, making the output
        certified maximal.  ``False`` returns the raw labelled pass
        (used by tests to exhibit the maximality gap the completion
        closes).

    Returns
    -------
    ``(edges, queue_sizes)`` — the ``(k, 2)`` chordal edge array and a
    single-element ``[n]`` profile (the pass is one serial sweep over
    all ``n`` vertices; there is no per-iteration parallelism to
    profile).
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty((0, 2), dtype=np.int64), []
    if not 0 <= start < n:
        raise ValueError(f"start {start} out of range for n={n}")
    arc_weights = graph.arc_weights

    labels: list[set[int]] = [set() for _ in range(n)]
    label_weight = [0.0] * n
    selected = np.zeros(n, dtype=bool)
    edges: list[tuple[int, int]] = []

    # Lazy max-heap of (-label weight, -|L|, vertex); stale entries are
    # skipped on pop (the stored snapshot no longer matches the live
    # label).  Weight comparisons are exact: both sides accumulate the
    # identical float additions in the identical order.
    heap: list[tuple[float, int, int]] = []

    def push(w: int) -> None:
        heapq.heappush(heap, (-label_weight[w], -len(labels[w]), w))

    def neighbors_with_weights(v: int):
        lo, hi = graph.indptr[v], graph.indptr[v + 1]
        row = graph.indices[lo:hi]
        if arc_weights is None:
            return ((int(w), 1.0) for w in row)
        return zip((int(w) for w in row), arc_weights[lo:hi])

    selected[start] = True
    for w, wt in neighbors_with_weights(start):
        labels[w].add(start)
        label_weight[w] += float(wt)
        push(w)
    for v in range(n):
        if v != start and not labels[v]:
            push(v)  # zero-label vertices must still be selected eventually

    remaining = n - 1
    while remaining:
        neg_weight, neg_size, w_star = heapq.heappop(heap)
        if (
            selected[w_star]
            or -neg_size != len(labels[w_star])
            or -neg_weight != label_weight[w_star]
        ):
            continue  # stale heap entry
        selected[w_star] = True
        remaining -= 1
        lbl = labels[w_star]
        for u in sorted(lbl):
            edges.append((u, w_star))
        for w, wt in neighbors_with_weights(w_star):
            if selected[w]:
                continue
            if labels[w] <= lbl:
                labels[w].add(w_star)
                label_weight[w] += float(wt)
                push(w)

    edge_array = (
        np.asarray(edges, dtype=np.int64)
        if edges
        else np.empty((0, 2), dtype=np.int64)
    )
    if complete:
        edge_array, _gap = maximalize_chordal_edges(
            graph, edge_array, weights=edge_weight_mapping(graph)
        )
    return edge_array, [n]


def weighted_portfolio(graph: CSRGraph) -> tuple[np.ndarray, list[int]]:
    """Best-of extraction over the deterministic candidate portfolio.

    Candidates, in tie-breaking order (the first heaviest wins):

    1. the weighted MAXCHORD pass (weight-greedily completed);
    2. the unweighted MAXCHORD pass, weight-greedily completed;
    3. Algorithm 1 (``superstep``) under the synchronous then the
       asynchronous schedule, each closed by *plain* completion (the
       exact unweighted-pipeline edge set — the portfolio's floor) and
       by weight-greedy completion.

    Every candidate is maximal and deterministic, so the winner is too.
    Returns ``(edges, [n])`` like :func:`weighted_max_chordal`.  On an
    unweighted graph weight is edge count, so this degenerates to
    "most retained edges" with the MAXCHORD pass winning ties.
    """
    if graph.num_vertices == 0:
        return np.empty((0, 2), dtype=np.int64), []
    # Deferred to dodge the engines -> weighted -> engines import cycle.
    from repro.core.config import ExtractionConfig
    from repro.core.engines import get_engine

    weight_map = edge_weight_mapping(graph)
    candidates: list[np.ndarray] = []
    edges, _profile = weighted_max_chordal(graph)
    candidates.append(edges)
    base = np.asarray(dearing_max_chordal(graph), dtype=np.int64).reshape(-1, 2)
    edges, _gap = maximalize_chordal_edges(graph, base, weights=weight_map)
    candidates.append(edges)
    superstep = get_engine("superstep")
    for schedule in ("synchronous", "asynchronous"):
        cfg = ExtractionConfig(engine="superstep", schedule=schedule)
        raw, _queues, _trace = superstep.run(graph, cfg, None)
        raw = np.asarray(raw, dtype=np.int64).reshape(-1, 2)
        plain, _gap = maximalize_chordal_edges(graph, raw)
        candidates.append(plain)
        heavy, _gap = maximalize_chordal_edges(graph, raw, weights=weight_map)
        candidates.append(heavy)
    best = max(candidates, key=lambda e: retained_weight(graph, e))
    return best, [graph.num_vertices]
