"""True-parallel process engine for Algorithm 1 (synchronous schedule).

The CPython GIL means the ``threaded`` engine demonstrates the paper's
concurrency structure without ever running faster than one core.  This
engine escapes the GIL: a persistent team of **worker processes** executes
the barrier-synchronous schedule over state held in a single
``multiprocessing.shared_memory`` segment (:mod:`repro.parallel.shm`), so
supersteps run on real cores with zero per-iteration serialisation of the
graph or the chordal arena.

Execution shape per superstep (mirrors the paper's "for all v in Q1 in
parallel" with an implicit barrier):

1. The coordinator computes the active set, freezes the parent assignments
   and chordal-set prefix lengths (the barrier snapshot), compresses the
   filled arena into the sorted key array (:func:`~repro.core.kernels
   .build_arena_keys`), and publishes contiguous, cost-balanced slices of
   the active list.
2. Every worker runs the bulk kernels of :mod:`repro.core.kernels` on its
   slice: snapshot-bounded subset tests, arena appends, parent advances.
   The unique-writer discipline of :mod:`repro.core.state` carries over
   verbatim — each active vertex belongs to exactly one slice, so its
   ``counts`` / ``cursor`` / ``lp`` slots and arena run have one writing
   process; all cross-vertex reads go through the immutable snapshot.
3. A barrier joins the team; the coordinator gathers accepted pairs from
   the shared ``ok`` flags.

Because every subset test is evaluated against the same barrier snapshot
regardless of worker count or timing, the edge set is **bit-identical** to
the serial synchronous superstep engine for any number of workers.

The asynchronous schedule is inherently a live-state sweep and is not
offered here (requesting it raises ``ValueError``); use the ``superstep``
or ``threaded`` engines for paper-matching asynchronous runs.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.core.kernels import (
    advance_parents,
    append_accepted,
    arena_offsets,
    assemble_edges,
    build_arena_keys,
    initial_parents,
    lower_counts,
    subset_mask,
)
from repro.errors import ConvergenceError
from repro.graph.csr import CSRGraph
from repro.parallel.partition import balanced_chunks
from repro.parallel.shm import SharedArrayBlock

__all__ = ["ProcessPool", "process_max_chordal"]

# Control-block slots (int64 each).
_CTRL_CMD = 0
_CTRL_NKEYS = 1
_CTRL_ERROR = 2
_CTRL_N = 3
_CTRL_SLOTS = 8

_CMD_RUN = 0
_CMD_SHUTDOWN = 1


def _build_spec(n: int, nnz: int, cap: int, num_workers: int) -> dict[str, tuple[str, tuple[int, ...]]]:
    """Shared-segment layout for a graph with ``n`` vertices, ``nnz`` arcs
    and arena capacity ``cap`` (== number of undirected edges)."""
    return {
        "control": ("int64", (_CTRL_SLOTS,)),
        "cuts": ("int64", (num_workers + 1,)),
        "indptr": ("int64", (n + 1,)),
        "indices": ("int64", (nnz,)),
        "lower": ("int64", (n,)),
        "offsets": ("int64", (n + 1,)),
        "arena": ("int64", (cap,)),
        "keys": ("int64", (cap,)),
        "counts": ("int64", (n,)),
        "snapshot": ("int64", (n,)),
        "cursor": ("int64", (n,)),
        "lp": ("int64", (n,)),
        "active": ("int64", (n,)),
        "parents": ("int64", (n,)),
        "ok": ("uint8", (n,)),
    }


def _run_slice(tid: int, a: dict[str, np.ndarray]) -> None:
    """One worker's share of one superstep (pure kernel calls)."""
    ctrl = a["control"]
    n = int(ctrl[_CTRL_N])
    nkeys = int(ctrl[_CTRL_NKEYS])
    cuts = a["cuts"]
    start, stop = int(cuts[tid]), int(cuts[tid + 1])
    if start >= stop:
        return
    ws = a["active"][start:stop]
    vs = a["parents"][start:stop]
    ok = subset_mask(
        a["keys"][:nkeys], a["arena"], a["offsets"], a["snapshot"], ws, vs, n
    )
    a["ok"][start:stop] = ok
    append_accepted(a["arena"], a["offsets"], a["counts"], ws, vs, ok)
    advance_parents(a["indptr"], a["indices"], a["lower"], a["cursor"], a["lp"], ws)


def _worker_main(tid, shm_name, spec, start_barrier, done_barrier) -> None:
    """Worker loop: wait at the start barrier, run a slice, join the done
    barrier; repeat until the shutdown command (or the coordinator breaks
    the barriers — a quiet exit, the coordinator already raised)."""
    import threading

    block = SharedArrayBlock.attach(shm_name, spec)
    ctrl = block.arrays["control"]
    try:
        while True:
            start_barrier.wait()
            if int(ctrl[_CTRL_CMD]) == _CMD_SHUTDOWN:
                return
            try:
                _run_slice(tid, block.arrays)
            except BaseException:  # noqa: BLE001 - flag forwarded to coordinator
                ctrl[_CTRL_ERROR] = tid + 1
            done_barrier.wait()
    except threading.BrokenBarrierError:
        return
    finally:
        block.close()


def _context():
    """Prefer fork (cheap, inherits nothing mutable we rely on); fall back
    to the platform default (spawn) — the worker protocol supports both."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else None)


class ProcessPool:
    """Persistent worker-process team bound to one graph.

    Creating the pool pays the fork/spawn and shared-segment cost once;
    :meth:`extract` can then run any number of extractions (benchmark
    repeats, parameter sweeps) against the same graph with only superstep
    barriers as overhead.

    Use as a context manager, or call :meth:`close` explicitly::

        with ProcessPool(graph, num_workers=4) as pool:
            edges, queue_sizes = pool.extract()
    """

    #: Default seconds the coordinator waits on a superstep barrier before
    #: declaring the team dead.  One superstep is a handful of bulk NumPy
    #: calls, so exceeding this means a dead/stuck worker on any graph
    #: that fits in memory; raise ``barrier_timeout`` for hosts where a
    #: single superstep can legitimately run longer.
    BARRIER_TIMEOUT = 120.0

    def __init__(
        self,
        graph: CSRGraph,
        num_workers: int = 4,
        *,
        barrier_timeout: float | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.barrier_timeout = (
            self.BARRIER_TIMEOUT if barrier_timeout is None else barrier_timeout
        )
        g = graph if graph.sorted_adjacency else graph.with_sorted_adjacency()
        self._n = g.num_vertices
        self._max_degree = g.max_degree()
        lower = lower_counts(g.indptr, g.indices)
        offsets = arena_offsets(lower)
        cap = int(offsets[-1])
        self._trivial = self._n == 0 or cap == 0
        self._block: SharedArrayBlock | None = None
        self._procs: list = []
        self._closed = False
        if self._trivial:
            return
        spec = _build_spec(self._n, g.indices.size, cap, num_workers)
        self._block = SharedArrayBlock.create(spec)
        a = self._block.arrays
        a["indptr"][:] = g.indptr
        a["indices"][:] = g.indices
        a["lower"][:] = lower
        a["offsets"][:] = offsets
        a["control"][_CTRL_N] = self._n
        ctx = _context()
        self._start = ctx.Barrier(num_workers + 1)
        self._done = ctx.Barrier(num_workers + 1)
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(tid, self._block.name, spec, self._start, self._done),
                daemon=True,
                name=f"repro-procworker-{tid}",
            )
            for tid in range(num_workers)
        ]
        for p in self._procs:
            p.start()

    # ------------------------------------------------------------------
    def extract(self, max_iterations: int | None = None) -> tuple[np.ndarray, list[int]]:
        """Run one extraction; returns ``(edges, queue_sizes)``.

        Resets the shared Algorithm 1 state, then drives barrier-separated
        supersteps until no vertex has a parent left.  Deterministic: the
        result is independent of ``num_workers``.
        """
        if self._trivial:
            return np.empty((0, 2), dtype=np.int64), []
        if self._closed:
            raise RuntimeError("ProcessPool is closed")
        a = self._block.arrays
        ctrl = a["control"]
        a["counts"][:] = 0
        a["cursor"][:] = 0
        a["lp"][:] = initial_parents(a["indptr"], a["indices"], a["lower"])

        n = self._n
        queue_sizes: list[int] = []
        chunks: list[tuple[np.ndarray, np.ndarray]] = []
        limit = max_iterations if max_iterations is not None else self._max_degree + 2

        while True:
            active = np.flatnonzero(a["lp"] >= 0)
            na = active.size
            if na == 0:
                break
            if len(queue_sizes) >= limit:
                raise ConvergenceError(
                    f"exceeded iteration budget {limit} with {na} active "
                    "vertices; this indicates an internal bug"
                )
            parents = a["lp"][active]
            queue_sizes.append(int(np.unique(parents).size))
            a["active"][:na] = active
            a["parents"][:na] = parents
            a["snapshot"][:] = a["counts"]
            nkeys = build_arena_keys(
                a["arena"], a["offsets"], a["snapshot"], n, out=a["keys"]
            ).size
            # Balance slices by subset-test cost (|C[w]| probes + constant).
            ranges = balanced_chunks(
                a["snapshot"][active].astype(np.float64) + 1.0, self.num_workers
            )
            a["cuts"][: self.num_workers] = [r[0] for r in ranges]
            a["cuts"][self.num_workers] = ranges[-1][1]
            ctrl[_CTRL_CMD] = _CMD_RUN
            ctrl[_CTRL_NKEYS] = nkeys
            ctrl[_CTRL_ERROR] = 0
            self._superstep_barrier()
            if int(ctrl[_CTRL_ERROR]) != 0:
                raise RuntimeError(
                    f"worker {int(ctrl[_CTRL_ERROR]) - 1} failed during a superstep"
                )
            accepted = a["ok"][:na].astype(bool)
            chunks.append((parents[accepted], active[accepted]))

        return assemble_edges(chunks), queue_sizes

    def _superstep_barrier(self) -> None:
        try:
            self._start.wait(timeout=self.barrier_timeout)
            self._done.wait(timeout=self.barrier_timeout)
        except Exception as exc:  # BrokenBarrierError or timeout
            dead = [p.name for p in self._procs if not p.is_alive()]
            self.close()
            raise RuntimeError(
                f"process-engine superstep barrier failed ({exc!r}); "
                f"dead workers: {dead or 'none'}"
            ) from exc

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the team down and release the shared segment (idempotent).

        Robust to partially-constructed pools: never-started workers are
        skipped, and the segment is released even when joins misbehave.
        """
        if self._trivial or self._closed:
            return
        self._closed = True
        try:
            self._block.arrays["control"][_CTRL_CMD] = _CMD_SHUTDOWN
            self._start.wait(timeout=5.0)
        except Exception:  # workers dead or never started; reap below
            pass
        try:
            for p in self._procs:
                try:
                    if p.pid is None:  # Process.start() never ran
                        continue
                    p.join(timeout=5.0)
                    if p.is_alive():  # pragma: no cover - hard-kill safety net
                        p.terminate()
                        p.join(timeout=5.0)
                except Exception:  # pragma: no cover - reaping is best-effort
                    pass
        finally:
            self._block.close()
            self._block.unlink()

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def process_max_chordal(
    graph: CSRGraph,
    *,
    num_workers: int = 4,
    variant: str = "optimized",
    schedule: str = "synchronous",
    max_iterations: int | None = None,
) -> tuple[np.ndarray, list[int]]:
    """Extract the maximal chordal edge set with a process team.

    Returns ``(edges, queue_sizes)``, bit-identical to the serial
    synchronous superstep engine for every ``num_workers``.

    ``variant`` is validated for API symmetry; Opt/Unopt visit identical
    parents (see :mod:`repro.core.state`) and the bulk kernels do no cost
    accounting, so both run the sorted-adjacency path.  Only the
    ``"synchronous"`` schedule is supported: the asynchronous sweep's live
    state cannot be shared across address spaces without serialising it.
    """
    if variant not in ("optimized", "unoptimized"):
        raise ValueError(
            f"unknown variant {variant!r}; expected 'optimized' or 'unoptimized'"
        )
    if schedule != "synchronous":
        raise ValueError(
            "engine='process' supports only schedule='synchronous' "
            f"(got {schedule!r}); use the superstep or threaded engine for "
            "asynchronous runs"
        )
    with ProcessPool(graph, num_workers=num_workers) as pool:
        return pool.extract(max_iterations=max_iterations)
