"""True-parallel process engine for Algorithm 1 (both schedules).

The CPython GIL means the ``threaded`` engine demonstrates the paper's
concurrency structure without ever running faster than one core.  This
engine escapes the GIL: a persistent team of **worker processes**
(:class:`~repro.core.runtime.executors.ProcessTeamExecutor`) executes
either schedule over state held in a single
``multiprocessing.shared_memory`` segment
(:class:`~repro.core.runtime.state.SharedSegmentState`), so iterations
run on real cores with zero per-iteration serialisation of the graph or
the chordal arena.

Since the unified-runtime refactor the schedule loop itself lives in
:func:`repro.core.runtime.driver.drive` — shared verbatim with the serial
and threaded engines — and this module owns only what is specific to the
process pairing: the pool lifecycle (bind / capacity growth / teardown)
and the worker-team restart protocol.

Execution shape per round (mirrors the paper's "for all v in Q1 in
parallel" with an implicit barrier): the driver publishes the active set,
cost-balanced slice cuts and (synchronous schedule) the barrier snapshot
+ compressed key array into the segment; every worker runs the bulk
kernel round body of :mod:`repro.core.runtime.rounds` on its slice; the
barrier agent joins the team.  Because every synchronous subset test is
evaluated against the same barrier snapshot regardless of worker count or
timing, the edge set is **bit-identical** to the serial synchronous
engine for any number of workers.

Asynchronous schedule
---------------------
``extract(schedule="asynchronous")`` runs the paper's headline schedule
true-parallel: per round, vertex-partitioned workers sweep their slices of
the live active set **without a snapshot** — subset tests probe whatever
prefix of each parent's chordal set other workers have published by probe
time (:func:`~repro.core.kernels.subset_mask_live`).  Correctness under
the races this admits rests on three pillars (see
:func:`~repro.core.runtime.rounds.run_async_slice` for the mechanics):

1. *Unique writer* — within a round each child vertex belongs to exactly
   one worker's slice, so its ``counts`` / ``cursor`` / ``lp`` words, its
   arena run and its edge-claim words have a single mutator at any
   instant; cross-round ownership handoffs are sequenced by the round
   barriers.
2. *Ordered publication* — :func:`~repro.core.kernels.append_accepted`
   writes every arena slot before bumping the owner's ``counts`` word, so
   a concurrently gathered prefix length always covers fully-written,
   sorted elements.  A racing read can therefore only *reject* an edge,
   never admit a chord-violating one.
3. *Lock-free edge claims* — every ``(child, parent)`` arc owns one
   shared edge-state word, flipped ``UNDECIDED -> ACCEPTED/REJECTED``
   exactly once; the final claim/append/edge accounting is verified by
   the driver after every asynchronous run.

The output is *any-valid* (exactly like the Cray XMT runs the paper
reports), certified by :func:`repro.chordality.verify_extraction` rather
than by bit-identity.  Per-worker **epoch counters** let the executor
assert, after every round, that each worker actually swept its slice.

Batch amortisation
------------------
The pool is *rebindable*: one team of workers and one shared segment serve
any number of graphs (:meth:`ProcessPool.bind` /
``pool.extract(next_graph)``), which is what
:func:`repro.core.extract.extract_many` builds on.  The segment is laid
out for *capacities* rather than one graph's exact sizes, with per-graph
sizes published through the control block; graphs that fit the current
capacities rebind with zero process churn.  A graph that outgrows the
capacities triggers one of two growth paths:

* the new (doubled) layout still fits the over-allocated segment — the
  coordinator bumps a layout generation in the control block and every
  worker remaps its views in place at the next superstep; the team
  survives;
* the segment itself is too small — the team is torn down and restarted
  over a fresh, geometrically larger segment (amortised O(log) restarts
  over any batch).
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import arena_offsets, lower_counts
from repro.core.runtime.driver import drive
from repro.core.runtime.executors import ProcessTeamExecutor, WorkerTeamError
from repro.core.runtime.state import SharedSegmentState
from repro.errors import ConfigError, SessionClosedError
from repro.graph.csr import CSRGraph

__all__ = ["ProcessPool", "process_max_chordal"]


class ProcessPool:
    """Persistent, rebindable worker-process team.

    Creating the pool pays the fork/spawn and shared-segment cost once;
    :meth:`extract` can then run any number of extractions — repeats on
    one graph *or* a whole batch of different graphs — with only superstep
    barriers (and the rare capacity growth) as overhead.  This is the
    amortisation step that makes ``extract_many`` serve many requests
    without per-request pool spawn.

    Use as a context manager, or call :meth:`close` explicitly::

        with ProcessPool(num_workers=4) as pool:
            for g in graphs:
                edges, queue_sizes = pool.extract(g)

    The constructor optionally takes a first graph (``ProcessPool(graph,
    num_workers=4)``), binding it immediately; ``pool.extract()`` with no
    argument then runs on the bound graph.
    """

    #: Default seconds the coordinator waits on a superstep barrier before
    #: declaring the team dead.  One superstep is a handful of bulk NumPy
    #: calls, so exceeding this means a dead/stuck worker on any graph
    #: that fits in memory; raise ``barrier_timeout`` for hosts where a
    #: single superstep can legitimately run longer.
    BARRIER_TIMEOUT = 120.0

    #: Default byte-headroom factor for the shared segment.  Over-allocating
    #: lets moderately larger graphs rebind via an in-place remap (team
    #: survives) instead of a segment reallocation (team restart).
    HEADROOM = 1.5

    def __init__(
        self,
        graph: CSRGraph | None = None,
        num_workers: int = 4,
        *,
        barrier_timeout: float | None = None,
        headroom: float | None = None,
    ) -> None:
        if num_workers < 1:
            raise ConfigError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.barrier_timeout = (
            self.BARRIER_TIMEOUT if barrier_timeout is None else barrier_timeout
        )
        self._state = SharedSegmentState(
            num_workers, self.HEADROOM if headroom is None else headroom
        )
        self._executor: ProcessTeamExecutor | None = None
        self._closed = False
        self._bound: CSRGraph | None = None
        self._trivial_bound = True
        if graph is not None:
            self.bind(graph)

    @property
    def _procs(self) -> list:
        """The live worker processes (tests poke these to kill workers)."""
        return self._executor.procs if self._executor is not None else []

    # ------------------------------------------------------------------
    def bind(self, graph: CSRGraph) -> "ProcessPool":
        """Load ``graph`` into the shared arena, growing it if needed.

        Idempotent per graph object; :meth:`extract` calls this
        automatically when handed a graph that is not currently bound.
        """
        if self._closed:
            raise SessionClosedError("ProcessPool is closed")
        g = graph if graph.sorted_adjacency else graph.with_sorted_adjacency()
        lower = lower_counts(g.indptr, g.indices)
        offsets = arena_offsets(lower)
        cap = int(offsets[-1])
        n = g.num_vertices
        nnz = int(g.indices.size)
        self._bound = graph
        self._trivial_bound = n == 0 or cap == 0
        if self._trivial_bound:
            return self
        if self._executor is None or not self._state.fits(n, nnz, cap):
            new_caps = self._state.plan_growth(n, nnz, cap)
            if self._executor is not None and self._state.can_remap(new_caps):
                # In-place growth: the team survives; workers remap at the
                # next superstep when they observe the bumped generation.
                self._state.remap(new_caps)
            else:
                # The segment itself is too small: shut the team down on
                # the old segment, then reallocate and restart below.
                self._stop_team()
                self._state.reallocate(new_caps)
        if self._executor is None:
            self._executor = ProcessTeamExecutor(
                self.num_workers,
                self._state.block.name,
                self._state.caps,
                self.barrier_timeout,
            )
        self._state.bind_graph(g, lower, offsets)
        return self

    # ------------------------------------------------------------------
    def extract(
        self,
        graph: CSRGraph | None = None,
        *,
        schedule: str = "synchronous",
        max_iterations: int | None = None,
    ) -> tuple[np.ndarray, list[int]]:
        """Run one extraction; returns ``(edges, queue_sizes)``.

        With ``graph`` given, rebinds the pool to it first (cheap when the
        graph fits the current capacities).  With ``graph=None``, runs on
        the currently bound graph.  Resets the shared Algorithm 1 state,
        then drives barrier-separated rounds until no vertex has a parent
        left.

        ``schedule="synchronous"`` (default) is deterministic: the result
        is bit-identical to the serial superstep engine, independent of
        ``num_workers`` and of whatever graphs the pool served before.
        ``schedule="asynchronous"`` sweeps live state (see the module
        docstring): the result is any valid chordal edge set and may
        differ run to run — certify it with
        :func:`repro.chordality.verify_extraction`.
        """
        if self._closed:
            raise SessionClosedError("ProcessPool is closed")
        if schedule not in ("synchronous", "asynchronous"):
            raise ConfigError(
                "schedule must be 'synchronous' or 'asynchronous', "
                f"got {schedule!r}"
            )
        if graph is not None and graph is not self._bound:
            self.bind(graph)
        if self._bound is None:
            raise RuntimeError(
                "no graph bound; pass one to extract() or bind() first"
            )
        if self._trivial_bound:
            return np.empty((0, 2), dtype=np.int64), []
        try:
            edges, queue_sizes, _ = drive(
                self._state,
                self._executor,
                schedule=schedule,
                max_iterations=max_iterations,
            )
        except WorkerTeamError:
            # The team is unusable (dead worker / wedged barrier); release
            # the segment so the failure cannot leak shared memory.
            self.close()
            raise
        return edges, queue_sizes

    # ------------------------------------------------------------------
    def _stop_team(self) -> None:
        if self._executor is not None:
            ctrl = (
                self._state.arrays["control"]
                if self._state.block is not None
                else None
            )
            self._executor.close(ctrl)
            self._executor = None

    def _teardown(self) -> None:
        """Stop the current team (if any) and release the segment.

        Robust to partially-constructed pools; the pool stays usable — a
        later bind starts a fresh team.
        """
        self._stop_team()
        self._state.release()

    def close(self) -> None:
        """Shut the team down and release the shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._bound = None
        self._teardown()

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def process_max_chordal(
    graph: CSRGraph,
    *,
    num_workers: int = 4,
    variant: str = "optimized",
    schedule: str = "synchronous",
    max_iterations: int | None = None,
) -> tuple[np.ndarray, list[int]]:
    """Extract the maximal chordal edge set with a process team.

    Returns ``(edges, queue_sizes)``.  With ``schedule="synchronous"``
    (default) the edge set is bit-identical to the serial synchronous
    superstep engine for every ``num_workers``; with
    ``schedule="asynchronous"`` it is any valid chordal edge set produced
    by the live-state sweep (may vary run to run — see the module
    docstring).  Spawns (and tears down) a one-shot :class:`ProcessPool`;
    batch callers should hold a pool and call :meth:`ProcessPool.extract`
    per graph instead — see :func:`repro.core.extract.extract_many`.

    ``variant`` is validated for API symmetry; Opt/Unopt visit identical
    parents (see :mod:`repro.core.state`) and the bulk kernels do no cost
    accounting, so both run the sorted-adjacency path.
    """
    if variant not in ("optimized", "unoptimized"):
        raise ConfigError(
            f"unknown variant {variant!r}; expected 'optimized' or 'unoptimized'"
        )
    with ProcessPool(graph, num_workers=num_workers) as pool:
        return pool.extract(schedule=schedule, max_iterations=max_iterations)
