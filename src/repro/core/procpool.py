"""True-parallel process engine for Algorithm 1 (both schedules).

The CPython GIL means the ``threaded`` engine demonstrates the paper's
concurrency structure without ever running faster than one core.  This
engine escapes the GIL: a persistent team of **worker processes** executes
either schedule over state held in a single
``multiprocessing.shared_memory`` segment (:mod:`repro.parallel.shm`), so
iterations run on real cores with zero per-iteration serialisation of the
graph or the chordal arena.

Execution shape per superstep (mirrors the paper's "for all v in Q1 in
parallel" with an implicit barrier):

1. The coordinator computes the active set, freezes the parent assignments
   and chordal-set prefix lengths (the barrier snapshot), compresses the
   filled arena into the sorted key array (:func:`~repro.core.kernels
   .build_arena_keys`), and publishes contiguous, cost-balanced slices of
   the active list.
2. Every worker runs the bulk kernels of :mod:`repro.core.kernels` on its
   slice: snapshot-bounded subset tests, arena appends, parent advances.
   The unique-writer discipline of :mod:`repro.core.state` carries over
   verbatim — each active vertex belongs to exactly one slice, so its
   ``counts`` / ``cursor`` / ``lp`` slots and arena run have one writing
   process; all cross-vertex reads go through the immutable snapshot.
3. A barrier joins the team; the coordinator gathers accepted pairs from
   the shared ``ok`` flags.

Because every subset test is evaluated against the same barrier snapshot
regardless of worker count or timing, the edge set is **bit-identical** to
the serial synchronous superstep engine for any number of workers.

Asynchronous schedule
---------------------
``extract(schedule="asynchronous")`` runs the paper's headline schedule
true-parallel: per round, vertex-partitioned workers sweep their slices of
the live active set **without a snapshot** — subset tests probe whatever
prefix of each parent's chordal set other workers have published by probe
time (:func:`~repro.core.kernels.subset_mask_live`).  Correctness under
the races this admits rests on three pillars:

1. *Unique writer* — within a round each child vertex belongs to exactly
   one worker's slice, so its ``counts`` / ``cursor`` / ``lp`` words, its
   arena run and its edge-claim words have a single mutator at any
   instant; cross-round ownership handoffs are sequenced by the round
   barriers.
2. *Ordered publication* — :func:`~repro.core.kernels.append_accepted`
   writes every arena slot before bumping the owner's ``counts`` word, so
   a concurrently gathered prefix length always covers fully-written,
   sorted elements, and any element it misses is strictly larger than the
   frozen prefix's bound (the paper's ordered-chordal-set observation).
   A racing read can therefore only *reject* an edge, never admit a
   chord-violating one — the conflict-resolution rule of the paper.
3. *Lock-free edge claims* — every ``(child, parent)`` arc owns one
   shared edge-state word, flipped ``UNDECIDED -> ACCEPTED/REJECTED``
   exactly once via :func:`~repro.parallel.atomics.bulk_compare_and_set`;
   a lost claim drops the arc, so no edge can be appended or reported
   twice even if a scheduling bug double-serviced a vertex.  The final
   accounting (accepted claims == arena append total == reported edges)
   is verified after every asynchronous run.

The output is *any-valid*: a chordal subgraph whose edge set may differ
run to run and from the other engines (exactly like the Cray XMT runs the
paper reports), certified by :func:`repro.chordality.verify_extraction`
rather than by bit-identity.  Per-worker **epoch counters** in the shared
segment let the coordinator assert, after every round, that each worker
actually swept its slice.

Batch amortisation
------------------
The pool is *rebindable*: one team of workers and one shared segment serve
any number of graphs (:meth:`ProcessPool.bind` /
``pool.extract(next_graph)``), which is what
:func:`repro.core.extract.extract_many` builds on.  The segment is laid
out for *capacities* rather than one graph's exact sizes, with per-graph
sizes published through the control block; graphs that fit the current
capacities rebind with zero process churn.  A graph that outgrows the
capacities triggers one of two growth paths:

* the new (doubled) layout still fits the over-allocated segment — the
  coordinator bumps a layout generation in the control block and every
  worker remaps its views in place at the next superstep
  (:meth:`repro.parallel.shm.SharedArrayBlock.remap`); the team survives;
* the segment itself is too small — the team is torn down and restarted
  over a fresh, geometrically larger segment (amortised O(log) restarts
  over any batch).

"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.core.kernels import (
    advance_parents,
    append_accepted,
    arena_offsets,
    assemble_edges,
    build_arena_keys,
    initial_parents,
    lower_counts,
    subset_mask,
    subset_mask_live,
)
from repro.errors import ConfigError, ConvergenceError
from repro.graph.csr import CSRGraph
from repro.parallel.atomics import bulk_compare_and_set
from repro.parallel.partition import balanced_chunks
from repro.parallel.shm import SharedArrayBlock, layout_size

__all__ = ["ProcessPool", "process_max_chordal"]

# Control-block slots (int64 each).  The control array is the first entry
# of every spec, so it sits at offset 0 of the segment across remaps and
# is the one layout-independent channel between coordinator and workers.
_CTRL_CMD = 0
_CTRL_NKEYS = 1
_CTRL_ERROR = 2
_CTRL_N = 3
_CTRL_GEN = 4
_CTRL_N_CAP = 5
_CTRL_NNZ_CAP = 6
_CTRL_ARENA_CAP = 7
_CTRL_SCHEDULE = 8
_CTRL_SLOTS = 9

_CMD_RUN = 0
_CMD_SHUTDOWN = 1

_SCHED_SYNC = 0
_SCHED_ASYNC = 1

#: Edge-state claim words: one per (child, parent) arc, indexed by
#: ``offsets[w] + cursor`` (the arc's position in the child's lower-
#: neighbor prefix).  Flipped away from UNDECIDED exactly once.
EDGE_UNDECIDED = 0
EDGE_ACCEPTED = 1
EDGE_REJECTED = 2


def _build_spec(
    n_cap: int, nnz_cap: int, arena_cap: int, num_workers: int
) -> dict[str, tuple[str, tuple[int, ...]]]:
    """Shared-segment layout with room for any graph of at most ``n_cap``
    vertices, ``nnz_cap`` arcs and ``arena_cap`` arena slots (== undirected
    edges).  The bound graph's actual sizes live in the control block;
    every array is used as a prefix."""
    return {
        "control": ("int64", (_CTRL_SLOTS,)),
        "cuts": ("int64", (num_workers + 1,)),
        "indptr": ("int64", (n_cap + 1,)),
        "indices": ("int64", (nnz_cap,)),
        "lower": ("int64", (n_cap,)),
        "offsets": ("int64", (n_cap + 1,)),
        "arena": ("int64", (arena_cap,)),
        "keys": ("int64", (arena_cap,)),
        "counts": ("int64", (n_cap,)),
        "snapshot": ("int64", (n_cap,)),
        "cursor": ("int64", (n_cap,)),
        "lp": ("int64", (n_cap,)),
        "active": ("int64", (n_cap,)),
        "parents": ("int64", (n_cap,)),
        "edge_state": ("int64", (arena_cap,)),
        "epochs": ("int64", (num_workers,)),
        "ok": ("uint8", (n_cap,)),
    }


def _run_slice(tid: int, a: dict[str, np.ndarray]) -> None:
    """One worker's share of one superstep (pure kernel calls).

    All arrays are capacity-sized; per-vertex indexing (``ws`` / ``vs`` are
    ids of the bound graph) and the ``nkeys`` prefix keep every access
    inside the bound graph's live region.
    """
    ctrl = a["control"]
    n = int(ctrl[_CTRL_N])
    nkeys = int(ctrl[_CTRL_NKEYS])
    cuts = a["cuts"]
    start, stop = int(cuts[tid]), int(cuts[tid + 1])
    if start >= stop:
        return
    ws = a["active"][start:stop]
    vs = a["parents"][start:stop]
    ok = subset_mask(
        a["keys"][:nkeys], a["arena"], a["offsets"], a["snapshot"], ws, vs, n
    )
    a["ok"][start:stop] = ok
    append_accepted(a["arena"], a["offsets"], a["counts"], ws, vs, ok)
    advance_parents(a["indptr"], a["indices"], a["lower"], a["cursor"], a["lp"], ws)


def _run_slice_async(tid: int, a: dict[str, np.ndarray]) -> None:
    """One worker's share of one asynchronous round (live-state sweep).

    Unlike :func:`_run_slice` there is no barrier snapshot: subset tests
    probe whatever prefix of each parent's chordal set is published at
    probe time (:func:`~repro.core.kernels.subset_mask_live`), so the
    accepted edge set depends on worker timing.  Safety rests on the
    unique-writer discipline — this worker is the only mutator of its
    children's ``counts`` / ``cursor`` / ``lp`` words, arena runs and
    edge-claim words — plus the append-before-count-bump publication
    order inside :func:`~repro.core.kernels.append_accepted`.
    """
    ctrl = a["control"]
    n = int(ctrl[_CTRL_N])
    cuts = a["cuts"]
    start, stop = int(cuts[tid]), int(cuts[tid + 1])
    if start >= stop:
        return
    ws = a["active"][start:stop]
    vs = a["parents"][start:stop]
    offsets = a["offsets"]
    ok = subset_mask_live(a["arena"], offsets, a["counts"], ws, vs, n)
    # Claim each (child, parent) arc exactly once: its edge-state word
    # flips UNDECIDED -> ACCEPTED/REJECTED via compare-and-set.  A lost
    # claim (word already decided) drops the arc, so a double-serviced
    # vertex can never append or report an edge twice — the conflict-
    # resolution rule the live sweep needs in place of the barrier.
    arcs = offsets[ws] + a["cursor"][ws]
    decisions = np.where(ok, EDGE_ACCEPTED, EDGE_REJECTED)
    ok &= bulk_compare_and_set(a["edge_state"], arcs, EDGE_UNDECIDED, decisions)
    a["ok"][start:stop] = ok
    append_accepted(a["arena"], offsets, a["counts"], ws, vs, ok)
    advance_parents(a["indptr"], a["indices"], a["lower"], a["cursor"], a["lp"], ws)


def _worker_main(tid, shm_name, caps, num_workers, start_barrier, done_barrier) -> None:
    """Worker loop: wait at the start barrier, remap if the coordinator
    published a new layout generation, run a slice, join the done barrier;
    repeat until the shutdown command (or the coordinator breaks the
    barriers — a quiet exit, the coordinator already raised)."""
    import threading

    block = SharedArrayBlock.attach(shm_name, _build_spec(*caps, num_workers))
    ctrl = block.arrays["control"]
    # Workers only read/write shared state between the two barriers, while
    # the coordinator waits — so the generation check below cannot race
    # with a coordinator-side remap.
    gen = -1
    try:
        while True:
            start_barrier.wait()
            if int(ctrl[_CTRL_CMD]) == _CMD_SHUTDOWN:
                return
            if int(ctrl[_CTRL_GEN]) != gen:
                gen = int(ctrl[_CTRL_GEN])
                block.remap(
                    _build_spec(
                        int(ctrl[_CTRL_N_CAP]),
                        int(ctrl[_CTRL_NNZ_CAP]),
                        int(ctrl[_CTRL_ARENA_CAP]),
                        num_workers,
                    )
                )
                ctrl = block.arrays["control"]
            run = (
                _run_slice_async
                if int(ctrl[_CTRL_SCHEDULE]) == _SCHED_ASYNC
                else _run_slice
            )
            try:
                run(tid, block.arrays)
            except BaseException:  # noqa: BLE001 - flag forwarded to coordinator
                ctrl[_CTRL_ERROR] = tid + 1
            # Publish liveness: the coordinator zeroed the epoch words
            # before releasing the start barrier and asserts every worker
            # reached this line (single aligned-word store per worker).
            block.arrays["epochs"][tid] += 1
            done_barrier.wait()
    except threading.BrokenBarrierError:
        return
    finally:
        block.close()


def _context():
    """Prefer fork (cheap, inherits nothing mutable we rely on); fall back
    to the platform default (spawn) — the worker protocol supports both."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else None)


def _barrier_agent(req, resp, start, done, timeout) -> None:
    """Coordinator-side barrier waiter (one daemon thread per team).

    ``multiprocessing`` barriers can block *unboundedly* — beyond any
    ``wait(timeout)`` — when a participant is killed while holding the
    barrier's internal condition state, so the coordinator's main thread
    must never wait on them directly.  It enqueues ``"superstep"`` (start
    + done barrier) or ``"shutdown"`` (start barrier only; workers exit
    before the done barrier) requests here and waits on ``resp`` with a
    real timeout; if this thread wedges, it is simply abandoned (daemon)
    and the team torn down.  ``None`` retires the agent.
    """
    while True:
        cmd = req.get()
        if cmd is None:
            return
        try:
            start.wait(timeout=timeout)
            if cmd == "superstep":
                done.wait(timeout=timeout)
            resp.put(None)
        except Exception as exc:  # BrokenBarrierError or timeout
            resp.put(exc)
            return


class ProcessPool:
    """Persistent, rebindable worker-process team.

    Creating the pool pays the fork/spawn and shared-segment cost once;
    :meth:`extract` can then run any number of extractions — repeats on
    one graph *or* a whole batch of different graphs — with only superstep
    barriers (and the rare capacity growth) as overhead.  This is the
    amortisation step that makes ``extract_many`` serve many requests
    without per-request pool spawn.

    Use as a context manager, or call :meth:`close` explicitly::

        with ProcessPool(num_workers=4) as pool:
            for g in graphs:
                edges, queue_sizes = pool.extract(g)

    The constructor optionally takes a first graph (``ProcessPool(graph,
    num_workers=4)``), binding it immediately; ``pool.extract()`` with no
    argument then runs on the bound graph.
    """

    #: Default seconds the coordinator waits on a superstep barrier before
    #: declaring the team dead.  One superstep is a handful of bulk NumPy
    #: calls, so exceeding this means a dead/stuck worker on any graph
    #: that fits in memory; raise ``barrier_timeout`` for hosts where a
    #: single superstep can legitimately run longer.
    BARRIER_TIMEOUT = 120.0

    #: Default byte-headroom factor for the shared segment.  Over-allocating
    #: lets moderately larger graphs rebind via an in-place remap (team
    #: survives) instead of a segment reallocation (team restart).
    HEADROOM = 1.5

    def __init__(
        self,
        graph: CSRGraph | None = None,
        num_workers: int = 4,
        *,
        barrier_timeout: float | None = None,
        headroom: float | None = None,
    ) -> None:
        if num_workers < 1:
            raise ConfigError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.barrier_timeout = (
            self.BARRIER_TIMEOUT if barrier_timeout is None else barrier_timeout
        )
        self.headroom = max(1.0, self.HEADROOM if headroom is None else headroom)
        self._block: SharedArrayBlock | None = None
        self._procs: list = []
        self._closed = False
        self._caps: tuple[int, int, int] = (0, 0, 0)
        self._gen = 0
        self._bound: CSRGraph | None = None
        self._n = 0
        self._nnz = 0
        self._arena_used = 0
        self._max_degree = 0
        self._trivial_bound = True
        if graph is not None:
            self.bind(graph)

    # ------------------------------------------------------------------
    def bind(self, graph: CSRGraph) -> "ProcessPool":
        """Load ``graph`` into the shared arena, growing it if needed.

        Idempotent per graph object; :meth:`extract` calls this
        automatically when handed a graph that is not currently bound.
        """
        if self._closed:
            raise RuntimeError("ProcessPool is closed")
        g = graph if graph.sorted_adjacency else graph.with_sorted_adjacency()
        lower = lower_counts(g.indptr, g.indices)
        offsets = arena_offsets(lower)
        cap = int(offsets[-1])
        n = g.num_vertices
        self._bound = graph
        self._n = n
        self._nnz = int(g.indices.size)
        self._arena_used = cap
        self._max_degree = g.max_degree()
        self._trivial_bound = n == 0 or cap == 0
        if self._trivial_bound:
            return self
        self._ensure_capacity(n, self._nnz, cap)
        a = self._block.arrays
        a["indptr"][: n + 1] = g.indptr
        a["indices"][: self._nnz] = g.indices
        a["lower"][:n] = lower
        a["offsets"][: n + 1] = offsets
        a["control"][_CTRL_N] = n
        return self

    def _ensure_capacity(self, n: int, nnz: int, cap: int) -> None:
        """Make the segment and team able to hold an (n, nnz, cap) graph."""
        n_cap, nnz_cap, arena_cap = self._caps
        if self._procs and n <= n_cap and nnz <= nnz_cap and cap <= arena_cap:
            return
        if self._block is None:
            new_caps = (n, nnz, cap)
        else:
            # Geometric growth so a batch of increasing graphs pays
            # O(log) reallocations, not one per graph; caps never shrink
            # (high-water mark), so alternating graph shapes settle into
            # the zero-churn fast path instead of remapping every bind.
            new_caps = (
                n_cap if n <= n_cap else max(n, 2 * n_cap),
                nnz_cap if nnz <= nnz_cap else max(nnz, 2 * nnz_cap),
                arena_cap if cap <= arena_cap else max(cap, 2 * arena_cap),
            )
        spec = _build_spec(*new_caps, self.num_workers)
        if self._block is not None and self._procs and self._block.fits(spec):
            # In-place growth: same segment, new layout; workers remap at
            # the next superstep when they observe the bumped generation.
            self._block.remap(spec)
        else:
            self._teardown()
            self._block = SharedArrayBlock.create(
                spec, size=int(layout_size(spec) * self.headroom)
            )
        self._caps = new_caps
        self._gen += 1
        ctrl = self._block.arrays["control"]
        ctrl[_CTRL_GEN] = self._gen
        ctrl[_CTRL_N_CAP] = new_caps[0]
        ctrl[_CTRL_NNZ_CAP] = new_caps[1]
        ctrl[_CTRL_ARENA_CAP] = new_caps[2]
        if not self._procs:
            self._start_team()

    def _start_team(self) -> None:
        import queue
        import threading

        ctx = _context()
        self._start = ctx.Barrier(self.num_workers + 1)
        self._done = ctx.Barrier(self.num_workers + 1)
        # The coordinator never touches the barriers directly: a worker
        # killed mid-wait (OOM killer, external SIGKILL) can leave the
        # barrier's internal condition state permanently unreleasable, and
        # Barrier.wait(timeout) does not bound that lock/drain phase.  A
        # per-team agent thread does the waiting instead; the coordinator
        # waits on the response queue with a real timeout and sacrifices
        # the (daemon) agent if the barrier state is wedged.
        self._agent_req: queue.Queue = queue.Queue()
        self._agent_resp: queue.Queue = queue.Queue()
        self._agent = threading.Thread(
            target=_barrier_agent,
            args=(
                self._agent_req,
                self._agent_resp,
                self._start,
                self._done,
                self.barrier_timeout,
            ),
            daemon=True,
            name="repro-procpool-barrier-agent",
        )
        self._agent.start()
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(
                    tid,
                    self._block.name,
                    self._caps,
                    self.num_workers,
                    self._start,
                    self._done,
                ),
                daemon=True,
                name=f"repro-procworker-{tid}",
            )
            for tid in range(self.num_workers)
        ]
        for p in self._procs:
            p.start()

    # ------------------------------------------------------------------
    def extract(
        self,
        graph: CSRGraph | None = None,
        *,
        schedule: str = "synchronous",
        max_iterations: int | None = None,
    ) -> tuple[np.ndarray, list[int]]:
        """Run one extraction; returns ``(edges, queue_sizes)``.

        With ``graph`` given, rebinds the pool to it first (cheap when the
        graph fits the current capacities).  With ``graph=None``, runs on
        the currently bound graph.  Resets the shared Algorithm 1 state,
        then drives barrier-separated rounds until no vertex has a parent
        left.

        ``schedule="synchronous"`` (default) is deterministic: the result
        is bit-identical to the serial superstep engine, independent of
        ``num_workers`` and of whatever graphs the pool served before.
        ``schedule="asynchronous"`` sweeps live state (see the module
        docstring): the result is any valid chordal edge set and may
        differ run to run — certify it with
        :func:`repro.chordality.verify_extraction`.
        """
        if self._closed:
            raise RuntimeError("ProcessPool is closed")
        if schedule not in ("synchronous", "asynchronous"):
            raise ConfigError(
                "schedule must be 'synchronous' or 'asynchronous', "
                f"got {schedule!r}"
            )
        if graph is not None and graph is not self._bound:
            self.bind(graph)
        if self._bound is None:
            raise RuntimeError(
                "no graph bound; pass one to extract() or bind() first"
            )
        if self._trivial_bound:
            return np.empty((0, 2), dtype=np.int64), []
        is_async = schedule == "asynchronous"
        a = self._block.arrays
        ctrl = a["control"]
        n = self._n
        a["counts"][:n] = 0
        a["cursor"][:n] = 0
        a["lp"][:n] = initial_parents(
            a["indptr"][: n + 1], a["indices"][: self._nnz], a["lower"][:n]
        )
        if is_async:
            a["edge_state"][: self._arena_used] = EDGE_UNDECIDED
        ctrl[_CTRL_SCHEDULE] = _SCHED_ASYNC if is_async else _SCHED_SYNC

        queue_sizes: list[int] = []
        chunks: list[tuple[np.ndarray, np.ndarray]] = []
        limit = max_iterations if max_iterations is not None else self._max_degree + 2

        while True:
            active = np.flatnonzero(a["lp"][:n] >= 0)
            na = active.size
            if na == 0:
                break
            if len(queue_sizes) >= limit:
                raise ConvergenceError(
                    f"exceeded iteration budget {limit} with {na} active "
                    "vertices; this indicates an internal bug"
                )
            parents = a["lp"][:n][active]
            queue_sizes.append(int(np.unique(parents).size))
            a["active"][:na] = active
            a["parents"][:na] = parents
            if is_async:
                # No snapshot, no key compression: workers probe the live
                # arena.  Balance by the current chordal-set sizes.
                nkeys = 0
                weights = a["counts"][:n][active].astype(np.float64) + 1.0
            else:
                a["snapshot"][:n] = a["counts"][:n]
                nkeys = build_arena_keys(
                    a["arena"], a["offsets"], a["snapshot"][:n], n, out=a["keys"]
                ).size
                # Balance slices by subset-test cost (|C[w]| probes + constant).
                weights = a["snapshot"][:n][active].astype(np.float64) + 1.0
            ranges = balanced_chunks(weights, self.num_workers)
            a["cuts"][: self.num_workers] = [r[0] for r in ranges]
            a["cuts"][self.num_workers] = ranges[-1][1]
            a["epochs"][: self.num_workers] = 0
            ctrl[_CTRL_CMD] = _CMD_RUN
            ctrl[_CTRL_NKEYS] = nkeys
            ctrl[_CTRL_ERROR] = 0
            self._superstep_barrier()
            if int(ctrl[_CTRL_ERROR]) != 0:
                raise RuntimeError(
                    f"worker {int(ctrl[_CTRL_ERROR]) - 1} failed during a superstep"
                )
            lagging = np.flatnonzero(a["epochs"][: self.num_workers] != 1)
            if lagging.size:  # pragma: no cover - structural invariant
                raise RuntimeError(
                    f"workers {lagging.tolist()} missed a round (epoch "
                    "counter not bumped); the shared segment is inconsistent"
                )
            accepted = a["ok"][:na].astype(bool)
            chunks.append((parents[accepted], active[accepted]))

        edges = assemble_edges(chunks)
        if is_async:
            # Claim accounting: every reported edge corresponds to exactly
            # one won ACCEPTED claim and one arena append.  A mismatch
            # means the lock-free discipline was violated somewhere.
            claimed = int(
                np.count_nonzero(
                    a["edge_state"][: self._arena_used] == EDGE_ACCEPTED
                )
            )
            appended = int(a["counts"][:n].sum())
            if not (claimed == appended == edges.shape[0]):
                raise RuntimeError(
                    "asynchronous claim accounting diverged: "
                    f"{claimed} accepted claims, {appended} arena appends, "
                    f"{edges.shape[0]} reported edges"
                )
        return edges, queue_sizes

    def _superstep_barrier(self) -> None:
        import queue

        self._agent_req.put("superstep")
        try:
            # The agent's two waits are bounded by barrier_timeout each;
            # the slack covers queue latency.  Hitting Empty means the
            # barrier state itself is wedged (worker died holding it).
            failure = self._agent_resp.get(timeout=2 * self.barrier_timeout + 5.0)
        except queue.Empty:
            failure = RuntimeError(
                "superstep barrier deadlocked (a worker likely died while "
                "holding barrier state)"
            )
        if failure is not None:
            dead = [p.name for p in self._procs if not p.is_alive()]
            self.close()
            raise RuntimeError(
                f"process-engine superstep barrier failed ({failure!r}); "
                f"dead workers: {dead or 'none'}"
            ) from failure

    # ------------------------------------------------------------------
    def _teardown(self) -> None:
        """Stop the current team (if any) and release the segment.

        Robust to partially-constructed pools: never-started workers are
        skipped, and the segment is released even when joins misbehave.
        The pool stays usable — a later bind starts a fresh team.
        """
        if self._block is None:
            return
        if self._procs:
            try:
                # Ask for a clean exit only while the whole team is alive:
                # a worker killed mid-wait (e.g. daemon reaping at
                # interpreter shutdown) leaves the barrier unreleasable,
                # so dead or part-dead teams are reaped below instead.
                # The barrier poke goes through the agent thread (see
                # _barrier_agent) and is abandoned on timeout.
                if all(p.pid is not None and p.is_alive() for p in self._procs):
                    self._block.arrays["control"][_CTRL_CMD] = _CMD_SHUTDOWN
                    self._agent_req.put("shutdown")
                    self._agent_resp.get(timeout=10.0)
            except Exception:  # queue.Empty, or workers died under us; reap below
                pass
            self._agent_req.put(None)  # retire an idle agent (stuck one is daemon)
            for p in self._procs:
                try:
                    if p.pid is None:  # Process.start() never ran
                        continue
                    p.join(timeout=5.0)
                    if p.is_alive():  # pragma: no cover - hard-kill safety net
                        p.terminate()
                        p.join(timeout=5.0)
                except Exception:  # pragma: no cover - reaping is best-effort
                    pass
            self._procs = []
        self._block.close()
        self._block.unlink()
        self._block = None

    def close(self) -> None:
        """Shut the team down and release the shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._bound = None
        try:
            self._teardown()
        finally:
            self._block = None

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def process_max_chordal(
    graph: CSRGraph,
    *,
    num_workers: int = 4,
    variant: str = "optimized",
    schedule: str = "synchronous",
    max_iterations: int | None = None,
) -> tuple[np.ndarray, list[int]]:
    """Extract the maximal chordal edge set with a process team.

    Returns ``(edges, queue_sizes)``.  With ``schedule="synchronous"``
    (default) the edge set is bit-identical to the serial synchronous
    superstep engine for every ``num_workers``; with
    ``schedule="asynchronous"`` it is any valid chordal edge set produced
    by the live-state sweep (may vary run to run — see the module
    docstring).  Spawns (and tears down) a one-shot :class:`ProcessPool`;
    batch callers should hold a pool and call :meth:`ProcessPool.extract`
    per graph instead — see :func:`repro.core.extract.extract_many`.

    ``variant`` is validated for API symmetry; Opt/Unopt visit identical
    parents (see :mod:`repro.core.state`) and the bulk kernels do no cost
    accounting, so both run the sorted-adjacency path.
    """
    if variant not in ("optimized", "unoptimized"):
        raise ConfigError(
            f"unknown variant {variant!r}; expected 'optimized' or 'unoptimized'"
        )
    with ProcessPool(graph, num_workers=num_workers) as pool:
        return pool.extract(schedule=schedule, max_iterations=max_iterations)
