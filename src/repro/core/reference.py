"""Literal pure-Python transcription of Algorithm 1.

This module is the executable *specification*: it follows the paper's
pseudocode line by line using dictionaries and sets, at the cost of speed.
The array engines in :mod:`repro.core.superstep` and
:mod:`repro.core.threaded` are tested for edge-set equality against it.

Schedules
---------
The paper's pseudocode leaves the intra-iteration execution order open
("for all v in Q1 **in parallel**"); two deterministic serialisations are
provided, and both satisfy the paper's correctness proofs:

* ``"asynchronous"`` (default) — sweep Q1 in ascending id order with *live*
  state, exactly what the paper's platforms converge to: when a vertex's
  next lowest parent is a later member of the same queue, the vertex is
  served again within the same iteration.  Because parents are consumed in
  increasing order and the sweep ascends, this is the maximal-progress
  serialisation — it reproduces the paper's headline iteration counts
  (~3 iterations for R-MAT inputs, ~10 for the gene networks, k-1 for a
  k-clique; Section V and Figure 7).

* ``"synchronous"`` — barrier semantics: every LP assignment and every
  chordal set is read as of the start of the iteration, so each vertex
  consumes exactly one parent per superstep.  Iteration count equals the
  maximum lower-degree.  This mode is the lock-step baseline used for
  determinism tests and the schedule ablation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ConvergenceError
from repro.graph.csr import CSRGraph

__all__ = ["reference_max_chordal", "SCHEDULES"]

SCHEDULES = ("asynchronous", "synchronous")


def _lowest_parent(neighbors: list[int], w: int, above: int) -> int | None:
    """Smallest neighbor of ``w`` that is < w and > ``above`` (None if none)."""
    best: int | None = None
    for u in neighbors:
        if above < u < w and (best is None or u < best):
            best = u
    return best


def reference_max_chordal(
    graph: CSRGraph,
    *,
    schedule: str = "asynchronous",
    max_iterations: int | None = None,
) -> tuple[np.ndarray, list[int]]:
    """Run Algorithm 1 verbatim; return ``(EC edge array, queue sizes)``.

    Parameters
    ----------
    graph:
        Input graph (adjacency order irrelevant here).
    schedule:
        ``"asynchronous"`` or ``"synchronous"`` (see module docs).
    max_iterations:
        Safety bound; defaults to ``max_degree + 2``.  Exceeding it raises
        :class:`~repro.errors.ConvergenceError` — the paper bounds the
        iteration count by the max degree, so hitting the limit indicates
        an internal bug.

    Returns
    -------
    edges:
        ``(k, 2)`` array of chordal edges as ``(v, w)`` rows in discovery
        order (``v`` is the parent, so ``v < w``).
    queue_sizes:
        ``|Q1|`` for each executed iteration (Figure 7's series).
    """
    if schedule not in SCHEDULES:
        raise ConfigError(f"schedule must be one of {SCHEDULES}, got {schedule!r}")
    n = graph.num_vertices
    adj: list[list[int]] = [[int(u) for u in graph.neighbors(v)] for v in range(n)]

    # Lines 2-10: initialisation.
    lp: dict[int, int] = {}
    chordal: list[set[int]] = [set() for _ in range(n)]
    q1: set[int] = set()
    for v in range(n):
        w = _lowest_parent(adj[v], v, -1)
        if w is not None:
            lp[v] = w
            q1.add(w)

    edges: list[tuple[int, int]] = []
    queue_sizes: list[int] = []
    limit = max_iterations if max_iterations is not None else graph.max_degree() + 2
    synchronous = schedule == "synchronous"

    # Lines 11-24: the iterative core.
    while q1:
        queue_sizes.append(len(q1))
        if len(queue_sizes) > limit:
            raise ConvergenceError(
                f"exceeded iteration budget {limit} (queue={len(q1)}); "
                "this indicates an internal bug"
            )
        if synchronous:
            lp_view = dict(lp)
            chordal_view: list[set[int]] | list[frozenset[int]] = [
                frozenset(c) for c in chordal
            ]
        else:
            lp_view = lp
            chordal_view = chordal

        q2: set[int] = set()
        for v in sorted(q1):  # ascending serialisation of the parallel loop
            for w in adj[v]:
                if lp_view.get(w) != v or lp.get(w) != v:
                    continue
                # Line 15: subset test.  C[w]'s only writer this instant is
                # w's current LP — this very step — so the live read of
                # C[w] is exact under both schedules.
                if chordal[w] <= chordal_view[v]:
                    chordal[w].add(v)  # line 16
                    edges.append((v, w))  # line 17
                # Lines 18-22: advance w to its next lowest parent.
                x = _lowest_parent(adj[w], w, v)
                if x is not None:
                    lp[w] = x
                    q2.add(x)
                else:
                    del lp[w]
        q1 = q2

    arr = (
        np.asarray(edges, dtype=np.int64)
        if edges
        else np.empty((0, 2), dtype=np.int64)
    )
    return arr, queue_sizes
