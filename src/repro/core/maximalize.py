"""Maximality completion pass (closes the Theorem 2 gap).

The paper's Theorem 2 asserts that a connected output of Algorithm 1 is
maximal, but its proof is incomplete and the claim fails on real inputs:
the subset test ``C[w] ⊆ C[v]`` evaluates *while ``C[v]`` is still
growing*, so an edge can be rejected that would have passed against the
final sets (see ``tests/test_theorem2_gap.py`` for a machine-checked
counterexample and ``EXPERIMENTS.md`` for how rare this is in practice).

:func:`maximalize_chordal_edges` greedily re-offers every rejected edge to
the chordal subgraph using the O(V+E)-per-edge addability criterion of
:mod:`repro.chordality.maximality` and accepts those that keep the graph
chordal, yielding a certified-maximal chordal subgraph containing the
algorithm's output.  With ``weights`` given, candidates are offered
heaviest-first (the weight-greedy completion the ``weighted`` engine
runs), biasing the closed gap toward maximum retained weight.
"""

from __future__ import annotations

import numpy as np

from repro.chordality.maximality import edge_addable
from repro.graph.csr import CSRGraph

__all__ = ["maximalize_chordal_edges"]


def maximalize_chordal_edges(
    graph: CSRGraph,
    chordal_edges: np.ndarray,
    *,
    weights: dict[tuple[int, int], float] | None = None,
) -> tuple[np.ndarray, int]:
    """Greedily extend ``chordal_edges`` to a truly maximal chordal edge set.

    Parameters
    ----------
    graph:
        The original graph ``G``.
    chordal_edges:
        ``(k, 2)`` chordal edge set (must induce a chordal subgraph; this
        is guaranteed for Algorithm 1 output by Theorem 1).
    weights:
        Optional ``{(u, v): weight}`` over ``u < v`` edges of ``graph``
        (see :func:`repro.graph.weights.edge_weight_mapping`).  When
        given, rejected edges are re-offered in descending weight order
        (ties by ``(u, v)``), so the completion prefers heavy edges.
        Candidate order never affects *whether* the result is maximal,
        only *which* maximal superset is reached.

    Returns
    -------
    ``(edges, added)`` — the extended ``(k + added, 2)`` edge array and the
    number of edges the pass added.  ``added`` is the paper's "maximality
    gap" for this input.

    Notes
    -----
    Greedy is safe: after each accepted edge the graph is still chordal,
    and an edge rejected now stays unaddable only *for the current graph*;
    we therefore sweep until a full pass adds nothing.  In practice one
    pass almost always suffices (adding an edge only makes other additions
    harder within the same region, but a later addition can in principle
    disconnect a common neighborhood, so the loop is kept for correctness).
    """
    base = np.asarray(chordal_edges, dtype=np.int64).reshape(-1, 2)
    adj: list[set[int]] = [set() for _ in range(graph.num_vertices)]
    have: set[tuple[int, int]] = set()
    for u, v in base:
        u, v = int(u), int(v)
        adj[u].add(v)
        adj[v].add(u)
        have.add((min(u, v), max(u, v)))

    candidates = sorted(graph.edge_set() - have)
    if weights is not None:
        candidates.sort(key=lambda e: (-weights.get(e, 1.0), e))
    added: list[tuple[int, int]] = []
    while True:
        progress = False
        remaining: list[tuple[int, int]] = []
        for u, v in candidates:
            if edge_addable(adj, u, v):
                adj[u].add(v)
                adj[v].add(u)
                added.append((u, v))
                progress = True
            else:
                remaining.append((u, v))
        candidates = remaining
        if not progress or not candidates:
            break

    if not added:
        return base, 0
    extended = np.vstack((base, np.asarray(added, dtype=np.int64)))
    return extended, len(added)
