"""Work-trace instrumentation for Algorithm 1.

The machine models (``repro.machine``) do not time Python — they replay a
**work trace**: exact per-iteration operation counts measured while the
real algorithm runs.  Per iteration the trace captures three views of the
same work, because the two modeled platforms are sensitive to different
ones:

1. **Work items** — total ops charged to each LP vertex (its adjacency
   scan, plus the subset test + parent advance + queue bookkeeping of every
   child it serves).  Items are the scheduling granularity of an
   OpenMP-style port (Opteron model: LPT over items).
2. **Category totals** — scan / subset-comparison / advance / queue op
   counts, because cache machines price a sequential adjacency rescan very
   differently from random set probes, while the XMT prices every memory
   touch the same.
3. **Critical path** — the longest chain of *dependent* services in the
   iteration.  Serving ``w`` by parent ``v`` must follow both ``w``'s
   previous service and the service that last grew ``C[v]``; a
   high-degree vertex being served by hundreds of parents is therefore a
   sequential chain no machine can parallelise.  This is the term that
   reproduces the paper's RMAT-B and gene-network behaviour on the XMT.

Iterations are separated by barriers, so chains never span iterations.

Since the unified-runtime refactor, trace collection is a feature of the
schedule *driver* (:func:`repro.core.runtime.driver.drive`), not of any
one engine: synchronous traces are reconstructed from each round's
barrier snapshot in canonical ascending order (identical for the serial
and thread-team executors — the trace is a property of the schedule),
and asynchronous-sweep traces are recorded at service time.  Engines
whose registry entry sets ``supports_trace`` (``superstep`` and
``threaded``) accept ``collect_trace=True`` through the session API.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CostModelParams", "IterationTrace", "WorkTrace", "TraceBuilder"]


@dataclass(frozen=True)
class CostModelParams:
    """Abstract op-count weights used when flattening events to costs.

    Units are "operations" (roughly: memory touches); machine models
    translate ops to seconds with platform- and category-specific rates.
    """

    scan_op: float = 1.0      # per adjacency entry scanned by an LP vertex
    compare_op: float = 1.0   # per subset-test comparison
    advance_op: float = 1.0   # per parent-advance op (1 for Opt, deg for Unopt)
    queue_op: float = 2.0     # per processed child (queue bookkeeping)


@dataclass
class IterationTrace:
    """One superstep: independent work items plus iteration-level counters."""

    #: distinct LP vertices active this iteration (|Q1| in the paper, Fig 7)
    queue_size: int
    #: number of (parent, child) services this iteration
    services: int
    #: edges admitted into EC this iteration
    edges_added: int
    #: per-LP-vertex op costs (independent work items), sorted descending
    work_items: np.ndarray
    #: total subset-test comparisons this iteration
    subset_comparisons: int
    #: total parent-advance ops this iteration
    advance_ops: int
    #: total adjacency entries scanned by LP vertices this iteration
    scan_ops: int
    #: total queue-bookkeeping ops this iteration
    queue_ops: int
    #: ops along the longest dependent-service chain this iteration
    critical_path_ops: float

    @property
    def total_work(self) -> float:
        return float(self.work_items.sum()) if self.work_items.size else 0.0

    @property
    def max_item(self) -> float:
        return float(self.work_items.max()) if self.work_items.size else 0.0


@dataclass
class WorkTrace:
    """Complete execution trace of one extraction run."""

    variant: str
    num_vertices: int
    num_edges: int
    iterations: list[IterationTrace] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def queue_sizes(self) -> list[int]:
        """|Q1| per iteration — the series plotted in Figure 7."""
        return [it.queue_size for it in self.iterations]

    @property
    def total_work(self) -> float:
        return sum(it.total_work for it in self.iterations)

    @property
    def total_critical_path(self) -> float:
        """Sum of per-iteration critical paths — the depth lower bound."""
        return sum(it.critical_path_ops for it in self.iterations)

    @property
    def total_edges_added(self) -> int:
        return sum(it.edges_added for it in self.iterations)

    def summary(self) -> dict:
        """Compact dict for logging / EXPERIMENTS.md tables."""
        return {
            "variant": self.variant,
            "n": self.num_vertices,
            "m": self.num_edges,
            "iterations": self.num_iterations,
            "queue_sizes": self.queue_sizes,
            "total_work": self.total_work,
            "critical_path": self.total_critical_path,
            "chordal_edges": self.total_edges_added,
        }


class TraceBuilder:
    """Accumulates one iteration's events.

    The engines call :meth:`scan` once per Q1 vertex and :meth:`service`
    once per (parent, child) processing event, then :meth:`flush` at the
    barrier.  A disabled builder turns every method into a cheap no-op.
    """

    def __init__(
        self,
        variant: str,
        num_vertices: int,
        num_edges: int,
        params: CostModelParams | None = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.params = params or CostModelParams()
        self.trace = WorkTrace(variant, num_vertices, num_edges)
        self._costs: dict[int, float] = {}
        self._depth: dict[int, float] = {}
        self._crit = 0.0
        self._services = 0
        self._edges = 0
        self._cmp = 0
        self._adv = 0
        self._scan = 0
        self._queue = 0

    # --- per-event hooks ------------------------------------------------
    def scan(self, v: int, degree: int) -> None:
        """LP vertex ``v`` scans its adjacency (lines 13-14)."""
        if not self.enabled:
            return
        self._costs[v] = self._costs.get(v, 0.0) + degree * self.params.scan_op
        self._scan += degree

    def service(
        self, v: int, w: int, test_cost: int, advance_cost: int, edge_added: bool
    ) -> None:
        """One child ``w`` served by LP vertex ``v`` (lines 15-22)."""
        if not self.enabled:
            return
        p = self.params
        cost = (
            test_cost * p.compare_op
            + advance_cost * p.advance_op
            + p.queue_op
        )
        self._costs[v] = self._costs.get(v, 0.0) + cost
        self._cmp += test_cost
        self._adv += advance_cost
        self._queue += 2
        self._services += 1
        if edge_added:
            self._edges += 1
        # Dependency chain: this service starts after w's previous service
        # and after the last service that grew C[v].
        start = max(self._depth.get(w, 0.0), self._depth.get(v, 0.0))
        finish = start + cost
        self._depth[w] = finish
        if finish > self._crit:
            self._crit = finish

    # --- barrier ----------------------------------------------------------
    def flush(self) -> None:
        """Close the current iteration (superstep barrier)."""
        if not self.enabled:
            return
        items = np.asarray(sorted(self._costs.values(), reverse=True), dtype=np.float64)
        self.trace.iterations.append(
            IterationTrace(
                queue_size=len(self._costs),
                services=self._services,
                edges_added=self._edges,
                work_items=items,
                subset_comparisons=self._cmp,
                advance_ops=self._adv,
                scan_ops=self._scan,
                queue_ops=self._queue,
                critical_path_ops=self._crit,
            )
        )
        self._costs = {}
        self._depth = {}
        self._crit = 0.0
        self._services = 0
        self._edges = 0
        self._cmp = 0
        self._adv = 0
        self._scan = 0
        self._queue = 0
