"""Unified command-line interface: ``python -m repro`` / the ``repro`` script.

The CLI turns the library into a tool: point it at graph files in any
supported format (see :mod:`repro.graph.io`) and get chordal edge lists
out, generate the paper's graph families to disk, guard the performance
baselines, and regenerate the paper's tables and figures.

Subcommands
-----------
``extract``
    File in, maximal chordal edge list out, with every knob of
    :class:`repro.core.config.ExtractionConfig`; ``--engine`` /
    ``--schedule`` choices come from the engine registry
    (:mod:`repro.core.engines`).  The whole invocation runs through one
    :class:`repro.core.session.Extractor`, so multiple inputs share one
    persistent process pool (``--engine process``).  ``--verify`` certifies
    every output through :func:`repro.chordality.verify_extraction`
    (chordality always; maximality when ``--maximalize`` guarantees it) —
    the supported way to validate the nondeterministic asynchronous
    schedules, whose output is *any* valid extraction rather than a
    bit-reproducible one.
``verify``
    Standalone certification of a *saved* extraction: given the input
    graph file and the extracted subgraph file, re-run
    :func:`repro.chordality.verify_extraction` (chordality + maximality
    by default) and exit 3 on failure — the offline mirror of ``repro
    extract --verify`` for outputs produced earlier or elsewhere.
``generate``
    Write an R-MAT / random / chordal family graph to file (or stdout).
``mutate``
    Dynamic graphs: load a graph, extract once, then maintain the
    maximal chordal subgraph *incrementally* across an edge-mutation
    stream (:class:`repro.core.incremental.IncrementalExtractor`) and
    write the final chordal edge set.
``shard``
    Out-of-core extraction, stepwise (:mod:`repro.shard`): ``plan``
    streams a huge input into per-shard spill files, ``run`` extracts
    shards resumably (per-shard results are cached on disk), ``stitch``
    reconciles boundary edges chordally and writes the global edge set.
    ``repro extract --sharded --shards N --spill-dir DIR`` is the
    one-shot form.
``serve``
    Run the extraction service (:mod:`repro.service`): a daemon owning
    warm worker pools behind a unix socket (and/or TCP), with an
    admission queue, per-request deadlines and a content-hash result
    cache.  ``repro extract --server`` routes through it.
``bench``
    One-command performance *and quality* guard: runs
    ``benchmarks/bench_regression_guard.py`` (the 2x kernel-regression
    gate plus the BENCH_quality.json retained-edge gate), or re-records
    a baseline with ``--record
    {kernels,batch,async,quality,service,incremental,all}``.
``experiments``
    Delegates to :mod:`repro.experiments.runner` (tables and figures).

Examples
--------
::

    repro --version
    repro generate rmat-b --scale 12 --seed 1 -o graph.mtx
    repro extract graph.mtx -o chordal.txt --engine process --num-workers 4
    repro generate rmat-er --scale 8 | repro extract - --quiet
    repro extract data/*.mtx --out-dir results/ --engine process
    repro serve --socket /tmp/repro.sock --pools 2 --num-workers 4 &
    repro extract graph.mtx --server /tmp/repro.sock
    repro bench
    repro experiments table1 --scales 8,9

Exit codes: 0 on success, 2 on bad input (malformed graph file, missing
path, unknown knob values — argparse prints its own one-line error for
those), 3 when ``--verify`` rejects an output.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.core.config import VARIANTS, ExtractionConfig
from repro.core.engines import registered_engines, schedule_names
from repro.core.session import Extractor
from repro.errors import ReproError
from repro.graph.generators import (
    barabasi_albert,
    gnm_random_graph,
    gnp_random_graph,
    interval_graph,
    ktree,
    partial_ktree,
    random_chordal,
    rmat_b,
    rmat_er,
    rmat_g,
)
from repro.graph.io import (
    FORMATS,
    STREAMABLE_FORMATS,
    load_graph,
    read_edgelist,
    read_metis,
    read_mtx,
    read_snap,
    save_graph,
    strip_format_extension,
    write_edgelist,
    write_metis,
    write_mtx,
)
from repro.util.timing import Timer

__all__ = ["main", "build_parser"]

#: family name -> (builder from parsed args, knobs used) for ``generate``.
_FAMILIES = {
    "rmat-er": (
        lambda a: rmat_er(a.scale, seed=a.seed, edge_factor=a.edge_factor),
        "--scale/--edge-factor",
    ),
    "rmat-g": (
        lambda a: rmat_g(a.scale, seed=a.seed, edge_factor=a.edge_factor),
        "--scale/--edge-factor",
    ),
    "rmat-b": (
        lambda a: rmat_b(a.scale, seed=a.seed, edge_factor=a.edge_factor),
        "--scale/--edge-factor",
    ),
    "gnp": (lambda a: gnp_random_graph(a.n, a.p, seed=a.seed), "--n/--p"),
    "gnm": (lambda a: gnm_random_graph(a.n, a.m, seed=a.seed), "--n/--m"),
    "ba": (lambda a: barabasi_albert(a.n, a.m, seed=a.seed), "--n/--m"),
    "ktree": (lambda a: ktree(a.n, a.k, seed=a.seed), "--n/--k"),
    "partial-ktree": (lambda a: partial_ktree(a.n, a.k, a.keep, seed=a.seed), "--n/--k/--keep"),
    "random-chordal": (lambda a: random_chordal(a.n, a.density, seed=a.seed), "--n/--density"),
    "interval": (lambda a: interval_graph(a.n, seed=a.seed), "--n"),
}


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Maximal chordal subgraph extraction "
        "(Halappanavar et al., ICPP 2012) — batch pipeline and tools",
    )
    class _VersionAction(argparse.Action):
        """``--version`` with native-backend status.

        Resolution (which may build the extension on first call) happens
        here — when the flag is actually used — never at parser
        construction.
        """

        def __call__(self, parser, namespace, values, option_string=None):
            from repro.core.native import native_status

            status = native_status()
            state = "available" if status.available else "unavailable"
            print(f"{parser.prog} {__version__}")
            print(f"native kernels: {state} ({status.detail})")
            parser.exit()

    parser.add_argument(
        "--version", action=_VersionAction, nargs=0, help="show version and exit"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    # Engine/schedule choices and help are derived from the engine
    # registry, so a third-party register_engine() call before parsing
    # shows up here unchanged.
    engines = registered_engines()

    ex = sub.add_parser(
        "extract",
        help="extract maximal chordal subgraphs from graph files",
        description="Read graph file(s), run Algorithm 1, write the chordal "
        "edge set.  Multiple inputs share one persistent worker pool with "
        "--engine process.",
    )
    ex.add_argument(
        "inputs", nargs="+", help="input graph file(s); '-' reads an edge list from stdin"
    )
    ex.add_argument(
        "-o", "--output", default="-", help="output path for a single input ('-' = stdout)"
    )
    ex.add_argument(
        "--out-dir",
        default=None,
        help="directory for per-input outputs (<stem>.chordal.<ext>); "
        "required with multiple inputs",
    )
    ex.add_argument(
        "--input-format",
        choices=FORMATS,
        default=None,
        help="input format (default: auto-detect per file)",
    )
    ex.add_argument(
        "--output-format",
        choices=("edgelist", "mtx", "metis", "npz"),
        default=None,
        help="output format (default: by output extension, else edgelist)",
    )
    ex.add_argument(
        "--engine",
        choices=tuple(e.name for e in engines),
        default="superstep",
        help="; ".join(f"{e.name}: {e.description}" for e in engines),
    )
    ex.add_argument("--variant", choices=VARIANTS, default="optimized")
    ex.add_argument(
        "--schedule",
        choices=schedule_names(),
        default=None,
        help="default: the engine's natural schedule ("
        + ", ".join(f"{e.name}: {e.default_schedule}" for e in engines)
        + ")",
    )
    ex.add_argument(
        "--num-workers",
        type=int,
        default=None,
        help="process-engine workers (default 4; server-owned with --server)",
    )
    ex.add_argument("--num-threads", type=int, default=4, help="threaded-engine threads")
    ex.add_argument(
        "--renumber", choices=("bfs",), default=None, help="BFS-renumber before extraction"
    )
    ex.add_argument(
        "--stitch", action="store_true", help="bridge disconnected output components"
    )
    ex.add_argument(
        "--maximalize",
        action="store_true",
        help="run the completion pass (certified maximal output)",
    )
    ex.add_argument(
        "--verify",
        action="store_true",
        help="certify each output (chordal; also maximal with --maximalize) "
        "before writing it; exit 3 on failure",
    )
    ex.add_argument(
        "-q", "--quiet", action="store_true", help="suppress per-graph stats on stderr"
    )
    ex.add_argument(
        "--server",
        default=None,
        metavar="ADDR",
        help="route extraction through a running `repro serve` daemon: a "
        "unix-socket path, or HOST:PORT for TCP.  --verify then certifies "
        "server-side; --num-workers is rejected (the server sizes its own "
        "pools)",
    )
    ex.add_argument(
        "--sharded",
        action="store_true",
        help="out-of-core mode (repro.shard): stream the input into "
        "per-shard spill files, extract each shard, stitch boundary edges "
        "chordally.  Requires one file input and --spill-dir; per-shard "
        "maximalization is always on (the stitched certificates need it).  "
        "--verify certifies every shard plus the stitched seam",
    )
    ex.add_argument(
        "--shards", type=int, default=4, help="shard count for --sharded (default 4)"
    )
    ex.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="spill directory for --sharded (plan.json, shard spills, "
        "cached per-shard results; reused across runs)",
    )

    ver = sub.add_parser(
        "verify",
        help="certify a saved extraction (chordality + maximality)",
        description="Re-verify a saved extraction: load the input graph and "
        "the extracted subgraph, and certify the subgraph is a (maximal) "
        "chordal subgraph of the input via verify_extraction.  Mirrors "
        "`repro extract --verify` for outputs written earlier or by other "
        "tools.  Exit 0 when valid, 3 when any check fails.",
    )
    ver.add_argument("graph", help="input graph file; '-' reads from stdin")
    ver.add_argument(
        "subgraph", help="extracted subgraph file; '-' reads from stdin"
    )
    ver.add_argument(
        "--input-format",
        choices=FORMATS,
        default=None,
        help="graph file format (default: auto-detect)",
    )
    ver.add_argument(
        "--subgraph-format",
        choices=FORMATS,
        default=None,
        help="subgraph file format (default: auto-detect)",
    )
    ver.add_argument(
        "--chordal-only",
        action="store_true",
        help="skip the maximality certificate (chordality + edge validity "
        "only) — use for outputs extracted without --maximalize, which "
        "Algorithm 1 alone does not guarantee to be maximal",
    )
    ver.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the verdict line on success"
    )

    gen = sub.add_parser(
        "generate",
        help="generate a graph family to file",
        description="Write one graph of a named family.  Each family reads "
        "its own knobs: " + "; ".join(f"{k}: {v[1]}" for k, v in _FAMILIES.items()),
    )
    gen.add_argument("family", choices=sorted(_FAMILIES))
    gen.add_argument("-o", "--output", default="-", help="output path ('-' = stdout edge list)")
    gen.add_argument(
        "--format",
        choices=("edgelist", "mtx", "metis", "npz"),
        default=None,
        help="output format (default: by extension, else edgelist)",
    )
    gen.add_argument("--scale", type=int, default=10, help="R-MAT scale (|V| = 2^scale)")
    gen.add_argument("--edge-factor", type=int, default=8, help="R-MAT |E| = factor * |V|")
    gen.add_argument("--n", type=int, default=128, help="vertex count (non-R-MAT families)")
    gen.add_argument("--p", type=float, default=0.1, help="gnp edge probability")
    gen.add_argument("--m", type=int, default=3, help="gnm edge count / ba attachment")
    gen.add_argument("--k", type=int, default=3, help="(partial-)ktree clique size")
    gen.add_argument("--keep", type=float, default=0.5, help="partial-ktree keep fraction")
    gen.add_argument("--density", type=float, default=0.3, help="random-chordal density")
    gen.add_argument("--seed", type=int, default=None, help="RNG seed")

    srv = sub.add_parser(
        "serve",
        help="run the extraction service daemon (warm pools, cache)",
        description="Serve extraction requests over a unix socket (and/or "
        "TCP): warm worker-process pools, a bounded admission queue "
        "(explicit BUSY backpressure), per-request deadlines, a "
        "content-hash result cache, and worker-death recovery.  Clients: "
        "`repro extract --server ADDR` or repro.service.ServiceClient.  "
        "Stop with SIGINT/SIGTERM (drains in-flight requests first).",
    )
    srv.add_argument(
        "--socket", default=None, metavar="PATH", help="unix-socket path to listen on"
    )
    srv.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="also (or instead) listen on TCP; port 0 picks a free port",
    )
    srv.add_argument(
        "--pools", type=int, default=1, help="warm worker pools (default 1)"
    )
    srv.add_argument(
        "--num-workers", type=int, default=2, help="worker processes per pool (default 2)"
    )
    srv.add_argument(
        "--queue-depth",
        type=int,
        default=32,
        help="admission-queue bound; further requests get BUSY (default 32)",
    )
    srv.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="default per-request deadline in seconds (default 30)",
    )
    srv.add_argument(
        "--cache-entries",
        type=int,
        default=128,
        help="result-cache entry ceiling; 0 disables caching (default 128)",
    )
    srv.add_argument(
        "--cache-bytes",
        type=int,
        default=256 * 1024 * 1024,
        help="result-cache byte ceiling (default 256 MiB)",
    )
    srv.add_argument(
        "--barrier-timeout",
        type=float,
        default=None,
        help="seconds before a silent worker team is declared dead "
        "(default: the pool's 120s)",
    )
    srv.add_argument(
        "--no-remote-shutdown",
        action="store_true",
        help="ignore the protocol's shutdown op (stop via signals only)",
    )

    mut = sub.add_parser(
        "mutate",
        help="incrementally re-extract over an edge-mutation stream",
        description="Load a graph, run one full extraction, then apply an "
        "edge-mutation stream while maintaining a maximal chordal subgraph "
        "incrementally (IncrementalExtractor — inserts are a localized "
        "addability test, deletes repair holes around the deletion site); "
        "write the final chordal edge set.",
    )
    mut.add_argument(
        "graph", help="input graph file; '-' reads an edge list from stdin"
    )
    mut.add_argument(
        "mutations",
        help="mutation stream file ('-' = stdin): one 'OP U V' per line "
        "with OP in insert/+/delete/-; '#' starts a comment",
    )
    mut.add_argument(
        "-o", "--output", default="-", help="output path ('-' = stdout)"
    )
    mut.add_argument(
        "--input-format",
        choices=FORMATS,
        default=None,
        help="graph file format (default: auto-detect)",
    )
    mut.add_argument(
        "--output-format",
        choices=("edgelist", "mtx", "metis", "npz"),
        default=None,
        help="output format (default: by output extension, else edgelist)",
    )
    mut.add_argument(
        "--engine",
        choices=tuple(e.name for e in engines),
        default="superstep",
        help="engine for the initial extraction and full rebuilds",
    )
    mut.add_argument("--variant", choices=VARIANTS, default="optimized")
    mut.add_argument(
        "--full-rebuild-threshold",
        type=int,
        default=64,
        help="fall back to a full re-extraction when one deletion's hole "
        "repair evicts more than this many retained edges (default 64)",
    )
    mut.add_argument(
        "--verify",
        action="store_true",
        help="certify the final result (chordal + maximal); exit 3 on failure",
    )
    mut.add_argument(
        "--verify-each",
        action="store_true",
        help="certify after every mutation (slow); exit 3 on first failure",
    )
    mut.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the stats line on stderr"
    )

    shard = sub.add_parser(
        "shard",
        help="stepwise out-of-core extraction: plan / run / stitch",
        description="The stepwise face of `repro extract --sharded` "
        "(repro.shard): `plan` streams the input into per-shard spill "
        "files under an edge-balanced vertex partition; `run` extracts "
        "shards (resumable — results are cached per shard, keyed by input "
        "digest + partition + config); `stitch` reconciles boundary edges "
        "in deterministic chordality-preserving rounds and writes the "
        "stitched edge set.  Run and stitch must use the same engine knobs "
        "(the result cache is config-keyed).",
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    sp = shard_sub.add_parser(
        "plan", help="stream the input file into per-shard spill files"
    )
    sp.add_argument("input", help="input graph file (edgelist/snap/mtx, .gz ok)")
    sp.add_argument("--shards", type=int, default=4, help="shard count (default 4)")
    sp.add_argument("--spill-dir", required=True, metavar="DIR")
    sp.add_argument(
        "--input-format",
        choices=STREAMABLE_FORMATS,
        default=None,
        help="input format (default: auto-detect; metis/npz are not streamable)",
    )
    sp.add_argument(
        "--force",
        action="store_true",
        help="re-stream even if the spill dir already holds a matching plan",
    )
    sp.add_argument("-q", "--quiet", action="store_true")

    def _add_shard_engine_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--engine",
            choices=tuple(e.name for e in engines),
            default="superstep",
            help="per-shard extraction engine (default superstep)",
        )
        p.add_argument("--variant", choices=VARIANTS, default="optimized")
        p.add_argument("--schedule", choices=schedule_names(), default=None)
        p.add_argument("--num-threads", type=int, default=4)
        p.add_argument("--num-workers", type=int, default=None)
        p.add_argument("--renumber", choices=("bfs",), default=None)
        p.add_argument(
            "--no-maximalize",
            action="store_true",
            help="skip the per-shard completion pass (default on: the "
            "stitched maximality certificates assume locally maximal shards)",
        )

    sr = shard_sub.add_parser(
        "run", help="extract planned shards (cached results are skipped)"
    )
    sr.add_argument("--spill-dir", required=True, metavar="DIR")
    sr.add_argument(
        "--shard",
        type=int,
        default=None,
        metavar="N",
        help="extract only shard N (default: all shards)",
    )
    sr.add_argument(
        "--no-cache", action="store_true", help="re-extract even cached shards"
    )
    sr.add_argument(
        "--verify",
        action="store_true",
        help="certify each freshly extracted shard (verify_extraction); "
        "exit 3 on failure",
    )
    _add_shard_engine_options(sr)
    sr.add_argument("-q", "--quiet", action="store_true")

    st = shard_sub.add_parser(
        "stitch",
        help="reconcile boundary edges and write the stitched chordal edge set",
    )
    st.add_argument("--spill-dir", required=True, metavar="DIR")
    st.add_argument("-o", "--output", default="-", help="output path ('-' = stdout)")
    st.add_argument(
        "--output-format",
        choices=("edgelist", "mtx", "metis", "npz"),
        default=None,
    )
    st.add_argument(
        "--certify",
        action="store_true",
        help="certify the stitched result: full chordality check plus "
        "sampled boundary maximality / hole certificates; exit 3 on failure",
    )
    st.add_argument(
        "--samples", type=int, default=64, help="--certify sample count (default 64)"
    )
    st.add_argument("--seed", type=int, default=0, help="--certify sample seed")
    _add_shard_engine_options(st)
    st.add_argument("-q", "--quiet", action="store_true")

    be = sub.add_parser(
        "bench",
        help="run the kernel regression guard / record baselines",
        description="Without flags, runs benchmarks/bench_regression_guard.py "
        "(fails if any hot kernel is >2x slower than BENCH_kernels.json, "
        "the batch/async engine baselines regress >2x, or any engine's "
        "retained-edge quality drops below BENCH_quality.json).  --record "
        "re-records one baseline: 'kernels' (BENCH_kernels.json), 'batch' "
        "(the extract_many batch-throughput baseline, BENCH_batch.json), "
        "'async' (the asynchronous-schedule baseline, BENCH_async.json), "
        "'quality' (the answer-quality baseline, BENCH_quality.json), "
        "'service' (the serve-daemon throughput baseline, "
        "BENCH_service.json), 'incremental' (the dynamic-graph updates/sec "
        "baseline, BENCH_incremental.json), 'sharded' (the out-of-core "
        "extraction baseline, BENCH_sharded.json), or 'all'.",
    )
    be.add_argument(
        "--record",
        nargs="?",
        const="kernels",
        choices=(
            "kernels", "batch", "async", "quality", "service",
            "incremental", "sharded", "all",
        ),
        default=None,
        help="re-record a baseline (bare --record means 'kernels', its "
        "historical meaning)",
    )
    be.add_argument(
        "--record-batch",
        action="store_true",
        help="deprecated alias for --record batch",
    )
    be.add_argument(
        "--record-async",
        action="store_true",
        help="deprecated alias for --record async",
    )
    be.add_argument(
        "pytest_args", nargs="*", help="extra arguments forwarded to pytest"
    )

    exp = sub.add_parser(
        "experiments",
        add_help=False,
        help="regenerate the paper's tables/figures (repro.experiments runner)",
    )
    exp.add_argument("rest", nargs=argparse.REMAINDER)

    return parser


def _repo_root() -> Path:
    """Source-checkout root (two levels above this file's package dir)."""
    return Path(__file__).resolve().parents[2]


def _load_bench_module(name: str):
    """Import a ``benchmarks/`` script by path (the directory is not a package)."""
    import importlib.util

    bench_dir = _repo_root() / "benchmarks"
    path = bench_dir / f"{name}.py"
    if not path.exists():
        raise ReproError(
            f"{path} not found — the bench subcommand needs a source checkout "
            "(benchmarks/ is not installed with the package)"
        )
    if str(bench_dir) not in sys.path:
        sys.path.insert(0, str(bench_dir))
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _read_stdin(fmt: str | None):
    """Read a graph from stdin in the requested text format."""
    readers = {
        "edgelist": read_edgelist,
        "mtx": read_mtx,
        "metis": read_metis,
        "snap": lambda fh: read_snap(fh)[0],
    }
    fmt = fmt or "edgelist"
    if fmt not in readers:
        raise ReproError(f"format {fmt!r} cannot be read from stdin (needs a file)")
    return readers[fmt](sys.stdin)


def _write_stdout(graph, fmt: str | None) -> None:
    """Write a graph to stdout in a text format (binary npz needs a file)."""
    writers = {
        "edgelist": write_edgelist,
        "mtx": write_mtx,
        "metis": write_metis,
    }
    fmt = fmt or "edgelist"
    if fmt not in writers:
        raise ReproError(f"format {fmt!r} cannot be written to stdout (needs a file)")
    writers[fmt](graph, sys.stdout)


def _write_result(result, target: str, out_format: str | None) -> None:
    if target == "-":
        _write_stdout(result.subgraph, out_format)
    else:
        save_graph(result.subgraph, target, format=out_format)


def _out_dir_target(out_dir: Path, source: str, out_ext: str) -> str:
    """Per-input output path: ``<out_dir>/<input stem>.chordal<out_ext>``."""
    stem = strip_format_extension(Path(source).name) if source != "-" else "stdin"
    return str(out_dir / f"{stem}.chordal{out_ext}")


def _parse_server_address(address: str) -> dict:
    """``--server`` value -> ServiceClient kwargs (unix path or HOST:PORT)."""
    if ":" in address and "/" not in address:
        host, _, port = address.rpartition(":")
        if not port.isdigit():
            raise ReproError(
                f"--server {address!r}: TCP form is HOST:PORT (numeric port)"
            )
        return {"host": host or "127.0.0.1", "port": int(port)}
    return {"socket_path": address}


def _extract_via_server(args: argparse.Namespace, out_dir, out_ext) -> int:
    """The ``--server`` path of ``repro extract``: same inputs/outputs,
    extraction (and --verify certification) done by the daemon."""
    from repro.service import ServiceClient, ServiceError

    if args.num_workers is not None:
        print(
            "repro extract: error: --num-workers is server-owned with "
            "--server (the daemon sizes its pools at startup)",
            file=sys.stderr,
        )
        return 2
    config = {"engine": args.engine, "variant": args.variant}
    if args.schedule is not None:
        config["schedule"] = args.schedule
    if args.num_threads is not None:
        config["num_threads"] = args.num_threads
    if args.renumber is not None:
        config["renumber"] = args.renumber
    if args.stitch:
        config["stitch"] = True
    if args.maximalize:
        config["maximalize"] = True
    with ServiceClient(**_parse_server_address(args.server)) as client:
        for source in args.inputs:
            if source == "-":
                graph, name = _read_stdin(args.input_format), "<stdin>"
            else:
                graph, name = load_graph(source, format=args.input_format), source
            with Timer() as timer:
                try:
                    result = client.extract(graph, config=config, verify=args.verify)
                except ServiceError as exc:
                    if exc.code == "VERIFY_FAILED":
                        print(
                            f"repro extract: verification failed for {name}: "
                            f"{exc}",
                            file=sys.stderr,
                        )
                        return 3
                    raise
            target = (
                _out_dir_target(out_dir, source, out_ext) if out_dir else args.output
            )
            _write_result(result, target, args.output_format)
            if not args.quiet:
                m = graph.num_edges
                verified = (
                    " verified=chordal" + (",maximal" if args.maximalize else "")
                    if args.verify
                    else ""
                )
                print(
                    f"{name}: n={graph.num_vertices} m={m} "
                    f"chordal={result.num_edges} "
                    f"({100 * (result.num_edges / m if m else 1.0):.1f}%) "
                    f"iterations={result.num_iterations} "
                    f"engine={result.engine} served_by={result.served_by}"
                    f"{' (cached)' if result.cached else ''}{verified} "
                    f"[{timer.elapsed:.3f}s]",
                    file=sys.stderr,
                )
    return 0


def _extract_sharded(args: argparse.Namespace) -> int:
    """The ``--sharded`` path of ``repro extract``: plan, run, stitch."""
    from repro.shard import certify_stitched, extract_sharded

    if len(args.inputs) != 1 or args.inputs[0] == "-":
        print(
            "repro extract: error: --sharded takes exactly one file input "
            "(streaming needs a re-openable path)",
            file=sys.stderr,
        )
        return 2
    if args.spill_dir is None:
        print(
            "repro extract: error: --sharded requires --spill-dir",
            file=sys.stderr,
        )
        return 2
    if args.server is not None:
        print(
            "repro extract: error: --sharded and --server are exclusive "
            "(the daemon is an in-memory engine)",
            file=sys.stderr,
        )
        return 2
    source = args.inputs[0]
    # The completion pass is forced on: the stitch-time maximality
    # certificates assume each shard is locally maximal.
    config = ExtractionConfig(
        engine=args.engine,
        variant=args.variant,
        schedule=args.schedule,
        num_threads=args.num_threads,
        num_workers=args.num_workers,
        renumber=args.renumber,
        stitch=args.stitch,
        maximalize=True,
    )
    with Timer() as timer:
        result = extract_sharded(
            source,
            num_shards=args.shards,
            spill_dir=args.spill_dir,
            format=args.input_format,
            config=config,
            verify_shards=args.verify,
        )
    verified = ""
    if args.verify:
        problems = certify_stitched(result)
        if problems:
            print(
                f"repro extract: verification failed for {source}: "
                + "; ".join(problems),
                file=sys.stderr,
            )
            return 3
        verified = " verified=shards,chordal,boundary-sample"
    if args.output == "-":
        _write_stdout(result.subgraph(), args.output_format)
    else:
        save_graph(result.subgraph(), args.output, format=args.output_format)
    if not args.quiet:
        cached = sum(1 for s in result.shard_stats if s.from_cache)
        print(
            f"{source}: n={result.num_vertices} raw_pairs={result.plan.raw_pairs} "
            f"chordal={result.num_chordal_edges} shards={result.num_shards} "
            f"(cached {cached}) boundary={result.boundary_edges} "
            f"admitted={result.admitted_boundary} rounds={result.rounds} "
            f"engine={args.engine}{verified} [{timer.elapsed:.3f}s]",
            file=sys.stderr,
        )
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    if args.sharded:
        return _extract_sharded(args)
    if args.spill_dir is not None or args.shards != 4:
        print(
            "repro extract: error: --shards/--spill-dir need --sharded",
            file=sys.stderr,
        )
        return 2
    if len(args.inputs) > 1 and not args.out_dir:
        print(
            "repro extract: error: multiple inputs require --out-dir",
            file=sys.stderr,
        )
        return 2
    out_dir = Path(args.out_dir) if args.out_dir else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    out_ext = {"mtx": ".mtx", "metis": ".metis", "npz": ".npz"}.get(
        args.output_format or "edgelist", ".txt"
    )
    if out_dir:
        targets = [_out_dir_target(out_dir, source, out_ext) for source in args.inputs]
        seen: dict[str, str] = {}
        for source, target in zip(args.inputs, targets):
            if target in seen:
                print(
                    f"repro extract: error: inputs {seen[target]!r} and "
                    f"{source!r} both map to {target!r}; rename one input",
                    file=sys.stderr,
                )
                return 2
            seen[target] = source
    if args.server is not None:
        return _extract_via_server(args, out_dir, out_ext)
    # One validated config for the whole invocation; schedule=None
    # resolves to the engine's registered default (synchronous for
    # process — deterministic output files — asynchronous otherwise).
    config = ExtractionConfig(
        engine=args.engine,
        variant=args.variant,
        schedule=args.schedule,
        num_threads=args.num_threads,
        num_workers=args.num_workers,
        renumber=args.renumber,
        stitch=args.stitch,
        maximalize=args.maximalize,
    )
    # One session for the whole batch: the pool is spawned on first use
    # and rebound per graph (the extract_many amortisation).
    with Extractor(config) as extractor:
        for source in args.inputs:
            if source == "-":
                graph, name = _read_stdin(args.input_format), "<stdin>"
            else:
                graph, name = load_graph(source, format=args.input_format), source
            with Timer() as timer:
                result = extractor.extract(graph)
            verified = ""
            if args.verify:
                from repro.chordality.verify import verify_extraction

                # Maximality is only guaranteed after the completion pass
                # (Theorem 2 overclaims — see repro.chordality.maximality),
                # so certify it exactly when --maximalize provides it.
                report = verify_extraction(
                    graph, result, check_maximal=args.maximalize
                )
                if not report.ok:
                    print(
                        f"repro extract: verification failed for {name}: "
                        f"{report}",
                        file=sys.stderr,
                    )
                    return 3
                verified = " verified=chordal" + (
                    ",maximal" if args.maximalize else ""
                )
            target = (
                _out_dir_target(out_dir, source, out_ext) if out_dir else args.output
            )
            _write_result(result, target, args.output_format)
            if not args.quiet:
                print(
                    f"{name}: n={graph.num_vertices} m={graph.num_edges} "
                    f"chordal={result.num_chordal_edges} "
                    f"({100 * result.chordal_fraction:.1f}%) "
                    f"iterations={result.num_iterations} "
                    f"engine={args.engine} kernel={result.kernel_path}"
                    f"{verified} [{timer.elapsed:.3f}s]",
                    file=sys.stderr,
                )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.chordality.verify import verify_extraction

    if args.graph == "-" and args.subgraph == "-":
        print(
            "repro verify: error: only one of graph/subgraph can read stdin",
            file=sys.stderr,
        )
        return 2
    if args.graph == "-":
        graph = _read_stdin(args.input_format)
    else:
        graph = load_graph(args.graph, format=args.input_format)
    if args.subgraph == "-":
        extracted = _read_stdin(args.subgraph_format)
    else:
        extracted = load_graph(args.subgraph, format=args.subgraph_format)
    # Hand verify_extraction the edge array, not the reloaded CSR graph:
    # text formats drop trailing isolated vertices, so the reloaded vertex
    # count routinely differs from the input's — the edge-set path
    # normalises that (and reports out-of-range rows instead of raising).
    report = verify_extraction(
        graph, extracted.edge_array(), check_maximal=not args.chordal_only
    )
    if not report.ok:
        print(
            f"repro verify: verification failed for {args.subgraph}: {report}",
            file=sys.stderr,
        )
        return 3
    if not args.quiet:
        print(
            f"{args.subgraph}: {report} against {args.graph} "
            f"(n={graph.num_vertices} m={graph.num_edges} "
            f"subgraph_edges={extracted.num_edges})",
            file=sys.stderr,
        )
    return 0


def _read_mutations(source: str) -> list[tuple[str, int, int]]:
    """Parse a mutation-stream file: one ``OP U V`` per line (``OP`` in
    ``insert``/``+``/``delete``/``-``), ``#`` comments, blank lines
    skipped."""
    fh = sys.stdin if source == "-" else open(source, "r", encoding="utf-8")
    name = "<stdin>" if source == "-" else source
    try:
        ops: list[tuple[str, int, int]] = []
        for lineno, line in enumerate(fh, start=1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ReproError(
                    f"{name}:{lineno}: expected 'OP U V', got {line!r}"
                )
            op, u, v = parts
            if op not in ("insert", "+", "delete", "-"):
                raise ReproError(
                    f"{name}:{lineno}: unknown op {op!r} "
                    "(expected insert/+/delete/-)"
                )
            try:
                ops.append((op, int(u), int(v)))
            except ValueError:
                raise ReproError(
                    f"{name}:{lineno}: endpoints must be integers, got {line!r}"
                ) from None
        return ops
    finally:
        if source != "-":
            fh.close()


def _cmd_mutate(args: argparse.Namespace) -> int:
    from repro.chordality.verify import verify_extraction
    from repro.core.incremental import IncrementalExtractor

    if args.graph == "-" and args.mutations == "-":
        print(
            "repro mutate: error: only one of graph/mutations can read stdin",
            file=sys.stderr,
        )
        return 2
    if args.graph == "-":
        graph, name = _read_stdin(args.input_format), "<stdin>"
    else:
        graph, name = load_graph(args.graph, format=args.input_format), args.graph
    ops = _read_mutations(args.mutations)
    config = ExtractionConfig(
        engine=args.engine, variant=args.variant, maximalize=True
    )
    extractor = IncrementalExtractor(
        graph, config=config, full_rebuild_threshold=args.full_rebuild_threshold
    )
    retained = 0
    with Timer() as timer:
        if args.verify_each:
            for index, (op, u, v) in enumerate(ops):
                counts = extractor.apply_batch([(op, u, v)])
                retained += counts["retained"]
                report = verify_extraction(
                    extractor.graph, extractor.edges, check_maximal=True
                )
                if not report.ok:
                    print(
                        f"repro mutate: verification failed after mutation "
                        f"#{index} ({op} {u} {v}): {report}",
                        file=sys.stderr,
                    )
                    return 3
        else:
            counts = extractor.apply_batch(ops)
            retained = counts["retained"]
    if args.verify and not args.verify_each:
        report = verify_extraction(
            extractor.graph, extractor.edges, check_maximal=True
        )
        if not report.ok:
            print(
                f"repro mutate: verification failed for {name}: {report}",
                file=sys.stderr,
            )
            return 3
    result = extractor.result()
    _write_result(result, args.output, args.output_format)
    if not args.quiet:
        rate = len(ops) / timer.elapsed if timer.elapsed > 0 else float("inf")
        verified = (
            " verified=chordal,maximal" if args.verify or args.verify_each else ""
        )
        print(
            f"{name}: n={extractor.num_vertices} m={extractor.num_edges} "
            f"chordal={extractor.num_chordal_edges} "
            f"mutations={len(ops)} retained_inserts={retained} "
            f"rebuilds={extractor.stats['full_rebuilds']} "
            f"({rate:.0f} updates/s){verified} [{timer.elapsed:.3f}s]",
            file=sys.stderr,
        )
    return 0


def _shard_config(args: argparse.Namespace) -> ExtractionConfig:
    """One config for ``shard run`` / ``shard stitch`` — identical knobs
    must yield identical cache keys, so both build it the same way."""
    return ExtractionConfig(
        engine=args.engine,
        variant=args.variant,
        schedule=args.schedule,
        num_threads=args.num_threads,
        num_workers=args.num_workers,
        renumber=args.renumber,
        maximalize=not args.no_maximalize,
    )


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.shard import build_plan, load_plan, run_shards, stitch_shards

    if args.shard_command == "plan":
        with Timer() as timer:
            plan, reused = build_plan(
                args.input,
                args.shards,
                args.spill_dir,
                format=args.input_format,
                resume=not args.force,
            )
        if not args.quiet:
            sizes = [
                plan.cuts[s + 1] - plan.cuts[s] for s in range(plan.num_shards)
            ]
            print(
                f"{args.input}: n={plan.num_vertices} "
                f"raw_pairs={plan.raw_pairs} shards={plan.num_shards} "
                f"vertices/shard={min(sizes)}..{max(sizes)} "
                f"local_pairs={list(plan.local_counts)} "
                f"boundary_pairs={plan.boundary_count} "
                f"format={plan.input_format}"
                f"{' (reused existing plan)' if reused else ''} "
                f"[{timer.elapsed:.3f}s]",
                file=sys.stderr,
            )
        return 0

    plan = load_plan(args.spill_dir)
    config = _shard_config(args)
    if args.shard_command == "run":
        shards = None if args.shard is None else [args.shard]
        with Timer() as timer:
            stats = run_shards(
                plan,
                config=config,
                shards=shards,
                use_cache=not args.no_cache,
                verify=args.verify,
            )
        if not args.quiet:
            for s in stats:
                tag = "cached" if s.from_cache else f"{s.seconds:.3f}s"
                verified = " verified" if s.verified else ""
                print(
                    f"shard {s.shard}: n={s.num_vertices} m={s.num_edges} "
                    f"chordal={s.retained_edges} engine={s.engine}"
                    f"{verified} [{tag}]",
                    file=sys.stderr,
                )
            print(
                f"{len(stats)} shard(s) [{timer.elapsed:.3f}s]", file=sys.stderr
            )
        return 0

    # stitch
    with Timer() as timer:
        result = stitch_shards(plan, config=config)
    if args.certify:
        from repro.shard import certify_stitched

        problems = certify_stitched(
            result, samples=args.samples, seed=args.seed
        )
        if problems:
            print(
                "repro shard stitch: certification failed: "
                + "; ".join(problems),
                file=sys.stderr,
            )
            return 3
    if args.output == "-":
        _write_stdout(result.subgraph(), args.output_format)
    else:
        save_graph(result.subgraph(), args.output, format=args.output_format)
    if not args.quiet:
        certified = " certified=chordal,boundary-sample" if args.certify else ""
        print(
            f"{plan.input_path}: n={result.num_vertices} "
            f"chordal={result.num_chordal_edges} "
            f"(intra {result.intra_shard_edges} + boundary "
            f"{result.admitted_boundary}) boundary={result.boundary_edges} "
            f"rounds={result.rounds}{certified} [{timer.elapsed:.3f}s]",
            file=sys.stderr,
        )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = _FAMILIES[args.family][0](args)
    if args.output == "-":
        _write_stdout(graph, args.format)
    else:
        save_graph(graph, args.output, format=args.format)
    return 0


#: --record target -> benchmarks/ module whose record() writes it.
_RECORDERS = {
    "kernels": "record_baseline",
    "batch": "record_batch_baseline",
    "async": "bench_async_process",
    "quality": "bench_quality",
    "service": "bench_service",
    "incremental": "bench_incremental",
    "sharded": "bench_sharded",
}


def _resolve_record_target(args: argparse.Namespace) -> str | None:
    """Fold the deprecated alias flags into the --record choice.

    The historical ``--record`` / ``--record-batch`` / ``--record-async``
    booleans silently combined (last writer won, others were ignored);
    any two record requests are now an explicit error.
    """
    requested: list[str] = []
    if args.record is not None:
        requested.append(args.record)
    for alias, target in (("--record-batch", "batch"), ("--record-async", "async")):
        if getattr(args, alias.strip("-").replace("-", "_")):
            print(
                f"repro bench: warning: {alias} is deprecated; "
                f"use --record {target}",
                file=sys.stderr,
            )
            requested.append(target)
    if len(requested) > 1:
        raise ReproError(
            f"conflicting record flags {requested}; pass a single "
            "--record "
            "{kernels,batch,async,quality,service,incremental,sharded,all}"
        )
    return requested[0] if requested else None


def _cmd_bench(args: argparse.Namespace) -> int:
    target = _resolve_record_target(args)
    if target is not None:
        names = list(_RECORDERS) if target == "all" else [target]
        for name in names:
            _load_bench_module(_RECORDERS[name]).record()
        return 0
    guard = _repo_root() / "benchmarks" / "bench_regression_guard.py"
    if not guard.exists():
        raise ReproError(
            f"{guard} not found — the bench subcommand needs a source checkout"
        )
    from repro.core.native import native_status

    status = native_status()
    kernel = "native" if status.available else "numpy"
    print(
        f"repro bench: kernel path {kernel} ({status.detail})",
        file=sys.stderr,
    )
    import pytest

    return pytest.main([str(guard), "-q", *args.pytest_args])


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service import ReproServer, ServiceConfig

    host: str | None = None
    port = 0
    if args.tcp is not None:
        h, _, p = args.tcp.rpartition(":")
        if not p.isdigit():
            raise ReproError(f"--tcp {args.tcp!r}: expected HOST:PORT (numeric port)")
        host, port = h or "127.0.0.1", int(p)
    config = ServiceConfig(
        socket_path=args.socket,
        host=host,
        port=port,
        num_pools=args.pools,
        num_workers=args.num_workers,
        queue_depth=args.queue_depth,
        request_timeout=args.request_timeout,
        cache_entries=args.cache_entries,
        cache_bytes=args.cache_bytes,
        barrier_timeout=args.barrier_timeout,
        allow_remote_shutdown=not args.no_remote_shutdown,
    )
    server = ReproServer(config)

    def _stop(signum, frame):  # noqa: ARG001 - signal-handler signature
        server.request_stop()

    signal.signal(signal.SIGINT, _stop)
    signal.signal(signal.SIGTERM, _stop)
    server.start()
    listening = []
    if args.socket:
        listening.append(args.socket)
    if server.tcp_address:
        listening.append("%s:%d" % server.tcp_address)
    print(
        f"repro serve: listening on {' and '.join(listening)} "
        f"({config.num_pools} pool(s) x {config.num_workers} workers, "
        f"queue depth {config.queue_depth})",
        file=sys.stderr,
        flush=True,
    )
    server.serve_forever()
    print("repro serve: drained and stopped", file=sys.stderr)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as experiments_main

    return experiments_main(args.rest)


_COMMANDS = {
    "extract": _cmd_extract,
    "verify": _cmd_verify,
    "generate": _cmd_generate,
    "mutate": _cmd_mutate,
    "shard": _cmd_shard,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
    "experiments": _cmd_experiments,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream closed the pipe early (e.g. `repro ... | head`) —
        # conventional success; swap stdout for devnull so the interpreter's
        # shutdown flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (ReproError, ValueError, OSError) as exc:
        # ValueError covers argparse-valid but semantically bad knob
        # combinations the library rejects (e.g. pool= with a non-process
        # engine), keeping every bad-input path a one-line error.
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
