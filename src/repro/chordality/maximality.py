"""Maximality validation for extracted chordal subgraphs (Theorem 2).

A chordal subgraph ``G' = (V, EC)`` of ``G = (V, E)`` is *maximal* when
adding any edge of ``E \\ EC`` to ``EC`` destroys chordality.

Fast addability criterion
-------------------------
For a chordal graph ``H`` and a non-edge ``(u, v)``, ``H + uv`` is chordal
iff ``H`` contains **no induced u–v path with two or more internal
vertices** (any chordless cycle of ``H + uv`` must use the new edge, and
the rest of such a cycle is exactly such a path).  That in turn holds iff
``u`` and ``v`` lie in *different components* of ``H - (N(u) ∩ N(v))``:

* if a path survives the removal of the common neighbors, the shortest
  surviving path is induced and has length >= 3 (a length-2 path would go
  through a removed common neighbor), so ``uv`` is not addable;
* conversely, every induced u–v path through a common neighbor ``c`` is
  forced to be exactly ``u-c-v`` (the chords ``uc``, ``cv`` would shortcut
  anything longer), so if removal of common neighbors disconnects them no
  long induced path exists and ``uv`` is addable.

This turns each addability test into one early-exit BFS instead of a full
chordality re-check; :func:`addable_edges` relies on it and the test suite
cross-validates it against the rebuild-and-recognise oracle.

Reproduction note (paper erratum)
---------------------------------
The paper's Theorem 2 claims connectivity of ``EC`` implies maximality;
its proof ends by exhibiting a cycle of length > 3 through the added edge
and declaring chordality destroyed — but that cycle can be *chorded*.
Algorithm 1's output is indeed occasionally non-maximal (a concrete
counterexample lives in ``tests/test_theorem2_gap.py``); the library
provides :func:`repro.core.maximalize.maximalize_chordal_edges` to close
the gap, and the experiment ``maximality_gap`` quantifies how small it is
in practice.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.chordality.recognition import is_chordal
from repro.errors import GraphFormatError
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph

__all__ = [
    "edge_addable",
    "addable_edges",
    "addable_edges_slow",
    "missing_edges",
    "is_maximal_chordal_subgraph",
    "assert_valid_extraction",
]


def edge_addable(adj: list[set[int]], u: int, v: int) -> bool:
    """Can ``(u, v)`` be added to the chordal graph ``adj`` keeping it chordal?

    ``adj`` is an adjacency-set list of a **chordal** graph; ``(u, v)``
    must currently be a non-edge.  Implements the component criterion from
    the module docstring with an early-exit BFS from ``u`` toward ``v``
    avoiding ``N(u) ∩ N(v)``.

    The BFS expands neighbors in ascending vertex order (not raw set
    order, which depends on each set's insertion history), so the whole
    maximality machinery — and therefore every counterexample a failure
    report prints — is reproducible run to run for the same input.
    """
    if v in adj[u]:
        raise ValueError(f"({u}, {v}) is already an edge")
    common = adj[u] & adj[v]
    seen = {u} | common  # banned vertices count as seen
    queue = deque([u])
    while queue:
        x = queue.popleft()
        if v in adj[x]:
            return False  # reachable avoiding common nbrs -> long induced path
        for y in sorted(adj[x]):
            if y not in seen:
                seen.add(y)
                queue.append(y)
    return True


def missing_edges(graph: CSRGraph, subgraph: CSRGraph) -> list[tuple[int, int]]:
    """Edges of ``graph`` absent from ``subgraph``, in ``(u, v)``
    lexicographic order with ``u < v``.

    This is *the* candidate order every maximality scan iterates
    (:func:`addable_edges`, :func:`addable_edges_slow`, the completion
    pass in :mod:`repro.core.maximalize`): an explicit deterministic
    sequence instead of ad-hoc set differences, so failure reports name
    the same counterexample edges on every run.
    """
    return sorted(graph.edge_set() - subgraph.edge_set())


def _adjacency_sets(graph: CSRGraph) -> list[set[int]]:
    return [set(int(x) for x in graph.neighbors(v)) for v in range(graph.num_vertices)]


def addable_edges(
    graph: CSRGraph,
    subgraph: CSRGraph,
    *,
    limit: int | None = None,
) -> list[tuple[int, int]]:
    """Edges of ``graph`` absent from ``subgraph`` whose addition keeps the
    subgraph chordal.

    For a *maximal* chordal subgraph this list is empty.  ``limit`` stops
    the scan after the given number of hits (fail-fast in property tests).
    ``subgraph`` must be chordal (checked).
    """
    if graph.num_vertices != subgraph.num_vertices:
        raise GraphFormatError(
            f"vertex sets differ: {graph.num_vertices} vs {subgraph.num_vertices}"
        )
    if not is_chordal(subgraph):
        raise ValueError("subgraph must be chordal to test edge addability")
    adj = _adjacency_sets(subgraph)
    found: list[tuple[int, int]] = []
    for u, v in missing_edges(graph, subgraph):
        if edge_addable(adj, u, v):
            found.append((u, v))
            if limit is not None and len(found) >= limit:
                break
    return found


def addable_edges_slow(
    graph: CSRGraph, subgraph: CSRGraph, *, limit: int | None = None
) -> list[tuple[int, int]]:
    """Oracle version of :func:`addable_edges`: rebuild + full chordality
    recognition per candidate.  Kept for cross-validation in tests."""
    if graph.num_vertices != subgraph.num_vertices:
        raise GraphFormatError(
            f"vertex sets differ: {graph.num_vertices} vs {subgraph.num_vertices}"
        )
    base_edges = subgraph.edge_array()
    found: list[tuple[int, int]] = []
    for u, v in missing_edges(graph, subgraph):
        candidate = np.vstack((base_edges, np.asarray([[u, v]], dtype=np.int64)))
        if is_chordal(from_edge_array(graph.num_vertices, candidate)):
            found.append((u, v))
            if limit is not None and len(found) >= limit:
                break
    return found


def is_maximal_chordal_subgraph(graph: CSRGraph, subgraph: CSRGraph) -> bool:
    """True iff ``subgraph`` is chordal, is a subgraph of ``graph``, and no
    edge of ``graph`` can be added without breaking chordality."""
    if graph.num_vertices != subgraph.num_vertices:
        return False
    if not subgraph.edge_set() <= graph.edge_set():
        return False
    if not is_chordal(subgraph):
        return False
    return not addable_edges(graph, subgraph, limit=1)


def assert_valid_extraction(
    graph: CSRGraph, subgraph: CSRGraph, *, check_maximal: bool = True
) -> None:
    """Raise ``AssertionError`` with a specific diagnosis if ``subgraph`` is
    not a (maximal, when requested) chordal subgraph of ``graph``.

    Used by integration tests and the examples' ``--verify`` mode.
    """
    if graph.num_vertices != subgraph.num_vertices:
        raise AssertionError(
            f"vertex count mismatch: {graph.num_vertices} != {subgraph.num_vertices}"
        )
    extra = subgraph.edge_set() - graph.edge_set()
    if extra:
        raise AssertionError(f"subgraph invents edges not in parent: {sorted(extra)[:5]}")
    if not is_chordal(subgraph):
        from repro.chordality.recognition import find_hole

        hole = find_hole(subgraph)
        raise AssertionError(f"extracted subgraph is not chordal; hole: {hole}")
    if check_maximal:
        violations = addable_edges(graph, subgraph, limit=3)
        if violations:
            raise AssertionError(
                f"subgraph is not maximal; addable edges include {violations}"
            )
