"""Maximum cardinality search (MCS).

MCS visits vertices one at a time, always choosing an unvisited vertex with
the largest number of *visited* neighbors (ties by smallest id, making the
routine deterministic).  Tarjan & Yannakakis (1984) showed that a graph is
chordal iff the reverse of an MCS visit order is a perfect elimination
ordering — this is the linear-time chordality test used throughout the
test suite to validate Algorithm 1's output.

The bucket structure below keeps vertices grouped by current weight; each
bucket is a lazy-deletion min-heap, so the deterministic smallest-id
tie-break costs O(log n) instead of a linear scan of the bucket.  (The
scan version was quadratic on sparse graphs — bucket 0 holds almost every
vertex — which capped chordality certification at ~2^14 vertices; the
out-of-core stress harness certifies 2^18-vertex stitched results with
this structure.)  A vertex's weight only ever grows, so it is pushed at
most once per bucket and stale entries (visited, or since promoted to a
higher bucket) are discarded when they surface at a heap top.  Total work
is O((n + m) log n) and the visit order is identical to the scan version.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["mcs_order", "mcs_peo"]


def mcs_order(graph: CSRGraph, start: int = 0) -> np.ndarray:
    """Return the MCS visit order (first visited vertex first).

    Parameters
    ----------
    graph:
        Input graph.
    start:
        Vertex visited first.  Ties thereafter break toward smaller ids.
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if not 0 <= start < n:
        raise ValueError(f"start {start} out of range for n={n}")

    weight = np.zeros(n, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)

    # buckets[w] is a min-heap over vertices whose weight *was* w when
    # pushed; entries go stale (vertex visited or promoted) and are
    # dropped lazily.  range(n) is already heap-ordered.
    buckets: list[list[int]] = [list(range(n))]
    max_weight = 0

    def bump(w: int) -> None:
        # Promote one unvisited neighbor of a just-visited vertex; the
        # old bucket entry is left behind as a stale marker.
        weight[w] += 1
        new_weight = int(weight[w])
        while len(buckets) <= new_weight:
            buckets.append([])
        heapq.heappush(buckets[new_weight], w)

    order[0] = start
    visited[start] = True
    for w in graph.neighbors(start):
        w = int(w)
        if not visited[w]:
            bump(w)
            if weight[w] > max_weight:
                max_weight = int(weight[w])

    for step in range(1, n):
        while True:
            bucket = buckets[max_weight]
            while bucket and (
                visited[bucket[0]] or weight[bucket[0]] != max_weight
            ):
                heapq.heappop(bucket)  # stale entry
            if bucket or max_weight == 0:
                break
            max_weight -= 1
        v = heapq.heappop(buckets[max_weight])  # deterministic tie-break
        order[step] = v
        visited[v] = True
        for w in graph.neighbors(v):
            w = int(w)
            if not visited[w]:
                bump(w)
                if weight[w] > max_weight:
                    max_weight = int(weight[w])
    return order


def mcs_peo(graph: CSRGraph, start: int = 0) -> np.ndarray:
    """Candidate perfect elimination ordering: the reverse MCS visit order.

    For chordal graphs this *is* a PEO; for non-chordal graphs the PEO test
    on the result fails, which is exactly how :func:`repro.chordality.
    recognition.is_chordal` works.
    """
    return mcs_order(graph, start)[::-1]
