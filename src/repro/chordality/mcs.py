"""Maximum cardinality search (MCS).

MCS visits vertices one at a time, always choosing an unvisited vertex with
the largest number of *visited* neighbors (ties by smallest id, making the
routine deterministic).  Tarjan & Yannakakis (1984) showed that a graph is
chordal iff the reverse of an MCS visit order is a perfect elimination
ordering — this is the linear-time chordality test used throughout the
test suite to validate Algorithm 1's output.

The bucket structure below keeps vertices grouped by current weight, giving
O(V + E) total time.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["mcs_order", "mcs_peo"]


def mcs_order(graph: CSRGraph, start: int = 0) -> np.ndarray:
    """Return the MCS visit order (first visited vertex first).

    Parameters
    ----------
    graph:
        Input graph.
    start:
        Vertex visited first.  Ties thereafter break toward smaller ids.
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if not 0 <= start < n:
        raise ValueError(f"start {start} out of range for n={n}")

    weight = np.zeros(n, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)

    # Buckets: buckets[w] is a set of unvisited vertices with weight w.
    # max_weight tracks the highest non-empty bucket.
    buckets: list[set[int]] = [set(range(n))]
    buckets[0].discard(start)
    max_weight = 0

    order[0] = start
    visited[start] = True
    for w in graph.neighbors(start):
        w = int(w)
        if not visited[w]:
            buckets[weight[w]].discard(w)
            weight[w] += 1
            while len(buckets) <= weight[w]:
                buckets.append(set())
            buckets[weight[w]].add(w)
            max_weight = max(max_weight, int(weight[w]))

    for step in range(1, n):
        while max_weight > 0 and not buckets[max_weight]:
            max_weight -= 1
        v = min(buckets[max_weight])  # deterministic tie-break
        buckets[max_weight].discard(v)
        order[step] = v
        visited[v] = True
        for w in graph.neighbors(v):
            w = int(w)
            if not visited[w]:
                buckets[weight[w]].discard(w)
                weight[w] += 1
                while len(buckets) <= weight[w]:
                    buckets.append(set())
                buckets[weight[w]].add(w)
                if weight[w] > max_weight:
                    max_weight = int(weight[w])
    return order


def mcs_peo(graph: CSRGraph, start: int = 0) -> np.ndarray:
    """Candidate perfect elimination ordering: the reverse MCS visit order.

    For chordal graphs this *is* a PEO; for non-chordal graphs the PEO test
    on the result fails, which is exactly how :func:`repro.chordality.
    recognition.is_chordal` works.
    """
    return mcs_order(graph, start)[::-1]
