"""Lexicographic breadth-first search (Rose–Tarjan–Lueker 1976).

Lex-BFS is the other classical linear-time source of perfect elimination
orderings on chordal graphs; we provide it alongside MCS so the test suite
can cross-check the two independent implementations against each other
(both must agree on chordality for every input).

Implemented with partition refinement over a doubly-linked list of cells;
each vertex is moved at most ``deg(v)`` times, giving O(V + E).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["lexbfs_order", "lexbfs_peo"]


class _Cell:
    """One cell of the partition: an ordered set of vertices with equal label."""

    __slots__ = ("vertices", "prev", "next", "split_mark")

    def __init__(self, vertices: set[int]) -> None:
        self.vertices = vertices
        self.prev: "_Cell | None" = None
        self.next: "_Cell | None" = None
        self.split_mark: "_Cell | None" = None  # scratch pointer during refinement


def lexbfs_order(graph: CSRGraph, start: int = 0) -> np.ndarray:
    """Return the Lex-BFS visit order (first visited vertex first).

    Ties break toward smaller vertex id, making the order deterministic.
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if not 0 <= start < n:
        raise ValueError(f"start {start} out of range for n={n}")

    head = _Cell(set(range(n)))
    cell_of: list[_Cell] = [head] * n

    # Put the start vertex in its own leading cell so it is taken first.
    if n > 1:
        head.vertices.discard(start)
        first = _Cell({start})
        first.next = head
        head.prev = first
        cell_of[start] = first
        head = first

    order = np.empty(n, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)

    for step in range(n):
        # Drop empty leading cells.
        while head is not None and not head.vertices:
            head = head.next
            if head is not None:
                head.prev = None
        assert head is not None, "partition exhausted early"
        v = min(head.vertices)  # deterministic tie-break
        head.vertices.discard(v)
        visited[v] = True
        order[step] = v

        # Refine: move each unvisited neighbor of v into a cell directly
        # ahead of its current cell (creating that cell on first use).
        touched: list[_Cell] = []
        for w in graph.neighbors(v):
            w = int(w)
            if visited[w]:
                continue
            cell = cell_of[w]
            if cell.split_mark is None:
                ahead = _Cell(set())
                ahead.prev = cell.prev
                ahead.next = cell
                if cell.prev is not None:
                    cell.prev.next = ahead
                cell.prev = ahead
                if cell is head:
                    head = ahead
                cell.split_mark = ahead
                touched.append(cell)
            cell.vertices.discard(w)
            cell.split_mark.vertices.add(w)
            cell_of[w] = cell.split_mark
        for cell in touched:
            cell.split_mark = None

    return order


def lexbfs_peo(graph: CSRGraph, start: int = 0) -> np.ndarray:
    """Candidate PEO: the reverse of the Lex-BFS visit order."""
    return lexbfs_order(graph, start)[::-1]
