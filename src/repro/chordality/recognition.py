"""Chordality recognition and hole extraction.

``is_chordal`` is the library's ground-truth oracle: MCS ordering + the
Tarjan–Yannakakis PEO test, both O(V + E).  ``find_hole`` extracts an
explicit chordless cycle of length >= 4 from non-chordal graphs for
counterexample reporting in tests and the maximality checker.
"""

from __future__ import annotations

import numpy as np

from repro.chordality.mcs import mcs_peo
from repro.chordality.peo import is_perfect_elimination_ordering
from repro.graph.csr import CSRGraph

__all__ = ["is_chordal", "find_hole"]


def is_chordal(graph: CSRGraph) -> bool:
    """True iff every cycle of length > 3 in ``graph`` has a chord.

    Empty graphs, forests and cliques are chordal.
    """
    if graph.num_vertices <= 3:
        return True
    return is_perfect_elimination_ordering(graph, mcs_peo(graph))


def _restricted_shortest_path(
    graph: CSRGraph, source: int, target: int, banned: np.ndarray
) -> list[int] | None:
    """Shortest path from ``source`` to ``target`` avoiding ``banned`` vertices.

    ``banned`` is a boolean mask; source/target are implicitly allowed.
    Returns the vertex list (inclusive) or ``None``.
    """
    n = graph.num_vertices
    parent = np.full(n, -2, dtype=np.int64)  # -2 unvisited, -1 root
    parent[source] = -1
    frontier = [source]
    while frontier:
        nxt: list[int] = []
        for u in frontier:
            for w in graph.neighbors(u):
                w = int(w)
                if parent[w] != -2 or (banned[w] and w != target):
                    continue
                parent[w] = u
                if w == target:
                    path = [w]
                    while parent[path[-1]] != -1:
                        path.append(int(parent[path[-1]]))
                    return path[::-1]
                nxt.append(w)
        frontier = nxt
    return None


def find_hole(graph: CSRGraph) -> list[int] | None:
    """Return the vertices of a chordless cycle of length >= 4, or ``None``.

    Strategy: pick any vertex ``v`` with two non-adjacent neighbors ``a, b``
    and search for a shortest ``a``–``b`` path that avoids ``N[v]`` (except
    at its endpoints).  The cycle ``v, a, ..., b`` is then chordless:
    interior vertices avoid ``N(v)``, a shortest path has no internal
    chords, and ``(a, b)`` is a non-edge by choice.  Every non-chordal graph
    contains such a configuration for *some* ``(v, a, b)``; we scan until
    one is found.

    Cost is worst-case O(V * Δ² * (V + E)) — this is a diagnostic routine
    for test-sized graphs, not a performance kernel.
    """
    n = graph.num_vertices
    banned = np.zeros(n, dtype=bool)
    for v in range(n):
        nbrs = [int(w) for w in graph.neighbors(v)]
        if len(nbrs) < 2:
            continue
        nbr_set = set(nbrs)
        banned[:] = False
        banned[list(nbr_set)] = True
        banned[v] = True
        for i, a in enumerate(nbrs):
            for b in nbrs[i + 1:]:
                if graph.has_edge(a, b):
                    continue
                path = _restricted_shortest_path(graph, a, b, banned)
                if path is not None and len(path) >= 3:
                    return [v] + path
    return None
