"""Chordality machinery: recognition, elimination orderings, maximality.

A graph is chordal iff it admits a *perfect elimination ordering* (PEO).
This package provides the two classical linear-time ordering algorithms
(maximum cardinality search and lexicographic BFS), the Tarjan–Yannakakis
PEO verifier, a chordality test built on them, hole (chordless cycle)
extraction for counterexample reporting, and the maximality checker used to
validate the output of Algorithm 1 against Theorem 2.
"""

from repro.chordality.mcs import mcs_order, mcs_peo
from repro.chordality.lexbfs import lexbfs_order, lexbfs_peo
from repro.chordality.peo import is_perfect_elimination_ordering, peo_violation
from repro.chordality.recognition import is_chordal, find_hole
from repro.chordality.maximality import (
    is_maximal_chordal_subgraph,
    edge_addable,
    addable_edges,
    addable_edges_slow,
    assert_valid_extraction,
)
from repro.chordality.verify import VerificationReport, verify_extraction
from repro.chordality.quality import (
    f_lower_bound,
    maximal_chordal_floor,
    chordal_edge_ceiling,
    clique_number_chordal,
    gnp_envelope,
    exact_max_chordal,
    retained_fraction,
)

__all__ = [
    "mcs_order",
    "mcs_peo",
    "lexbfs_order",
    "lexbfs_peo",
    "is_perfect_elimination_ordering",
    "peo_violation",
    "is_chordal",
    "find_hole",
    "is_maximal_chordal_subgraph",
    "edge_addable",
    "addable_edges",
    "addable_edges_slow",
    "assert_valid_extraction",
    "VerificationReport",
    "verify_extraction",
    "f_lower_bound",
    "maximal_chordal_floor",
    "chordal_edge_ceiling",
    "clique_number_chordal",
    "gnp_envelope",
    "exact_max_chordal",
    "retained_fraction",
]
