"""One-call certification of extraction results: :func:`verify_extraction`.

The asynchronous schedules are *any-valid*: a run returns some maximal
chordal subgraph (paper Theorems 1–2), not a bit-reproducible one, so
bit-identity checks cannot certify them.  This module composes the
library's oracles — :func:`repro.chordality.recognition.is_chordal` /
:func:`~repro.chordality.recognition.find_hole` and
:func:`repro.chordality.maximality.addable_edges` — into a single
verdict object that tests, the property suite and ``repro extract
--verify`` all share.

Unlike :func:`repro.chordality.maximality.assert_valid_extraction` (which
raises on first failure), :func:`verify_extraction` always runs every
applicable check and returns a :class:`VerificationReport` carrying the
counterexamples, so a failing property seed prints a complete diagnosis
in one go.

Reports are **deterministic**: for a given ``(graph, extracted)`` pair
the counterexamples are always the same, run to run and machine to
machine — invented edges are sorted, and the maximality scan iterates
:func:`repro.chordality.maximality.missing_edges` in lexicographic
order with an ascending-vertex BFS (not raw set order).  A failure
message pasted into a bug report therefore names the exact edges a
replay will name again.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chordality.maximality import addable_edges
from repro.chordality.recognition import find_hole, is_chordal
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph

__all__ = ["VerificationReport", "verify_extraction"]


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of :func:`verify_extraction` with counterexamples attached.

    Attributes
    ----------
    edges_valid:
        Every output edge is an edge of the input graph.
    chordal:
        The output subgraph is chordal (Theorem 1).
    maximal:
        No input edge can be added keeping chordality (Theorem 2);
        ``None`` when the check was skipped (``check_maximal=False``).
    invented_edges / hole / addable:
        Counterexamples for the respective failed check (bounded samples;
        empty/``None`` when the check passed or was skipped).
    """

    edges_valid: bool
    chordal: bool
    maximal: bool | None
    invented_edges: list[tuple[int, int]] = field(default_factory=list)
    hole: list[int] | None = None
    addable: list[tuple[int, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff every check that ran passed."""
        return self.edges_valid and self.chordal and self.maximal is not False

    def __str__(self) -> str:  # the message pytest prints on `assert r.ok, r`
        if self.ok:
            checks = "chordal" + ("" if self.maximal is None else " + maximal")
            return f"valid extraction ({checks})"
        problems = []
        if not self.edges_valid:
            problems.append(
                f"output invents edges not in the input: {self.invented_edges}"
            )
        if not self.chordal:
            problems.append(f"output is not chordal; hole: {self.hole}")
        if self.maximal is False:
            problems.append(
                f"output is not maximal; addable edges include {self.addable}"
            )
        return "; ".join(problems)

    def raise_if_invalid(self) -> None:
        """Raise ``AssertionError`` with the full diagnosis unless :attr:`ok`."""
        if not self.ok:
            raise AssertionError(str(self))


def verify_extraction(
    graph: CSRGraph,
    extracted,
    *,
    check_maximal: bool = True,
    max_counterexamples: int = 3,
) -> VerificationReport:
    """Certify one extraction result against the input graph.

    Parameters
    ----------
    graph:
        The input graph the extraction ran on.
    extracted:
        The result in any of the library's shapes: a
        :class:`~repro.core.extract.ChordalResult`, a ``(k, 2)`` edge
        array, or an already-built subgraph :class:`CSRGraph` on the same
        vertex set.
    check_maximal:
        Also run the maximality certificate.  Note Algorithm 1 alone does
        not guarantee maximality (the paper's Theorem 2 overclaims — see
        :mod:`repro.chordality.maximality`); extractions that must pass
        this check should run with ``maximalize=True``.
    max_counterexamples:
        Bound on the invented-edge and addable-edge samples gathered for
        the report (the scans stop early once reached).

    Returns
    -------
    :class:`VerificationReport` — truthiness via ``report.ok``, one-line
    diagnosis via ``str(report)``.
    """
    if isinstance(extracted, CSRGraph):
        subgraph = extracted
        if subgraph.num_vertices != graph.num_vertices:
            raise ValueError(
                f"vertex sets differ: {graph.num_vertices} vs "
                f"{subgraph.num_vertices}"
            )
    else:
        edges = getattr(extracted, "edges", extracted)
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        # Build unchecked (unlike repro.graph.ops.edge_subgraph): an edge
        # the input graph lacks must land in the report, not in a raise.
        # Rows the builder would drop or reject (out-of-range endpoints,
        # self-loops — no valid extraction emits either) are gathered
        # here, because the edge-set diff below can no longer see them.
        n = graph.num_vertices
        malformed = (
            (edges[:, 0] < 0)
            | (edges[:, 1] < 0)
            | (edges[:, 0] >= n)
            | (edges[:, 1] >= n)
            | (edges[:, 0] == edges[:, 1])
        )
        bad_rows = [(int(u), int(v)) for u, v in edges[malformed]]
        subgraph = from_edge_array(n, edges, allow_out_of_range=True)

    invented = sorted(subgraph.edge_set() - graph.edge_set())
    if not isinstance(extracted, CSRGraph):
        invented = sorted(set(bad_rows)) + invented
    edges_valid = not invented
    chordal = is_chordal(subgraph)
    hole = None if chordal else find_hole(subgraph)
    maximal: bool | None = None
    addable: list[tuple[int, int]] = []
    if check_maximal and edges_valid and chordal:
        addable = addable_edges(graph, subgraph, limit=max_counterexamples)
        maximal = not addable
    elif check_maximal:
        maximal = False  # can't be a maximal chordal subgraph if not even valid
    return VerificationReport(
        edges_valid=edges_valid,
        chordal=chordal,
        maximal=maximal,
        invented_edges=invented[:max_counterexamples],
        hole=hole,
        addable=addable,
    )
