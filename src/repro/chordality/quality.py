"""Answer-quality oracles for extracted chordal subgraphs.

The paper evaluates Algorithm 1 by *how many edges it retains* (Section
V reports ``|EC| / |E|``), but never says how good retention could be.
This module supplies the missing yardsticks, in three strengths:

**Certified floors** (:func:`f_lower_bound`,
:func:`maximal_chordal_floor`) — bounds every maximal chordal subgraph
provably satisfies, derived from first principles below; any engine
output falling under them is a bug, full stop.  (Gishboliner & Sudakov,
"Maximal chordal subgraphs", give the asymptotically tight growth of
the universal ``f(n, m)``; the closed forms here are the elementary
certified core of such bounds, chosen so the test suite asserts only
what this module can prove.)

**Certified ceilings** (:func:`chordal_edge_ceiling`,
:func:`clique_number_chordal`) — no chordal graph with bounded clique
number can exceed them, so retained-edge counts above are equally
impossible.

**Asymptotic envelope** (:func:`gnp_envelope`) — for ``G(n, p)`` inputs
only: a whp sanity band built from the random-graph clique number, in
the spirit of Krivelevich & Zhukovskii's asymptotics for maximum
chordal subgraphs of random graphs.  Not certified per instance — tests
use it with slack, on families where the whp events comfortably hold.

**Ground truth** (:func:`exact_max_chordal`) — a hole-branching
branch-and-bound (the classic edge-deletion scheme, cf. Bliznets et
al.'s exact algorithms for chordality-editing problems) that computes a
true **maximum** (-weight) chordal subgraph on small graphs, against
which every engine's *maximal* output can be sandwiched:
``floor <= |maximal| <= |maximum| <= ceiling``.

Why the floors hold
-------------------
Let ``H`` be any maximal chordal subgraph of ``G``.

* *No vertex goes isolated*: if ``v`` has a ``G``-edge ``uv`` but degree
  0 in ``H``, then ``H + uv`` gives ``v`` degree 1, so no cycle — let
  alone a hole — passes through ``uv``; ``H + uv`` is chordal and ``H``
  was not maximal.  Hence ``H`` has at least ``ceil(s / 2)`` edges,
  where ``s`` counts ``G``'s non-isolated vertices.
* *Components are preserved*: an edge between two ``H``-components lies
  on no cycle of ``H + uv`` at all, so it is always addable; maximality
  forces ``H`` to span each component of ``G``, giving at least
  ``n - c`` edges for ``c`` components (isolated vertices included).
* *Chordal inputs are kept whole*: if ``G`` is chordal the only maximal
  chordal subgraph is ``G`` itself (every proper subgraph has an
  addable ``G``-edge by definition of maximality... applied to the
  chordal supergraph ``G``), so the floor is ``m``.

:func:`f_lower_bound` is the graph-free form: ``m`` edges force
``s >= ceil((1 + sqrt(1 + 8m)) / 2)`` non-isolated vertices (since
``m <= s(s-1)/2``), hence ``ceil(s/2)`` retained edges.

Why the ceiling holds
---------------------
A chordal graph is ``(omega - 1)``-degenerate (the first vertex of a
PEO has all its neighbors in a clique, so degree ``<= omega - 1``;
removal preserves chordality — induct).  A ``d``-degenerate graph has
at most ``d * n - d(d+1)/2`` edges, giving
:func:`chordal_edge_ceiling`; any subgraph of ``G`` also has clique
number at most ``omega(G)``.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.chordality.recognition import find_hole, is_chordal
from repro.graph.bfs import connected_components
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph

__all__ = [
    "f_lower_bound",
    "maximal_chordal_floor",
    "chordal_edge_ceiling",
    "clique_number_chordal",
    "gnp_envelope",
    "exact_max_chordal",
    "retained_fraction",
]


def f_lower_bound(n: int, m: int) -> int:
    """Certified universal floor ``f(n, m)`` on the edge count of *every*
    maximal chordal subgraph of *every* graph with ``n`` vertices and
    ``m`` edges.

    ``m`` edges need at least ``s = ceil((1 + sqrt(1 + 8m)) / 2)``
    non-isolated vertices, every one of which stays non-isolated in a
    maximal chordal subgraph (module docstring), so at least
    ``ceil(s / 2)`` edges survive.  Exact inputs that beat this bound do
    not exist; per-graph information gives the much stronger
    :func:`maximal_chordal_floor`.
    """
    if n < 0 or m < 0:
        raise ValueError(f"need n, m >= 0, got n={n}, m={m}")
    if m == 0:
        return 0
    s = math.ceil((1.0 + math.sqrt(1.0 + 8.0 * m)) / 2.0)
    s = min(s, n)
    return (s + 1) // 2


def maximal_chordal_floor(graph: CSRGraph) -> int:
    """Certified per-graph floor on edges of any maximal chordal subgraph.

    The maximum of three certified bounds (module docstring):
    ``ceil(non_isolated / 2)``, the spanning bound ``n - components``,
    and — when ``graph`` is itself chordal — ``m`` (the input must be
    returned whole).  Every registered engine is property-tested against
    this floor in ``tests/test_quality_oracles.py``.
    """
    m = graph.num_edges
    if m == 0:
        return 0
    degrees = graph.degrees()
    non_isolated = int(np.count_nonzero(degrees))
    num_components, _labels = connected_components(graph)
    floor = max(
        (non_isolated + 1) // 2,
        graph.num_vertices - num_components,
        f_lower_bound(graph.num_vertices, m),
    )
    if is_chordal(graph):
        floor = max(floor, m)
    return floor


def chordal_edge_ceiling(n: int, omega: int) -> int:
    """Max edges of a chordal graph on ``n`` vertices with clique number
    ``<= omega`` (the ``(omega-1)``-tree bound; certified, see module
    docstring).  Attained by ``(omega-1)``-trees."""
    if n < 0:
        raise ValueError(f"need n >= 0, got {n}")
    if omega < 1:
        return 0
    d = min(omega, n) - 1  # degeneracy bound; clique size is capped by n
    return d * n - d * (d + 1) // 2


def clique_number_chordal(graph: CSRGraph) -> int:
    """Exact clique number of a *chordal* graph, in linear time.

    In a PEO, each vertex together with its later neighbors forms a
    clique, and every maximal clique arises this way (Fulkerson–Gross),
    so the clique number is ``1 + max later-degree``.  Raises
    ``ValueError`` on non-chordal input (the shortcut is only valid for
    chordal graphs).
    """
    if not is_chordal(graph):
        raise ValueError("clique_number_chordal requires a chordal graph")
    n = graph.num_vertices
    if n == 0:
        return 0
    from repro.chordality.mcs import mcs_peo

    order = mcs_peo(graph)
    position = np.empty(n, dtype=np.int64)
    position[order] = np.arange(n)
    best = 1
    for v in range(n):
        later = int(np.count_nonzero(position[graph.neighbors(v)] > position[v]))
        best = max(best, 1 + later)
    return best


def gnp_envelope(n: int, p: float) -> tuple[float, float]:
    """Whp sanity band ``(low, high)`` for the retained edge count of a
    maximal chordal subgraph of ``G(n, p)``.

    * ``low = n - 1 - n * (1 - p) ** (n - 1)``: the spanning floor
      ``n - c``, discounted by the expected number of isolated vertices
      (for ``p`` above the connectivity threshold this is essentially
      ``n - 1``).
    * ``high = chordal_edge_ceiling(n, omega_hat)`` with
      ``omega_hat = floor(2 log_{1/p} n) + 3`` — whp the clique number
      of ``G(n, p)`` is below ``omega_hat`` (the classical
      ``~ 2 log_{1/p} n`` concentration), and no subgraph can exceed
      the clique number of its host, so no chordal subgraph beats the
      ceiling.  The resulting ``Theta(n log n)`` scaling of ``high``
      matches the Krivelevich–Zhukovskii asymptotics for the maximum
      chordal subgraph of a dense random graph.

    This is an *asymptotic envelope*, not a certified per-instance
    bound: on tiny ``n`` or extreme ``p`` the whp events can fail.
    Tests apply it only for ``n >= 50`` and ``0.1 <= p <= 0.9``, where
    the slack terms are comfortable.
    """
    if n < 1 or not 0.0 < p < 1.0:
        raise ValueError(f"need n >= 1 and 0 < p < 1, got n={n}, p={p}")
    low = max(0.0, (n - 1) - n * (1.0 - p) ** (n - 1))
    omega_hat = int(2.0 * math.log(n) / math.log(1.0 / p)) + 3
    high = float(chordal_edge_ceiling(n, omega_hat))
    return low, min(high, n * (n - 1) / 2.0)


def retained_fraction(graph: CSRGraph, edges) -> float:
    """``|EC| / |E|`` — the paper's Section V quality statistic (1.0 on an
    edgeless graph)."""
    m = graph.num_edges
    count = int(np.asarray(edges, dtype=np.int64).reshape(-1, 2).shape[0])
    return count / m if m else 1.0


def _hole_edges(hole: list[int]) -> list[tuple[int, int]]:
    """The cycle edges of a hole returned by :func:`find_hole`."""
    k = len(hole)
    out = []
    for i in range(k):
        u, v = hole[i], hole[(i + 1) % k]
        out.append((min(u, v), max(u, v)))
    return out


def exact_max_chordal(
    graph: CSRGraph,
    *,
    weights: dict[tuple[int, int], float] | None = None,
    node_limit: int = 200_000,
) -> tuple[np.ndarray, float]:
    """Exact **maximum**(-weight) chordal subgraph by hole-branching B&B.

    Every chordal subgraph must delete at least one edge of every hole
    of the remaining graph, so: find a hole, branch on which of its
    edges to delete, prune branches whose retained weight cannot beat
    the incumbent, and memoise deletion sets.  This is the classic
    edge-deletion search used by exact chordality-editing solvers
    (cf. Bliznets et al.); exponential in the worst case, intended for
    ground truth on graphs of ~20 vertices (``tests/test_quality_exact``
    sandwiches every engine between this maximum and the certified
    floors).

    Parameters
    ----------
    graph:
        Small input graph.
    weights:
        Optional ``{(u, v): w}`` with ``u < v`` and ``w >= 0`` (weights
        are retention *prizes*; negative values would invalidate the
        pruning bound and are rejected).  Missing edges weigh 1.0, so
        omitting ``weights`` maximises the edge count.
    node_limit:
        Search-node budget; exceeding it raises ``RuntimeError`` rather
        than silently returning a non-optimal answer.

    Returns
    -------
    ``(edges, weight)`` — a maximum(-weight) chordal edge set in
    canonical order and its total weight.
    """
    n = graph.num_vertices
    rows = [tuple(map(int, e)) for e in graph.edge_array()]
    weight_of: dict[tuple[int, int], float] = {e: 1.0 for e in rows}
    if weights is not None:
        for key, value in weights.items():
            u, v = int(key[0]), int(key[1])
            edge = (min(u, v), max(u, v))
            if edge not in weight_of:
                raise ValueError(f"weight given for non-edge {edge}")
            if float(value) < 0.0:
                raise ValueError(
                    f"exact_max_chordal needs non-negative weights; "
                    f"{edge} has {value}"
                )
            weight_of[edge] = float(value)
    total = sum(weight_of.values())

    def build(deleted: frozenset) -> CSRGraph:
        kept = [e for e in rows if e not in deleted]
        arr = (
            np.asarray(kept, dtype=np.int64)
            if kept
            else np.empty((0, 2), dtype=np.int64)
        )
        return from_edge_array(n, arr)

    # Greedy incumbent: repeatedly delete the lightest edge of some hole.
    deleted: set = set()
    current = build(frozenset())
    while True:
        hole = find_hole(current)
        if hole is None:
            break
        victim = min(_hole_edges(hole), key=lambda e: (weight_of[e], e))
        deleted.add(victim)
        current = build(frozenset(deleted))
    best_weight = total - sum(weight_of[e] for e in deleted)
    best_deleted = frozenset(deleted)

    # Best-first branch and bound over deletion sets.
    visited: set = set()
    counter = 0
    heap: list[tuple[float, int, frozenset]] = [(0.0, 0, frozenset())]
    expanded = 0
    while heap:
        deleted_weight, _tie, dset = heapq.heappop(heap)
        if dset in visited:
            continue
        visited.add(dset)
        if total - deleted_weight <= best_weight:
            continue  # cannot beat the incumbent (weights are >= 0)
        expanded += 1
        if expanded > node_limit:
            raise RuntimeError(
                f"exact_max_chordal exceeded node_limit={node_limit} "
                f"(n={n}, m={len(rows)}); raise the limit or shrink the input"
            )
        hole = find_hole(build(dset))
        if hole is None:
            best_weight = total - deleted_weight
            best_deleted = dset
            continue
        for e in _hole_edges(hole):
            child = dset | {e}
            if child in visited:
                continue
            child_weight = deleted_weight + weight_of[e]
            if total - child_weight <= best_weight:
                continue
            counter += 1
            heapq.heappush(heap, (child_weight, counter, child))

    kept = sorted(e for e in rows if e not in best_deleted)
    edges = (
        np.asarray(kept, dtype=np.int64)
        if kept
        else np.empty((0, 2), dtype=np.int64)
    )
    return edges, best_weight
