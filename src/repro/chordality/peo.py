"""Perfect elimination ordering (PEO) verification (Tarjan–Yannakakis).

An ordering ``peo[0..n-1]`` (eliminate ``peo[0]`` first) is *perfect* when
every vertex ``v`` is simplicial in the subgraph induced by ``v`` and the
vertices eliminated after it: the later neighbors of ``v`` form a clique.

The classical amortised test avoids checking each clique pairwise: for each
``v`` let ``u`` be its earliest-eliminated later neighbor ("the parent");
record that the remaining later neighbors must also be neighbors of ``u``
and verify all recorded demands against each vertex's true adjacency when
that vertex is reached.  Total cost O(V + E).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["is_perfect_elimination_ordering", "peo_violation"]


def peo_violation(
    graph: CSRGraph, peo: np.ndarray
) -> tuple[int, int] | None:
    """Return a witness pair or ``None`` if ``peo`` is perfect.

    A witness ``(u, w)`` is a pair that the clique condition requires to be
    adjacent but is not: both are later neighbors of some eliminated vertex,
    ``u`` being the earliest, yet ``(u, w)`` is no edge.
    """
    n = graph.num_vertices
    order = np.asarray(peo, dtype=np.int64)
    if order.shape != (n,):
        raise ValueError(f"peo must have shape ({n},), got {order.shape}")
    position = np.full(n, -1, dtype=np.int64)
    position[order] = np.arange(n)
    if np.any(position < 0):
        raise ValueError("peo is not a permutation of 0..n-1")

    # demands[u] = vertices that must be adjacent to u, discovered while
    # processing earlier-eliminated vertices.
    demands: list[list[int]] = [[] for _ in range(n)]
    for v in order:
        v = int(v)
        # Verify demands recorded against v.
        if demands[v]:
            nbr_set = set(int(x) for x in graph.neighbors(v))
            for w in demands[v]:
                if w not in nbr_set:
                    return (v, w)
            demands[v].clear()
        later = [int(w) for w in graph.neighbors(v) if position[w] > position[v]]
        if not later:
            continue
        u = min(later, key=lambda w: position[w])
        for w in later:
            if w != u:
                demands[u].append(w)
    return None


def is_perfect_elimination_ordering(graph: CSRGraph, peo: np.ndarray) -> bool:
    """True iff ``peo`` is a perfect elimination ordering of ``graph``."""
    return peo_violation(graph, peo) is None
