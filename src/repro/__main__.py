"""``python -m repro`` entry point (the unified CLI, :mod:`repro.cli`)."""

import sys

from repro.cli import main

sys.exit(main())
