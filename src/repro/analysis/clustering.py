"""Clustering coefficients (paper Figure 2).

The paper characterises its inputs by plotting the *average clustering
coefficient of vertices with k neighbors* against ``k`` for RMAT-ER,
RMAT-B (SCALE=10) and GSE5140(UNT): synthetic graphs stay below ~0.2
while the biological networks reach ~0.7 at low degree and decay as
degree grows (assortativity).

The local coefficient of ``v`` is ``2 T(v) / (deg(v) (deg(v)-1))`` where
``T(v)`` counts edges among neighbors; triangles are counted with sorted
adjacency intersections (``O(sum_v deg(v) * avg_deg)``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["local_clustering", "average_clustering", "clustering_by_degree"]


def local_clustering(graph: CSRGraph) -> np.ndarray:
    """Local clustering coefficient of every vertex (0 for degree < 2)."""
    g = graph.with_sorted_adjacency()
    n = g.num_vertices
    coeffs = np.zeros(n, dtype=np.float64)
    indptr, indices = g.indptr, g.indices
    neighbor_sets = [set(indices[indptr[v]:indptr[v + 1]].tolist()) for v in range(n)]
    for v in range(n):
        row = indices[indptr[v]:indptr[v + 1]]
        d = row.size
        if d < 2:
            continue
        links = 0
        sv = neighbor_sets[v]
        for u in row.tolist():
            # count common neighbors once per (u, w) pair: restrict to u < w
            su = neighbor_sets[u]
            if len(su) < len(sv):
                links += sum(1 for x in su if x > u and x in sv)
            else:
                links += sum(1 for x in sv if x > u and x in su)
        coeffs[v] = 2.0 * links / (d * (d - 1))
    return coeffs


def average_clustering(graph: CSRGraph) -> float:
    """Mean local clustering coefficient over all vertices."""
    if graph.num_vertices == 0:
        return 0.0
    return float(local_clustering(graph).mean())


def clustering_by_degree(graph: CSRGraph) -> list[tuple[int, float, int]]:
    """Figure 2's series: ``(degree, avg clustering at that degree, count)``.

    Only degrees with at least one vertex appear; sorted by degree.
    """
    coeffs = local_clustering(graph)
    degs = graph.degrees()
    out: list[tuple[int, float, int]] = []
    if degs.size == 0:
        return out
    for d in np.unique(degs):
        mask = degs == d
        out.append((int(d), float(coeffs[mask].mean()), int(mask.sum())))
    return out
