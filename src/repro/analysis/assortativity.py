"""Degree assortativity (Newman 2002 — the paper's reference [17]).

The paper argues its biological networks are assortative in the sense
that "two hubs are unlikely to be connected" — high-degree vertices
attach to low-degree ones — which shows up as a *negative* degree
correlation coefficient (disassortative mixing by degree in Newman's
terminology; the paper uses "assortative" loosely for the
biological-network property).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["degree_assortativity"]


def degree_assortativity(graph: CSRGraph) -> float:
    """Pearson correlation of endpoint degrees over all edges.

    Returns 0.0 for degenerate graphs (no edges, or constant degrees).
    Negative values mean hubs avoid hubs — the biological-network
    signature the paper discusses.
    """
    edges = graph.edge_array()
    if edges.shape[0] == 0:
        return 0.0
    degs = graph.degrees().astype(np.float64)
    # Each undirected edge contributes both orientations, as in Newman's
    # estimator, which symmetrises the correlation.
    x = np.concatenate((degs[edges[:, 0]], degs[edges[:, 1]]))
    y = np.concatenate((degs[edges[:, 1]], degs[edges[:, 0]]))
    sx = x.std()
    sy = y.std()
    if sx == 0 or sy == 0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))
