"""Shortest-path length distribution (paper Figure 3).

The paper plots the frequency of each shortest-path length over all
vertex pairs: RMAT-ER-10 concentrates on lengths 2-3, RMAT-B-10 spreads
to 7, and the biological networks spread to ~19 — evidence of
well-separated dense components connected through long sparse regions.

Exact all-pairs BFS costs ``O(n (n + m))``; a ``sample`` parameter caps
the number of BFS sources (uniform deterministic subsample) so the
distribution of the 45k-vertex bio replicas stays computable — the
histogram *shape* converges quickly with a few hundred sources.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bfs import bfs_levels
from repro.graph.csr import CSRGraph
from repro.util.rng import make_rng

__all__ = ["shortest_path_histogram"]


def shortest_path_histogram(
    graph: CSRGraph,
    *,
    sample: int | None = None,
    seed=None,
) -> np.ndarray:
    """Histogram ``h`` with ``h[L]`` = number of (ordered source, vertex)
    pairs at hop distance ``L >= 1``.

    With ``sample=None`` every vertex is a BFS source and the result is
    scaled to the full ordered-pair count; otherwise ``sample`` sources are
    drawn without replacement and frequencies are extrapolated by
    ``n / sample`` (the paper's Figure 3 counts unordered pairs; divide by
    two for that convention).
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(1, dtype=np.float64)
    if sample is not None and not 1 <= sample:
        raise ValueError(f"sample must be >= 1, got {sample}")

    if sample is None or sample >= n:
        sources = np.arange(n)
        scale = 1.0
    else:
        rng = make_rng(seed)
        sources = rng.choice(n, size=sample, replace=False)
        scale = n / sample

    counts: dict[int, float] = {}
    for s in sources.tolist():
        levels = bfs_levels(graph, s)
        reached = levels[levels > 0]
        if reached.size == 0:
            continue
        hist = np.bincount(reached)
        for length, c in enumerate(hist.tolist()):
            if length >= 1 and c:
                counts[length] = counts.get(length, 0.0) + c
    if not counts:
        return np.zeros(1, dtype=np.float64)
    max_len = max(counts)
    out = np.zeros(max_len + 1, dtype=np.float64)
    for length, c in counts.items():
        out[length] = c * scale
    return out
