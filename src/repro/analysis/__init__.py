"""Graph analysis used by the paper's characterisation figures.

* degrees / summary — Table I columns (vertices, edges, average degree,
  max degree, degree variance, edges-per-vertex);
* clustering — Figure 2 (average clustering coefficient vs neighbor
  count);
* paths — Figure 3 (shortest-path length distribution);
* assortativity — the paper's Section IV discussion of hub adjacency in
  biological networks.
"""

from repro.analysis.degrees import degree_stats, DegreeStats
from repro.analysis.clustering import (
    local_clustering,
    average_clustering,
    clustering_by_degree,
)
from repro.analysis.paths import shortest_path_histogram
from repro.analysis.assortativity import degree_assortativity
from repro.analysis.summary import GraphSummary, summarize_graph

__all__ = [
    "degree_stats",
    "DegreeStats",
    "local_clustering",
    "average_clustering",
    "clustering_by_degree",
    "shortest_path_histogram",
    "degree_assortativity",
    "GraphSummary",
    "summarize_graph",
]
