"""One-stop structural summary of a graph (Table I + context columns)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.assortativity import degree_assortativity
from repro.analysis.degrees import DegreeStats, degree_stats
from repro.graph.bfs import connected_components
from repro.graph.csr import CSRGraph

__all__ = ["GraphSummary", "summarize_graph"]


@dataclass(frozen=True)
class GraphSummary:
    """Structural profile of one test-suite graph."""

    name: str
    degrees: DegreeStats
    num_components: int
    assortativity: float

    def table1_row(self) -> list:
        """Row in the paper's Table I format (name + six columns)."""
        return [self.name] + self.degrees.row()


def summarize_graph(name: str, graph: CSRGraph, *, components: bool = True) -> GraphSummary:
    """Compute the summary (component counting optional — it is the only
    O(n·BFS) part and can be skipped for very large replicas)."""
    ncomp = connected_components(graph)[0] if components else -1
    return GraphSummary(
        name=name,
        degrees=degree_stats(graph),
        num_components=ncomp,
        assortativity=degree_assortativity(graph),
    )
