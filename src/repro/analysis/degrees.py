"""Degree statistics (Table I columns)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["DegreeStats", "degree_stats"]


@dataclass(frozen=True)
class DegreeStats:
    """The degree-related columns of the paper's Table I."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int
    variance: float
    edges_per_vertex: float

    def row(self) -> list:
        """Render as a Table I row (matching the paper's column order).

        Note the paper's "Avg Degree" column is actually edges/vertices
        (their RMAT-ER rows show 8 with degree variance 16 — the true
        mean degree is 2m/n = 16); we follow their convention here while
        :attr:`avg_degree` keeps the true mean.
        """
        return [
            self.num_vertices,
            self.num_edges,
            round(self.edges_per_vertex),
            self.max_degree,
            round(self.variance),
            round(self.edges_per_vertex, 2),
        ]


def degree_stats(graph: CSRGraph) -> DegreeStats:
    """Compute Table I statistics for ``graph``.

    The paper rounds average degree and variance to integers in Table I;
    we keep full precision here and round only in :meth:`DegreeStats.row`.
    """
    degs = graph.degrees().astype(np.float64)
    n = graph.num_vertices
    if n == 0:
        return DegreeStats(0, 0, 0.0, 0, 0.0, 0.0)
    return DegreeStats(
        num_vertices=n,
        num_edges=graph.num_edges,
        avg_degree=float(degs.mean()),
        max_degree=int(degs.max(initial=0)),
        variance=float(degs.var()),
        edges_per_vertex=graph.num_edges / n,
    )
