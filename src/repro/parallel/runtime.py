"""Persistent thread team with barrier-synchronised SPMD execution.

The paper's algorithm is a sequence of barrier-separated parallel loops
("for all v in Q1 in parallel").  :class:`ThreadTeam` provides exactly that
shape: ``team.run(task)`` releases all workers into ``task(thread_id)`` and
returns when every worker has finished — one superstep.  Worker threads
persist across supersteps (thread creation is not paid per iteration, as
on the real platforms).  The unified runtime's
:class:`~repro.core.runtime.executors.ThreadTeamExecutor` is the adapter
that plugs this team into the shared schedule driver.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence

__all__ = ["ThreadTeam", "parallel_for"]


class ThreadTeam:
    """Fixed-size team of worker threads executing one task per superstep.

    Usage::

        with ThreadTeam(4) as team:
            team.run(lambda tid: work(tid))   # superstep 1
            team.run(lambda tid: work2(tid))  # superstep 2

    Exceptions raised inside workers are collected and re-raised in the
    caller after the closing barrier (first one wins; others noted in its
    ``__notes__``).
    """

    def __init__(self, num_threads: int) -> None:
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = num_threads
        self._start = threading.Barrier(num_threads + 1)
        self._done = threading.Barrier(num_threads + 1)
        self._task: Callable[[int], None] | None = None
        self._errors: list[BaseException] = []
        self._error_lock = threading.Lock()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker, args=(tid,), daemon=True,
                name=f"repro-worker-{tid}",
            )
            for tid in range(num_threads)
        ]
        for t in self._threads:
            t.start()

    def _worker(self, tid: int) -> None:
        while True:
            self._start.wait()
            task = self._task
            if task is None:  # shutdown signal
                return
            try:
                task(tid)
            except BaseException as exc:  # noqa: BLE001 - forwarded to caller
                with self._error_lock:
                    self._errors.append(exc)
            finally:
                self._done.wait()

    def run(self, task: Callable[[int], None]) -> None:
        """Execute ``task(thread_id)`` on every worker; block until all done."""
        if self._closed:
            raise RuntimeError("ThreadTeam is closed")
        self._task = task
        self._start.wait()
        self._done.wait()
        self._task = None
        if self._errors:
            first, rest = self._errors[0], self._errors[1:]
            self._errors = []
            for other in rest:
                try:
                    first.add_note(f"additional worker error: {other!r}")
                except AttributeError:  # pragma: no cover - py<3.11 fallback
                    pass
            raise first

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._task = None
        self._start.wait()  # workers see task=None and exit
        for t in self._threads:
            t.join(timeout=5.0)

    def __enter__(self) -> "ThreadTeam":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parallel_for(
    team: ThreadTeam,
    items: Sequence,
    body: Callable[[int, object], None],
) -> None:
    """Run ``body(index, item)`` over ``items`` split in contiguous blocks.

    Convenience wrapper used by examples/tests; the core engine manages its
    own partitioning for the snapshot discipline.
    """
    from repro.parallel.partition import block_ranges

    ranges = block_ranges(len(items), team.num_threads)

    def task(tid: int) -> None:
        start, stop = ranges[tid]
        for i in range(start, stop):
            body(i, items[i])

    team.run(task)
