"""Spec-driven shared-memory array blocks for the process engine.

The ``process`` engine shares all of Algorithm 1's state — graph CSR
arrays, the chordal arena, parent cursors and per-superstep scratch —
between the coordinating process and its workers through **one**
``multiprocessing.shared_memory`` segment.  :class:`SharedArrayBlock`
carves that segment into named NumPy views from a declarative *spec*
(``{name: (dtype, shape)}``): the parent creates the block, workers attach
to it by name with the same spec, and both sides see the same layout
without any per-array handle plumbing.

Views are 8-byte aligned so every ``int64`` slot is a single aligned
machine word; the unique-writer discipline of the engine (each vertex's
state has exactly one writing worker per superstep) then guarantees
tear-free access without locks.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArrayBlock", "layout_size"]

_ALIGN = 8


def _layout(spec: dict[str, tuple[str, tuple[int, ...]]]) -> tuple[dict[str, tuple[int, str, tuple[int, ...]]], int]:
    """Byte offsets for each named array; total segment size."""
    offsets: dict[str, tuple[int, str, tuple[int, ...]]] = {}
    cursor = 0
    for name, (dtype, shape) in spec.items():
        itemsize = np.dtype(dtype).itemsize
        cursor = (cursor + _ALIGN - 1) // _ALIGN * _ALIGN
        offsets[name] = (cursor, dtype, tuple(shape))
        cursor += itemsize * int(np.prod(shape, dtype=np.int64))
    return offsets, max(cursor, 1)


def layout_size(spec: dict[str, tuple[str, tuple[int, ...]]]) -> int:
    """Total bytes a block with this spec occupies."""
    return _layout(spec)[1]


class SharedArrayBlock:
    """Named NumPy views over one shared-memory segment.

    Use :meth:`create` in the owning process and :meth:`attach` (with the
    identical spec) in workers.  ``arrays[name]`` is a live view — writes
    are visible to every attached process immediately.

    The owner must call :meth:`unlink` (once) in addition to
    :meth:`close`; attachers only :meth:`close`.  Both are idempotent and
    wrapped by context-manager support.
    """

    def __init__(self, shm: shared_memory.SharedMemory, spec, *, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._closed = False
        offsets, total = _layout(spec)
        if shm.size < total:
            raise ValueError(
                f"shared segment of {shm.size} bytes too small for spec ({total} bytes)"
            )
        self.arrays: dict[str, np.ndarray] = {
            name: np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
            for name, (off, dtype, shape) in offsets.items()
        }

    @classmethod
    def create(cls, spec: dict[str, tuple[str, tuple[int, ...]]]) -> "SharedArrayBlock":
        """Allocate a fresh zero-initialised segment sized for ``spec``."""
        shm = shared_memory.SharedMemory(create=True, size=layout_size(spec))
        return cls(shm, spec, owner=True)

    @classmethod
    def attach(cls, name: str, spec: dict[str, tuple[str, tuple[int, ...]]]) -> "SharedArrayBlock":
        """Attach to an existing segment by name with the creator's spec."""
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, spec, owner=False)

    @property
    def name(self) -> str:
        """OS-level segment name workers attach with."""
        return self._shm.name

    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # Views alias shm.buf; drop them before closing the mapping.
        self.arrays = {}
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the OS (owner only, after close)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

    def __enter__(self) -> "SharedArrayBlock":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()
