"""Spec-driven shared-memory array blocks for the process engine.

The ``process`` engine (via the unified runtime's
:class:`~repro.core.runtime.state.SharedSegmentState` backend) shares all
of Algorithm 1's state — graph CSR arrays, the chordal arena, parent
cursors and per-superstep scratch — between the coordinating process and
its workers through **one** ``multiprocessing.shared_memory`` segment.  :class:`SharedArrayBlock`
carves that segment into named NumPy views from a declarative *spec*
(``{name: (dtype, shape)}``): the parent creates the block, workers attach
to it by name with the same spec, and both sides see the same layout
without any per-array handle plumbing.

The block is designed as a **reusable arena**: :meth:`create` accepts a
``size`` larger than the spec strictly needs, and :meth:`remap` rebuilds
the views for a *different* spec over the same segment (as long as it
fits — check with :meth:`fits`).  The batch pipeline exploits this to run
many graphs through one segment: a pool sizes the segment for its first
graph plus headroom, rebinds later graphs by overwriting the views, and
only reallocates (and restarts its workers) when a graph outgrows the
segment.  A spec whose first entry is a fixed-size control array keeps
that array at offset 0 across every remap, giving the two sides a stable
channel to agree on the current layout.

Views are :data:`ALIGN`-byte aligned so every ``int64`` slot is a single
aligned machine word; the unique-writer discipline of the engine (each
vertex's state has exactly one writing worker per superstep) then
guarantees tear-free access without locks.  The asynchronous schedule
leans on the same guarantee for its shared edge-state claim words and
epoch counters — :mod:`repro.parallel.atomics` validates the alignment of
every word array it touches against :data:`ALIGN`.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArrayBlock", "layout_size", "ALIGN"]

#: Byte alignment of every array carved out of a segment.  Public because
#: the word-atomicity contract of :mod:`repro.parallel.atomics` (aligned
#: single-word loads/stores are tear-free) is anchored on it.
ALIGN = 8

_ALIGN = ALIGN


def _layout(
    spec: dict[str, tuple[str, tuple[int, ...]]],
) -> tuple[dict[str, tuple[int, str, tuple[int, ...]]], int]:
    """Byte offsets for each named array; total segment size."""
    offsets: dict[str, tuple[int, str, tuple[int, ...]]] = {}
    cursor = 0
    for name, (dtype, shape) in spec.items():
        itemsize = np.dtype(dtype).itemsize
        cursor = (cursor + _ALIGN - 1) // _ALIGN * _ALIGN
        offsets[name] = (cursor, dtype, tuple(shape))
        cursor += itemsize * int(np.prod(shape, dtype=np.int64))
    return offsets, max(cursor, 1)


def layout_size(spec: dict[str, tuple[str, tuple[int, ...]]]) -> int:
    """Total bytes a block with this spec occupies."""
    return _layout(spec)[1]


class SharedArrayBlock:
    """Named NumPy views over one shared-memory segment.

    Use :meth:`create` in the owning process and :meth:`attach` (with the
    identical spec) in workers.  ``arrays[name]`` is a live view — writes
    are visible to every attached process immediately.

    The owner must call :meth:`unlink` (once) in addition to
    :meth:`close`; attachers only :meth:`close`.  Both are idempotent and
    wrapped by context-manager support.
    """

    def __init__(self, shm: shared_memory.SharedMemory, spec, *, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._closed = False
        self.arrays: dict[str, np.ndarray] = {}
        self._map(spec)

    def _map(self, spec) -> None:
        offsets, total = _layout(spec)
        if self._shm.size < total:
            raise ValueError(
                f"shared segment of {self._shm.size} bytes too small for spec "
                f"({total} bytes)"
            )
        self.arrays = {
            name: np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=off)
            for name, (off, dtype, shape) in offsets.items()
        }

    @classmethod
    def create(
        cls,
        spec: dict[str, tuple[str, tuple[int, ...]]],
        *,
        size: int | None = None,
    ) -> "SharedArrayBlock":
        """Allocate a fresh zero-initialised segment sized for ``spec``.

        ``size`` over-allocates the segment (in bytes) beyond what the spec
        needs, leaving headroom for later :meth:`remap` calls with larger
        specs; values below the spec's requirement are ignored.
        """
        shm = shared_memory.SharedMemory(
            create=True, size=max(layout_size(spec), size or 0)
        )
        return cls(shm, spec, owner=True)

    @classmethod
    def attach(cls, name: str, spec: dict[str, tuple[str, tuple[int, ...]]]) -> "SharedArrayBlock":
        """Attach to an existing segment by name with the creator's spec."""
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, spec, owner=False)

    @property
    def name(self) -> str:
        """OS-level segment name workers attach with."""
        return self._shm.name

    @property
    def size(self) -> int:
        """Total bytes in the backing segment (>= the current spec)."""
        return self._shm.size

    def fits(self, spec: dict[str, tuple[str, tuple[int, ...]]]) -> bool:
        """Whether :meth:`remap` with ``spec`` would succeed on this segment."""
        return layout_size(spec) <= self._shm.size

    def remap(self, spec: dict[str, tuple[str, tuple[int, ...]]]) -> None:
        """Rebuild the views for a new spec over the same segment.

        Bytes are reinterpreted in place — nothing is zeroed, so arrays
        whose offsets shift hold garbage until rewritten.  Every attached
        process must remap with the identical spec before touching the
        reinterpreted arrays.  Raises ``ValueError`` if the spec does not
        fit (see :meth:`fits`).
        """
        if self._closed:
            raise ValueError("cannot remap a closed SharedArrayBlock")
        self._map(spec)

    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # Views alias shm.buf; drop them before closing the mapping.
        self.arrays = {}
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the OS (owner only, after close)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

    def __enter__(self) -> "SharedArrayBlock":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()
