"""Small atomic helpers — in-process lock-based counters and the shared-
memory word primitives of the asynchronous process engine.

The Cray XMT provides full/empty-bit atomics in hardware; in CPython the
GIL already makes single-bytecode operations atomic, but relying on that is
fragile under free-threaded builds, so the in-process helpers below use
explicit locks.  The synchronous core engine itself needs *no* atomics
thanks to the unique-writer discipline (see :mod:`repro.core.state`).

Shared-memory word primitives
-----------------------------
The asynchronous process engine coordinates workers through single
``int64`` words in the shared segment (:mod:`repro.parallel.shm`): edge-
state claim words and per-worker epoch counters.  CPython cannot issue a
hardware compare-and-swap, so the primitives below spell out exactly what
they *do* guarantee and what the engine must supply:

* every word lives in an 8-byte-aligned ``int64`` NumPy view over shared
  memory (:data:`repro.parallel.shm.ALIGN` — enforced here), so a single
  load or store is one aligned machine word: **readers never observe a
  torn value**, only the old word or the new word;
* the read-modify-write of :func:`compare_and_set` /
  :func:`bulk_compare_and_set` is atomic only under a **single-mutator-
  per-slot** discipline: at most one process may attempt to mutate a given
  slot at a time.  The async engine guarantees this structurally — each
  edge-claim slot belongs to exactly one child vertex, each vertex to
  exactly one worker slice per round, and handoffs between rounds are
  barrier-sequenced — and a failed compare (slot already decided) is how
  a violation of that discipline is *detected* rather than silently
  double-applied.  A native port maps these calls 1:1 onto real CAS
  instructions (``int_fetch_add`` / ``writexf`` on the XMT).

Cross-process visibility relies on total-store-order semantics for aligned
stores (x86) or the inter-process release/acquire pairing provided by the
engine's barriers; the engine never lets an unsynchronised reader make a
*admitting* decision from a racing word — stale reads can only reject.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.parallel.shm import ALIGN

__all__ = [
    "AtomicCounter",
    "AtomicMax",
    "atomic_load",
    "atomic_store",
    "compare_and_set",
    "bulk_compare_and_set",
]


def _check_word_view(arr: np.ndarray) -> None:
    """Reject views the single-word atomicity argument does not cover."""
    if arr.dtype != np.int64:
        raise ValueError(f"atomic words must be int64, got {arr.dtype}")
    if arr.__array_interface__["data"][0] % ALIGN != 0:
        raise ValueError("atomic word array is not 8-byte aligned")


def atomic_load(arr: np.ndarray, idx: int) -> int:
    """Tear-free read of one aligned int64 word."""
    _check_word_view(arr)
    return int(arr[idx])


def atomic_store(arr: np.ndarray, idx: int, value: int) -> None:
    """Tear-free write of one aligned int64 word."""
    _check_word_view(arr)
    arr[idx] = value


def compare_and_set(arr: np.ndarray, idx: int, expected: int, new: int) -> bool:
    """Set ``arr[idx] = new`` iff it currently equals ``expected``.

    Returns whether the claim succeeded.  Atomic under the single-mutator-
    per-slot discipline documented in the module docstring; a ``False``
    return means the slot was already claimed/decided.
    """
    _check_word_view(arr)
    if int(arr[idx]) != expected:
        return False
    arr[idx] = new
    return True


def bulk_compare_and_set(
    arr: np.ndarray, idx: np.ndarray, expected: int, new: np.ndarray | int
) -> np.ndarray:
    """Vectorised :func:`compare_and_set` over distinct slots ``idx``.

    Returns the boolean success mask.  ``idx`` entries must be distinct
    (they are distinct arena slots in the engine) and each slot must obey
    the single-mutator discipline; slots whose current value differs from
    ``expected`` are left untouched and reported ``False``.
    """
    _check_word_view(arr)
    won = arr[idx] == expected
    if np.isscalar(new):
        arr[idx[won]] = new
    else:
        arr[idx[won]] = np.asarray(new)[won]
    return won


class AtomicCounter:
    """Lock-protected integer counter (``int_fetch_add`` analogue)."""

    __slots__ = ("_value", "_lock")

    def __init__(self, initial: int = 0) -> None:
        self._value = initial
        self._lock = threading.Lock()

    def fetch_add(self, delta: int = 1) -> int:
        """Add ``delta`` and return the *previous* value."""
        with self._lock:
            old = self._value
            self._value = old + delta
            return old

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class AtomicMax:
    """Lock-protected running maximum (``writexf``-style reduce)."""

    __slots__ = ("_value", "_lock")

    def __init__(self, initial: float = float("-inf")) -> None:
        self._value = initial
        self._lock = threading.Lock()

    def update(self, candidate: float) -> float:
        """Fold ``candidate`` into the max; returns the new max."""
        with self._lock:
            if candidate > self._value:
                self._value = candidate
            return self._value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value
