"""Small atomic helpers.

The Cray XMT provides full/empty-bit atomics in hardware; in CPython the
GIL already makes single-bytecode operations atomic, but relying on that is
fragile under free-threaded builds, so the helpers below use explicit
locks.  The core engine itself needs *no* atomics thanks to the
unique-writer discipline (see :mod:`repro.core.state`); these are used by
the distributed baseline and available for user code.
"""

from __future__ import annotations

import threading

__all__ = ["AtomicCounter", "AtomicMax"]


class AtomicCounter:
    """Lock-protected integer counter (``int_fetch_add`` analogue)."""

    __slots__ = ("_value", "_lock")

    def __init__(self, initial: int = 0) -> None:
        self._value = initial
        self._lock = threading.Lock()

    def fetch_add(self, delta: int = 1) -> int:
        """Add ``delta`` and return the *previous* value."""
        with self._lock:
            old = self._value
            self._value = old + delta
            return old

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class AtomicMax:
    """Lock-protected running maximum (``writexf``-style reduce)."""

    __slots__ = ("_value", "_lock")

    def __init__(self, initial: float = float("-inf")) -> None:
        self._value = initial
        self._lock = threading.Lock()

    def update(self, candidate: float) -> float:
        """Fold ``candidate`` into the max; returns the new max."""
        with self._lock:
            if candidate > self._value:
                self._value = candidate
            return self._value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value
