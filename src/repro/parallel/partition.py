"""Work partitioning strategies.

``balanced_chunks`` is how the unified runtime driver
(:mod:`repro.core.runtime.driver`) cuts each round's active set into
contiguous, cost-balanced slices for its executor backend (thread team
and process team alike); ``block_ranges`` is the unweighted variant.
``lpt_assign`` (longest-processing-time list scheduling) is what the
machine models use to place the trace's independent work items on
processors — the classic 4/3-approximation to makespan.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = [
    "block_ranges",
    "balanced_chunks",
    "degree_balanced_cuts",
    "cyclic_indices",
    "lpt_assign",
]


def block_ranges(n_items: int, n_parts: int) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into ``n_parts`` contiguous near-equal ranges.

    Parts differ in size by at most one; empty parts are allowed when
    ``n_parts > n_items``.
    """
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    base, extra = divmod(n_items, n_parts)
    ranges = []
    start = 0
    for p in range(n_parts):
        size = base + (1 if p < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def balanced_chunks(weights: np.ndarray, n_parts: int) -> list[tuple[int, int]]:
    """Contiguous split of weighted items into parts of near-equal weight.

    Uses prefix-sum bisection: part ``p`` covers the items whose cumulative
    weight falls in ``[p, p+1) * total / n_parts``.  Keeps the threaded
    engine's partitions contiguous (cache-friendly) while balancing the
    degree-dependent per-vertex costs.
    """
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    w = np.asarray(weights, dtype=np.float64)
    n = w.size
    if n == 0:
        return [(0, 0)] * n_parts
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    prefix = np.cumsum(w)
    total = prefix[-1]
    if total == 0:
        return block_ranges(n, n_parts)
    cuts = [0]
    for p in range(1, n_parts):
        target = total * p / n_parts
        i = int(np.searchsorted(prefix, target))
        # Boundary candidates i and i+1 (cumulative weight just below /
        # at-or-above the target); pick whichever lands closer.
        below = prefix[i - 1] if i > 0 else 0.0
        at = prefix[i] if i < n else prefix[-1]
        cut = i + 1 if abs(at - target) < abs(below - target) else i
        cuts.append(min(cut, n))
    cuts.append(n)
    # Enforce monotonicity (heavy single items can invert naive cuts).
    for i in range(1, len(cuts)):
        cuts[i] = max(cuts[i], cuts[i - 1])
    return [(cuts[i], cuts[i + 1]) for i in range(n_parts)]


def degree_balanced_cuts(degrees: np.ndarray, n_parts: int) -> np.ndarray:
    """Edge-balanced contiguous vertex partition as cut offsets.

    Returns an ``int64`` array ``cuts`` of length ``n_parts + 1`` with
    ``cuts[0] == 0`` and ``cuts[-1] == n``; part ``p`` owns the vertex
    range ``[cuts[p], cuts[p+1])``.  Cuts are placed so each part covers
    a near-equal share of the *degree mass* (= twice the incident-edge
    count), not a near-equal share of the vertex count: on power-law
    degree sequences (R-MAT, SNAP dumps) ``block_ranges`` hands the
    hub-heavy low-id block many times the edges of the tail blocks,
    which is exactly the shard-size skew the sharded extractor must
    avoid.  A vertex whose id is below ``cuts[p+1]`` is owned by a part
    ``<= p``, so ownership lookup is one ``searchsorted`` — no
    length-``n`` part array needed.

    Isolated vertices (zero degree mass) ride with whichever part the
    cut lands them in; an all-zero degree array falls back to the
    unweighted :func:`block_ranges` split.
    """
    d = np.asarray(degrees, dtype=np.float64)
    if d.ndim != 1:
        raise ValueError(f"degrees must be 1-D, got shape {d.shape}")
    ranges = balanced_chunks(d, n_parts)
    cuts = np.empty(n_parts + 1, dtype=np.int64)
    cuts[0] = 0
    for p, (_start, end) in enumerate(ranges):
        cuts[p + 1] = end
    return cuts


def cyclic_indices(n_items: int, part: int, n_parts: int) -> np.ndarray:
    """Indices owned by ``part`` under cyclic (round-robin) distribution.

    Cyclic distribution is what the XMT's hardware hashing approximates;
    exposed for the ablation comparing partition strategies.
    """
    if not 0 <= part < n_parts:
        raise ValueError(f"part must be in [0, {n_parts}), got {part}")
    return np.arange(part, n_items, n_parts)


def lpt_assign(costs: np.ndarray, n_parts: int) -> tuple[np.ndarray, np.ndarray]:
    """Longest-processing-time list scheduling.

    Returns ``(loads, assignment)`` where ``loads[p]`` is the total cost on
    processor ``p`` and ``assignment[i]`` is the processor of item ``i``.
    Items are placed in descending cost order onto the least-loaded
    processor.
    """
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    c = np.asarray(costs, dtype=np.float64)
    loads = np.zeros(n_parts, dtype=np.float64)
    assignment = np.zeros(c.size, dtype=np.int64)
    if c.size == 0:
        return loads, assignment
    order = np.argsort(c)[::-1]
    heap: list[tuple[float, int]] = [(0.0, p) for p in range(n_parts)]
    heapq.heapify(heap)
    for i in order:
        load, p = heapq.heappop(heap)
        assignment[i] = p
        load += float(c[i])
        loads[p] = load
        heapq.heappush(heap, (load, p))
    return loads, assignment
