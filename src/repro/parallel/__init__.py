"""Thread runtime: persistent worker team, partitioners, atomic helpers.

This is the shared-memory substrate the threaded engine runs on.  On
CPython the GIL serialises bytecode, so these primitives demonstrate and
test the *structure* of the parallel algorithm (barriers, unique-writer
discipline, per-thread accumulation) rather than deliver wall-clock
speedup — the speedup experiments run on the machine models instead
(DESIGN.md §3, substitution 1).
"""

from repro.parallel.runtime import ThreadTeam, parallel_for
from repro.parallel.partition import (
    block_ranges,
    balanced_chunks,
    cyclic_indices,
    lpt_assign,
)
from repro.parallel.atomics import AtomicCounter, AtomicMax

__all__ = [
    "ThreadTeam",
    "parallel_for",
    "block_ranges",
    "balanced_chunks",
    "cyclic_indices",
    "lpt_assign",
    "AtomicCounter",
    "AtomicMax",
]
